# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(change_test "/root/repo/build/change_test")
set_tests_properties(change_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(cloud_test "/root/repo/build/cloud_test")
set_tests_properties(cloud_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(codec_test "/root/repo/build/codec_test")
set_tests_properties(codec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(dwt_test "/root/repo/build/dwt_test")
set_tests_properties(dwt_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(orbit_test "/root/repo/build/orbit_test")
set_tests_properties(orbit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(parallel_test "/root/repo/build/parallel_test")
set_tests_properties(parallel_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(rangecoder_test "/root/repo/build/rangecoder_test")
set_tests_properties(rangecoder_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(raster_test "/root/repo/build/raster_test")
set_tests_properties(raster_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(synth_test "/root/repo/build/synth_test")
set_tests_properties(synth_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(systems_test "/root/repo/build/systems_test")
set_tests_properties(systems_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
add_test(util_test "/root/repo/build/util_test")
set_tests_properties(util_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;36;add_test;/root/repo/CMakeLists.txt;0;")
