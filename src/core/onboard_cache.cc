#include "core/onboard_cache.hh"

#include "util/logging.hh"

namespace earthplus::core {

OnboardCache::OnboardCache(int downsampleFactor)
    : factor_(downsampleFactor)
{
    EP_ASSERT(downsampleFactor >= 1, "invalid downsample factor %d",
              downsampleFactor);
}

bool
OnboardCache::has(int locationId) const
{
    return cache_.count(locationId) != 0;
}

const raster::Image &
OnboardCache::reference(int locationId) const
{
    auto it = cache_.find(locationId);
    EP_ASSERT(it != cache_.end(), "no cached reference for location %d",
              locationId);
    return it->second;
}

double
OnboardCache::referenceDay(int locationId) const
{
    return reference(locationId).info().captureDay;
}

void
OnboardCache::install(int locationId, raster::Image lowRes)
{
    cache_[locationId] = std::move(lowRes);
}

void
OnboardCache::updateTiles(int locationId, const raster::Image &newLowRes,
                          const raster::TileMask &tiles, int tileSizeLow)
{
    auto it = cache_.find(locationId);
    EP_ASSERT(it != cache_.end(),
              "delta update for uncached location %d", locationId);
    raster::Image &cached = it->second;
    EP_ASSERT(cached.width() == newLowRes.width() &&
              cached.height() == newLowRes.height() &&
              cached.bandCount() == newLowRes.bandCount(),
              "delta update shape mismatch");
    raster::TileGrid grid(cached.width(), cached.height(), tileSizeLow);
    EP_ASSERT(grid.tilesX() == tiles.tilesX() &&
              grid.tilesY() == tiles.tilesY(),
              "delta update tile mask mismatch (%dx%d vs %dx%d)",
              tiles.tilesX(), tiles.tilesY(), grid.tilesX(),
              grid.tilesY());
    for (int t = 0; t < grid.tileCount(); ++t) {
        if (!tiles.get(t))
            continue;
        raster::TileRect r = grid.rect(t);
        for (int b = 0; b < cached.bandCount(); ++b) {
            raster::Plane patch =
                newLowRes.band(b).crop(r.x0, r.y0, r.width, r.height);
            cached.band(b).paste(patch, r.x0, r.y0);
        }
    }
    cached.info() = newLowRes.info();
}

size_t
OnboardCache::storageBytes() const
{
    size_t total = 0;
    for (const auto &[loc, img] : cache_) {
        (void)loc;
        total += img.pixelBytes();
    }
    return total;
}

} // namespace earthplus::core
