/**
 * @file
 * On-board compression systems: Earth+ and the paper's baselines.
 *
 *  - EarthPlusSystem: cheap cloud removal -> drop if >50% cloudy ->
 *    illumination alignment -> change detection against the cached
 *    (downsampled, constellation-fresh) reference -> ROI encoding of
 *    changed tiles at a constant per-tile bit budget gamma -> monthly
 *    guaranteed full download (§5).
 *  - KodanSystem [37]: accurate (expensive) on-board cloud detection,
 *    downloads every non-cloudy tile.
 *  - SatRoISystem [61]: reference-based encoding against a fixed
 *    reference image that is never refreshed.
 *  - DownloadAllSystem: encodes everything (the "Download everything"
 *    bar of Fig. 19).
 *
 * All systems share the same codec and the same gamma so comparisons
 * isolate the *selection* policy, exactly as in the paper (§6.1).
 */

#ifndef EARTHPLUS_CORE_SYSTEMS_HH
#define EARTHPLUS_CORE_SYSTEMS_HH

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "cloud/detector.hh"
#include "codec/codec.hh"
#include "core/onboard_cache.hh"
#include "core/reference_store.hh"
#include "core/uplink_planner.hh"
#include "orbit/links.hh"
#include "synth/sensor.hh"

namespace earthplus::core {

/** Parameters shared by every on-board system. */
struct SystemParams
{
    /** Bits per pixel spent on each encoded tile (the paper's gamma). */
    double gamma = 2.0;
    /** Change-detection threshold theta (mean abs diff). */
    double theta = 0.01;
    /** Reference downsampling factor (Earth+ only). */
    int refDownsample = 16;
    /** Tile edge length in pixels. */
    int tileSize = raster::kDefaultTileSize;
    /** Guaranteed full download period in days (§5). */
    double guaranteedPeriodDays = 30.0;
    /** Drop captures with more on-board-detected cloud than this. */
    double dropCloudFraction = 0.5;
    /** Quality layers per encoded image. */
    int layers = 1;
    /**
     * Ground ingestion happens outside the system (the ground-segment
     * downlink feeds the ReferenceStore when a download *completes*
     * rather than at capture time). When set, EarthPlusSystem does not
     * offer reconstructions to the store itself.
     */
    bool externalGroundIngest = false;
};

/** Everything a system reports about processing one capture. */
struct ProcessResult
{
    /** Capture dropped (cloud coverage above the drop threshold). */
    bool dropped = false;
    /** This was a guaranteed (or bootstrap) full download. */
    bool fullDownload = false;
    /** Bytes the downlink must carry for this capture. */
    size_t downlinkBytes = 0;
    /** Downlink bytes attributed to each band (sums to downlinkBytes). */
    std::vector<size_t> bandDownlinkBytes;
    /** Fraction of tiles downloaded. */
    double downloadedTileFraction = 0.0;
    /** Ground-reconstruction PSNR (dB) over non-cloudy pixels. */
    double psnr = 0.0;
    /** Age of the reference used (days; +inf when none). */
    double referenceAgeDays = 0.0;
    /** Cloud coverage as measured on board. */
    double measuredCloudCoverage = 0.0;
    double cloudDetectSec = 0.0;  ///< Cloud-detection runtime (s).
    double changeDetectSec = 0.0; ///< Change-detection runtime (s).
    double encodeSec = 0.0;       ///< Encoding runtime (s).
    /**
     * The encoded downlink payload, one stream per band (what the
     * ground segment packetizes and archives). Empty when dropped.
     */
    std::vector<codec::EncodedImage> encodedBands;
    /** Ground-side reconstruction (empty when dropped). */
    raster::Image reconstructed;
};

/**
 * Common interface of all on-board systems.
 */
class OnboardSystem
{
  public:
    virtual ~OnboardSystem() = default;

    /** Process one capture and produce the download + reconstruction. */
    virtual ProcessResult process(const synth::Capture &capture) = 0;

    /** Human-readable system name. */
    virtual const char *name() const = 0;
};

/**
 * Earth+ — constellation-wide reference-based encoding.
 */
class EarthPlusSystem : public OnboardSystem
{
  public:
    /**
     * @param bands Band specs of the captures this system will see.
     * @param params Shared system parameters.
     * @param uplinkParams Reference-update parameters.
     * @param ground Ground reference store (shared with the simulation).
     */
    EarthPlusSystem(std::vector<synth::BandSpec> bands,
                    const SystemParams &params,
                    const UplinkPlanner::Params &uplinkParams,
                    ReferenceStore &ground);

    /**
     * Run the uplink planner for one satellite before its capture:
     * updates that satellite's on-board cache (and the ground's mirror
     * of it) within the budget.
     *
     * @return The executed plan (bytes consumed, tiles updated).
     */
    UplinkPlan prepareCapture(int locationId, int satelliteId,
                              orbit::DailyByteBudget &budget);

    ProcessResult process(const synth::Capture &capture) override;

    const char *name() const override { return "Earth+"; }

    /** On-board cache of one satellite (created on demand). */
    OnboardCache &cacheFor(int satelliteId);

  private:
    std::vector<synth::BandSpec> bands_;
    SystemParams params_;
    UplinkPlanner planner_;
    ReferenceStore &ground_;
    cloud::CheapCloudDetector cloudDetector_;
    std::map<int, OnboardCache> caches_;
    /** Full-res ground mirror of each (satellite, location) cache. */
    std::map<std::pair<int, int>, raster::Image> groundMirror_;
    /** Last guaranteed-download day per location. */
    std::map<int, double> lastFullDownload_;
};

/**
 * Kodan — accurate on-board cloud filtering, downloads all non-cloudy
 * tiles.
 */
class KodanSystem : public OnboardSystem
{
  public:
    KodanSystem(std::vector<synth::BandSpec> bands,
                const SystemParams &params);

    ProcessResult process(const synth::Capture &capture) override;

    const char *name() const override { return "Kodan"; }

  private:
    std::vector<synth::BandSpec> bands_;
    SystemParams params_;
    cloud::AccurateCloudDetector cloudDetector_;
};

/**
 * SatRoI — reference-based encoding with a fixed (never-refreshed)
 * full-resolution reference.
 */
class SatRoISystem : public OnboardSystem
{
  public:
    SatRoISystem(std::vector<synth::BandSpec> bands,
                 const SystemParams &params);

    ProcessResult process(const synth::Capture &capture) override;

    const char *name() const override { return "SatRoI"; }

  private:
    std::vector<synth::BandSpec> bands_;
    SystemParams params_;
    cloud::CheapCloudDetector cloudDetector_;
    /** The fixed reference (set once per location, then frozen). */
    std::map<int, raster::Image> fixedRef_;
    std::map<int, double> lastFullDownload_;
};

/**
 * Download-everything — no filtering, every tile encoded at gamma.
 */
class DownloadAllSystem : public OnboardSystem
{
  public:
    DownloadAllSystem(std::vector<synth::BandSpec> bands,
                      const SystemParams &params);

    ProcessResult process(const synth::Capture &capture) override;

    const char *name() const override { return "DownloadAll"; }

  private:
    std::vector<synth::BandSpec> bands_;
    SystemParams params_;
};

} // namespace earthplus::core

#endif // EARTHPLUS_CORE_SYSTEMS_HH
