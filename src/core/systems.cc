#include "core/systems.hh"

#include <chrono>
#include <cmath>
#include <limits>

#include "change/detector.hh"
#include "raster/metrics.hh"
#include "raster/resample.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace earthplus::core {

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    auto dt = std::chrono::steady_clock::now() - t0;
    return std::chrono::duration<double>(dt).count();
}

/** Zero out cloudy pixels (the paper's cloud removal, §5). */
raster::Plane
removeClouds(const raster::Plane &p, const raster::Bitmap &cloudMask)
{
    raster::Plane out = p;
    for (int y = 0; y < out.height(); ++y) {
        float *row = out.row(y);
        for (int x = 0; x < out.width(); ++x)
            if (cloudMask.get(x, y))
                row[x] = 0.0f;
    }
    return out;
}

/**
 * Encode every band of `img`, each over its own ROI (§5: bands are
 * handled separately — different areas change in different bands).
 * Zeroes cloudy pixels first.
 */
size_t
encodeBands(const raster::Image &img, const raster::Bitmap &cloudMask,
            const std::vector<raster::TileMask> &rois,
            const SystemParams &params,
            std::vector<codec::EncodedImage> &encoded,
            std::vector<size_t> &bandBytes)
{
    // Bands are independent encode jobs; each band's per-tile jobs
    // nest inline when the pool is already saturated.
    auto results = util::parallelMap(
        static_cast<size_t>(img.bandCount()), [&](size_t b) {
            raster::Plane clean =
                removeClouds(img.band(static_cast<int>(b)), cloudMask);
            codec::EncodeParams ep;
            ep.bitsPerPixel = params.gamma;
            ep.tileSize = params.tileSize;
            ep.layers = params.layers;
            ep.roi = &rois[b];
            return codec::encode(clean, ep);
        });
    size_t bytes = 0;
    bandBytes.clear();
    for (auto &enc : results) {
        bandBytes.push_back(enc.totalBytes());
        bytes += bandBytes.back();
        encoded.push_back(std::move(enc));
    }
    return bytes;
}

/** The same tile mask replicated for every band. */
std::vector<raster::TileMask>
uniformRois(const raster::TileMask &roi, int bands)
{
    return std::vector<raster::TileMask>(static_cast<size_t>(bands), roi);
}

/** Mean set-fraction across per-band masks. */
double
meanRoiFraction(const std::vector<raster::TileMask> &rois)
{
    if (rois.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &r : rois)
        sum += r.fractionSet();
    return sum / static_cast<double>(rois.size());
}

/**
 * Ground reconstruction: decoded ROI tiles pasted over a fill image
 * (the ground's copy of the reference, or flat gray when absent).
 */
raster::Image
reconstruct(const std::vector<codec::EncodedImage> &encoded,
            const std::vector<raster::TileMask> &rois,
            const raster::Image *fill, int width, int height,
            int tileSize)
{
    raster::TileGrid grid(width, height, tileSize);
    // Bands decode independently; addBand order stays deterministic.
    auto planes = util::parallelMap(encoded.size(), [&](size_t b) {
        raster::Plane plane(width, height, 0.5f);
        if (fill && static_cast<int>(b) < fill->bandCount())
            plane = fill->band(static_cast<int>(b));
        raster::Plane decoded = codec::decode(encoded[b]);
        const raster::TileMask &roi = rois[b];
        for (int t = 0; t < grid.tileCount(); ++t) {
            if (!roi.get(t))
                continue;
            raster::TileRect r = grid.rect(t);
            plane.paste(decoded.crop(r.x0, r.y0, r.width, r.height),
                        r.x0, r.y0);
        }
        return plane;
    });
    raster::Image out;
    for (auto &p : planes)
        out.addBand(std::move(p));
    return out;
}

/** Mean PSNR across bands over non-cloudy pixels. */
double
meanPsnr(const raster::Image &truth, const raster::Image &recon,
         const raster::Bitmap &cloudTruth)
{
    raster::Bitmap valid = cloudTruth;
    valid.invert();
    double sum = 0.0;
    int n = 0;
    for (int b = 0; b < truth.bandCount(); ++b) {
        double p = raster::psnr(truth.band(b), recon.band(b), &valid);
        if (std::isinf(p))
            p = 99.0; // identical reconstruction; cap for averaging
        sum += p;
        ++n;
    }
    return n ? sum / n : 0.0;
}

} // anonymous namespace

EarthPlusSystem::EarthPlusSystem(std::vector<synth::BandSpec> bands,
                                 const SystemParams &params,
                                 const UplinkPlanner::Params &uplinkParams,
                                 ReferenceStore &ground)
    : bands_(std::move(bands)), params_(params), planner_(uplinkParams),
      ground_(ground)
{
    EP_ASSERT(params_.tileSize % params_.refDownsample == 0,
              "tile size %d not divisible by reference downsample %d",
              params_.tileSize, params_.refDownsample);
}

OnboardCache &
EarthPlusSystem::cacheFor(int satelliteId)
{
    auto it = caches_.find(satelliteId);
    if (it == caches_.end())
        it = caches_.emplace(satelliteId,
                             OnboardCache(params_.refDownsample)).first;
    return it->second;
}

UplinkPlan
EarthPlusSystem::prepareCapture(int locationId, int satelliteId,
                                orbit::DailyByteBudget &budget)
{
    OnboardCache &cache = cacheFor(satelliteId);
    UplinkPlan plan = planner_.planUpdate(ground_, cache, locationId,
                                          budget);
    if (plan.sent) {
        // Mirror the cache update at full resolution on the ground so
        // reconstruction uses exactly the content the satellite
        // compared against.
        auto key = std::make_pair(satelliteId, locationId);
        const raster::Image &full = ground_.reference(locationId);
        if (plan.fullInstall || groundMirror_.count(key) == 0) {
            groundMirror_[key] = full;
        } else {
            raster::Image &mirror = groundMirror_[key];
            raster::TileGrid grid(mirror.width(), mirror.height(),
                                  params_.tileSize);
            for (int t = 0; t < grid.tileCount(); ++t) {
                if (plan.updatedTiles.count() == 0 ||
                    !plan.updatedTiles.get(t))
                    continue;
                raster::TileRect r = grid.rect(t);
                for (int b = 0; b < mirror.bandCount(); ++b)
                    mirror.band(b).paste(
                        full.band(b).crop(r.x0, r.y0, r.width, r.height),
                        r.x0, r.y0);
            }
            mirror.info() = full.info();
        }
    }
    return plan;
}

ProcessResult
EarthPlusSystem::process(const synth::Capture &capture)
{
    ProcessResult res;
    const raster::Image &img = capture.image;
    int loc = img.info().locationId;
    int sat = img.info().satelliteId;
    double day = img.info().captureDay;
    raster::TileGrid grid(img.width(), img.height(), params_.tileSize);

    auto t0 = std::chrono::steady_clock::now();
    cloud::CloudDetection cd =
        cloudDetector_.detect(img, bands_, grid);
    res.cloudDetectSec = secondsSince(t0);
    res.measuredCloudCoverage = cd.coverage;
    if (cd.coverage > params_.dropCloudFraction) {
        res.dropped = true;
        return res;
    }

    OnboardCache &cache = cacheFor(sat);
    bool haveRef = cache.has(loc);
    res.referenceAgeDays =
        haveRef ? day - cache.referenceDay(loc)
                : std::numeric_limits<double>::infinity();

    auto itFull = lastFullDownload_.find(loc);
    bool guaranteed =
        itFull == lastFullDownload_.end() ||
        day - itFull->second >= params_.guaranteedPeriodDays;

    std::vector<raster::TileMask> rois;
    if (guaranteed || !haveRef) {
        raster::TileMask roi(grid, true);
        roi.subtract(cd.tileMask);
        rois = uniformRois(roi, img.bandCount());
        res.fullDownload = true;
    } else {
        // Change detection per band against the cached low-res
        // reference, on cloud-free pixels only. Bands are handled
        // separately (§5) and are independent, so they fan across the
        // pool.
        auto t1 = std::chrono::steady_clock::now();
        raster::Bitmap validLow =
            raster::downsampleAny(cd.pixelMask, params_.refDownsample);
        validLow.invert();
        const raster::Image &ref = cache.reference(loc);
        change::ChangeDetectorParams cp;
        cp.threshold = params_.theta;
        cp.tileSize = params_.tileSize;
        cp.referenceFactor = params_.refDownsample;
        rois = util::parallelMap(
            static_cast<size_t>(img.bandCount()), [&](size_t b) {
                change::ChangeDetection det = change::detectChanges(
                    img.band(static_cast<int>(b)),
                    ref.band(static_cast<int>(b)), cp, &validLow);
                raster::TileMask roi = det.changedTiles;
                roi.subtract(cd.tileMask);
                return roi;
            });
        res.changeDetectSec = secondsSince(t1);
    }

    auto t2 = std::chrono::steady_clock::now();
    res.downlinkBytes = encodeBands(img, cd.pixelMask, rois, params_,
                                    res.encodedBands,
                                    res.bandDownlinkBytes);
    res.encodeSec = secondsSince(t2);
    res.downloadedTileFraction = meanRoiFraction(rois);

    // Ground side: reconstruct from the mirror of the satellite's
    // reference and offer the result as a fresh reference.
    auto key = std::make_pair(sat, loc);
    const raster::Image *fill = nullptr;
    auto itMirror = groundMirror_.find(key);
    if (itMirror != groundMirror_.end())
        fill = &itMirror->second;
    res.reconstructed = reconstruct(res.encodedBands, rois, fill, img.width(),
                                    img.height(), params_.tileSize);
    res.reconstructed.info() = img.info();
    res.psnr = meanPsnr(img, res.reconstructed, capture.cloudTruth);

    if (res.fullDownload)
        lastFullDownload_[loc] = day;
    // The ground re-detects clouds with its accurate detector; we model
    // that near-perfect detector with the ground-truth coverage (see
    // DESIGN.md). With a ground segment in the loop, ingestion instead
    // happens when the packetized download completes.
    if (!params_.externalGroundIngest)
        ground_.offer(res.reconstructed, capture.cloudCoverage);
    return res;
}

KodanSystem::KodanSystem(std::vector<synth::BandSpec> bands,
                         const SystemParams &params)
    : bands_(std::move(bands)), params_(params)
{
}

ProcessResult
KodanSystem::process(const synth::Capture &capture)
{
    ProcessResult res;
    const raster::Image &img = capture.image;
    raster::TileGrid grid(img.width(), img.height(), params_.tileSize);
    res.referenceAgeDays = std::numeric_limits<double>::infinity();

    auto t0 = std::chrono::steady_clock::now();
    cloud::CloudDetection cd = cloudDetector_.detect(img, bands_, grid);
    res.cloudDetectSec = secondsSince(t0);
    res.measuredCloudCoverage = cd.coverage;
    if (cd.coverage > params_.dropCloudFraction) {
        res.dropped = true;
        return res;
    }

    // Download every tile that is not cloudy.
    raster::TileMask roi(grid, true);
    roi.subtract(cd.tileMask);
    std::vector<raster::TileMask> rois = uniformRois(roi, img.bandCount());

    auto t2 = std::chrono::steady_clock::now();
    res.downlinkBytes = encodeBands(img, cd.pixelMask, rois, params_,
                                    res.encodedBands,
                                    res.bandDownlinkBytes);
    res.encodeSec = secondsSince(t2);
    res.downloadedTileFraction = roi.fractionSet();

    res.reconstructed = reconstruct(res.encodedBands, rois, nullptr, img.width(),
                                    img.height(), params_.tileSize);
    res.reconstructed.info() = img.info();
    res.psnr = meanPsnr(img, res.reconstructed, capture.cloudTruth);
    return res;
}

SatRoISystem::SatRoISystem(std::vector<synth::BandSpec> bands,
                           const SystemParams &params)
    : bands_(std::move(bands)), params_(params)
{
}

ProcessResult
SatRoISystem::process(const synth::Capture &capture)
{
    ProcessResult res;
    const raster::Image &img = capture.image;
    int loc = img.info().locationId;
    double day = img.info().captureDay;
    raster::TileGrid grid(img.width(), img.height(), params_.tileSize);

    auto t0 = std::chrono::steady_clock::now();
    cloud::CloudDetection cd = cloudDetector_.detect(img, bands_, grid);
    res.cloudDetectSec = secondsSince(t0);
    res.measuredCloudCoverage = cd.coverage;
    if (cd.coverage > params_.dropCloudFraction) {
        res.dropped = true;
        return res;
    }

    auto itRef = fixedRef_.find(loc);
    bool haveRef = itRef != fixedRef_.end();
    res.referenceAgeDays =
        haveRef ? day - itRef->second.info().captureDay
                : std::numeric_limits<double>::infinity();

    auto itFull = lastFullDownload_.find(loc);
    bool guaranteed =
        itFull == lastFullDownload_.end() ||
        day - itFull->second >= params_.guaranteedPeriodDays;

    std::vector<raster::TileMask> rois;
    if (guaranteed || !haveRef) {
        raster::TileMask roi(grid, true);
        roi.subtract(cd.tileMask);
        rois = uniformRois(roi, img.bandCount());
        res.fullDownload = true;
    } else {
        // Full-resolution change detection against the frozen
        // reference, band by band across the pool.
        auto t1 = std::chrono::steady_clock::now();
        raster::Bitmap valid = cd.pixelMask;
        valid.invert();
        change::ChangeDetectorParams cp;
        cp.threshold = params_.theta;
        cp.tileSize = params_.tileSize;
        cp.referenceFactor = 1;
        rois = util::parallelMap(
            static_cast<size_t>(img.bandCount()), [&](size_t b) {
                change::ChangeDetection det = change::detectChanges(
                    img.band(static_cast<int>(b)),
                    itRef->second.band(static_cast<int>(b)), cp, &valid);
                raster::TileMask roi = det.changedTiles;
                roi.subtract(cd.tileMask);
                return roi;
            });
        res.changeDetectSec = secondsSince(t1);
    }

    auto t2 = std::chrono::steady_clock::now();
    res.downlinkBytes = encodeBands(img, cd.pixelMask, rois, params_,
                                    res.encodedBands,
                                    res.bandDownlinkBytes);
    res.encodeSec = secondsSince(t2);
    res.downloadedTileFraction = meanRoiFraction(rois);

    const raster::Image *fill = haveRef ? &itRef->second : nullptr;
    res.reconstructed = reconstruct(res.encodedBands, rois, fill, img.width(),
                                    img.height(), params_.tileSize);
    res.reconstructed.info() = img.info();
    res.psnr = meanPsnr(img, res.reconstructed, capture.cloudTruth);

    if (res.fullDownload)
        lastFullDownload_[loc] = day;
    // The reference is fixed: set it from the first good full
    // download, never update afterwards [61].
    if (!haveRef && res.fullDownload && capture.cloudCoverage < 0.05)
        fixedRef_[loc] = res.reconstructed;
    return res;
}

DownloadAllSystem::DownloadAllSystem(std::vector<synth::BandSpec> bands,
                                     const SystemParams &params)
    : bands_(std::move(bands)), params_(params)
{
}

ProcessResult
DownloadAllSystem::process(const synth::Capture &capture)
{
    ProcessResult res;
    const raster::Image &img = capture.image;
    raster::TileGrid grid(img.width(), img.height(), params_.tileSize);
    res.referenceAgeDays = std::numeric_limits<double>::infinity();
    res.fullDownload = true;

    raster::TileMask roi(grid, true);
    std::vector<raster::TileMask> rois = uniformRois(roi, img.bandCount());
    raster::Bitmap noClouds(img.width(), img.height(), false);

    auto t2 = std::chrono::steady_clock::now();
    res.downlinkBytes = encodeBands(img, noClouds, rois, params_,
                                    res.encodedBands,
                                    res.bandDownlinkBytes);
    res.encodeSec = secondsSince(t2);
    res.downloadedTileFraction = 1.0;

    res.reconstructed = reconstruct(res.encodedBands, rois, nullptr, img.width(),
                                    img.height(), params_.tileSize);
    res.reconstructed.info() = img.info();
    res.psnr = meanPsnr(img, res.reconstructed, capture.cloudTruth);
    return res;
}

} // namespace earthplus::core
