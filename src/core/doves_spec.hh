/**
 * @file
 * Real-world satellite constants (paper Table 1: Doves constellation,
 * 2017-2018).
 */

#ifndef EARTHPLUS_CORE_DOVES_SPEC_HH
#define EARTHPLUS_CORE_DOVES_SPEC_HH

#include <ostream>

#include "orbit/links.hh"

namespace earthplus::core {

/** Table 1 of the paper. */
struct DovesSpec
{
    /** Uplink: 250 kbps S-band. */
    orbit::LinkSpec uplink{250e3, 600.0, 7};
    /** Downlink: 200 Mbps X-band. */
    orbit::LinkSpec downlink{200e6, 600.0, 7};
    /** Ground contact duration (minutes). */
    double contactMinutes = 10.0;
    /** Ground contacts per day. */
    int contactsPerDay = 7;
    /** On-board storage (GB). */
    double onboardStorageGB = 360.0;
    /** Capture width (pixels). */
    int imageWidth = 6600;
    /** Capture height (pixels). */
    int imageHeight = 4400;
    /** Bands: RGB + InfraRed. */
    int imageChannels = 4;
    /** Raw image file size (MB). */
    double rawImageMB = 150.0;
    /** Ground sampling distance (metres). */
    double gsdMeters = 3.7;
    /** Days for one satellite to revisit a location. */
    double revisitDays = 12.0;
};

/** The paper's Table 1 values. */
DovesSpec dovesSpec();

/** Print Table 1 (used by bench_table1_specs). */
void printSpecTable(const DovesSpec &spec, std::ostream &os);

} // namespace earthplus::core

#endif // EARTHPLUS_CORE_DOVES_SPEC_HH
