#include "core/doves_spec.hh"

#include "util/table.hh"

namespace earthplus::core {

DovesSpec
dovesSpec()
{
    return DovesSpec{};
}

void
printSpecTable(const DovesSpec &spec, std::ostream &os)
{
    Table t("Table 1: Doves constellation specification (2017-2018)");
    t.setHeader({"Section", "Property", "Value"});
    t.addRow({"Connectivity", "Ground contact duration",
              Table::num(spec.contactMinutes, 0) + " minutes"});
    t.addRow({"", "Ground contacts per day",
              Table::num(spec.contactsPerDay, 0)});
    t.addRow({"", "Uplink bandwidth",
              Table::num(spec.uplink.bitsPerSecond / 1e3, 0) + " kbps"});
    t.addRow({"", "Downlink bandwidth",
              Table::num(spec.downlink.bitsPerSecond / 1e6, 0) + " Mbps"});
    t.addRow({"Hardware", "On-board storage",
              Table::num(spec.onboardStorageGB, 0) + " GB"});
    t.addRow({"Image", "Image resolution",
              Table::num(spec.imageWidth, 0) + "x" +
                  Table::num(spec.imageHeight, 0)});
    t.addRow({"", "Image channels", "RGB + InfraRed"});
    t.addRow({"", "Raw image file size",
              Table::num(spec.rawImageMB, 0) + " MB"});
    t.addRow({"", "Ground sampling distance",
              Table::num(spec.gsdMeters, 1) + " meters"});
    t.print(os);
}

} // namespace earthplus::core
