/**
 * @file
 * On-board cache of downsampled reference images.
 *
 * Reference-based encoding frees the storage that whole captured
 * images would have used; Earth+ spends part of that saving on a local
 * cache of low-resolution references for every location the satellite
 * will visit (§4.3). The cache is what makes delta reference updates
 * possible (only changed low-res tiles are uplinked) and what lets the
 * satellite keep operating across uplink outages.
 */

#ifndef EARTHPLUS_CORE_ONBOARD_CACHE_HH
#define EARTHPLUS_CORE_ONBOARD_CACHE_HH

#include <map>

#include "raster/image.hh"
#include "raster/tile.hh"

namespace earthplus::core {

/**
 * Per-location low-resolution reference cache.
 */
class OnboardCache
{
  public:
    /**
     * @param downsampleFactor Reference downsampling factor relative
     *        to capture resolution.
     */
    explicit OnboardCache(int downsampleFactor);

    /** True when the cache holds a reference for the location. */
    bool has(int locationId) const;

    /** Cached low-resolution reference (must exist). */
    const raster::Image &reference(int locationId) const;

    /** Capture day of the cached reference (must exist). */
    double referenceDay(int locationId) const;

    /** Install or replace the whole cached reference. */
    void install(int locationId, raster::Image lowRes);

    /**
     * Apply a delta update: replace only the given tiles of the cached
     * reference with the corresponding tiles of `newLowRes`.
     *
     * @param locationId Location to update (must exist).
     * @param newLowRes New low-resolution reference image.
     * @param tiles Tiles (full-resolution tile indices) to refresh.
     * @param tileSizeLow Tile edge length in low-res pixels.
     */
    void updateTiles(int locationId, const raster::Image &newLowRes,
                     const raster::TileMask &tiles, int tileSizeLow);

    /** The configured downsampling factor. */
    int downsampleFactor() const { return factor_; }

    /** Bytes used by all cached references (float storage). */
    size_t storageBytes() const;

    /** Number of cached locations. */
    size_t size() const { return cache_.size(); }

  private:
    int factor_;
    std::map<int, raster::Image> cache_;
};

} // namespace earthplus::core

#endif // EARTHPLUS_CORE_ONBOARD_CACHE_HH
