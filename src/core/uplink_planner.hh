/**
 * @file
 * Ground-side uplink planner.
 *
 * Implements the paper's three uplink-reduction techniques (§4.3):
 *
 *  1. references are downsampled before upload,
 *  2. only low-res tiles that changed against the satellite's cached
 *     copy are uplinked (the ground mirrors the on-board cache, so it
 *     knows exactly what the satellite holds), and
 *  3. when the uplink budget is exhausted, updates are skipped and the
 *     satellite keeps using its older cached reference.
 */

#ifndef EARTHPLUS_CORE_UPLINK_PLANNER_HH
#define EARTHPLUS_CORE_UPLINK_PLANNER_HH

#include "codec/codec.hh"
#include "core/onboard_cache.hh"
#include "core/reference_store.hh"
#include "orbit/links.hh"
#include "raster/tile.hh"

namespace earthplus::core {

/** Result of one reference-update attempt. */
struct UplinkPlan
{
    /** An update was transmitted. */
    bool sent = false;
    /** Update skipped because the budget ran out. */
    bool skippedForBudget = false;
    /** First-time full install (vs. delta update). */
    bool fullInstall = false;
    /** Bytes consumed on the uplink. */
    double bytes = 0.0;
    /** Tiles refreshed in the cache (empty mask for full installs). */
    raster::TileMask updatedTiles;
    /** Fraction of low-res tiles carried by a delta update. */
    double updatedTileFraction = 0.0;
    /**
     * Compression ratio vs. the raw full-resolution reference
     * (the Fig.-17 metric).
     */
    double compressionRatio = 0.0;
};

/**
 * Plans and applies reference updates for one satellite's cache.
 */
class UplinkPlanner
{
  public:
    struct Params
    {
        /** Reference downsampling factor. */
        int downsampleFactor = 16;
        /** Full-resolution tile size. */
        int tileSize = raster::kDefaultTileSize;
        /**
         * Low-res mean-abs-diff above which a low-res tile is included
         * in a delta update.
         */
        double deltaThreshold = 0.004;
        /** Bits per (low-res) pixel for encoding uplinked tiles. */
        double bitsPerPixel = 6.0;
    };

    /** Construct with default parameters. */
    UplinkPlanner();

    /** Construct with explicit parameters. */
    explicit UplinkPlanner(const Params &params);

    /**
     * Attempt a reference update for one location before a capture.
     *
     * Compares the ground's freshest reference with the satellite's
     * cached copy, encodes the difference, and applies it to the cache
     * when the budget admits it.
     *
     * @param ground Ground reference store.
     * @param cache On-board cache to update.
     * @param locationId Location about to be captured.
     * @param budget Uplink byte budget to draw from.
     * @return What happened (see UplinkPlan).
     */
    UplinkPlan planUpdate(const ReferenceStore &ground, OnboardCache &cache,
                          int locationId,
                          orbit::DailyByteBudget &budget) const;

    const Params &params() const { return params_; }

  private:
    Params params_;

    /** Wire size of a full or partial low-res reference upload. */
    double encodedBytes(const raster::Image &lowRes,
                        const raster::TileMask *tiles) const;
};

} // namespace earthplus::core

#endif // EARTHPLUS_CORE_UPLINK_PLANNER_HH
