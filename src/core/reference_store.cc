#include "core/reference_store.hh"

#include <limits>

#include "util/logging.hh"

namespace earthplus::core {

ReferenceStore::ReferenceStore(double maxCloudFraction)
    : maxCloudFraction_(maxCloudFraction)
{
    EP_ASSERT(maxCloudFraction >= 0.0 && maxCloudFraction <= 1.0,
              "cloud threshold %f out of range", maxCloudFraction);
}

bool
ReferenceStore::offer(const raster::Image &img, double cloudFraction)
{
    if (cloudFraction > maxCloudFraction_)
        return false;
    int loc = img.info().locationId;
    auto it = refs_.find(loc);
    if (it != refs_.end() &&
        it->second.info().captureDay >= img.info().captureDay)
        return false;
    refs_[loc] = img;
    return true;
}

bool
ReferenceStore::has(int locationId) const
{
    return refs_.count(locationId) != 0;
}

const raster::Image &
ReferenceStore::reference(int locationId) const
{
    auto it = refs_.find(locationId);
    EP_ASSERT(it != refs_.end(), "no reference for location %d",
              locationId);
    return it->second;
}

double
ReferenceStore::referenceDay(int locationId) const
{
    return reference(locationId).info().captureDay;
}

double
ReferenceStore::ageAt(int locationId, double day) const
{
    if (!has(locationId))
        return std::numeric_limits<double>::infinity();
    return day - referenceDay(locationId);
}

} // namespace earthplus::core
