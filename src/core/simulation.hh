/**
 * @file
 * End-to-end simulation of one location under one compression system.
 *
 * Drives the full loop of Fig. 7(b): for every scheduled capture of a
 * location by any satellite of the constellation — uplink reference
 * update (Earth+ only, within the daily uplink budget) -> capture ->
 * on-board processing -> downlink -> ground reconstruction ->
 * reference-store refresh — and aggregates the per-capture metrics the
 * paper's evaluation reports.
 */

#ifndef EARTHPLUS_CORE_SIMULATION_HH
#define EARTHPLUS_CORE_SIMULATION_HH

#include <memory>
#include <vector>

#include "core/systems.hh"
#include "ground/station.hh"
#include "synth/dataset.hh"
#include "synth/scene.hh"
#include "synth/sensor.hh"
#include "synth/weather.hh"

namespace earthplus::core {

/** Which system a simulation runs. */
enum class SystemKind
{
    EarthPlus,
    Kodan,
    SatRoI,
    DownloadAll,
};

/** Display name of a system kind. */
const char *systemName(SystemKind kind);

/** Simulation configuration. */
struct SimParams
{
    /** Shared on-board system parameters. */
    SystemParams system;
    /** Earth+ uplink planning parameters. */
    UplinkPlanner::Params uplink;
    /**
     * Daily uplink byte allowance available for this location's
     * reference updates (the per-location share of the 250 kbps
     * uplink). Large by default; Fig. 18 sweeps it.
     */
    double uplinkBytesPerDay = 1e12;
    /** Cloud threshold for accepting ground references (§4.2). */
    double maxCloudForReference = 0.01;
    /** Cap on captures processed (0 = all) for quick runs. */
    int maxCaptures = 0;
    /**
     * Ground segment configuration. When enabled, downloads no longer
     * teleport into the ReferenceStore at capture time: every encoded
     * band is serialized, packetized and transmitted across lossy
     * ground contacts (with ARQ retransmission), archived on
     * completion, and only then offered as a reference.
     */
    ground::GroundSegmentParams groundSegment;
};

/** Metrics of one processed capture. */
struct CaptureMetrics
{
    double day = 0.0;           ///< Capture day.
    int satelliteId = 0;        ///< Capturing satellite.
    bool dropped = false;       ///< Fully cloudy: nothing downloaded.
    bool fullDownload = false;  ///< Guaranteed periodic full download.
    size_t downlinkBytes = 0;   ///< Bytes sent to the ground.
    double downloadedTileFraction = 0.0; ///< Tiles downloaded / total.
    double psnr = 0.0;          ///< Reconstruction PSNR (dB).
    double referenceAgeDays = 0.0; ///< Age of the reference used.
    double uplinkBytes = 0.0;   ///< Reference-update uplink cost.
    double cloudDetectSec = 0.0;  ///< Cloud-detection runtime (s).
    double changeDetectSec = 0.0; ///< Change-detection runtime (s).
    double encodeSec = 0.0;       ///< Encoding runtime (s).
};

/** Aggregated results of one simulation run. */
struct SimSummary
{
    /** Per-capture metrics, capture order. */
    std::vector<CaptureMetrics> captures;
    /** Downlink bytes summed over every capture. */
    double totalDownlinkBytes = 0.0;
    /** Uplink bytes summed over every capture. */
    double totalUplinkBytes = 0.0;
    /** Total downlink bytes per band (empty until the first capture). */
    std::vector<double> bandDownlinkBytes;
    /** Mean PSNR over processed (non-dropped) captures. */
    double meanPsnr = 0.0;
    /** Mean downloaded-tile fraction over processed captures. */
    double meanDownloadedFraction = 0.0;
    /** Mean reference age over captures that had a reference. */
    double meanReferenceAgeDays = 0.0;
    int processedCount = 0;    ///< Captures processed (downloaded).
    int droppedCount = 0;      ///< Captures dropped as fully cloudy.
    int fullDownloadCount = 0; ///< Guaranteed full downloads.
    /** Captures processed while holding a (finite-age) reference. */
    int referencedCount = 0;
    /** True when the run routed downloads through the ground segment. */
    bool groundEnabled = false;
    /** Ground-segment statistics (valid when groundEnabled). */
    ground::StationStats groundStats;

    /**
     * Downlink rate (Mbps) needed to stream the mean per-capture
     * payload within one ground contact, scaled from the synthetic
     * image size to a real image size.
     *
     * @param contactSeconds Ground contact duration.
     * @param scaleToRealBytes Ratio real-image-bytes /
     *        synthetic-image-bytes (1 = report raw synthetic rate).
     */
    double requiredDownlinkMbps(double contactSeconds,
                                double scaleToRealBytes = 1.0) const;
};

/**
 * Simulates one location of a dataset under one system.
 */
class LocationSimulation
{
  public:
    /**
     * @param spec Dataset description.
     * @param locationIdx Index into spec.locations.
     * @param kind System to run.
     * @param params Simulation parameters.
     */
    LocationSimulation(const synth::DatasetSpec &spec, int locationIdx,
                       SystemKind kind, const SimParams &params);

    /** Out-of-line: members are incomplete types in the header. */
    ~LocationSimulation();

    /** Run the full capture schedule and aggregate metrics. */
    SimSummary run();

    /** The scene backing this simulation. */
    const synth::SceneModel &scene() const { return *scene_; }

    /** The system under simulation. */
    OnboardSystem &system() { return *system_; }

    /**
     * The ground station routing this simulation's downloads (null
     * unless SimParams::groundSegment.enabled).
     */
    ground::GroundStation *groundStation() { return station_.get(); }

  private:
    synth::DatasetSpec spec_;
    int locationIdx_;
    SystemKind kind_;
    SimParams params_;
    std::unique_ptr<synth::SceneModel> scene_;
    std::unique_ptr<synth::WeatherProcess> weather_;
    std::unique_ptr<synth::CaptureSimulator> captureSim_;
    std::unique_ptr<ReferenceStore> ground_;
    std::unique_ptr<ground::GroundStation> station_;
    std::unique_ptr<OnboardSystem> system_;
    EarthPlusSystem *earthPlus_ = nullptr; // non-owning view when kind matches
};

/** One (location, system) simulation of a constellation batch. */
struct BatchSimJob
{
    synth::DatasetSpec spec;  ///< Dataset the location belongs to.
    int locationIdx = 0;      ///< Index into spec.locations.
    SystemKind kind = SystemKind::EarthPlus; ///< System to run.
    SimParams params;         ///< Simulation parameters.
};

/**
 * Run a batch of independent simulations, fanned across the global
 * thread pool (one job per (location, system) pair; each holds its own
 * scene, weather, ground store and on-board system, so jobs share no
 * mutable state). Results are returned in job order. A job's nested
 * tile/band parallelism runs inline on its worker (never re-enters
 * the pool), so speedup is bounded by min(jobs, pool size): batches
 * with at least as many jobs as threads scale with the pool, while a
 * small batch on a large pool leaves the extra lanes idle. This is
 * the entry point bench_fig16_runtime and bench_fig19_more_satellites
 * use to report wall-clock speedup vs. thread count
 * (EARTHPLUS_THREADS).
 */
std::vector<SimSummary>
runSimulationsBatch(const std::vector<BatchSimJob> &jobs);

} // namespace earthplus::core

#endif // EARTHPLUS_CORE_SIMULATION_HH
