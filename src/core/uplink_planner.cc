#include "core/uplink_planner.hh"

#include "change/detector.hh"
#include "raster/resample.hh"
#include "util/logging.hh"

namespace earthplus::core {

UplinkPlanner::UplinkPlanner() = default;

UplinkPlanner::UplinkPlanner(const Params &params)
    : params_(params)
{
    EP_ASSERT(params.downsampleFactor >= 1, "invalid downsample factor");
    EP_ASSERT(params.tileSize % params.downsampleFactor == 0,
              "tile size %d not divisible by downsample factor %d",
              params.tileSize, params.downsampleFactor);
}

double
UplinkPlanner::encodedBytes(const raster::Image &lowRes,
                            const raster::TileMask *tiles) const
{
    int tileLow = std::max(params_.tileSize / params_.downsampleFactor, 1);
    double total = 0.0;
    for (int b = 0; b < lowRes.bandCount(); ++b) {
        codec::EncodeParams ep;
        ep.bitsPerPixel = params_.bitsPerPixel;
        ep.tileSize = tileLow;
        ep.dwtLevels = 3;
        ep.roi = tiles;
        codec::EncodedImage enc = codec::encode(lowRes.band(b), ep);
        total += static_cast<double>(enc.totalBytes());
    }
    return total;
}

UplinkPlan
UplinkPlanner::planUpdate(const ReferenceStore &ground, OnboardCache &cache,
                          int locationId,
                          orbit::DailyByteBudget &budget) const
{
    UplinkPlan plan;
    if (!ground.has(locationId))
        return plan; // nothing downloaded for this location yet

    double groundDay = ground.referenceDay(locationId);
    if (cache.has(locationId) &&
        cache.referenceDay(locationId) >= groundDay)
        return plan; // cache is already fresh

    const raster::Image &full = ground.reference(locationId);
    raster::Image lowRes;
    for (int b = 0; b < full.bandCount(); ++b)
        lowRes.addBand(
            raster::downsample(full.band(b), params_.downsampleFactor));
    lowRes.info() = full.info();

    double rawBytes = static_cast<double>(full.pixelBytes());
    int tileLow = std::max(params_.tileSize / params_.downsampleFactor, 1);

    if (!cache.has(locationId)) {
        // First contact with this location: install the whole low-res
        // reference.
        double bytes = encodedBytes(lowRes, nullptr);
        if (!budget.tryConsume(bytes)) {
            plan.skippedForBudget = true;
            return plan;
        }
        cache.install(locationId, std::move(lowRes));
        plan.sent = true;
        plan.fullInstall = true;
        plan.bytes = bytes;
        plan.updatedTileFraction = 1.0;
        plan.compressionRatio = bytes > 0.0 ? rawBytes / bytes : 0.0;
        return plan;
    }

    // Delta update: find low-res tiles that differ from the satellite's
    // cached copy (the ground mirrors the cache content exactly, since
    // every applied update is deterministic).
    const raster::Image &cached = cache.reference(locationId);
    raster::TileGrid grid(lowRes.width(), lowRes.height(), tileLow);
    raster::TileMask changed(grid);
    for (int b = 0; b < lowRes.bandCount(); ++b) {
        auto diffs = change::tileMeanAbsDiff(lowRes.band(b),
                                             cached.band(b), tileLow);
        for (int t = 0; t < grid.tileCount(); ++t) {
            if (diffs[static_cast<size_t>(t)] > params_.deltaThreshold)
                changed.set(t, true);
        }
    }
    if (changed.countSet() == 0) {
        // Content identical; just refresh the timestamp so age
        // accounting reflects the newer observation.
        raster::Image refreshed = cached;
        refreshed.info() = lowRes.info();
        cache.install(locationId, std::move(refreshed));
        plan.sent = true;
        plan.bytes = 0.0;
        plan.compressionRatio = 0.0;
        return plan;
    }

    double bytes = encodedBytes(lowRes, &changed);
    if (!budget.tryConsume(bytes)) {
        plan.skippedForBudget = true;
        return plan;
    }
    plan.updatedTileFraction = changed.fractionSet();
    cache.updateTiles(locationId, lowRes, changed, tileLow);
    plan.sent = true;
    plan.updatedTiles = changed;
    plan.bytes = bytes;
    plan.compressionRatio = bytes > 0.0 ? rawBytes / bytes : 0.0;
    return plan;
}

} // namespace earthplus::core
