#include "core/simulation.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/units.hh"

namespace earthplus::core {

const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::EarthPlus:
        return "Earth+";
      case SystemKind::Kodan:
        return "Kodan";
      case SystemKind::SatRoI:
        return "SatRoI";
      case SystemKind::DownloadAll:
        return "DownloadAll";
    }
    return "?";
}

double
SimSummary::requiredDownlinkMbps(double contactSeconds,
                                 double scaleToRealBytes) const
{
    if (processedCount == 0)
        return 0.0;
    double meanBytes =
        totalDownlinkBytes / static_cast<double>(processedCount);
    return units::bytesOverSecondsToMbps(meanBytes * scaleToRealBytes,
                                         contactSeconds);
}

LocationSimulation::LocationSimulation(const synth::DatasetSpec &spec,
                                       int locationIdx, SystemKind kind,
                                       const SimParams &params)
    : spec_(spec), locationIdx_(locationIdx), kind_(kind), params_(params)
{
    EP_ASSERT(locationIdx >= 0 &&
              locationIdx < static_cast<int>(spec.locations.size()),
              "location index %d out of range", locationIdx);

    synth::SceneConfig sc;
    sc.width = spec.width;
    sc.height = spec.height;
    sc.tileSize = spec.tileSize;
    sc.bands = spec.bands;
    sc.historyStartDay = spec.startDay - 120.0;
    sc.horizonDays = spec.endDay + 30.0;
    scene_ = std::make_unique<synth::SceneModel>(
        spec.locations[static_cast<size_t>(locationIdx)], sc);

    synth::WeatherParams wp;
    wp.seed = spec.seed ^ 0x77ea77e5ULL;
    weather_ = std::make_unique<synth::WeatherProcess>(wp);

    synth::SensorParams sp;
    sp.seed = spec.seed ^ 0x5e45042ULL;
    captureSim_ = std::make_unique<synth::CaptureSimulator>(
        *scene_, *weather_, sp);

    ground_ = std::make_unique<ReferenceStore>(params.maxCloudForReference);

    if (params.groundSegment.enabled) {
        // Route downloads through the packetized downlink: references
        // reach the store only when their download completes.
        params_.system.externalGroundIngest = true;
        ReferenceStore *store = ground_.get();
        station_ = std::make_unique<ground::GroundStation>(
            params.groundSegment,
            [store](const ground::CaptureDownload &download) {
                store->offer(download.reconstructed,
                             download.cloudFraction);
            });
    }

    switch (kind) {
      case SystemKind::EarthPlus: {
        auto sys = std::make_unique<EarthPlusSystem>(
            spec.bands, params_.system, params_.uplink, *ground_);
        earthPlus_ = sys.get();
        system_ = std::move(sys);
        break;
      }
      case SystemKind::Kodan:
        system_ = std::make_unique<KodanSystem>(spec.bands,
                                                params_.system);
        break;
      case SystemKind::SatRoI:
        system_ = std::make_unique<SatRoISystem>(spec.bands,
                                                 params_.system);
        break;
      case SystemKind::DownloadAll:
        system_ = std::make_unique<DownloadAllSystem>(spec.bands,
                                                      params_.system);
        break;
    }
}

LocationSimulation::~LocationSimulation() = default;

SimSummary
LocationSimulation::run()
{
    SimSummary summary;
    int locationId =
        spec_.locations[static_cast<size_t>(locationIdx_)].locationId;
    auto schedule = synth::constellationSchedule(spec_, locationId);

    orbit::DailyByteBudget uplinkBudget(params_.uplinkBytesPerDay);
    double currentDay = std::floor(spec_.startDay) - 1.0;

    int processed = 0;
    for (const auto &[day, satelliteId] : schedule) {
        if (params_.maxCaptures > 0 &&
            processed >= params_.maxCaptures)
            break;
        ++processed;

        // Renew the uplink allowance at day boundaries.
        if (std::floor(day) > currentDay) {
            currentDay = std::floor(day);
            uplinkBudget.startDay();
        }

        // Dataset-level cloud filter (Table 2): captures cloudier than
        // the dataset admits simply do not exist in it.
        if (spec_.maxCloudCoverage < 1.0) {
            int dayIdx = static_cast<int>(std::floor(day));
            if (weather_->coverage(locationId, dayIdx) >
                spec_.maxCloudCoverage)
                continue;
        }

        CaptureMetrics m;
        m.day = day;
        m.satelliteId = satelliteId;

        // Land every download whose contacts have passed, so the
        // reference store reflects what the ground has actually
        // received by now.
        if (station_)
            station_->advanceTo(day);

        // Ground contact before the pass: push a reference update.
        if (earthPlus_) {
            UplinkPlan plan = earthPlus_->prepareCapture(
                locationId, satelliteId, uplinkBudget);
            m.uplinkBytes = plan.bytes;
            summary.totalUplinkBytes += plan.bytes;
        }

        synth::Capture cap = captureSim_->capture(day, satelliteId);
        ProcessResult res = system_->process(cap);

        m.dropped = res.dropped;
        m.fullDownload = res.fullDownload;
        m.downlinkBytes = res.downlinkBytes;
        m.downloadedTileFraction = res.downloadedTileFraction;
        m.psnr = res.psnr;
        m.referenceAgeDays = res.referenceAgeDays;
        m.cloudDetectSec = res.cloudDetectSec;
        m.changeDetectSec = res.changeDetectSec;
        m.encodeSec = res.encodeSec;
        summary.captures.push_back(m);

        if (res.dropped) {
            ++summary.droppedCount;
            continue;
        }

        // Queue the capture on the downlink: serialized per band,
        // packetized, transmitted at the coming contacts.
        if (station_) {
            ground::CaptureDownload download;
            download.locationId = locationId;
            download.satelliteId = satelliteId;
            download.captureDay = day;
            download.referenceDay = std::isfinite(res.referenceAgeDays)
                ? day - res.referenceAgeDays
                : -1.0;
            download.fullDownload = res.fullDownload;
            for (const auto &enc : res.encodedBands)
                download.bandPayloads.push_back(enc.serialize());
            download.reconstructed = res.reconstructed;
            download.cloudFraction = cap.cloudCoverage;
            station_->submit(std::move(download));
        }

        ++summary.processedCount;
        summary.totalDownlinkBytes +=
            static_cast<double>(res.downlinkBytes);
        if (summary.bandDownlinkBytes.size() <
            res.bandDownlinkBytes.size())
            summary.bandDownlinkBytes.resize(
                res.bandDownlinkBytes.size(), 0.0);
        for (size_t b = 0; b < res.bandDownlinkBytes.size(); ++b)
            summary.bandDownlinkBytes[b] +=
                static_cast<double>(res.bandDownlinkBytes[b]);
        summary.meanPsnr += res.psnr;
        summary.meanDownloadedFraction += res.downloadedTileFraction;
        if (std::isfinite(res.referenceAgeDays)) {
            summary.meanReferenceAgeDays += res.referenceAgeDays;
            ++summary.referencedCount;
        }
        if (res.fullDownload)
            ++summary.fullDownloadCount;
    }

    if (summary.processedCount > 0) {
        double n = static_cast<double>(summary.processedCount);
        summary.meanPsnr /= n;
        summary.meanDownloadedFraction /= n;
    }
    if (summary.referencedCount > 0)
        summary.meanReferenceAgeDays /=
            static_cast<double>(summary.referencedCount);

    if (station_) {
        // Flush the downlink: enough extra days for every pending
        // transfer to complete or exhaust its retention window,
        // whatever the configured contact cadence and retention.
        const ground::GroundSegmentParams &gp = params_.groundSegment;
        double flushDays =
            std::ceil(static_cast<double>(gp.channel.retentionContacts) /
                      static_cast<double>(std::max(gp.contactsPerDay, 1))) +
            1.0;
        double lastDay = schedule.empty() ? spec_.endDay
                                          : schedule.back().first;
        station_->advanceTo(lastDay + flushDays);
        summary.groundEnabled = true;
        summary.groundStats = station_->stats();
    }
    return summary;
}

std::vector<SimSummary>
runSimulationsBatch(const std::vector<BatchSimJob> &jobs)
{
    return util::parallelMap(jobs.size(), [&](size_t i) {
        const BatchSimJob &job = jobs[i];
        LocationSimulation sim(job.spec, job.locationIdx, job.kind,
                               job.params);
        return sim.run();
    });
}

} // namespace earthplus::core
