/**
 * @file
 * Ground-side reference image store.
 *
 * The ground stations see every image downloaded by every satellite in
 * the constellation; the store keeps, per location, the freshest image
 * whose (accurately re-detected) cloud coverage is below the threshold
 * (§4.2). That image is what gets uplinked as the next reference and
 * what the ground uses to fill unchanged tiles during reconstruction.
 */

#ifndef EARTHPLUS_CORE_REFERENCE_STORE_HH
#define EARTHPLUS_CORE_REFERENCE_STORE_HH

#include <map>

#include "raster/image.hh"

namespace earthplus::core {

/**
 * Latest cloud-free downloaded image per location.
 */
class ReferenceStore
{
  public:
    /**
     * @param maxCloudFraction Acceptance threshold for new references
     *        (paper uses < 1% cloud coverage).
     */
    explicit ReferenceStore(double maxCloudFraction = 0.01);

    /**
     * Offer a downloaded (reconstructed) image as a reference
     * candidate.
     *
     * @param img Ground reconstruction of the download.
     * @param cloudFraction Cloud coverage as re-detected on the ground.
     * @return True when accepted (fresher than the current reference
     *         and cloud-free enough).
     */
    bool offer(const raster::Image &img, double cloudFraction);

    /** True when a reference exists for the location. */
    bool has(int locationId) const;

    /** Current reference image (must exist). */
    const raster::Image &reference(int locationId) const;

    /** Capture day of the current reference (must exist). */
    double referenceDay(int locationId) const;

    /** Reference age in days at `day` (infinite when absent). */
    double ageAt(int locationId, double day) const;

    /** Number of locations with references. */
    size_t size() const { return refs_.size(); }

    /** Acceptance threshold. */
    double maxCloudFraction() const { return maxCloudFraction_; }

  private:
    double maxCloudFraction_;
    std::map<int, raster::Image> refs_;
};

} // namespace earthplus::core

#endif // EARTHPLUS_CORE_REFERENCE_STORE_HH
