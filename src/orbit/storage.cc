#include "orbit/storage.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace earthplus::orbit {

StorageModel::StorageModel(const StorageParams &params)
    : params_(params)
{
    EP_ASSERT(params.mbPerKm2 > 0.0 && params.areaPerContactKm2 > 0.0,
              "invalid storage constants");
    EP_ASSERT(params.referenceCompression >= 1.0,
              "reference compression below 1");
}

StorageModel::StorageModel()
    : StorageModel(StorageParams{})
{
}

StorageBreakdown
StorageModel::earthPlus(double meanDownloadedFraction) const
{
    EP_ASSERT(meanDownloadedFraction >= 0.0 &&
              meanDownloadedFraction <= 1.0,
              "downloaded fraction %f out of range",
              meanDownloadedFraction);
    StorageBreakdown b;
    double capturedMB = params_.contactsKept * params_.mbPerKm2 *
                        params_.areaPerContactKm2 *
                        meanDownloadedFraction;
    double referenceMB = params_.referenceAreaFactor *
                         params_.areaPerContactKm2 * params_.mbPerKm2 /
                         params_.referenceCompression;
    b.capturedBytes = units::mbToBytes(capturedMB);
    b.referenceBytes = units::mbToBytes(referenceMB);
    return b;
}

StorageBreakdown
StorageModel::satRoI(double meanDownloadedFraction) const
{
    EP_ASSERT(meanDownloadedFraction >= 0.0 &&
              meanDownloadedFraction <= 1.0,
              "downloaded fraction %f out of range",
              meanDownloadedFraction);
    StorageBreakdown b;
    double capturedMB = params_.contactsKept * params_.mbPerKm2 *
                        params_.areaPerContactKm2 *
                        meanDownloadedFraction;
    // One full-resolution reference image region kept on board.
    double referenceMB = params_.areaPerContactKm2 * params_.mbPerKm2 *
                         0.1;
    b.capturedBytes = units::mbToBytes(capturedMB);
    b.referenceBytes = units::mbToBytes(referenceMB);
    return b;
}

StorageBreakdown
StorageModel::kodan() const
{
    StorageBreakdown b;
    double capturedMB = params_.contactsKept * params_.mbPerKm2 *
                        params_.areaPerContactKm2 *
                        params_.captureToDownloadRatio;
    b.capturedBytes = units::mbToBytes(capturedMB);
    b.referenceBytes = 0.0;
    return b;
}

} // namespace earthplus::orbit
