#include "orbit/contact.hh"

#include <cmath>

#include "util/logging.hh"

namespace earthplus::orbit {

ContactSchedule::ContactSchedule(int contactsPerDay, double phaseDays)
    : contactsPerDay_(contactsPerDay), phaseDays_(phaseDays)
{
    EP_ASSERT(contactsPerDay >= 1, "need at least one contact per day");
    intervalDays_ = 1.0 / static_cast<double>(contactsPerDay);
}

double
ContactSchedule::nextContactAtOrAfter(double day) const
{
    double k = std::ceil((day - phaseDays_) / intervalDays_ - 1e-12);
    return phaseDays_ + k * intervalDays_;
}

double
ContactSchedule::lastContactBefore(double day) const
{
    double k = std::ceil((day - phaseDays_) / intervalDays_ - 1e-12) - 1.0;
    return phaseDays_ + k * intervalDays_;
}

std::vector<double>
ContactSchedule::contactsBetween(double fromDay, double toDay) const
{
    // Enumerate by integer index to avoid accumulated rounding drift.
    std::vector<double> out;
    double k0 = std::ceil((fromDay - phaseDays_) / intervalDays_ - 1e-12);
    for (int64_t k = static_cast<int64_t>(k0);; ++k) {
        double t = phaseDays_ + static_cast<double>(k) * intervalDays_;
        if (t >= toDay - 1e-12)
            break;
        out.push_back(t);
    }
    return out;
}

} // namespace earthplus::orbit
