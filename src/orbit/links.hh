/**
 * @file
 * Uplink / downlink budget models.
 *
 * The paper models links analytically (§6.1): the uplink is a constant
 * 250 kbps S-band channel (weather-insensitive), the downlink a
 * 200 Mbps X-band channel, both usable during 10-minute ground
 * contacts, 7 contacts per day.
 */

#ifndef EARTHPLUS_ORBIT_LINKS_HH
#define EARTHPLUS_ORBIT_LINKS_HH

#include <cstddef>

namespace earthplus::orbit {

/** Static description of one link direction. */
struct LinkSpec
{
    /** Link rate in bits per second. */
    double bitsPerSecond = 0.0;
    /** Usable seconds per ground contact. */
    double contactSeconds = 600.0;
    /** Ground contacts per day. */
    int contactsPerDay = 7;
};

/**
 * Byte budgets derived from a LinkSpec.
 */
class LinkBudget
{
  public:
    explicit LinkBudget(const LinkSpec &spec);

    /** Bytes transferable during one contact. */
    double bytesPerContact() const;

    /** Bytes transferable per day across all contacts. */
    double bytesPerDay() const;

    /**
     * Average link rate (Mbps) needed to move `bytes` within one
     * contact — the paper's downlink-demand metric (§6.1).
     */
    double requiredMbpsPerContact(double bytes) const;

    const LinkSpec &spec() const { return spec_; }

  private:
    LinkSpec spec_;
};

/**
 * A consumable per-day byte allowance (used by the uplink planner to
 * decide which reference updates fit, §5 "Handling bandwidth
 * fluctuation").
 */
class DailyByteBudget
{
  public:
    /** @param bytesPerDay Renewable daily allowance. */
    explicit DailyByteBudget(double bytesPerDay);

    /** Start a new day: unused allowance does not roll over. */
    void startDay();

    /** Try to consume `bytes`; returns false (no change) if short. */
    bool tryConsume(double bytes);

    /** Remaining bytes today. */
    double remaining() const { return remaining_; }

    /** Daily allowance. */
    double allowance() const { return allowance_; }

  private:
    double allowance_;
    double remaining_;
};

} // namespace earthplus::orbit

#endif // EARTHPLUS_ORBIT_LINKS_HH
