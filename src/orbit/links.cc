#include "orbit/links.hh"

#include "util/logging.hh"
#include "util/units.hh"

namespace earthplus::orbit {

LinkBudget::LinkBudget(const LinkSpec &spec)
    : spec_(spec)
{
    EP_ASSERT(spec.bitsPerSecond >= 0.0, "negative link rate");
    EP_ASSERT(spec.contactSeconds > 0.0, "non-positive contact duration");
    EP_ASSERT(spec.contactsPerDay >= 1, "need at least one contact/day");
}

double
LinkBudget::bytesPerContact() const
{
    return spec_.bitsPerSecond * spec_.contactSeconds / 8.0;
}

double
LinkBudget::bytesPerDay() const
{
    return bytesPerContact() * spec_.contactsPerDay;
}

double
LinkBudget::requiredMbpsPerContact(double bytes) const
{
    return units::bytesOverSecondsToMbps(bytes, spec_.contactSeconds);
}

DailyByteBudget::DailyByteBudget(double bytesPerDay)
    : allowance_(bytesPerDay), remaining_(bytesPerDay)
{
    EP_ASSERT(bytesPerDay >= 0.0, "negative byte budget");
}

void
DailyByteBudget::startDay()
{
    remaining_ = allowance_;
}

bool
DailyByteBudget::tryConsume(double bytes)
{
    if (bytes > remaining_)
        return false;
    remaining_ -= bytes;
    return true;
}

} // namespace earthplus::orbit
