/**
 * @file
 * Ground-contact scheduling.
 *
 * A LEO satellite sees a ground station for ~10 minutes, ~7 times per
 * day (§6.1). Contacts gate when reference images can be uplinked and
 * when encoded changes come down: a reference uploaded at contact k is
 * usable for captures after k; captures are downloaded at the next
 * contact after the capture.
 */

#ifndef EARTHPLUS_ORBIT_CONTACT_HH
#define EARTHPLUS_ORBIT_CONTACT_HH

#include <vector>

namespace earthplus::orbit {

/**
 * Evenly spaced daily contact windows for one satellite.
 */
class ContactSchedule
{
  public:
    /**
     * @param contactsPerDay Contacts per day (> 0).
     * @param phaseDays Offset of this satellite's first daily contact.
     */
    explicit ContactSchedule(int contactsPerDay, double phaseDays = 0.0);

    /** Time (days) of the first contact at or after `day`. */
    double nextContactAtOrAfter(double day) const;

    /** Time (days) of the last contact strictly before `day`. */
    double lastContactBefore(double day) const;

    /** Contact times within [fromDay, toDay). */
    std::vector<double> contactsBetween(double fromDay, double toDay) const;

    /** Contacts per day. */
    int contactsPerDay() const { return contactsPerDay_; }

  private:
    int contactsPerDay_;
    double phaseDays_;
    double intervalDays_;
};

} // namespace earthplus::orbit

#endif // EARTHPLUS_ORBIT_CONTACT_HH
