/**
 * @file
 * On-board storage model (paper Appendix A / Fig. 15).
 *
 * The model follows the appendix's accounting:
 *
 *  - Captured imagery is kept for two consecutive ground contacts
 *    (re-transmission insurance [14]); storing 1 km^2 costs ~0.87 MB.
 *  - Earth+/SatRoI store only what they will download (encoded
 *    changed/non-cloudy areas); Kodan must buffer everything it
 *    captures between contacts, which is ~8x what the downlink can
 *    carry (only ~12% of captured data is downloadable, §2.2 fn. 3).
 *  - Earth+ additionally caches downsampled reference images for every
 *    location it will visit (at most 160a km^2 at 2601x compression),
 *    a ~9% overhead the savings from change-only storage easily cover.
 */

#ifndef EARTHPLUS_ORBIT_STORAGE_HH
#define EARTHPLUS_ORBIT_STORAGE_HH

namespace earthplus::orbit {

/** Constants of the Appendix-A storage accounting. */
struct StorageParams
{
    /** Megabytes to store 1 km^2 of imagery (Appendix A). */
    double mbPerKm2 = 0.87;
    /** Area downloadable during one ground contact (km^2). */
    double areaPerContactKm2 = 17000.0;
    /** Contacts of captured data kept on board. */
    int contactsKept = 2;
    /** Reference area cached relative to a (Appendix A: 160a). */
    double referenceAreaFactor = 160.0;
    /** Compression ratio of cached reference images (51^2 = 2601). */
    double referenceCompression = 2601.0;
    /**
     * Ratio of captured to downloadable data for schemes that must
     * buffer all captures (Kodan): ~1/0.12 (§2.2 footnote 3).
     */
    double captureToDownloadRatio = 8.3;
};

/** Storage bytes split by purpose (Fig. 15's two bar segments). */
struct StorageBreakdown
{
    /** Bytes for captured/encoded imagery awaiting download. */
    double capturedBytes = 0.0;
    /** Bytes for cached reference images. */
    double referenceBytes = 0.0;

    double totalBytes() const { return capturedBytes + referenceBytes; }
};

/**
 * Evaluates the appendix model for each compression scheme.
 */
class StorageModel
{
  public:
    explicit StorageModel(const StorageParams &params);

    /** Construct with the paper's default constants. */
    StorageModel();

    /**
     * Earth+: stores only changed tiles plus the downsampled reference
     * cache.
     *
     * @param meanDownloadedFraction Average fraction of tiles Earth+
     *        downloads (measured ~0.2-0.3 including guaranteed
     *        downloads).
     */
    StorageBreakdown earthPlus(double meanDownloadedFraction) const;

    /**
     * SatRoI: stores what it downloads (nearly everything, since its
     * fixed reference ages) plus one full-resolution reference.
     *
     * @param meanDownloadedFraction Average downloaded-tile fraction
     *        (close to 1 in practice).
     */
    StorageBreakdown satRoI(double meanDownloadedFraction) const;

    /** Kodan: buffers all captures between contacts, no references. */
    StorageBreakdown kodan() const;

    const StorageParams &params() const { return params_; }

  private:
    StorageParams params_;
};

} // namespace earthplus::orbit

#endif // EARTHPLUS_ORBIT_STORAGE_HH
