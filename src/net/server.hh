/**
 * @file
 * Non-blocking TCP serving front for the ground tile server.
 *
 * One event-loop thread (epoll on Linux, poll() everywhere via the
 * runtime fallback) owns every connection: it accepts, reassembles
 * EPTQ frames (net/protocol.hh), and writes EPTR responses with
 * partial-write handling. Serving itself never runs on the loop
 * thread when the pool can take it: admitted queries go through
 * ground::TileServer::serveAsync, whose completion encodes the
 * response and hands it back to the loop over a wake pipe — the
 * only cross-thread traffic, so connection state needs no locks.
 *
 * Overload policy is admission control, not unbounded queueing:
 *
 *  - at most `maxConnections` sockets; excess accepts are closed
 *    immediately (counted in net.connections.rejected);
 *  - at most `maxPending` admitted-but-not-dispatched queries; when
 *    the queue is full the query is answered *immediately* with
 *    ServeError::Shed carrying a retry-after hint — shedding is
 *    cheaper than the query, which is what keeps an overloaded
 *    server responsive;
 *  - at most `maxInflight` queries inside the tile server at once
 *    (defaults to the pool's lane count — more would just queue
 *    invisibly inside the pool);
 *  - per-connection write buffers are bounded; a consumer that stops
 *    reading past `maxWriteBufferBytes` is disconnected rather than
 *    ballooning server memory;
 *  - per-connection deadlines bound how long a half-sent frame (the
 *    slow-loris shape), an unflushable response, or a fully idle peer
 *    may hold a socket: the event loop waits with a timeout instead
 *    of blocking forever and sweeps expired connections each pass.
 *
 * Every stage is instrumented through the telemetry registry (the
 * net.* inventory in docs/OBSERVABILITY.md): connection and shed
 * counters, queue-depth gauge and histogram, time-in-queue
 * histogram, and a per-frame trace span in category "net".
 */

#ifndef EARTHPLUS_NET_SERVER_HH
#define EARTHPLUS_NET_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ground/tile_server.hh"

namespace earthplus::net {

/** Tuning knobs of a Server. */
struct ServerOptions
{
    /** Address to bind (loopback by default; tests and the local
     *  load generator are the expected peers). */
    std::string bindAddress = "127.0.0.1";
    /** TCP port; 0 picks an ephemeral port (read it via port()). */
    uint16_t port = 0;
    /** listen(2) backlog. */
    int listenBacklog = 128;
    /** Connections held at once; excess accepts are closed. */
    size_t maxConnections = 256;
    /** Admitted queries waiting for dispatch before shedding starts. */
    size_t maxPending = 128;
    /** Queries inside the tile server at once (0 = pool lanes). */
    size_t maxInflight = 0;
    /** Retry-after hint carried by shed responses, milliseconds. */
    uint32_t retryAfterMs = 50;
    /** Per-connection write-buffer cap before disconnecting. */
    size_t maxWriteBufferBytes = 64u << 20;
    /** Force the portable poll() backend even where epoll exists. */
    bool usePoll = false;
    /**
     * Read deadline, milliseconds (0 disables): a connection whose
     * partial frame stops completing — the slow-loris shape, measured
     * from the first byte of the unfinished frame, so trickling bytes
     * does not reset it — or whose buffered response cannot be
     * flushed for this long is closed (counted in
     * net.server.timeouts).
     */
    uint32_t readTimeoutMs = 10000;
    /**
     * Idle deadline, milliseconds (0 disables): a connection with no
     * partial frame, no buffered response, no query in flight and no
     * traffic for this long is closed (counted in
     * net.server.timeouts).
     */
    uint32_t idleTimeoutMs = 60000;
    /**
     * Graceful-drain bound for stop(), milliseconds. The loop stops
     * accepting, finishes admitted queries and flushes buffered
     * responses for at most this long, then force-closes whatever
     * remains; 0 skips the drain and closes immediately.
     */
    uint32_t drainTimeoutMs = 1000;
};

/**
 * The event-loop serving front. start() spawns the loop thread;
 * stop() (or destruction) shuts it down, closing every connection.
 */
class Server
{
  public:
    /**
     * @param tiles Tile server to serve from (must outlive this
     *        object; shared with in-process callers).
     * @param options Tuning knobs; copied.
     */
    explicit Server(ground::TileServer &tiles,
                    ServerOptions options = {});

    /** Stops the loop and closes all sockets. */
    ~Server();

    Server(const Server &) = delete;            ///< Non-copyable.
    Server &operator=(const Server &) = delete; ///< Non-copyable.

    /**
     * Bind, listen, and spawn the event-loop thread. False (with the
     * sockets cleaned up) when binding fails; safe to call once.
     */
    bool start();

    /**
     * Stop the loop thread and close every socket, after a graceful
     * drain bounded by ServerOptions::drainTimeoutMs (admitted
     * queries finish and buffered responses flush; nothing new is
     * accepted or admitted). Always returns within the drain bound
     * plus the slowest in-flight serve. Idempotent.
     */
    void stop();

    /** Port actually bound (valid after start() returns true). */
    uint16_t port() const { return port_; }

    /** True between a successful start() and stop(). */
    bool
    running() const
    {
        return running_.load(std::memory_order_acquire);
    }

  private:
    /** One finished serve: the encoded EPTR frame for a connection. */
    struct Completed
    {
        uint64_t connId = 0;
        std::vector<uint8_t> frame;
    };

    struct LoopState; // loop-thread-only state (connections, queue)

    void loop();
    void wake();

    ground::TileServer &tiles_;
    ServerOptions options_;
    size_t maxInflight_ = 1;

    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    uint16_t port_ = 0;

    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};
    std::thread thread_;

    /** Completions from pool threads to the loop (the only shared
     *  mutable state; everything else is loop-thread-only). */
    std::mutex completedMutex_;
    std::condition_variable completedCv_;
    std::deque<Completed> completed_;
    /** Dispatched serves whose completion has not yet fired; stop()
     *  waits for zero so no completion can outlive the server.
     *  Guarded by completedMutex_. */
    size_t outstanding_ = 0;
};

} // namespace earthplus::net

#endif // EARTHPLUS_NET_SERVER_HH
