/**
 * @file
 * EPT wire protocol: versioned, length-prefixed, CRC-protected frames
 * carrying tile queries and results between a remote client and the
 * ground tile server (normative byte layout: docs/ARCHITECTURE.md,
 * "EPTQ / EPTR wire frames").
 *
 * Three frame types share one 16-byte header (all fields
 * little-endian):
 *
 *     magic u32 | version u32 | bodyLen u32 | bodyCrc u32
 *
 * followed by bodyLen body bytes whose CRC-32 (IEEE 802.3, the same
 * polynomial as EPPK packets and EPAR shards) must equal bodyCrc.
 *
 *  - "EPTH" (hello): empty body; each side announces its protocol
 *    version in the header. Sent once per connection, client first.
 *  - "EPTQ" (query): one TileQuery plus a caller-chosen request id.
 *  - "EPTR" (result): the TileResult for one request id — a status
 *    byte transporting ground::ServeError verbatim, serving metadata,
 *    and the pixel payload for ok() results.
 *
 * The incremental FrameReader tolerates arbitrary fragmentation (a
 * frame split at every byte boundary reassembles identically) and
 * fails closed: bad magic, an oversized length prefix, or a CRC
 * mismatch poison the reader — the connection is the recovery unit,
 * there is no resynchronization scan.
 */

#ifndef EARTHPLUS_NET_PROTOCOL_HH
#define EARTHPLUS_NET_PROTOCOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ground/tile_server.hh"

namespace earthplus::net {

/** Frame magic "EPTH" (hello / version handshake), little-endian. */
constexpr uint32_t kHelloMagic = 0x48545045u;
/** Frame magic "EPTQ" (tile query), little-endian. */
constexpr uint32_t kQueryMagic = 0x51545045u;
/** Frame magic "EPTR" (tile result), little-endian. */
constexpr uint32_t kResultMagic = 0x52545045u;

/**
 * Protocol version spoken by this build (bumped on layout change).
 * Version 2 appends a quality hint (i32, offset 44) to the EPTQ body;
 * version-1 peers omit it and are still served (quality defaults to
 * -1, full fidelity).
 */
constexpr uint32_t kProtocolVersion = 2;

/** Bytes in the fixed frame header (magic, version, len, crc). */
constexpr size_t kFrameHeaderBytes = 16;
/** Body size of a version-2 EPTQ frame (v1 bodies are 4 shorter). */
constexpr size_t kQueryBodyBytes = 48;
/** Body size of a version-1 EPTQ frame (no quality field). */
constexpr size_t kQueryBodyBytesV1 = 44;
/** Fixed (pre-pixel) body size of an EPTR frame. */
constexpr size_t kResultFixedBodyBytes = 52;
/** Largest body any frame may declare; larger prefixes are rejected
 *  before any allocation happens. */
constexpr size_t kMaxBodyBytes = 64u << 20;
/** Largest pixel dimension an EPTR frame may carry. */
constexpr int kMaxResultDim = 16384;

/** Why a FrameReader rejected its byte stream. */
enum class FrameError : uint8_t
{
    None = 0,      ///< Stream healthy so far.
    BadMagic = 1,  ///< Header magic is none of EPTH/EPTQ/EPTR.
    BadLength = 2, ///< Declared body length exceeds kMaxBodyBytes.
    BadCrc = 3,    ///< Body bytes do not match the header CRC.
};

/** One reassembled frame: header fields plus the raw body bytes. */
struct Frame
{
    uint32_t magic = 0;        ///< One of the three frame magics.
    uint32_t version = 0;      ///< Sender's protocol version.
    std::vector<uint8_t> body; ///< CRC-verified body bytes.
};

/**
 * Incremental frame reassembler. feed() it raw bytes as they arrive;
 * next() yields complete CRC-verified frames. Any framing violation
 * latches error() and stops parsing — callers drop the connection.
 */
class FrameReader
{
  public:
    /** Append raw received bytes (ignored once poisoned). */
    void feed(const uint8_t *data, size_t size);

    /**
     * Extract the next complete frame into `out`. False when more
     * bytes are needed or the stream is poisoned (check error()).
     */
    bool next(Frame &out);

    /** First framing violation seen, or FrameError::None. */
    FrameError error() const { return error_; }

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buf_.size() - pos_; }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    FrameError error_ = FrameError::None;
};

/** Serialize an EPTH hello frame announcing `version`. */
std::vector<uint8_t> encodeHello(uint32_t version);

/** Serialize an EPTQ frame for `query` tagged with `requestId`. */
std::vector<uint8_t> encodeQuery(uint64_t requestId,
                                 const ground::TileQuery &query);

/**
 * Serialize an EPTR frame for `result` tagged with `requestId`.
 * Pixels are included only when result.ok(); error responses are
 * header + fixed body only.
 */
std::vector<uint8_t> encodeResult(uint64_t requestId,
                                  const ground::TileResult &result);

/**
 * Decode an EPTQ frame body. Accepts both the 48-byte version-2 body
 * and the 44-byte version-1 body (quality defaults to -1, full
 * fidelity). False when the frame is not a query or the body size is
 * neither; the query fields themselves are validated later by
 * TileQuery::validate() (the single validation authority — network
 * input gets no private clamping path).
 */
bool decodeQuery(const Frame &frame, uint64_t &requestId,
                 ground::TileQuery &query);

/**
 * Decode an EPTR frame body, reconstructing the TileResult (status
 * byte back to ServeError, pixel plane re-assembled). False on a
 * non-result frame, size mismatch, unknown status, or pixel
 * dimensions out of range.
 */
bool decodeResult(const Frame &frame, uint64_t &requestId,
                  ground::TileResult &result);

/**
 * The TileResult a serving front answers with when admission control
 * sheds a query: ServeError::Shed plus the retry hint, no pixels.
 */
ground::TileResult shedResult(uint32_t retryAfterMs);

} // namespace earthplus::net

#endif // EARTHPLUS_NET_PROTOCOL_HH
