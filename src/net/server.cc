#include "net/server.hh"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>
#include <unordered_map>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "net/protocol.hh"
#include "util/failpoint.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/telemetry.hh"

namespace earthplus::net {

namespace {

/**
 * Serving-front metrics, resolved once per process (the net.*
 * inventory in docs/OBSERVABILITY.md).
 */
struct NetMetrics
{
    telemetry::Counter &accepted =
        telemetry::counter("net.connections.accepted");
    telemetry::Counter &rejected =
        telemetry::counter("net.connections.rejected");
    telemetry::Gauge &active =
        telemetry::gauge("net.connections.active");
    telemetry::Counter &framesRx = telemetry::counter("net.frames.rx");
    telemetry::Counter &framesTx = telemetry::counter("net.frames.tx");
    telemetry::Counter &bytesRx = telemetry::counter("net.bytes.rx");
    telemetry::Counter &bytesTx = telemetry::counter("net.bytes.tx");
    telemetry::Counter &queries = telemetry::counter("net.queries");
    telemetry::Counter &shed = telemetry::counter("net.shed");
    telemetry::Counter &protocolErrors =
        telemetry::counter("net.protocol_errors");
    telemetry::Histogram &queueWaitNs =
        telemetry::histogram("net.queue.wait_ns");
    telemetry::Histogram &queueDepth =
        telemetry::histogram("net.queue.depth");
    telemetry::Counter &timeouts =
        telemetry::counter("net.server.timeouts");
};

NetMetrics &
netMetrics()
{
    static NetMetrics m;
    return m;
}

/**
 * Server-side injection sites. recv.partial caps one recv(2) to `arg`
 * bytes (default 1) to force frame reassembly across reads;
 * send.partial caps one send(2) the same way to force partial-write
 * handling; drop_response discards a completed serve's EPTR frame
 * instead of sending it, so clients exercise their read deadline and
 * retry paths.
 */
struct ServerSites
{
    failpoint::Failpoint &recvPartial =
        failpoint::site("net.server.recv.partial");
    failpoint::Failpoint &sendPartial =
        failpoint::site("net.server.send.partial");
    failpoint::Failpoint &dropResponse =
        failpoint::site("net.server.drop_response");
};

ServerSites &
serverSites()
{
    static ServerSites s;
    return s;
}

bool
setNonBlocking(int fd)
{
    int flags = fcntl(fd, F_GETFL, 0);
    return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/** Readiness bits Poller::wait reports per fd. */
constexpr unsigned kReadable = 1u;
constexpr unsigned kWritable = 2u;
constexpr unsigned kBroken = 4u;

/**
 * Minimal readiness poller: epoll on Linux, poll(2) everywhere (and
 * on Linux too when the caller asks — the fallback stays tested on
 * the platform that never needs it). Interest is level-triggered in
 * both backends, so the two are drop-in equivalent.
 */
class Poller
{
  public:
    explicit Poller(bool usePoll)
    {
#ifdef __linux__
        if (!usePoll)
            epfd_ = epoll_create1(0);
#else
        (void)usePoll;
#endif
    }

    ~Poller()
    {
#ifdef __linux__
        if (epfd_ >= 0)
            ::close(epfd_);
#endif
    }

    void
    add(int fd, bool wantWrite)
    {
        ctl(fd, true, wantWrite, true);
    }

    void
    mod(int fd, bool wantWrite)
    {
        ctl(fd, true, wantWrite, false);
    }

    /**
     * Full interest-mask update. Dropping read interest is how the
     * drain phase ignores new peer bytes without busy-spinning on
     * level-triggered readiness; error/hangup readiness is always
     * reported regardless of the mask, in both backends.
     */
    void
    modMask(int fd, bool wantRead, bool wantWrite)
    {
        ctl(fd, wantRead, wantWrite, false);
    }

    void
    del(int fd)
    {
        interest_.erase(fd);
#ifdef __linux__
        if (epfd_ >= 0)
            epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
    }

    /**
     * Wait until something is ready or `timeoutMs` elapses (-1 waits
     * forever); fills (fd, readiness) pairs. A timeout simply returns
     * an empty set — the caller's deadline sweep does the rest.
     */
    void
    wait(std::vector<std::pair<int, unsigned>> &out, int timeoutMs)
    {
        out.clear();
#ifdef __linux__
        if (epfd_ >= 0) {
            epoll_event evs[64];
            int n = epoll_wait(epfd_, evs, 64, timeoutMs);
            for (int i = 0; i < n; ++i) {
                unsigned bits = 0;
                if (evs[i].events & (EPOLLIN | EPOLLPRI))
                    bits |= kReadable;
                if (evs[i].events & EPOLLOUT)
                    bits |= kWritable;
                if (evs[i].events & (EPOLLERR | EPOLLHUP))
                    bits |= kBroken;
                int fd = evs[i].data.fd;
                out.emplace_back(fd, bits);
            }
            return;
        }
#endif
        std::vector<pollfd> fds;
        fds.reserve(interest_.size());
        for (const auto &[fd, mask] : interest_) {
            pollfd p{};
            p.fd = fd;
            p.events = static_cast<short>(
                ((mask & kReadable) ? POLLIN : 0) |
                ((mask & kWritable) ? POLLOUT : 0));
            fds.push_back(p);
        }
        int n = ::poll(fds.data(),
                       static_cast<nfds_t>(fds.size()), timeoutMs);
        if (n <= 0)
            return;
        for (const pollfd &p : fds) {
            if (p.revents == 0)
                continue;
            unsigned bits = 0;
            if (p.revents & (POLLIN | POLLPRI))
                bits |= kReadable;
            if (p.revents & POLLOUT)
                bits |= kWritable;
            if (p.revents & (POLLERR | POLLHUP | POLLNVAL))
                bits |= kBroken;
            out.emplace_back(p.fd, bits);
        }
    }

  private:
    void
    ctl(int fd, bool wantRead, bool wantWrite, bool isAdd)
    {
        interest_[fd] = (wantRead ? kReadable : 0u) |
                        (wantWrite ? kWritable : 0u);
#ifdef __linux__
        if (epfd_ >= 0) {
            epoll_event ev{};
            ev.events = (wantRead ? EPOLLIN : 0u) |
                        (wantWrite ? EPOLLOUT : 0u);
            ev.data.fd = fd;
            epoll_ctl(epfd_, isAdd ? EPOLL_CTL_ADD : EPOLL_CTL_MOD,
                      fd, &ev);
        }
#else
        (void)isAdd;
#endif
    }

#ifdef __linux__
    int epfd_ = -1;
#endif
    std::unordered_map<int, unsigned> interest_; // fd -> kReadable|kWritable
};

} // anonymous namespace

/** Everything the loop thread owns; no lock guards any of it. */
struct Server::LoopState
{
    struct Connection
    {
        int fd = -1;
        uint64_t id = 0;
        FrameReader reader;
        std::vector<uint8_t> outbox;
        size_t outboxOff = 0;
        bool handshaken = false;
        bool wantWrite = false;
        bool closeAfterFlush = false;
        /** Last socket progress in either direction (idle deadline). */
        uint64_t idleSinceNs = 0;
        /** First byte of the current partial frame, 0 when none (read
         *  deadline; deliberately not refreshed by trickled bytes). */
        uint64_t frameStartNs = 0;
        /** When the outbox last became non-empty, 0 when flushed
         *  (write-stall deadline). */
        uint64_t outboxSinceNs = 0;
        /** Queries admitted on this connection still awaiting their
         *  response frame (an in-flight serve is not "idle"). */
        size_t opsInFlight = 0;
    };

    /** One admitted query waiting for a tile-server slot. */
    struct Pending
    {
        uint64_t connId = 0;
        uint64_t requestId = 0;
        ground::TileQuery query;
        uint64_t admitNs = 0;
    };

    Poller poller;
    std::unordered_map<uint64_t, Connection> conns; // by conn id
    std::unordered_map<int, uint64_t> fdToId;
    std::deque<Pending> pending;
    size_t inflight = 0;
    uint64_t nextConnId = 1;

    explicit LoopState(bool usePoll) : poller(usePoll) {}
};

Server::Server(ground::TileServer &tiles, ServerOptions options)
    : tiles_(tiles), options_(std::move(options))
{
}

Server::~Server()
{
    stop();
}

bool
Server::start()
{
    if (running_.load(std::memory_order_acquire))
        return false;
    stop_.store(false, std::memory_order_release);

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return false;
    int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (inet_pton(AF_INET, options_.bindAddress.c_str(),
                  &addr.sin_addr) != 1 ||
        ::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, options_.listenBacklog) != 0 ||
        !setNonBlocking(listenFd_)) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    if (getsockname(listenFd_, reinterpret_cast<sockaddr *>(&bound),
                    &blen) != 0) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    port_ = ntohs(bound.sin_port);

    int pipeFds[2];
    if (::pipe(pipeFds) != 0 || !setNonBlocking(pipeFds[0]) ||
        !setNonBlocking(pipeFds[1])) {
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    wakeRead_ = pipeFds[0];
    wakeWrite_ = pipeFds[1];

    maxInflight_ = options_.maxInflight
                       ? options_.maxInflight
                       : static_cast<size_t>(
                             util::ThreadPool::global().threadCount());

    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { loop(); });
    return true;
}

void
Server::stop()
{
    if (!running_.load(std::memory_order_acquire))
        return;
    stop_.store(true, std::memory_order_release);
    wake();
    if (thread_.joinable())
        thread_.join();
    {
        // Serves dispatched before shutdown may still be finishing on
        // pool threads; their completions touch this object, so wait
        // them out before tearing anything down.
        std::unique_lock<std::mutex> lock(completedMutex_);
        completedCv_.wait(lock, [this] { return outstanding_ == 0; });
        completed_.clear();
    }
    ::close(listenFd_);
    ::close(wakeRead_);
    ::close(wakeWrite_);
    listenFd_ = wakeRead_ = wakeWrite_ = -1;
    running_.store(false, std::memory_order_release);
}

void
Server::wake()
{
    uint8_t b = 1;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wakeWrite_, &b, 1);
}

void
Server::loop()
{
    NetMetrics &m = netMetrics();
    LoopState st(options_.usePoll);
    st.poller.add(listenFd_, false);
    st.poller.add(wakeRead_, false);
    // Set during the post-stop grace period: connection sockets keep
    // only write/error interest so nothing new is read or admitted.
    bool draining = false;

    auto closeConn = [&](uint64_t id) {
        auto it = st.conns.find(id);
        if (it == st.conns.end())
            return;
        st.poller.del(it->second.fd);
        ::close(it->second.fd);
        st.fdToId.erase(it->second.fd);
        st.conns.erase(it);
        m.active.add(-1);
    };

    // Try to push a connection's buffered bytes out; arms/clears
    // write interest around partial writes. False when the
    // connection was torn down.
    auto flushConn = [&](LoopState::Connection &conn) -> bool {
        while (conn.outboxOff < conn.outbox.size()) {
            size_t chunk = conn.outbox.size() - conn.outboxOff;
            if (serverSites().sendPartial.fire()) {
                auto cap = static_cast<size_t>(std::max<int64_t>(
                    1, serverSites().sendPartial.arg()));
                chunk = std::min(chunk, cap);
            }
            ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.outboxOff,
                               chunk, MSG_NOSIGNAL);
            if (n > 0) {
                conn.outboxOff += static_cast<size_t>(n);
                conn.idleSinceNs = telemetry::nowNanos();
                m.bytesTx.add(static_cast<uint64_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            closeConn(conn.id);
            return false;
        }
        if (conn.outboxOff == conn.outbox.size()) {
            conn.outbox.clear();
            conn.outboxOff = 0;
            conn.outboxSinceNs = 0;
            if (conn.wantWrite) {
                conn.wantWrite = false;
                st.poller.modMask(conn.fd, !draining, false);
            }
            if (conn.closeAfterFlush) {
                closeConn(conn.id);
                return false;
            }
        } else {
            if (conn.outboxOff > (1u << 20)) {
                conn.outbox.erase(
                    conn.outbox.begin(),
                    conn.outbox.begin() +
                        static_cast<ptrdiff_t>(conn.outboxOff));
                conn.outboxOff = 0;
            }
            if (!conn.wantWrite) {
                conn.wantWrite = true;
                st.poller.modMask(conn.fd, !draining, true);
            }
        }
        return true;
    };

    // Queue one frame on a connection, honouring the write-buffer
    // cap. False when the connection was torn down.
    auto sendFrame = [&](LoopState::Connection &conn,
                         std::vector<uint8_t> frame) -> bool {
        if (conn.outbox.size() - conn.outboxOff + frame.size() >
            options_.maxWriteBufferBytes) {
            // The peer has stopped reading; shedding the connection
            // bounds server memory.
            closeConn(conn.id);
            return false;
        }
        if (conn.outboxOff == conn.outbox.size())
            conn.outboxSinceNs = telemetry::nowNanos();
        conn.outbox.insert(conn.outbox.end(), frame.begin(), frame.end());
        m.framesTx.add();
        return flushConn(conn);
    };

    // Handle one reassembled frame. False when the connection was
    // torn down (or scheduled to close) and parsing must stop.
    auto handleFrame = [&](LoopState::Connection &conn,
                           const Frame &frame) -> bool {
        telemetry::TraceSpan span("net.frame", "net");
        m.framesRx.add();
        if (frame.magic == kHelloMagic) {
            if (conn.handshaken || !frame.body.empty()) {
                m.protocolErrors.add();
                closeConn(conn.id);
                return false;
            }
            // Always answer with our version so the peer can report
            // the mismatch; an incompatible peer is then dropped.
            // Version-1 peers are still served: their queries simply
            // lack the quality hint (decodeQuery defaults it to -1).
            bool compatible = frame.version == kProtocolVersion ||
                frame.version == 1;
            conn.handshaken = compatible;
            conn.closeAfterFlush = !compatible;
            return sendFrame(conn, encodeHello(kProtocolVersion)) &&
                   compatible;
        }
        if (!conn.handshaken || frame.magic != kQueryMagic) {
            m.protocolErrors.add();
            closeConn(conn.id);
            return false;
        }
        uint64_t requestId = 0;
        ground::TileQuery query;
        if (!decodeQuery(frame, requestId, query)) {
            m.protocolErrors.add();
            closeConn(conn.id);
            return false;
        }
        m.queries.add();
        if (st.pending.size() >= options_.maxPending) {
            // Admission control: a full queue answers *now* with a
            // retry hint instead of queueing unboundedly.
            m.shed.add();
            return sendFrame(
                conn,
                encodeResult(requestId,
                             shedResult(options_.retryAfterMs)));
        }
        ++conn.opsInFlight;
        st.pending.push_back(LoopState::Pending{
            conn.id, requestId, query, telemetry::nowNanos()});
        m.queueDepth.record(st.pending.size());
        return true;
    };

    auto handleRead = [&](uint64_t id) {
        auto it = st.conns.find(id);
        if (it == st.conns.end())
            return;
        LoopState::Connection &conn = it->second;
        uint8_t buf[64 * 1024];
        for (;;) {
            size_t want = sizeof(buf);
            if (serverSites().recvPartial.fire()) {
                auto cap = static_cast<size_t>(std::max<int64_t>(
                    1, serverSites().recvPartial.arg()));
                want = std::min(want, cap);
            }
            ssize_t n = ::recv(conn.fd, buf, want, 0);
            if (n > 0) {
                m.bytesRx.add(static_cast<uint64_t>(n));
                conn.idleSinceNs = telemetry::nowNanos();
                conn.reader.feed(buf, static_cast<size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                break;
            closeConn(id); // EOF or transport error
            return;
        }
        Frame frame;
        while (!conn.closeAfterFlush && conn.reader.next(frame))
            if (!handleFrame(conn, frame))
                return; // conn may be gone; touch nothing
        if (conn.reader.error() != FrameError::None) {
            m.protocolErrors.add();
            closeConn(id);
            return;
        }
        // Track the age of an unfinished frame from its *first* byte:
        // a peer trickling one byte per read deadline never completes
        // a frame but never resets this clock either.
        if (conn.reader.buffered() == 0)
            conn.frameStartNs = 0;
        else if (conn.frameStartNs == 0)
            conn.frameStartNs = telemetry::nowNanos();
    };

    auto acceptAll = [&] {
        for (;;) {
            int fd = ::accept(listenFd_, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                return; // EAGAIN or transient accept failure
            }
            if (st.conns.size() >= options_.maxConnections ||
                !setNonBlocking(fd)) {
                m.rejected.add();
                ::close(fd);
                continue;
            }
            int one = 1;
            setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            uint64_t id = st.nextConnId++;
            LoopState::Connection conn;
            conn.fd = fd;
            conn.id = id;
            conn.idleSinceNs = telemetry::nowNanos();
            st.conns.emplace(id, std::move(conn));
            st.fdToId[fd] = id;
            st.poller.add(fd, false);
            m.accepted.add();
            m.active.add(1);
        }
    };

    // Move queries from the admission queue into the tile server,
    // bounded by maxInflight_. Completions are posted off the pool
    // into completed_; on a single-lane pool the serve (and its
    // completion) runs inline right here, which drainCompleted picks
    // up immediately after.
    auto dispatchPending = [&]() -> size_t {
        size_t dispatched = 0;
        while (st.inflight < maxInflight_ && !st.pending.empty()) {
            LoopState::Pending p = std::move(st.pending.front());
            st.pending.pop_front();
            if (!st.conns.count(p.connId))
                continue; // requester hung up; drop silently
            m.queueWaitNs.record(telemetry::nowNanos() - p.admitNs);
            ++st.inflight;
            ++dispatched;
            uint64_t connId = p.connId;
            uint64_t requestId = p.requestId;
            {
                std::lock_guard<std::mutex> lock(completedMutex_);
                ++outstanding_;
            }
            tiles_.serveAsync(
                p.query,
                [this, connId,
                 requestId](const ground::TileResult &result) {
                    Completed done;
                    done.connId = connId;
                    done.frame = encodeResult(requestId, result);
                    {
                        std::lock_guard<std::mutex> lock(
                            completedMutex_);
                        completed_.push_back(std::move(done));
                    }
                    // Wake strictly before the outstanding_ drop:
                    // once stop() sees zero it closes the pipe, so
                    // the write must already be behind us. The notify
                    // happens *under* the mutex: stop()'s wait can
                    // then only observe zero after this thread has
                    // fully left notify_all, so the cv is never
                    // destroyed mid-broadcast.
                    wake();
                    {
                        std::lock_guard<std::mutex> lock(
                            completedMutex_);
                        --outstanding_;
                        completedCv_.notify_all();
                    }
                });
        }
        return dispatched;
    };

    auto drainCompleted = [&]() -> size_t {
        std::deque<Completed> batch;
        {
            std::lock_guard<std::mutex> lock(completedMutex_);
            batch.swap(completed_);
        }
        for (Completed &done : batch) {
            EP_ASSERT(st.inflight > 0,
                      "completion without a dispatched query");
            --st.inflight;
            auto it = st.conns.find(done.connId);
            if (it == st.conns.end())
                continue; // requester hung up mid-serve
            if (it->second.opsInFlight > 0)
                --it->second.opsInFlight;
            if (serverSites().dropResponse.fire())
                continue; // injected loss: the client's deadline fires
            sendFrame(it->second, std::move(done.frame));
        }
        return batch.size();
    };

    std::vector<std::pair<int, unsigned>> ready;

    // Close connections past their read/idle deadlines and return the
    // poll timeout (ms) until the nearest surviving deadline, or -1
    // when no deadline is armed.
    auto sweepDeadlines = [&]() -> int {
        if (options_.readTimeoutMs == 0 && options_.idleTimeoutMs == 0)
            return -1;
        uint64_t now = telemetry::nowNanos();
        uint64_t readNs =
            static_cast<uint64_t>(options_.readTimeoutMs) * 1000000u;
        uint64_t idleNs =
            static_cast<uint64_t>(options_.idleTimeoutMs) * 1000000u;
        uint64_t nextNs = UINT64_MAX;
        std::vector<uint64_t> expired;
        for (auto &[id, conn] : st.conns) {
            uint64_t deadline = UINT64_MAX;
            bool writing = conn.outboxOff < conn.outbox.size();
            if (options_.readTimeoutMs != 0) {
                if (conn.frameStartNs != 0)
                    deadline = std::min(deadline,
                                        conn.frameStartNs + readNs);
                if (writing && conn.outboxSinceNs != 0)
                    deadline = std::min(deadline,
                                        conn.outboxSinceNs + readNs);
            }
            if (options_.idleTimeoutMs != 0 &&
                conn.frameStartNs == 0 && !writing &&
                conn.opsInFlight == 0)
                deadline =
                    std::min(deadline, conn.idleSinceNs + idleNs);
            if (deadline == UINT64_MAX)
                continue;
            if (deadline <= now)
                expired.push_back(id);
            else
                nextNs = std::min(nextNs, deadline);
        }
        for (uint64_t id : expired) {
            m.timeouts.add();
            closeConn(id);
        }
        if (nextNs == UINT64_MAX)
            return -1;
        return static_cast<int>(std::min<uint64_t>(
            (nextNs - now) / 1000000u + 1, INT_MAX));
    };

    auto handleEvents = [&](bool admitReads) {
        for (const auto &[fd, bits] : ready) {
            if (fd == wakeRead_) {
                uint8_t sink[256];
                while (::read(wakeRead_, sink, sizeof(sink)) > 0) {
                }
                continue;
            }
            if (fd == listenFd_) {
                acceptAll();
                continue;
            }
            auto idIt = st.fdToId.find(fd);
            if (idIt == st.fdToId.end())
                continue; // closed earlier in this batch
            uint64_t id = idIt->second;
            if (bits & kBroken) {
                closeConn(id);
                continue;
            }
            if (bits & kWritable) {
                auto it = st.conns.find(id);
                if (it != st.conns.end() && !flushConn(it->second))
                    continue;
            }
            if ((bits & kReadable) && admitReads)
                handleRead(id);
        }
    };

    while (!stop_.load(std::memory_order_acquire)) {
        st.poller.wait(ready, sweepDeadlines());
        handleEvents(true);
        // Inline-serving pools complete dispatches synchronously, so
        // keep cycling until neither side makes progress.
        for (;;) {
            size_t dispatched = dispatchPending();
            size_t drained = drainCompleted();
            if (dispatched == 0 && drained == 0)
                break;
        }
    }

    // Bounded graceful drain: stop accepting, finish what was already
    // admitted and flush buffered responses, then force-close. New
    // bytes from peers are left unread so nothing new is admitted.
    if (options_.drainTimeoutMs > 0) {
        draining = true;
        st.poller.del(listenFd_);
        for (const auto &[id, conn] : st.conns)
            st.poller.modMask(conn.fd, false, conn.wantWrite);
        uint64_t drainDeadline =
            telemetry::nowNanos() +
            static_cast<uint64_t>(options_.drainTimeoutMs) * 1000000u;
        for (;;) {
            for (;;) {
                size_t dispatched = dispatchPending();
                size_t drained = drainCompleted();
                if (dispatched == 0 && drained == 0)
                    break;
            }
            bool busy = st.inflight > 0 || !st.pending.empty();
            if (!busy)
                for (const auto &[id, conn] : st.conns)
                    if (conn.outboxOff < conn.outbox.size()) {
                        busy = true;
                        break;
                    }
            if (!busy)
                break;
            int64_t leftNs = static_cast<int64_t>(drainDeadline) -
                             static_cast<int64_t>(telemetry::nowNanos());
            if (leftNs <= 0)
                break;
            st.poller.wait(
                ready,
                static_cast<int>(std::min<int64_t>(
                    leftNs / 1000000 + 1, INT_MAX)));
            handleEvents(false);
        }
    }

    for (auto &[id, conn] : st.conns)
        ::close(conn.fd);
    st.conns.clear();
    st.fdToId.clear();
}

} // namespace earthplus::net
