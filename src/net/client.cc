#include "net/client.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/failpoint.hh"
#include "util/telemetry.hh"

namespace earthplus::net {

namespace {

/** Client-side telemetry handles, resolved once per process. */
struct ClientMetrics
{
    telemetry::Counter &retries =
        telemetry::counter("net.client.retries");
    telemetry::Counter &reconnects =
        telemetry::counter("net.client.reconnects");
    telemetry::Counter &timeouts =
        telemetry::counter("net.client.timeouts");
};

ClientMetrics &
metrics()
{
    static ClientMetrics m;
    return m;
}

/**
 * Client-side injection sites. connect.fail rejects the dial before
 * any syscall; recv.reset / send.reset drop the connection mid-frame;
 * send.short caps one send(2) to `arg` bytes (default 1) to exercise
 * partial-write reassembly on the server.
 */
struct ClientSites
{
    failpoint::Failpoint &connectFail =
        failpoint::site("net.client.connect.fail");
    failpoint::Failpoint &recvReset =
        failpoint::site("net.client.recv.reset");
    failpoint::Failpoint &sendShort =
        failpoint::site("net.client.send.short");
    failpoint::Failpoint &sendReset =
        failpoint::site("net.client.send.reset");
};

ClientSites &
sites()
{
    static ClientSites s;
    return s;
}

/** Monotonic milliseconds (steady clock — deadlines survive NTP). */
uint64_t
nowMs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Absolute deadline for a relative timeout; 0 means "no bound". */
uint64_t
deadlineFrom(int timeoutMs)
{
    return timeoutMs > 0 ? nowMs() + static_cast<uint64_t>(timeoutMs)
                         : 0;
}

/**
 * Poll until `fd` is ready for `events` or the deadline expires.
 * Returns true on readiness (including error/hangup readiness, so the
 * following syscall surfaces the real errno), false on expiry.
 */
bool
waitReady(int fd, short events, uint64_t deadlineMs)
{
    for (;;) {
        int timeout = -1;
        if (deadlineMs != 0) {
            uint64_t now = nowMs();
            if (now >= deadlineMs)
                return false;
            timeout = static_cast<int>(
                std::min<uint64_t>(deadlineMs - now, INT_MAX));
        }
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = events;
        int rc = ::poll(&pfd, 1, timeout);
        if (rc > 0)
            return true;
        if (rc == 0)
            return false;
        if (errno == EINTR)
            continue;
        return false;
    }
}

/** Switch a socket to non-blocking mode (poll owns all waiting). */
bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 &&
           ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

} // anonymous namespace

TileClient::TileClient(const ClientOptions &options)
    : options_(options), jitter_(options.jitterSeed)
{
}

TileClient::~TileClient()
{
    close();
}

void
TileClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_ = FrameReader{};
}

bool
TileClient::sendAll(const uint8_t *data, size_t size,
                    uint64_t deadlineMs)
{
    size_t sent = 0;
    while (sent < size) {
        if (sites().sendReset.fire()) {
            close();
            return false;
        }
        size_t chunk = size - sent;
        if (sites().sendShort.fire()) {
            auto cap = static_cast<size_t>(
                std::max<int64_t>(1, sites().sendShort.arg()));
            chunk = std::min(chunk, cap);
        }
        ssize_t n = ::send(fd_, data + sent, chunk, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!waitReady(fd_, POLLOUT, deadlineMs)) {
                metrics().timeouts.add();
                close();
                return false;
            }
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        close();
        return false;
    }
    return true;
}

bool
TileClient::readFrame(Frame &out, uint64_t deadlineMs)
{
    for (;;) {
        if (reader_.next(out))
            return true;
        if (reader_.error() != FrameError::None)
            return false;
        if (sites().recvReset.fire()) {
            close();
            return false;
        }
        uint8_t buf[64 * 1024];
        ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            reader_.feed(buf, static_cast<size_t>(n));
            continue;
        }
        if (n == 0)
            return false; // EOF
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!waitReady(fd_, POLLIN, deadlineMs)) {
                metrics().timeouts.add();
                return false;
            }
            continue;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
}

bool
TileClient::dial()
{
    close();
    serverVersion_ = 0;
    if (sites().connectFail.fire())
        return false;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    if (inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1 ||
        !setNonBlocking(fd)) {
        ::close(fd);
        return false;
    }
    uint64_t deadline = deadlineFrom(options_.connectTimeoutMs);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (errno != EINPROGRESS) {
            ::close(fd);
            return false;
        }
        if (!waitReady(fd, POLLOUT, deadline)) {
            metrics().timeouts.add();
            ::close(fd);
            return false;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0) {
            ::close(fd);
            return false;
        }
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;

    // Version handshake, bounded by the remaining connect deadline:
    // announce ours, require the server's EPTH back with a matching
    // version.
    std::vector<uint8_t> hello = encodeHello(kProtocolVersion);
    if (!sendAll(hello.data(), hello.size(), deadline))
        return false;
    Frame frame;
    if (!readFrame(frame, deadline) || frame.magic != kHelloMagic ||
        !frame.body.empty()) {
        close();
        return false;
    }
    serverVersion_ = frame.version;
    if (frame.version != kProtocolVersion) {
        close();
        return false;
    }
    return true;
}

bool
TileClient::connect(const std::string &host, uint16_t port)
{
    host_ = host;
    port_ = port;
    everConnected_ = true;
    return dial();
}

bool
TileClient::reconnect()
{
    if (!everConnected_)
        return false;
    metrics().reconnects.add();
    return dial();
}

bool
TileClient::send(const ground::TileQuery &query, uint64_t requestId)
{
    if (fd_ < 0)
        return false;
    std::vector<uint8_t> frame = encodeQuery(requestId, query);
    return sendAll(frame.data(), frame.size(),
                   deadlineFrom(options_.writeTimeoutMs));
}

bool
TileClient::receive(ground::TileResult &result, uint64_t *requestId)
{
    if (fd_ < 0)
        return false;
    Frame frame;
    if (!readFrame(frame, deadlineFrom(options_.readTimeoutMs))) {
        close();
        return false;
    }
    uint64_t id = 0;
    if (!decodeResult(frame, id, result)) {
        close();
        return false;
    }
    if (requestId)
        *requestId = id;
    return true;
}

bool
TileClient::queryOnce(const ground::TileQuery &query,
                      ground::TileResult &result)
{
    uint64_t id = nextRequestId_++;
    if (!send(query, id))
        return false;
    uint64_t got = 0;
    if (!receive(result, &got))
        return false;
    if (got != id) {
        close(); // lockstep round trip: ids must match
        return false;
    }
    return true;
}

bool
TileClient::query(const ground::TileQuery &query,
                  ground::TileResult &result)
{
    for (int attempt = 0;; ++attempt) {
        bool ok = connected() && queryOnce(query, result);
        bool shed = ok && result.error == ground::ServeError::Shed;
        if (ok && !shed)
            return true;
        if (attempt >= options_.maxRetries)
            return ok; // budget spent: a Shed round trip is still true
        metrics().retries.add();
        // Capped exponential backoff. A Shed response's retryAfterMs
        // hint overrides the base step; jitter (from the pinned seed)
        // keeps retries in [delay/2, delay] so synchronized clients
        // de-correlate without losing reproducibility.
        uint64_t base = options_.backoffBaseMs;
        if (shed && result.retryAfterMs > 0)
            base = result.retryAfterMs;
        int shift = std::min(attempt, 20);
        uint64_t delay = std::min<uint64_t>(options_.backoffCapMs,
                                            base << shift);
        if (delay > 0) {
            auto lo = static_cast<int64_t>(delay / 2);
            auto hi = static_cast<int64_t>(delay);
            uint64_t jittered =
                static_cast<uint64_t>(jitter_.uniformInt(lo, hi));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(jittered));
        }
        if (!connected()) {
            if (!options_.autoReconnect)
                return false;
            // A failed redial falls through: the next iteration's
            // queryOnce guard sees the closed fd and either retries
            // (budget permitting) or reports the failure.
            reconnect();
        }
    }
}

} // namespace earthplus::net
