#include "net/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace earthplus::net {

namespace {

/** Read one frame from a blocking socket through a FrameReader. */
bool
readFrame(int fd, FrameReader &reader, Frame &out)
{
    for (;;) {
        if (reader.next(out))
            return true;
        if (reader.error() != FrameError::None)
            return false;
        uint8_t buf[64 * 1024];
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n > 0) {
            reader.feed(buf, static_cast<size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EOF or transport error
    }
}

} // anonymous namespace

TileClient::~TileClient()
{
    close();
}

void
TileClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_ = FrameReader{};
}

bool
TileClient::sendAll(const uint8_t *data, size_t size)
{
    size_t sent = 0;
    while (sent < size) {
        ssize_t n =
            ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        close();
        return false;
    }
    return true;
}

bool
TileClient::connect(const std::string &host, uint16_t port)
{
    close();
    serverVersion_ = 0;
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return false;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    fd_ = fd;

    // Version handshake: announce ours, require the server's EPTH
    // back with a matching version.
    std::vector<uint8_t> hello = encodeHello(kProtocolVersion);
    if (!sendAll(hello.data(), hello.size()))
        return false;
    Frame frame;
    if (!readFrame(fd_, reader_, frame) ||
        frame.magic != kHelloMagic || !frame.body.empty()) {
        close();
        return false;
    }
    serverVersion_ = frame.version;
    if (frame.version != kProtocolVersion) {
        close();
        return false;
    }
    return true;
}

bool
TileClient::send(const ground::TileQuery &query, uint64_t requestId)
{
    if (fd_ < 0)
        return false;
    std::vector<uint8_t> frame = encodeQuery(requestId, query);
    return sendAll(frame.data(), frame.size());
}

bool
TileClient::receive(ground::TileResult &result, uint64_t *requestId)
{
    if (fd_ < 0)
        return false;
    Frame frame;
    if (!readFrame(fd_, reader_, frame)) {
        close();
        return false;
    }
    uint64_t id = 0;
    if (!decodeResult(frame, id, result)) {
        close();
        return false;
    }
    if (requestId)
        *requestId = id;
    return true;
}

bool
TileClient::query(const ground::TileQuery &query,
                  ground::TileResult &result)
{
    uint64_t id = nextRequestId_++;
    if (!send(query, id))
        return false;
    uint64_t got = 0;
    if (!receive(result, &got))
        return false;
    if (got != id) {
        close(); // lockstep round trip: ids must match
        return false;
    }
    return true;
}

} // namespace earthplus::net
