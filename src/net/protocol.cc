#include "net/protocol.hh"

#include <cstring>

#include "ground/crc32.hh"
#include "util/bytes.hh"

namespace earthplus::net {

namespace {

/** Append the 16-byte header for an already-built body. */
void
appendHeader(std::vector<uint8_t> &out, uint32_t magic, uint32_t version,
             const uint8_t *body, size_t bodyLen)
{
    util::appendPod(out, magic);
    util::appendPod(out, version);
    util::appendPod(out, static_cast<uint32_t>(bodyLen));
    util::appendPod(out, ground::crc32(body, bodyLen));
}

bool
knownMagic(uint32_t magic)
{
    return magic == kHelloMagic || magic == kQueryMagic ||
           magic == kResultMagic;
}

} // anonymous namespace

void
FrameReader::feed(const uint8_t *data, size_t size)
{
    if (error_ != FrameError::None || size == 0)
        return;
    buf_.insert(buf_.end(), data, data + size);
}

bool
FrameReader::next(Frame &out)
{
    if (error_ != FrameError::None)
        return false;
    if (buffered() < kFrameHeaderBytes)
        return false;
    const uint8_t *p = buf_.data() + pos_;
    uint32_t magic = util::readPodAt<uint32_t>(p, 0);
    uint32_t version = util::readPodAt<uint32_t>(p, 4);
    uint32_t bodyLen = util::readPodAt<uint32_t>(p, 8);
    uint32_t bodyCrc = util::readPodAt<uint32_t>(p, 12);
    // Validate the prefix before waiting for (or allocating) the
    // body: a corrupt length must not make us buffer gigabytes.
    if (!knownMagic(magic)) {
        error_ = FrameError::BadMagic;
        return false;
    }
    if (bodyLen > kMaxBodyBytes) {
        error_ = FrameError::BadLength;
        return false;
    }
    if (buffered() < kFrameHeaderBytes + bodyLen)
        return false;
    const uint8_t *body = p + kFrameHeaderBytes;
    if (ground::crc32(body, bodyLen) != bodyCrc) {
        error_ = FrameError::BadCrc;
        return false;
    }
    out.magic = magic;
    out.version = version;
    out.body.assign(body, body + bodyLen);
    pos_ += kFrameHeaderBytes + bodyLen;
    // Compact: drop consumed bytes once everything buffered has been
    // handed out (the steady state), or when the dead prefix grows
    // past a frame's worth of slack.
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    } else if (pos_ > (1u << 20)) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
    }
    return true;
}

std::vector<uint8_t>
encodeHello(uint32_t version)
{
    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderBytes);
    appendHeader(out, kHelloMagic, version, nullptr, 0);
    return out;
}

std::vector<uint8_t>
encodeQuery(uint64_t requestId, const ground::TileQuery &query)
{
    std::vector<uint8_t> body;
    body.reserve(kQueryBodyBytes);
    util::appendPod(body, requestId);
    util::appendPod(body, static_cast<int32_t>(query.locationId));
    util::appendPod(body, static_cast<int32_t>(query.band));
    util::appendPod(body, query.day);
    util::appendPod(body, static_cast<int32_t>(query.x0));
    util::appendPod(body, static_cast<int32_t>(query.y0));
    util::appendPod(body, static_cast<int32_t>(query.width));
    util::appendPod(body, static_cast<int32_t>(query.height));
    util::appendPod(body, static_cast<int32_t>(query.maxLayers));
    util::appendPod(body, static_cast<int32_t>(query.quality));

    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderBytes + body.size());
    appendHeader(out, kQueryMagic, kProtocolVersion, body.data(),
                 body.size());
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

std::vector<uint8_t>
encodeResult(uint64_t requestId, const ground::TileResult &result)
{
    bool withPixels = result.ok() && !result.pixels.empty();
    std::vector<uint8_t> body;
    size_t pixelBytes =
        withPixels ? result.pixels.size() * sizeof(float) : 0;
    body.reserve(kResultFixedBodyBytes + pixelBytes);
    util::appendPod(body, requestId);
    util::appendPod(body, static_cast<uint8_t>(result.error));
    util::appendPod(body, static_cast<uint8_t>(0)); // pad
    util::appendPod(body, static_cast<uint8_t>(0)); // pad
    util::appendPod(body, static_cast<uint8_t>(0)); // pad
    util::appendPod(body, result.retryAfterMs);
    util::appendPod(body, result.servedDay);
    util::appendPod(body, result.serveNs);
    util::appendPod(body, static_cast<uint32_t>(result.tilesDecoded));
    util::appendPod(body, static_cast<uint32_t>(result.tilesFromCache));
    util::appendPod(body, static_cast<uint32_t>(result.tilesCoalesced));
    util::appendPod(
        body,
        static_cast<uint32_t>(withPixels ? result.pixels.width() : 0));
    util::appendPod(
        body,
        static_cast<uint32_t>(withPixels ? result.pixels.height() : 0));
    if (withPixels) {
        size_t at = body.size();
        body.resize(at + pixelBytes);
        std::memcpy(body.data() + at, result.pixels.data().data(),
                    pixelBytes);
    }

    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderBytes + body.size());
    appendHeader(out, kResultMagic, kProtocolVersion, body.data(),
                 body.size());
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

bool
decodeQuery(const Frame &frame, uint64_t &requestId,
            ground::TileQuery &query)
{
    if (frame.magic != kQueryMagic ||
        (frame.body.size() != kQueryBodyBytes &&
         frame.body.size() != kQueryBodyBytesV1))
        return false;
    const uint8_t *p = frame.body.data();
    requestId = util::readPodAt<uint64_t>(p, 0);
    query.locationId = util::readPodAt<int32_t>(p, 8);
    query.band = util::readPodAt<int32_t>(p, 12);
    query.day = util::readPodAt<double>(p, 16);
    query.x0 = util::readPodAt<int32_t>(p, 24);
    query.y0 = util::readPodAt<int32_t>(p, 28);
    query.width = util::readPodAt<int32_t>(p, 32);
    query.height = util::readPodAt<int32_t>(p, 36);
    query.maxLayers = util::readPodAt<int32_t>(p, 40);
    // Version-1 peers stop here; they always want full fidelity.
    query.quality = frame.body.size() == kQueryBodyBytes
        ? util::readPodAt<int32_t>(p, 44)
        : -1;
    return true;
}

bool
decodeResult(const Frame &frame, uint64_t &requestId,
             ground::TileResult &result)
{
    if (frame.magic != kResultMagic ||
        frame.body.size() < kResultFixedBodyBytes)
        return false;
    const uint8_t *p = frame.body.data();
    requestId = util::readPodAt<uint64_t>(p, 0);
    uint8_t status = util::readPodAt<uint8_t>(p, 8);
    if (status > static_cast<uint8_t>(ground::ServeError::BadQuery))
        return false;
    result = ground::TileResult{};
    result.error = static_cast<ground::ServeError>(status);
    result.retryAfterMs = util::readPodAt<uint32_t>(p, 12);
    result.servedDay = util::readPodAt<double>(p, 16);
    result.serveNs = util::readPodAt<uint64_t>(p, 24);
    result.tilesDecoded =
        static_cast<int>(util::readPodAt<uint32_t>(p, 32));
    result.tilesFromCache =
        static_cast<int>(util::readPodAt<uint32_t>(p, 36));
    result.tilesCoalesced =
        static_cast<int>(util::readPodAt<uint32_t>(p, 40));
    uint32_t width = util::readPodAt<uint32_t>(p, 44);
    uint32_t height = util::readPodAt<uint32_t>(p, 48);
    if (width > static_cast<uint32_t>(kMaxResultDim) ||
        height > static_cast<uint32_t>(kMaxResultDim))
        return false;
    size_t pixelBytes = static_cast<size_t>(width) * height *
                        sizeof(float);
    if (frame.body.size() != kResultFixedBodyBytes + pixelBytes)
        return false;
    if (pixelBytes) {
        result.pixels = raster::Plane(static_cast<int>(width),
                                      static_cast<int>(height));
        std::memcpy(result.pixels.data().data(),
                    p + kResultFixedBodyBytes, pixelBytes);
    }
    return true;
}

ground::TileResult
shedResult(uint32_t retryAfterMs)
{
    ground::TileResult result;
    result.error = ground::ServeError::Shed;
    result.retryAfterMs = retryAfterMs;
    return result;
}

} // namespace earthplus::net
