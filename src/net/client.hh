/**
 * @file
 * Blocking EPT protocol client.
 *
 * The counterpart of net::Server for tests and the load generator: a
 * plain blocking socket that handshakes on connect(), then either
 * round-trips one query at a time (query()) or pipelines — send()
 * tags each query with a caller-chosen request id and receive()
 * returns responses in server completion order, so one sender thread
 * and one receiver thread can share a client (they touch opposite
 * directions of the socket; any other concurrent use is on the
 * caller).
 *
 * Transport or protocol failures latch the client closed: every
 * subsequent call fails until the next connect().
 */

#ifndef EARTHPLUS_NET_CLIENT_HH
#define EARTHPLUS_NET_CLIENT_HH

#include <cstdint>
#include <string>

#include "ground/tile_server.hh"
#include "net/protocol.hh"

namespace earthplus::net {

/** Blocking client for one server connection. */
class TileClient
{
  public:
    TileClient() = default;

    /** Closes the connection if open. */
    ~TileClient();

    TileClient(const TileClient &) = delete;            ///< Non-copyable.
    TileClient &operator=(const TileClient &) = delete; ///< Non-copyable.

    /**
     * Connect and perform the EPTH version handshake. False on
     * connect failure or a version mismatch (the server's version is
     * still readable via serverVersion() to report the mismatch).
     */
    bool connect(const std::string &host, uint16_t port);

    /** True while the connection is usable. */
    bool connected() const { return fd_ >= 0; }

    /** Protocol version the server announced in its EPTH. */
    uint32_t serverVersion() const { return serverVersion_; }

    /**
     * One blocking round trip: send `query`, wait for its response.
     * False on transport failure (result untouched); a served error
     * (NotFound/Shed/...) is a *successful* round trip reported
     * through result.error.
     */
    bool query(const ground::TileQuery &query,
               ground::TileResult &result);

    /** Send one query tagged `requestId` without waiting. */
    bool send(const ground::TileQuery &query, uint64_t requestId);

    /**
     * Block for the next EPTR frame. Fills `result` and, when
     * `requestId` is non-null, the id echoed by the server (pipelined
     * responses arrive in server completion order, and shed responses
     * overtake served ones). False on EOF or transport failure.
     */
    bool receive(ground::TileResult &result,
                 uint64_t *requestId = nullptr);

    /** Drop the connection. Idempotent. */
    void close();

  private:
    bool sendAll(const uint8_t *data, size_t size);

    int fd_ = -1;
    uint32_t serverVersion_ = 0;
    uint64_t nextRequestId_ = 1;
    FrameReader reader_;
};

} // namespace earthplus::net

#endif // EARTHPLUS_NET_CLIENT_HH
