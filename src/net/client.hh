/**
 * @file
 * Blocking EPT protocol client with deadlines, reconnect and
 * Shed-aware retry.
 *
 * The counterpart of net::Server for tests and the load generator: a
 * poll-guarded socket that handshakes on connect(), then either
 * round-trips one query at a time (query()) or pipelines — send()
 * tags each query with a caller-chosen request id and receive()
 * returns responses in server completion order, so one sender thread
 * and one receiver thread can share a client (they touch opposite
 * directions of the socket; any other concurrent use is on the
 * caller).
 *
 * Failure semantics (new in the robustness pass; docs/RELIABILITY.md
 * holds the full story):
 *
 *  - Every socket operation is bounded by a poll(2)-based deadline
 *    from ClientOptions (connect/read/write); an expired deadline
 *    counts in net.client.timeouts and fails the call.
 *  - query() owns a retry budget: a Shed response waits the server's
 *    `retryAfterMs` hint (falling back to backoffBaseMs), a transport
 *    failure reconnects — both under capped exponential backoff with
 *    jitter drawn from a seeded Rng, so chaos runs replay exactly.
 *    The budget defaults to zero, which preserves the original
 *    one-shot semantics (the gated load generator depends on them).
 *  - send()/receive() never retry: pipelining callers own their
 *    request-id space, so a silent reconnect would strand their
 *    in-flight ids.
 *
 * Transport or protocol failures still latch the client closed;
 * query() with a budget reopens it via reconnect(), and callers can
 * reconnect() explicitly.
 */

#ifndef EARTHPLUS_NET_CLIENT_HH
#define EARTHPLUS_NET_CLIENT_HH

#include <cstdint>
#include <string>

#include "ground/tile_server.hh"
#include "net/protocol.hh"
#include "util/rng.hh"

namespace earthplus::net {

/** Deadline, retry and backoff knobs of a TileClient. */
struct ClientOptions
{
    /** connect(2) + handshake deadline, milliseconds (0 = no bound). */
    int connectTimeoutMs = 5000;
    /** Deadline for one receive()/query() read, ms (0 = no bound). */
    int readTimeoutMs = 30000;
    /** Deadline for flushing one frame to the socket, ms (0 = none). */
    int writeTimeoutMs = 5000;
    /**
     * Extra attempts query() may spend on Shed responses and
     * transport failures. 0 (the default) keeps the one-shot
     * behavior: the first Shed or failure is returned as-is.
     */
    int maxRetries = 0;
    /** First backoff step, ms (also the Shed fallback when the server
     *  sends no retryAfterMs hint). */
    uint32_t backoffBaseMs = 10;
    /** Backoff ceiling, ms (the "capped" in capped exponential). */
    uint32_t backoffCapMs = 2000;
    /** Seed of the jitter stream — pinned, so retry timing is
     *  reproducible run to run. */
    uint64_t jitterSeed = 0x6a77e7;
    /** Reconnect automatically inside query()'s retry budget after a
     *  transport failure. */
    bool autoReconnect = true;
};

/** Blocking client for one server connection. */
class TileClient
{
  public:
    TileClient() = default;

    /** Construct with explicit deadline/retry options. */
    explicit TileClient(const ClientOptions &options);

    /** Closes the connection if open. */
    ~TileClient();

    TileClient(const TileClient &) = delete;            ///< Non-copyable.
    TileClient &operator=(const TileClient &) = delete; ///< Non-copyable.

    /**
     * Connect (bounded by connectTimeoutMs) and perform the EPTH
     * version handshake. False on connect failure, deadline expiry or
     * a version mismatch (the server's version is still readable via
     * serverVersion() to report the mismatch). Remembers host/port
     * for reconnect().
     */
    bool connect(const std::string &host, uint16_t port);

    /**
     * Re-dial the last connect()ed endpoint (counted in
     * net.client.reconnects). False when nothing was ever connected
     * or the dial fails.
     */
    bool reconnect();

    /** True while the connection is usable. */
    bool connected() const { return fd_ >= 0; }

    /** Protocol version the server announced in its EPTH. */
    uint32_t serverVersion() const { return serverVersion_; }

    /**
     * One round trip with retries: send `query`, wait for its
     * response. A Shed response or transport failure is retried up
     * to ClientOptions::maxRetries times (honouring the server's
     * retryAfterMs, reconnecting as needed); the last outcome is
     * returned. False on transport failure (result untouched); a
     * served error (NotFound/Shed/...) is a *successful* round trip
     * reported through result.error.
     */
    bool query(const ground::TileQuery &query,
               ground::TileResult &result);

    /** Send one query tagged `requestId` without waiting (bounded by
     *  writeTimeoutMs; never retries). */
    bool send(const ground::TileQuery &query, uint64_t requestId);

    /**
     * Block (bounded by readTimeoutMs) for the next EPTR frame. Fills
     * `result` and, when `requestId` is non-null, the id echoed by
     * the server (pipelined responses arrive in server completion
     * order, and shed responses overtake served ones). False on EOF,
     * deadline expiry or transport failure; never retries.
     */
    bool receive(ground::TileResult &result,
                 uint64_t *requestId = nullptr);

    /** Drop the connection. Idempotent. */
    void close();

    /** The options this client was built with. */
    const ClientOptions &options() const { return options_; }

  private:
    bool sendAll(const uint8_t *data, size_t size,
                 uint64_t deadlineMs);
    bool readFrame(Frame &out, uint64_t deadlineMs);
    bool queryOnce(const ground::TileQuery &query,
                   ground::TileResult &result);
    bool dial();

    ClientOptions options_;
    int fd_ = -1;
    uint32_t serverVersion_ = 0;
    uint64_t nextRequestId_ = 1;
    FrameReader reader_;
    std::string host_;
    uint16_t port_ = 0;
    bool everConnected_ = false;
    Rng jitter_{0x6a77e7};
};

} // namespace earthplus::net

#endif // EARTHPLUS_NET_CLIENT_HH
