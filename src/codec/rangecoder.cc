#include "codec/rangecoder.hh"

#include <algorithm>

#include "util/logging.hh"

namespace earthplus::codec {

RangeEncoder::RangeEncoder(std::vector<uint8_t> &out)
    : out_(out), start_(out.size()), finalBytes_(0), base_(nullptr),
      ptr_(nullptr), limit_(nullptr), low_(0), range_(0xFFFFFFFFu),
      cache_(0), cacheSize_(1), flushed_(false)
{
}

void
RangeEncoder::grow(uint64_t need)
{
    // Every byte emitted after flush() lands here first (flush nulled
    // the pointers), so the old per-bit "encode after flush" assert
    // lives in this cold path now at zero hot-path cost. Post-flush
    // encodes too short to renormalize out a byte are not trapped —
    // they corrupt nothing, the bits just never reach the stream.
    EP_ASSERT(!flushed_, "encode after flush");
    size_t written = bytesWritten();
    size_t cap = out_.size() - start_;
    size_t newCap =
        std::max<size_t>(cap * 2, written + static_cast<size_t>(need) + 64);
    out_.resize(start_ + newCap);
    base_ = out_.data() + start_;
    ptr_ = base_ + written;
    limit_ = out_.data() + out_.size();
}

void
RangeEncoder::encodeBitsRaw(uint32_t value, int nbits)
{
    EP_ASSERT(!flushed_, "encode after flush");
    for (int i = nbits - 1; i >= 0; --i)
        encodeBitRaw(static_cast<int>((value >> i) & 1u));
}

void
RangeEncoder::flush()
{
    EP_ASSERT(!flushed_, "double flush");
    for (int i = 0; i < 5; ++i)
        shiftLow();
    // Trim the grow-amortized overshoot: from here on the vector's
    // size is the exact stream length again.
    finalBytes_ = bytesWritten();
    out_.resize(start_ + finalBytes_);
    base_ = ptr_ = limit_ = nullptr;
    flushed_ = true;
}

RangeDecoder::RangeDecoder(const uint8_t *data, size_t size)
    : begin_(data), ptr_(data), end_(data + size), range_(0xFFFFFFFFu),
      code_(0)
{
    // The first byte emitted by the encoder is always 0 (initial cache);
    // consume 5 bytes to fill the code register, mirroring flush().
    for (int i = 0; i < 5; ++i)
        code_ = (code_ << 8) | nextByte();
}

uint32_t
RangeDecoder::decodeBitsRaw(int nbits)
{
    uint32_t v = 0;
    for (int i = 0; i < nbits; ++i)
        v = (v << 1) | static_cast<uint32_t>(decodeBitRaw());
    return v;
}

} // namespace earthplus::codec
