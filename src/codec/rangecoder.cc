#include "codec/rangecoder.hh"

#include "util/logging.hh"

namespace earthplus::codec {

namespace {

constexpr uint32_t kTopValue = 1u << 24;

} // anonymous namespace

RangeEncoder::RangeEncoder(std::vector<uint8_t> &out)
    : out_(out), start_(out.size()), low_(0), range_(0xFFFFFFFFu),
      cache_(0), cacheSize_(1), flushed_(false)
{
}

void
RangeEncoder::shiftLow()
{
    if (static_cast<uint32_t>(low_ >> 32) != 0 ||
        static_cast<uint32_t>(low_) < 0xFF000000u) {
        uint8_t carry = static_cast<uint8_t>(low_ >> 32);
        do {
            out_.push_back(static_cast<uint8_t>(cache_ + carry));
            cache_ = 0xFF;
        } while (--cacheSize_ != 0);
        cache_ = static_cast<uint8_t>(low_ >> 24);
    }
    ++cacheSize_;
    low_ = (low_ & 0x00FFFFFFu) << 8;
}

void
RangeEncoder::normalize()
{
    while (range_ < kTopValue) {
        range_ <<= 8;
        shiftLow();
    }
}

void
RangeEncoder::encodeBit(BitModel &model, int bit)
{
    EP_ASSERT(!flushed_, "encode after flush");
    uint32_t bound = (range_ >> BitModel::kModelBits) * model.prob();
    if (!bit) {
        range_ = bound;
        model.update0();
    } else {
        low_ += bound;
        range_ -= bound;
        model.update1();
    }
    normalize();
}

void
RangeEncoder::encodeBitRaw(int bit)
{
    EP_ASSERT(!flushed_, "encode after flush");
    range_ >>= 1;
    if (bit)
        low_ += range_;
    normalize();
}

void
RangeEncoder::encodeBitsRaw(uint32_t value, int nbits)
{
    for (int i = nbits - 1; i >= 0; --i)
        encodeBitRaw(static_cast<int>((value >> i) & 1u));
}

void
RangeEncoder::flush()
{
    EP_ASSERT(!flushed_, "double flush");
    for (int i = 0; i < 5; ++i)
        shiftLow();
    flushed_ = true;
}

RangeDecoder::RangeDecoder(const uint8_t *data, size_t size)
    : data_(data), size_(size), pos_(0), range_(0xFFFFFFFFu), code_(0)
{
    // The first byte emitted by the encoder is always 0 (initial cache);
    // consume 5 bytes to fill the code register, mirroring flush().
    for (int i = 0; i < 5; ++i)
        code_ = (code_ << 8) | nextByte();
}

uint8_t
RangeDecoder::nextByte()
{
    return pos_ < size_ ? data_[pos_++] : 0;
}

void
RangeDecoder::normalize()
{
    while (range_ < kTopValue) {
        range_ <<= 8;
        code_ = (code_ << 8) | nextByte();
    }
}

int
RangeDecoder::decodeBit(BitModel &model)
{
    uint32_t bound = (range_ >> BitModel::kModelBits) * model.prob();
    int bit;
    if (code_ < bound) {
        range_ = bound;
        model.update0();
        bit = 0;
    } else {
        code_ -= bound;
        range_ -= bound;
        model.update1();
        bit = 1;
    }
    normalize();
    return bit;
}

int
RangeDecoder::decodeBitRaw()
{
    range_ >>= 1;
    int bit = 0;
    if (code_ >= range_) {
        code_ -= range_;
        bit = 1;
    }
    normalize();
    return bit;
}

uint32_t
RangeDecoder::decodeBitsRaw(int nbits)
{
    uint32_t v = 0;
    for (int i = 0; i < nbits; ++i)
        v = (v << 1) | static_cast<uint32_t>(decodeBitRaw());
    return v;
}

} // namespace earthplus::codec
