/**
 * @file
 * Embedded bitplane coder for one image tile.
 *
 * Quantized wavelet coefficients are coded magnitude-bitplane by
 * magnitude-bitplane (MSB first) with context-adaptive binary range
 * coding, so a prefix of the coded planes is a lower-quality version of
 * the tile. This provides the three codec properties Earth+ relies on:
 * bit-budget rate control (stop emitting planes when the tile budget is
 * exhausted), SNR-progressive quality layers (plane groups), and
 * graceful truncation for the layered downlink (§5, "Handling bandwidth
 * fluctuation").
 *
 * The coding passes are bitset-driven: significance, visited and
 * refinable state live in word-packed `uint64_t` planes (one fresh run
 * of words per row), each pass derives its candidate set with
 * word-level operations — pass 0 from a 4-neighbor dilation of the
 * significance plane, pass 1 from the refinable plane, pass 2 from
 * `~significant & ~visited` — and iterates only set bits. All-zero
 * words cost one test per 64 coefficients, which is what makes sparse
 * change-delta tiles (the common case in Earth+'s delta encoding)
 * cheap. The candidate evolution reproduces the per-pixel raster scan
 * exactly — including mid-pass significance propagating to the right
 * neighbor — so encoded streams are byte-identical to the original
 * per-pixel coder; `tests/golden_stream_test.cc` pins that.
 *
 * Sub-tile parallelism: when `TileCoderParams::chunkRows > 0` the tile
 * is partitioned into full-width row slabs ("chunks"), each coded by
 * an independent TileEncoder/TileDecoder pair — own range coder, own
 * context set, own significance state. Chunks are embarrassingly
 * parallel and the per-layer stream frames them in fixed chunk order
 * with u32 length prefixes, so the bytes are identical at every thread
 * count. `chunkRows == 0` keeps the original single unframed stream
 * (the v1 / EPC2 wire format) byte-for-byte.
 */

#ifndef EARTHPLUS_CODEC_TILE_CODER_HH
#define EARTHPLUS_CODEC_TILE_CODER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "codec/dwt.hh"
#include "codec/rangecoder.hh"
#include "raster/plane.hh"
#include "util/bytes.hh"

namespace earthplus::codec {

/**
 * Default chunk height for chunked (v2) encoding. Chosen so the
 * default 64-px tile grid stays single-chunk (framing adds only the
 * one length prefix per layer) while an oversized 1024×1024 tile
 * splits into 8 independently codable slabs — enough to keep four
 * lanes busy on the latency path without shrinking the context-model
 * training window to the point of hurting compression.
 */
constexpr int kDefaultChunkRows = 128;

/** Tunables shared by the tile encoder and decoder. */
struct TileCoderParams
{
    /** Dyadic decomposition levels. */
    int dwtLevels = 4;
    /** Wavelet filter; LeGall53 is required for lossless. */
    Wavelet wavelet = Wavelet::CDF97;
    /**
     * True for exact reconstruction: pixels are mapped to integers with
     * `losslessDepth` bits, transformed with the reversible 5/3 filter,
     * and every bitplane is coded.
     */
    bool lossless = false;
    /** Bit depth of the integer mapping in lossless mode. */
    int losslessDepth = 8;
    /** Deadzone quantizer step for the lossy path. */
    double quantStep = 1.0 / 512.0;
    /**
     * Rows per entropy chunk. 0 (the default) selects the legacy
     * single unframed entropy stream — the v1 wire format. Any
     * positive value selects the framed chunked format (v2), even
     * when the tile fits in one chunk, so a stream's framing is
     * decided by the params alone, never by the tile size.
     */
    int chunkRows = 0;
    /**
     * Progressive (EPC4) entropy framing. Requires chunkRows > 0.
     * Each chunk-layer payload becomes a sequence of independently
     * flushed per-plane segments (see forEachSegment()) so any
     * segment boundary is a recorded truncation point; the pass
     * schedule — which planes land in which layer — is decided by a
     * shadow coder fed the exact EPC3 bit sequence, so the decoded
     * pixels of a full-length EPC4 stream are bit-exact with the
     * EPC3 decode of the same input. False keeps the v1/v2 formats
     * byte-identical.
     */
    bool progressive = false;
};

/** Number of entropy chunks a `height`-row tile codes into. */
inline int
chunkCount(const TileCoderParams &params, int height)
{
    if (params.chunkRows <= 0)
        return 1;
    return (height + params.chunkRows - 1) / params.chunkRows;
}

/**
 * Context model set shared by encoder and decoder.
 *
 * Significance contexts are selected by subband orientation and the
 * number of already-significant 4-neighbors; refinement bits use a
 * single model. Models persist across quality layers, mirroring the
 * decoder exactly. Each entropy chunk owns a private set.
 */
struct TileContexts
{
    /** [orientation 0..3][min(#significant neighbors,3)]. */
    std::array<std::array<BitModel, 4>, 4> significance;
    /** Magnitude refinement bits. */
    BitModel refinement;
};

/**
 * One tile's quantized wavelet coefficients in sign/magnitude form —
 * the output of the DWT+quantization stage and the input of the
 * entropy stage. Splitting the stages apart is what lets the codec
 * pipeline them (transform tile N+1 while tile N is entropy coded)
 * and fan the entropy work of one tile across row-slab chunks.
 */
struct TileCoefficients
{
    int width = 0;
    int height = 0;
    std::vector<uint32_t> magnitude;
    std::vector<uint8_t> sign;
    std::vector<uint8_t> orient; ///< Subband orientation per pixel.
};

/**
 * DWT + quantization of one tile (values in [0, 1]) into
 * sign/magnitude coefficients. Pure function of (pixels, params);
 * runs through the dispatched kernel table but every SIMD level
 * shares the scalar dataflow, so the result is level-independent.
 */
TileCoefficients transformTile(const raster::Plane &tile,
                               const TileCoderParams &params);

/**
 * Encoder for one entropy chunk (a row slab) of a transformed tile.
 *
 * Usage: construct over `[row0, row0 + rows)` of the coefficients
 * (borrowed — the TileCoefficients must outlive the encoder), call
 * encodeHeader() once, then call encodePlanes() one or more times
 * (once per quality layer) until done() or the byte budget runs out.
 * A single chunk spanning the whole tile reproduces the original
 * whole-tile coder bit for bit.
 */
class TileEncoder
{
  public:
    /**
     * @param coeffs Transformed tile (see transformTile()).
     * @param row0 First row of this chunk's slab.
     * @param rows Slab height; row0 + rows <= coeffs.height.
     * @param params Coder configuration.
     */
    TileEncoder(const TileCoefficients &coeffs, int row0, int rows,
                const TileCoderParams &params);

    /** Emit the chunk header (max magnitude bitplane of the slab). */
    void encodeHeader(RangeEncoder &enc);

    /**
     * Encode remaining bitplanes into `enc` until either all planes are
     * coded, `maxPlanes` planes have been coded by this call, or the
     * encoder's bytesWritten() reaches `byteLimit`.
     *
     * The number of planes produced is coded into the stream itself, so
     * the decoder needs no side information.
     *
     * @return Number of planes coded by this call.
     */
    int encodePlanes(RangeEncoder &enc, size_t byteLimit, int maxPlanes);

    /**
     * Progressive (EPC4) variant of encodePlanes(): emit the same
     * passes the EPC3 coder would, but framed into independently
     * flushed per-plane segments appended to `payload` (see
     * forEachSegment() for the framing). All rate decisions are made
     * against `shadow`, which receives the exact EPC3 bit sequence —
     * header bits, continue bits, pass bits — so the pass schedule,
     * and therefore the fully decoded pixels, match EPC3 bit for bit.
     * The caller owns the shadow's per-layer lifecycle (construct,
     * encodeHeader() on layer 0, flush, account its size as spent).
     *
     * @param payload Destination chunk-layer payload (appended to).
     * @param shadow EPC3-accounting coder for this layer.
     * @param shadowByteLimit Stop when shadow.bytesWritten() reaches
     *        this (the EPC3 byteLimit for this layer).
     * @param maxPlanes Cap on planes completed by this call.
     * @return Number of planes completed by this call.
     */
    int encodePlanesSegmented(std::vector<uint8_t> &payload,
                              RangeEncoder &shadow,
                              size_t shadowByteLimit, int maxPlanes);

    /** True once every bitplane has been emitted. */
    bool done() const;

    /** Planes coded so far across all calls. */
    int planesCoded() const { return planesCoded_; }

    /** Highest magnitude bitplane present (-1 for an all-zero slab). */
    int maxPlane() const { return maxPlane_; }

  private:
    TileCoderParams params_;
    int width_;
    int height_; ///< Slab height (rows), not the full tile height.
    int wordsPerRow_; ///< 64-pixel words per packed bitset row.
    /// Borrowed slab views into the TileCoefficients (offset to row0).
    const uint32_t *magnitude_;
    const uint8_t *sign_;
    const uint8_t *orient_;
    /// Word-packed per-pixel state, row stride wordsPerRow_.
    std::vector<uint64_t> sigBits_;       ///< Significant so far.
    std::vector<uint64_t> visitedBits_;   ///< Coded in pass 0, this plane.
    std::vector<uint64_t> refinableBits_; ///< Significant before this plane.
    std::vector<uint64_t> planeBits_;     ///< Magnitude bit of this plane.
    std::vector<uint64_t> dilation_;      ///< Per-row candidate scratch.
    TileContexts ctx_;
    int maxPlane_;
    int nextPlane_;
    int nextPass_; ///< 0 = sig-propagation, 1 = refinement, 2 = cleanup.
    int planesCoded_;
    bool headerDone_;

    /// The pass bodies are templated on the encoder so the EPC4 path
    /// can tee bits through a real+shadow pair (see DualEncoder in
    /// tile_coder.cc) while EPC3 keeps the plain RangeEncoder.
    template <typename Encoder>
    void encodePass(Encoder &enc, int plane, int pass);
    void beginPlane(int plane);
    template <typename Encoder> void encodeSigPass(Encoder &enc);
    template <typename Encoder> void encodeRefinePass(Encoder &enc);
    template <typename Encoder> void encodeCleanupPass(Encoder &enc);
};

/**
 * Decoder mirroring TileEncoder: decodes one entropy chunk into a
 * caller-owned slab of the tile's coefficient buffers.
 *
 * The output pointers are borrowed and pre-offset to the slab's first
 * row; a chunk writes only its own `width * rows` elements, which is
 * what makes chunk-parallel decode of one tile race-free. Usage:
 * construct, call decodeHeader() once, call decodePlanes() once per
 * encoded layer chunk; reconstruct the full tile afterwards with
 * reconstructTile().
 */
class TileDecoder
{
  public:
    /**
     * @param width Tile width in pixels.
     * @param rows Slab height in rows.
     * @param params Must match the encoder's parameters.
     * @param magnitude Slab output, `width * rows` entries, zeroed.
     * @param sign Slab output, `width * rows` entries, zeroed.
     * @param lowPlane Slab output, `width * rows` entries, zeroed.
     * @param orient Slab view of the tile's subband-orientation map.
     */
    TileDecoder(int width, int rows, const TileCoderParams &params,
                uint32_t *magnitude, uint8_t *sign, uint8_t *lowPlane,
                const uint8_t *orient);

    /** Read the chunk header. */
    void decodeHeader(RangeDecoder &dec);

    /**
     * Initialize from a raw EPC4 header byte (`maxPlane + 1`, carried
     * in the framing instead of the coded stream). Values above the
     * 5-bit header limit are clamped so a corrupt byte can never
     * drive an out-of-range bitplane shift.
     */
    void decodeHeaderRaw(uint32_t maxPlanePlus1);

    /** Decode the next group of bitplanes (one encodePlanes() call). */
    void decodePlanes(RangeDecoder &dec);

    /**
     * Decode exactly `passes` coding passes from `dec` (one EPC4
     * segment); stops early only when every plane is already decoded.
     */
    void decodePassRun(RangeDecoder &dec, int passes);

    /** Planes decoded so far. */
    int planesCoded() const { return planesCoded_; }

    /** True once every coded bitplane of this chunk was consumed. */
    bool fullyDecoded() const { return nextPlane_ < 0; }

  private:
    TileCoderParams params_;
    int width_;
    int height_; ///< Slab height (rows).
    int wordsPerRow_;
    /// Borrowed slab views into the caller's tile buffers.
    uint32_t *magnitude_;
    uint8_t *sign_;
    uint8_t *lowPlane_; ///< Lowest plane with a decoded bit.
    const uint8_t *orient_;
    /// Word-packed per-pixel state mirroring TileEncoder.
    std::vector<uint64_t> sigBits_;
    std::vector<uint64_t> visitedBits_;
    std::vector<uint64_t> refinableBits_;
    std::vector<uint64_t> dilation_;
    TileContexts ctx_;
    int maxPlane_;
    int nextPlane_;
    int nextPass_;
    int planesCoded_;

    void decodePass(RangeDecoder &dec, int plane, int pass);
    void beginPlane();
    void decodeSigPass(RangeDecoder &dec, int plane);
    void decodeRefinePass(RangeDecoder &dec, int plane);
    void decodeCleanupPass(RangeDecoder &dec, int plane);
};

/**
 * Dequantize + inverse DWT a full tile's decoded coefficients into
 * pixel space. `fullyDecoded` selects exact lossless reconstruction
 * when every plane of every chunk was decoded; otherwise the midpoint
 * reconstruction driven by `lowPlane` applies.
 */
raster::Plane reconstructTile(int width, int height,
                              const TileCoderParams &params,
                              const uint32_t *magnitude,
                              const uint8_t *sign, const uint8_t *lowPlane,
                              bool fullyDecoded);

/** A read-only byte window into a larger entropy-coded chunk. */
struct ChunkSpan
{
    const uint8_t *data = nullptr;
    size_t size = 0;
};

/** One parsed segment of a progressive (EPC4) chunk-layer payload. */
struct SegmentView
{
    const uint8_t *data = nullptr; ///< Flushed range-coded bytes.
    size_t size = 0;               ///< Segment body length.
    int passes = 0;                ///< Coding passes contained (1..3).
};

/**
 * Walk the segments of a progressive (EPC4) chunk-layer payload (the
 * layer-0 header byte must already be stripped by the caller). Each
 * segment is framed as `u32 segWord | body` with
 * `segWord = byteLen << 2 | (passCount - 1)`; this inline framing is
 * the truncation index — every offset where the walk lands cleanly
 * between segments is a recorded truncation point. Invokes
 * `fn(SegmentView)` for every complete segment, in order. Returns
 * true when the payload is a whole number of segments; false when it
 * ends inside a segment word or segment body (leading complete
 * segments are still visited).
 */
template <typename Fn>
inline bool
forEachSegment(const uint8_t *data, size_t size, Fn &&fn)
{
    size_t pos = 0;
    while (size - pos >= 4) {
        uint32_t word = util::readPodAt<uint32_t>(data, pos);
        size_t len = word >> 2;
        int passes = static_cast<int>(word & 3u) + 1;
        pos += 4;
        if (len > size - pos)
            return false;
        fn(SegmentView{data + pos, len, passes});
        pos += len;
    }
    return pos == size;
}

/**
 * Entropy-code one chunk (row slab) of a transformed tile: all
 * `layers` quality layers into private per-layer streams (one flushed
 * range coder per layer). Pure function of (coeffs, params, chunk) —
 * safe to run on any thread in any order; the per-tile stream is
 * assembled from these in fixed chunk order (assembleChunkLayers).
 *
 * @param coeffs Transformed tile.
 * @param params Coder configuration; chunkRows fixes the slab grid.
 * @param chunk Chunk index in [0, chunkCount(params, coeffs.height)).
 * @param layers Number of SNR-progressive layers (>= 1).
 * @param tileByteBudget Whole-tile entropy byte budget across all
 *        layers (ignored when params.lossless); this chunk takes its
 *        row-proportional share.
 * @return One stream per layer for this chunk.
 */
std::vector<std::vector<uint8_t>>
encodeTileChunk(const TileCoefficients &coeffs,
                const TileCoderParams &params, int chunk, int layers,
                size_t tileByteBudget);

/**
 * Assemble per-chunk per-layer streams (perChunk[chunk][layer]) into
 * the tile's per-layer sub-chunks. `framed` (the v2 format) prefixes
 * every chunk stream with its u32 byte length, in chunk order;
 * unframed (v1) requires exactly one chunk and passes its streams
 * through untouched.
 */
std::vector<std::vector<uint8_t>>
assembleChunkLayers(std::vector<std::vector<std::vector<uint8_t>>> perChunk,
                    int layers, bool framed);

/**
 * Encode one tile completely, as a single self-contained job.
 *
 * Runs the DWT + quantization and codes all `layers` quality layers
 * into private sub-chunks (one per layer, framed per
 * params.chunkRows). The output depends only on the tile pixels and
 * the parameters — chunks fan out across the global pool when it has
 * idle lanes, and the fixed assembly order makes the bytes identical
 * at every thread count.
 *
 * @param tile Pixel data, values in [0, 1].
 * @param params Coder configuration.
 * @param layers Number of SNR-progressive layers (>= 1).
 * @param byteBudget Total entropy-coded byte budget across all layers
 *        (ignored when params.lossless).
 * @return One sub-chunk per layer.
 */
std::vector<std::vector<uint8_t>>
encodeTileLayers(const raster::Plane &tile, const TileCoderParams &params,
                 int layers, size_t byteBudget);

/**
 * Decode one tile from its per-layer sub-chunks (the inverse of
 * encodeTileLayers); spans may cover fewer layers than were encoded
 * for a lower-quality prefix decode. With params.chunkRows > 0 the
 * framed chunks decode in parallel when the pool has idle lanes.
 */
raster::Plane
decodeTileLayers(int width, int height, const TileCoderParams &params,
                 const std::vector<ChunkSpan> &layerSpans);

} // namespace earthplus::codec

#endif // EARTHPLUS_CODEC_TILE_CODER_HH
