/**
 * @file
 * Embedded bitplane coder for one image tile.
 *
 * Quantized wavelet coefficients are coded magnitude-bitplane by
 * magnitude-bitplane (MSB first) with context-adaptive binary range
 * coding, so a prefix of the coded planes is a lower-quality version of
 * the tile. This provides the three codec properties Earth+ relies on:
 * bit-budget rate control (stop emitting planes when the tile budget is
 * exhausted), SNR-progressive quality layers (plane groups), and
 * graceful truncation for the layered downlink (§5, "Handling bandwidth
 * fluctuation").
 *
 * The coding passes are bitset-driven: significance, visited and
 * refinable state live in word-packed `uint64_t` planes (one fresh run
 * of words per row), each pass derives its candidate set with
 * word-level operations — pass 0 from a 4-neighbor dilation of the
 * significance plane, pass 1 from the refinable plane, pass 2 from
 * `~significant & ~visited` — and iterates only set bits. All-zero
 * words cost one test per 64 coefficients, which is what makes sparse
 * change-delta tiles (the common case in Earth+'s delta encoding)
 * cheap. The candidate evolution reproduces the per-pixel raster scan
 * exactly — including mid-pass significance propagating to the right
 * neighbor — so encoded streams are byte-identical to the original
 * per-pixel coder; `tests/golden_stream_test.cc` pins that.
 */

#ifndef EARTHPLUS_CODEC_TILE_CODER_HH
#define EARTHPLUS_CODEC_TILE_CODER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "codec/dwt.hh"
#include "codec/rangecoder.hh"
#include "raster/plane.hh"

namespace earthplus::codec {

/** Tunables shared by the tile encoder and decoder. */
struct TileCoderParams
{
    /** Dyadic decomposition levels. */
    int dwtLevels = 4;
    /** Wavelet filter; LeGall53 is required for lossless. */
    Wavelet wavelet = Wavelet::CDF97;
    /**
     * True for exact reconstruction: pixels are mapped to integers with
     * `losslessDepth` bits, transformed with the reversible 5/3 filter,
     * and every bitplane is coded.
     */
    bool lossless = false;
    /** Bit depth of the integer mapping in lossless mode. */
    int losslessDepth = 8;
    /** Deadzone quantizer step for the lossy path. */
    double quantStep = 1.0 / 512.0;
};

/**
 * Context model set shared by encoder and decoder.
 *
 * Significance contexts are selected by subband orientation and the
 * number of already-significant 4-neighbors; refinement bits use a
 * single model. Models persist across quality layers, mirroring the
 * decoder exactly.
 */
struct TileContexts
{
    /** [orientation 0..3][min(#significant neighbors,3)]. */
    std::array<std::array<BitModel, 4>, 4> significance;
    /** Magnitude refinement bits. */
    BitModel refinement;
};

/**
 * Encoder for a single tile.
 *
 * Usage: construct (runs the DWT and quantization), call encodeHeader()
 * once, then call encodePlanes() one or more times (once per quality
 * layer) until done() or the byte budget runs out.
 */
class TileEncoder
{
  public:
    /**
     * @param tile Pixel data, values in [0, 1].
     * @param params Coder configuration.
     */
    TileEncoder(const raster::Plane &tile, const TileCoderParams &params);

    /** Emit the tile header (max magnitude bitplane). */
    void encodeHeader(RangeEncoder &enc);

    /**
     * Encode remaining bitplanes into `enc` until either all planes are
     * coded, `maxPlanes` planes have been coded by this call, or the
     * encoder's bytesWritten() reaches `byteLimit`.
     *
     * The number of planes produced is coded into the stream itself, so
     * the decoder needs no side information.
     *
     * @return Number of planes coded by this call.
     */
    int encodePlanes(RangeEncoder &enc, size_t byteLimit, int maxPlanes);

    /** True once every bitplane has been emitted. */
    bool done() const;

    /** Planes coded so far across all calls. */
    int planesCoded() const { return planesCoded_; }

    /** Highest magnitude bitplane present (-1 for an all-zero tile). */
    int maxPlane() const { return maxPlane_; }

  private:
    TileCoderParams params_;
    int width_;
    int height_;
    int wordsPerRow_; ///< 64-pixel words per packed bitset row.
    std::vector<uint32_t> magnitude_;
    std::vector<uint8_t> sign_;
    std::vector<uint8_t> orient_;
    /// Word-packed per-pixel state, row stride wordsPerRow_.
    std::vector<uint64_t> sigBits_;       ///< Significant so far.
    std::vector<uint64_t> visitedBits_;   ///< Coded in pass 0, this plane.
    std::vector<uint64_t> refinableBits_; ///< Significant before this plane.
    std::vector<uint64_t> planeBits_;     ///< Magnitude bit of this plane.
    std::vector<uint64_t> dilation_;      ///< Per-row candidate scratch.
    TileContexts ctx_;
    int maxPlane_;
    int nextPlane_;
    int nextPass_; ///< 0 = sig-propagation, 1 = refinement, 2 = cleanup.
    int planesCoded_;
    bool headerDone_;

    void encodePass(RangeEncoder &enc, int plane, int pass);
    void beginPlane(int plane);
    void encodeSigPass(RangeEncoder &enc);
    void encodeRefinePass(RangeEncoder &enc);
    void encodeCleanupPass(RangeEncoder &enc);
};

/**
 * Decoder mirroring TileEncoder.
 *
 * Usage: construct, call decodeHeader() once, call decodePlanes() once
 * per encoded layer chunk, then reconstruct().
 */
class TileDecoder
{
  public:
    /**
     * @param width Tile width in pixels.
     * @param height Tile height in pixels.
     * @param params Must match the encoder's parameters.
     */
    TileDecoder(int width, int height, const TileCoderParams &params);

    /** Read the tile header. */
    void decodeHeader(RangeDecoder &dec);

    /** Decode the next group of bitplanes (one encodePlanes() call). */
    void decodePlanes(RangeDecoder &dec);

    /** Dequantize + inverse DWT into pixel space. */
    raster::Plane reconstruct() const;

    /** Planes decoded so far. */
    int planesCoded() const { return planesCoded_; }

  private:
    TileCoderParams params_;
    int width_;
    int height_;
    int wordsPerRow_;
    std::vector<uint32_t> magnitude_;
    std::vector<uint8_t> sign_;
    std::vector<uint8_t> lowPlane_; ///< Lowest plane with a decoded bit.
    std::vector<uint8_t> orient_;
    /// Word-packed per-pixel state mirroring TileEncoder.
    std::vector<uint64_t> sigBits_;
    std::vector<uint64_t> visitedBits_;
    std::vector<uint64_t> refinableBits_;
    std::vector<uint64_t> dilation_;
    TileContexts ctx_;
    int maxPlane_;
    int nextPlane_;
    int nextPass_;
    int planesCoded_;

    void decodePass(RangeDecoder &dec, int plane, int pass);
    void beginPlane();
    void decodeSigPass(RangeDecoder &dec, int plane);
    void decodeRefinePass(RangeDecoder &dec, int plane);
    void decodeCleanupPass(RangeDecoder &dec, int plane);
};

/** A read-only byte window into a larger entropy-coded chunk. */
struct ChunkSpan
{
    const uint8_t *data = nullptr;
    size_t size = 0;
};

/**
 * Encode one tile completely, as a single self-contained job.
 *
 * Runs the DWT + quantization and codes all `layers` quality layers
 * into private sub-chunks (one flushed range-coder stream per layer).
 * The output depends only on the tile pixels and the parameters, which
 * is what makes tile jobs safe to run on any thread in any order: the
 * image-level stream is assembled from these sub-chunks in
 * deterministic tile order.
 *
 * @param tile Pixel data, values in [0, 1].
 * @param params Coder configuration.
 * @param layers Number of SNR-progressive layers (>= 1).
 * @param byteBudget Total entropy-coded byte budget across all layers
 *        (ignored when params.lossless).
 * @return One sub-chunk per layer.
 */
std::vector<std::vector<uint8_t>>
encodeTileLayers(const raster::Plane &tile, const TileCoderParams &params,
                 int layers, size_t byteBudget);

/**
 * Decode one tile from its per-layer sub-chunks (the inverse of
 * encodeTileLayers); spans may cover fewer layers than were encoded
 * for a lower-quality prefix decode.
 */
raster::Plane
decodeTileLayers(int width, int height, const TileCoderParams &params,
                 const std::vector<ChunkSpan> &layerSpans);

} // namespace earthplus::codec

#endif // EARTHPLUS_CODEC_TILE_CODER_HH
