/**
 * @file
 * NEON kernel table (AArch64 baseline, 4 float lanes). Mirrors the
 * SSE2 table; compiled in automatically on AArch64 where Advanced SIMD
 * is architectural. Elsewhere the factory returns nullptr.
 */

#include "codec/kernels_impl.hh"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace earthplus::codec::kernels::detail {

namespace {

struct NeonTraits
{
    static constexpr int kWidth = 4;
    using F = float32x4_t;
    using I = int32x4_t;

    static F fload(const float *p) { return vld1q_f32(p); }
    static void fstore(float *p, F v) { vst1q_f32(p, v); }
    static F fset(float v) { return vdupq_n_f32(v); }
    static F fadd(F a, F b) { return vaddq_f32(a, b); }
    static F fsub(F a, F b) { return vsubq_f32(a, b); }
    static F fmul(F a, F b) { return vmulq_f32(a, b); }
    // Compare+select instead of vminq/vmaxq: mirrors the x86
    // MINPS/MAXPS rule (second operand on NaN/ties) that the scalar
    // reference implements, where NEON's native min/max would
    // propagate NaN and break cross-level byte-identity.
    static F fmin_(F a, F b) { return vbslq_f32(vcltq_f32(a, b), a, b); }
    static F fmax_(F a, F b) { return vbslq_f32(vcgtq_f32(a, b), a, b); }
    static F fabs_(F v) { return vabsq_f32(v); }
    static F
    fxor(F a, F b)
    {
        return vreinterpretq_f32_s32(veorq_s32(vreinterpretq_s32_f32(a),
                                               vreinterpretq_s32_f32(b)));
    }
    static F
    fandnotF(I mask, F v)
    {
        return vreinterpretq_f32_s32(
            vbicq_s32(vreinterpretq_s32_f32(v), mask));
    }
    static I
    flt0(F v)
    {
        return vreinterpretq_s32_u32(vcltq_f32(v, vdupq_n_f32(0.0f)));
    }
    static I ftoi_trunc(F v) { return vcvtq_s32_f32(v); }
    static I ftoi_round(F v) { return vcvtnq_s32_f32(v); }
    static F itof(I v) { return vcvtq_f32_s32(v); }
    static F icastF(I v) { return vreinterpretq_f32_s32(v); }

    static I iload(const int32_t *p) { return vld1q_s32(p); }
    static void istore(int32_t *p, I v) { vst1q_s32(p, v); }
    static I iset(int32_t v) { return vdupq_n_s32(v); }
    static I izero() { return vdupq_n_s32(0); }
    static I iadd(I a, I b) { return vaddq_s32(a, b); }
    static I isub(I a, I b) { return vsubq_s32(a, b); }
    static I iandnot(I mask, I v) { return vbicq_s32(v, mask); }
    static I ixor(I a, I b) { return veorq_s32(a, b); }
    static I ishl(I v, int k) { return vshlq_s32(v, vdupq_n_s32(k)); }
    static I isra(I v, int k) { return vshlq_s32(v, vdupq_n_s32(-k)); }
    static I
    icmpeq0(I v)
    {
        return vreinterpretq_s32_u32(vceqq_s32(v, vdupq_n_s32(0)));
    }
    static I imax(I a, I b) { return vmaxq_s32(a, b); }
    static I
    loadU8(const uint8_t *p)
    {
        // 4 bytes -> 4 zero-extended int32 lanes.
        uint32_t word;
        __builtin_memcpy(&word, p, sizeof(word));
        uint8x8_t b = vreinterpret_u8_u32(vdup_n_u32(word));
        uint16x4_t h = vget_low_u16(vmovl_u8(b));
        return vreinterpretq_s32_u32(vmovl_u16(h));
    }
    static unsigned
    mask01(I laneMask)
    {
        uint32x4_t m = vreinterpretq_u32_s32(laneMask);
        return (vgetq_lane_u32(m, 0) & 1u) |
               ((vgetq_lane_u32(m, 1) & 1u) << 1) |
               ((vgetq_lane_u32(m, 2) & 1u) << 2) |
               ((vgetq_lane_u32(m, 3) & 1u) << 3);
    }
    static void
    storeMasks01(uint8_t *dst, I m0, I m1, I m2, I m3)
    {
        // 16 lane masks -> 16 0/1 bytes with one store.
        int16x8_t w01 = vcombine_s16(vmovn_s32(m0), vmovn_s32(m1));
        int16x8_t w23 = vcombine_s16(vmovn_s32(m2), vmovn_s32(m3));
        int8x16_t b = vcombine_s8(vmovn_s16(w01), vmovn_s16(w23));
        b = vandq_s8(b, vdupq_n_s8(1));
        vst1q_s8(reinterpret_cast<int8_t *>(dst), b);
    }
};

} // anonymous namespace

const KernelTable *
neonTable()
{
    return makeTable<NeonTraits>(util::simd::Level::NEON);
}

} // namespace earthplus::codec::kernels::detail

#else // !AArch64 NEON

namespace earthplus::codec::kernels::detail {

const KernelTable *
neonTable()
{
    return nullptr;
}

} // namespace earthplus::codec::kernels::detail

#endif
