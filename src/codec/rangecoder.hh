/**
 * @file
 * Adaptive binary range coder (arithmetic coding backend).
 *
 * LZMA-style binary range coder with 11-bit adaptive probability models.
 * This is the entropy-coding engine underneath the tile bitplane coder;
 * together they play the role JPEG-2000's MQ-coder plays for Kakadu in
 * the paper.
 */

#ifndef EARTHPLUS_CODEC_RANGECODER_HH
#define EARTHPLUS_CODEC_RANGECODER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace earthplus::codec {

/**
 * Adaptive probability state for one binary context.
 *
 * 11-bit probability of the next bit being 0, updated with shift-5
 * exponential decay (the LZMA adaptation rule).
 */
class BitModel
{
  public:
    BitModel() : prob_(kOneHalf) {}

    /** Probability numerator (out of 2^11) that the next bit is 0. */
    uint16_t prob() const { return prob_; }

    /** Move probability toward "bit was 0". */
    void
    update0()
    {
        prob_ += static_cast<uint16_t>((kOne - prob_) >> kMoveBits);
    }

    /** Move probability toward "bit was 1". */
    void update1() { prob_ -= static_cast<uint16_t>(prob_ >> kMoveBits); }

    /** Total probability denominator exponent. */
    static constexpr int kModelBits = 11;
    /** Probability denominator (2^11). */
    static constexpr uint16_t kOne = 1u << kModelBits;
    /** Initial (maximum-entropy) probability. */
    static constexpr uint16_t kOneHalf = kOne / 2;
    /** Adaptation rate exponent. */
    static constexpr int kMoveBits = 5;

  private:
    uint16_t prob_;
};

/**
 * Binary range encoder writing to a byte vector.
 */
class RangeEncoder
{
  public:
    /** @param out Destination byte stream (appended to). */
    explicit RangeEncoder(std::vector<uint8_t> &out);

    /** Encode one bit under an adaptive model. */
    void encodeBit(BitModel &model, int bit);

    /** Encode one bit with fixed probability 1/2 (no model). */
    void encodeBitRaw(int bit);

    /** Encode `nbits` raw bits of `value`, most significant first. */
    void encodeBitsRaw(uint32_t value, int nbits);

    /**
     * Flush the coder state. Must be called exactly once at the end of a
     * chunk; after flushing, the encoder must not be reused.
     */
    void flush();

    /** Bytes emitted so far (grows as the stream is produced). */
    size_t bytesWritten() const { return out_.size() - start_; }

  private:
    std::vector<uint8_t> &out_;
    size_t start_;
    uint64_t low_;
    uint32_t range_;
    uint8_t cache_;
    uint64_t cacheSize_;
    bool flushed_;

    void shiftLow();
    void normalize();
};

/**
 * Binary range decoder reading from a byte buffer.
 *
 * Reads past the end of the buffer yield zero bytes, so decoding a
 * truncated stream degrades gracefully instead of crashing.
 */
class RangeDecoder
{
  public:
    /**
     * @param data Pointer to the chunk produced by RangeEncoder.
     * @param size Chunk size in bytes.
     */
    RangeDecoder(const uint8_t *data, size_t size);

    /** Decode one bit under an adaptive model. */
    int decodeBit(BitModel &model);

    /** Decode one raw (probability 1/2) bit. */
    int decodeBitRaw();

    /** Decode `nbits` raw bits, most significant first. */
    uint32_t decodeBitsRaw(int nbits);

    /** Bytes consumed so far. */
    size_t bytesRead() const { return pos_; }

  private:
    const uint8_t *data_;
    size_t size_;
    size_t pos_;
    uint32_t range_;
    uint32_t code_;

    uint8_t nextByte();
    void normalize();
};

} // namespace earthplus::codec

#endif // EARTHPLUS_CODEC_RANGECODER_HH
