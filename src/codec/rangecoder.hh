/**
 * @file
 * Adaptive binary range coder (arithmetic coding backend).
 *
 * LZMA-style binary range coder with 11-bit adaptive probability models.
 * This is the entropy-coding engine underneath the tile bitplane coder;
 * together they play the role JPEG-2000's MQ-coder plays for Kakadu in
 * the paper.
 *
 * The per-bit paths live in this header so the bitplane pass loops
 * inline them and keep the coder state (low/range/code and the stream
 * pointer) in registers; they are written branch-light — the bit
 * decision folds into masks, the probability update into a
 * conditional-move — and bytes move through a grow-amortized raw
 * pointer into the output vector instead of per-byte push_back. The
 * byte stream produced is bit-for-bit the one the original branchy
 * coder produced; `tests/golden_stream_test.cc` pins that.
 */

#ifndef EARTHPLUS_CODEC_RANGECODER_HH
#define EARTHPLUS_CODEC_RANGECODER_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace earthplus::codec {

/** Renormalization threshold shared by encoder and decoder. */
constexpr uint32_t kRangeTop = 1u << 24;

/**
 * Adaptive probability state for one binary context.
 *
 * 11-bit probability of the next bit being 0, updated with shift-5
 * exponential decay (the LZMA adaptation rule).
 */
class BitModel
{
  public:
    BitModel() : prob_(kOneHalf) {}

    /** Probability numerator (out of 2^11) that the next bit is 0. */
    uint16_t prob() const { return prob_; }

    /** Move probability toward "bit was 0". */
    void
    update0()
    {
        prob_ += static_cast<uint16_t>((kOne - prob_) >> kMoveBits);
    }

    /** Move probability toward "bit was 1". */
    void update1() { prob_ -= static_cast<uint16_t>(prob_ >> kMoveBits); }

    /**
     * Combined update, exactly update0()/update1() but with both deltas
     * computed up front so the select compiles to a conditional move.
     */
    void
    update(uint32_t bit)
    {
        uint16_t d0 = static_cast<uint16_t>((kOne - prob_) >> kMoveBits);
        uint16_t d1 = static_cast<uint16_t>(prob_ >> kMoveBits);
        prob_ = static_cast<uint16_t>(bit ? prob_ - d1 : prob_ + d0);
    }

    /** Total probability denominator exponent. */
    static constexpr int kModelBits = 11;
    /** Probability denominator (2^11). */
    static constexpr uint16_t kOne = 1u << kModelBits;
    /** Initial (maximum-entropy) probability. */
    static constexpr uint16_t kOneHalf = kOne / 2;
    /** Adaptation rate exponent. */
    static constexpr int kMoveBits = 5;

  private:
    uint16_t prob_;
};

/**
 * Binary range encoder writing to a byte vector.
 *
 * The destination vector is used as raw storage while encoding (its
 * size() overshoots the bytes actually written); flush() trims it to
 * the exact stream, so the vector must only be read after flush().
 * Holds raw pointers into the vector: not copyable, and the vector
 * must not be touched by the caller between construction and flush().
 */
class RangeEncoder
{
  public:
    /** @param out Destination byte stream (appended to). */
    explicit RangeEncoder(std::vector<uint8_t> &out);

    RangeEncoder(const RangeEncoder &) = delete;
    RangeEncoder &operator=(const RangeEncoder &) = delete;

    /** Encode one bit under an adaptive model. */
    void
    encodeBit(BitModel &model, int bit)
    {
        uint32_t b = static_cast<uint32_t>(bit != 0);
        encodeBitProb(model.prob(), bit);
        model.update(b);
    }

    /**
     * Encode one bit under a caller-supplied probability without
     * touching any model. This is the tee primitive of the progressive
     * (EPC4) encoder: two coders (the real per-segment stream and the
     * EPC3-accounting shadow) consume the identical (probability, bit)
     * sequence while the shared BitModel is updated exactly once by
     * the caller — so the shadow's byte count reproduces the EPC3
     * coder's rate decisions bit for bit.
     */
    void
    encodeBitProb(uint16_t prob, int bit)
    {
        uint32_t b = static_cast<uint32_t>(bit != 0);
        uint32_t bound = (range_ >> BitModel::kModelBits) * prob;
        uint32_t mask = 0u - b;
        low_ += bound & mask;
        range_ = bound + ((range_ - 2 * bound) & mask);
        if (range_ < kRangeTop)
            normalize();
    }

    /** Encode one bit with fixed probability 1/2 (no model). */
    void
    encodeBitRaw(int bit)
    {
        range_ >>= 1;
        low_ += range_ & (0u - static_cast<uint32_t>(bit != 0));
        if (range_ < kRangeTop)
            normalize();
    }

    /** Encode `nbits` raw bits of `value`, most significant first. */
    void encodeBitsRaw(uint32_t value, int nbits);

    /**
     * Flush the coder state and trim the destination vector to the
     * bytes actually written. Must be called exactly once at the end of
     * a chunk; after flushing, the encoder must not be reused.
     */
    void flush();

    /**
     * Bytes emitted so far (grows as the stream is produced); after
     * flush(), the final stream length.
     */
    size_t
    bytesWritten() const
    {
        return flushed_ ? finalBytes_
                        : static_cast<size_t>(ptr_ - base_);
    }

  private:
    std::vector<uint8_t> &out_;
    size_t start_;      ///< out_.size() at construction.
    size_t finalBytes_; ///< Stream length, recorded by flush().
    uint8_t *base_;     ///< &out_[start_] (null until first grow).
    uint8_t *ptr_;      ///< Next write position.
    uint8_t *limit_;    ///< End of the grown storage region.
    uint64_t low_;
    uint32_t range_;
    uint8_t cache_;
    uint64_t cacheSize_;
    bool flushed_;

    /** Grow out_ so at least `need` more bytes fit; cold path. */
    void grow(uint64_t need);

    void
    shiftLow()
    {
        if (static_cast<uint32_t>(low_ >> 32) != 0 ||
            static_cast<uint32_t>(low_) < 0xFF000000u) {
            uint8_t carry = static_cast<uint8_t>(low_ >> 32);
            uint64_t run = cacheSize_;
            if (static_cast<uint64_t>(limit_ - ptr_) < run)
                grow(run);
            uint8_t *p = ptr_;
            *p++ = static_cast<uint8_t>(cache_ + carry);
            uint8_t fill = static_cast<uint8_t>(0xFFu + carry);
            while (--run != 0)
                *p++ = fill;
            ptr_ = p;
            cache_ = static_cast<uint8_t>(low_ >> 24);
            cacheSize_ = 0;
        }
        ++cacheSize_;
        low_ = (low_ & 0x00FFFFFFu) << 8;
    }

    void
    normalize()
    {
        do {
            range_ <<= 8;
            shiftLow();
        } while (range_ < kRangeTop);
    }
};

/**
 * Binary range decoder reading from a byte buffer.
 *
 * Reads past the end of the buffer yield zero bytes, so decoding a
 * truncated stream degrades gracefully instead of crashing.
 */
class RangeDecoder
{
  public:
    /**
     * @param data Pointer to the chunk produced by RangeEncoder.
     * @param size Chunk size in bytes.
     */
    RangeDecoder(const uint8_t *data, size_t size);

    /** Decode one bit under an adaptive model. */
    int
    decodeBit(BitModel &model)
    {
        uint32_t bound = (range_ >> BitModel::kModelBits) * model.prob();
        uint32_t mask = 0u - static_cast<uint32_t>(code_ >= bound);
        code_ -= bound & mask;
        range_ = bound + ((range_ - 2 * bound) & mask);
        model.update(mask & 1u);
        if (range_ < kRangeTop)
            normalize();
        return static_cast<int>(mask & 1u);
    }

    /** Decode one raw (probability 1/2) bit. */
    int
    decodeBitRaw()
    {
        range_ >>= 1;
        uint32_t mask = 0u - static_cast<uint32_t>(code_ >= range_);
        code_ -= range_ & mask;
        if (range_ < kRangeTop)
            normalize();
        return static_cast<int>(mask & 1u);
    }

    /** Decode `nbits` raw bits, most significant first. */
    uint32_t decodeBitsRaw(int nbits);

    /** Bytes consumed so far. */
    size_t
    bytesRead() const
    {
        return static_cast<size_t>(ptr_ - begin_);
    }

  private:
    const uint8_t *begin_;
    const uint8_t *ptr_;
    const uint8_t *end_;
    uint32_t range_;
    uint32_t code_;

    uint8_t
    nextByte()
    {
        return ptr_ != end_ ? *ptr_++ : 0;
    }

    void
    normalize()
    {
        do {
            range_ <<= 8;
            code_ = (code_ << 8) | nextByte();
        } while (range_ < kRangeTop);
    }
};

} // namespace earthplus::codec

#endif // EARTHPLUS_CODEC_RANGECODER_HH
