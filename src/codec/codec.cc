#include "codec/codec.hh"

#include <algorithm>
#include <climits>
#include <cstring>

#include "util/logging.hh"

namespace earthplus::codec {

namespace {

constexpr uint32_t kMagic = 0x31435045; // "EPC1"

/** Fixed serialized header size in bytes. */
constexpr size_t kFixedHeader =
    4 +          // magic
    6 * 4 +      // width, height, tileSize, dwtLevels, layers, flags
    8 +          // quantStep
    4;           // tile count

template <typename T>
void
appendPod(std::vector<uint8_t> &out, const T &v)
{
    const auto *p = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T
readPod(const std::vector<uint8_t> &in, size_t &pos)
{
    if (pos + sizeof(T) > in.size())
        fatal("encoded image stream truncated");
    T v;
    std::memcpy(&v, in.data() + pos, sizeof(T));
    pos += sizeof(T);
    return v;
}

} // anonymous namespace

size_t
EncodedImage::payloadBytes() const
{
    size_t total = 0;
    for (const auto &chunk : layerChunks)
        total += chunk.size();
    return total;
}

size_t
EncodedImage::headerBytes() const
{
    // Fixed header + packed coded-tile bitmap + per-layer length fields.
    return kFixedHeader + (tileCoded.size() + 7) / 8 +
           4 * layerChunks.size();
}

size_t
EncodedImage::totalBytes() const
{
    return headerBytes() + payloadBytes();
}

size_t
EncodedImage::totalBytesForLayers(int layerCount) const
{
    if (layerCount < 0 ||
        layerCount > static_cast<int>(layerChunks.size()))
        layerCount = static_cast<int>(layerChunks.size());
    size_t total = kFixedHeader + (tileCoded.size() + 7) / 8 +
                   4 * static_cast<size_t>(layerCount);
    for (int l = 0; l < layerCount; ++l)
        total += layerChunks[static_cast<size_t>(l)].size();
    return total;
}

double
EncodedImage::codedTileFraction() const
{
    if (tileCoded.empty())
        return 0.0;
    size_t set = 0;
    for (uint8_t f : tileCoded)
        set += f;
    return static_cast<double>(set) /
           static_cast<double>(tileCoded.size());
}

std::vector<uint8_t>
EncodedImage::serialize() const
{
    std::vector<uint8_t> out;
    out.reserve(totalBytes());
    appendPod(out, kMagic);
    appendPod(out, static_cast<uint32_t>(width));
    appendPod(out, static_cast<uint32_t>(height));
    appendPod(out, static_cast<uint32_t>(tileSize));
    appendPod(out, static_cast<uint32_t>(dwtLevels));
    appendPod(out, static_cast<uint32_t>(layers));
    uint32_t flags = (wavelet == Wavelet::LeGall53 ? 1u : 0u) |
                     (lossless ? 2u : 0u) |
                     (static_cast<uint32_t>(losslessDepth) << 8);
    appendPod(out, flags);
    appendPod(out, quantStep);
    appendPod(out, static_cast<uint32_t>(tileCoded.size()));
    // Packed coded-tile bitmap.
    for (size_t i = 0; i < tileCoded.size(); i += 8) {
        uint8_t b = 0;
        for (size_t j = 0; j < 8 && i + j < tileCoded.size(); ++j)
            b |= static_cast<uint8_t>((tileCoded[i + j] ? 1 : 0) << j);
        out.push_back(b);
    }
    for (const auto &chunk : layerChunks) {
        appendPod(out, static_cast<uint32_t>(chunk.size()));
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    return out;
}

EncodedImage
EncodedImage::deserialize(const std::vector<uint8_t> &bytes)
{
    size_t pos = 0;
    if (readPod<uint32_t>(bytes, pos) != kMagic)
        fatal("bad encoded-image magic");
    EncodedImage e;
    e.width = static_cast<int>(readPod<uint32_t>(bytes, pos));
    e.height = static_cast<int>(readPod<uint32_t>(bytes, pos));
    e.tileSize = static_cast<int>(readPod<uint32_t>(bytes, pos));
    e.dwtLevels = static_cast<int>(readPod<uint32_t>(bytes, pos));
    e.layers = static_cast<int>(readPod<uint32_t>(bytes, pos));
    uint32_t flags = readPod<uint32_t>(bytes, pos);
    e.wavelet = (flags & 1u) ? Wavelet::LeGall53 : Wavelet::CDF97;
    e.lossless = (flags & 2u) != 0;
    e.losslessDepth = static_cast<int>((flags >> 8) & 0xFFu);
    e.quantStep = readPod<double>(bytes, pos);
    uint32_t tiles = readPod<uint32_t>(bytes, pos);
    e.tileCoded.resize(tiles);
    size_t packed = (static_cast<size_t>(tiles) + 7) / 8;
    if (pos + packed > bytes.size())
        fatal("encoded image stream truncated in tile bitmap");
    for (size_t i = 0; i < tiles; ++i)
        e.tileCoded[i] = (bytes[pos + i / 8] >> (i % 8)) & 1u;
    pos += packed;
    for (int l = 0; l < e.layers; ++l) {
        uint32_t size = readPod<uint32_t>(bytes, pos);
        if (pos + size > bytes.size())
            fatal("encoded image stream truncated in layer %d", l);
        e.layerChunks.emplace_back(bytes.begin() +
                                       static_cast<ptrdiff_t>(pos),
                                   bytes.begin() +
                                       static_cast<ptrdiff_t>(pos + size));
        pos += size;
    }
    return e;
}

EncodedImage
encode(const raster::Plane &img, const EncodeParams &params)
{
    EP_ASSERT(params.layers >= 1, "need at least one quality layer");
    EP_ASSERT(params.bitsPerPixel > 0.0 || params.lossless,
              "non-positive bit budget");
    EP_ASSERT(!params.lossless || params.wavelet == Wavelet::LeGall53,
              "lossless coding requires the LeGall 5/3 wavelet");

    raster::TileGrid grid(img.width(), img.height(), params.tileSize);
    if (params.roi) {
        EP_ASSERT(params.roi->tilesX() == grid.tilesX() &&
                  params.roi->tilesY() == grid.tilesY(),
                  "ROI mask (%dx%d tiles) does not match grid (%dx%d)",
                  params.roi->tilesX(), params.roi->tilesY(),
                  grid.tilesX(), grid.tilesY());
    }

    EncodedImage out;
    out.width = img.width();
    out.height = img.height();
    out.tileSize = params.tileSize;
    out.dwtLevels = params.dwtLevels;
    out.layers = params.layers;
    out.wavelet = params.wavelet;
    out.lossless = params.lossless;
    out.losslessDepth = params.losslessDepth;
    out.quantStep = params.quantStep;
    out.tileCoded.assign(static_cast<size_t>(grid.tileCount()), 0);

    TileCoderParams tp;
    tp.dwtLevels = params.dwtLevels;
    tp.wavelet = params.wavelet;
    tp.lossless = params.lossless;
    tp.losslessDepth = params.losslessDepth;
    tp.quantStep = params.quantStep;

    struct TileState
    {
        TileEncoder coder;
        size_t budget;   // total byte budget across all layers
        size_t spent;    // bytes consumed so far
    };
    std::vector<TileState> states;
    std::vector<int> codedTiles;
    for (int t = 0; t < grid.tileCount(); ++t) {
        if (params.roi && !params.roi->get(t))
            continue;
        out.tileCoded[static_cast<size_t>(t)] = 1;
        codedTiles.push_back(t);
        raster::TileRect r = grid.rect(t);
        raster::Plane tile = img.crop(r.x0, r.y0, r.width, r.height);
        size_t pixels = static_cast<size_t>(r.width) *
                        static_cast<size_t>(r.height);
        size_t budget = params.lossless
            ? SIZE_MAX / 2
            : static_cast<size_t>(params.bitsPerPixel *
                                  static_cast<double>(pixels) / 8.0);
        states.push_back(TileState{TileEncoder(tile, tp), budget, 0});
    }

    for (int layer = 0; layer < params.layers; ++layer) {
        std::vector<uint8_t> chunk;
        RangeEncoder enc(chunk);
        for (size_t s = 0; s < states.size(); ++s) {
            TileState &st = states[s];
            size_t before = enc.bytesWritten();
            if (layer == 0)
                st.coder.encodeHeader(enc);
            // Cumulative budget through this layer grows linearly so
            // each layer carries a roughly equal share of the bits.
            size_t cumBudget = params.lossless
                ? SIZE_MAX / 2
                : st.budget * static_cast<size_t>(layer + 1) /
                      static_cast<size_t>(params.layers);
            size_t remaining =
                cumBudget > st.spent ? cumBudget - st.spent : 0;
            int maxPlanes = INT_MAX;
            if (params.lossless) {
                // Spread bitplanes evenly across layers.
                int total = st.coder.maxPlane() + 1;
                maxPlanes = (total + params.layers - 1) / params.layers;
            }
            st.coder.encodePlanes(enc, enc.bytesWritten() + remaining,
                                  maxPlanes);
            st.spent += enc.bytesWritten() - before;
        }
        enc.flush();
        out.layerChunks.push_back(std::move(chunk));
    }
    return out;
}

raster::Plane
decode(const EncodedImage &e, int maxLayers)
{
    raster::TileGrid grid(e.width, e.height, e.tileSize);
    EP_ASSERT(static_cast<int>(e.tileCoded.size()) == grid.tileCount(),
              "coded-tile flags (%zu) do not match grid (%d)",
              e.tileCoded.size(), grid.tileCount());
    if (maxLayers < 0 || maxLayers > static_cast<int>(e.layerChunks.size()))
        maxLayers = static_cast<int>(e.layerChunks.size());

    TileCoderParams tp;
    tp.dwtLevels = e.dwtLevels;
    tp.wavelet = e.wavelet;
    tp.lossless = e.lossless;
    tp.losslessDepth = e.losslessDepth;
    tp.quantStep = e.quantStep;

    std::vector<TileDecoder> decoders;
    std::vector<int> codedTiles;
    for (int t = 0; t < grid.tileCount(); ++t) {
        if (!e.tileCoded[static_cast<size_t>(t)])
            continue;
        codedTiles.push_back(t);
        raster::TileRect r = grid.rect(t);
        decoders.emplace_back(r.width, r.height, tp);
    }

    for (int layer = 0; layer < maxLayers; ++layer) {
        const auto &chunk = e.layerChunks[static_cast<size_t>(layer)];
        RangeDecoder dec(chunk.data(), chunk.size());
        for (size_t s = 0; s < decoders.size(); ++s) {
            if (layer == 0)
                decoders[s].decodeHeader(dec);
            decoders[s].decodePlanes(dec);
        }
    }

    raster::Plane out(e.width, e.height, 0.0f);
    for (size_t s = 0; s < decoders.size(); ++s) {
        raster::TileRect r = grid.rect(codedTiles[s]);
        out.paste(decoders[s].reconstruct(), r.x0, r.y0);
    }
    return out;
}

} // namespace earthplus::codec
