#include "codec/codec.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <future>
#include <memory>

#include "util/bytes.hh"
#include "util/logging.hh"
#include "util/parallel.hh"
#include "util/telemetry.hh"

namespace earthplus::codec {

namespace {

/**
 * Codec-pipeline metrics, resolved once per process. Registry entries
 * are leaked, so the references stay valid forever.
 */
struct CodecMetrics
{
    telemetry::Counter &tilesEncoded =
        telemetry::counter("codec.tiles_encoded");
    telemetry::Counter &tilesDecoded =
        telemetry::counter("codec.tiles_decoded");
    telemetry::Histogram &transformNs =
        telemetry::histogram("codec.transform_ns");
    telemetry::Histogram &entropyChunkNs =
        telemetry::histogram("codec.entropy_chunk_ns");
    telemetry::Counter &stalls =
        telemetry::counter("codec.pipeline.stalls");
    telemetry::Histogram &stallNs =
        telemetry::histogram("codec.pipeline.stall_ns");
};

CodecMetrics &
codecMetrics()
{
    static CodecMetrics m;
    return m;
}

// "EPC2": bumped from EPC1 when layer chunks gained per-tile length
// framing, so streams from the old format are rejected instead of
// decoding as garbage. Still accepted for decode (chunkRows == 0).
constexpr uint32_t kMagicV1 = 0x32435045;

// "EPC3": adds the chunkRows header field and frames each tile's
// per-layer sub-chunk into length-prefixed row-slab entropy chunks
// (the sub-tile parallelism format). Emitted when chunkRows > 0 and
// progressive framing is off.
constexpr uint32_t kMagicV2 = 0x33435045;

// "EPC4": same header layout as EPC3, but each chunk-layer payload is
// a sequence of independently flushed per-plane segments (plus a raw
// maxPlane byte in layer 0) whose inline framing records truncation
// points — the stream decodes best-effort from any prefix cut at a
// recorded point. Emitted when chunkRows > 0 and progressive framing
// is on.
constexpr uint32_t kMagicV3 = 0x34435045;

/** Fixed serialized header size in bytes (v2 adds 4 for chunkRows). */
constexpr size_t kFixedHeader =
    4 +          // magic
    6 * 4 +      // width, height, tileSize, dwtLevels, layers, flags
    8 +          // quantStep
    4;           // tile count

using util::appendPod;

/** Bounds-checked cursor read: false on truncation, advances pos. */
template <typename T>
bool
tryReadPod(const uint8_t *in, size_t len, size_t &pos, T &out)
{
    if (pos + sizeof(T) > len)
        return false;
    out = util::readPodAt<T>(in, pos);
    pos += sizeof(T);
    return true;
}

/** printf-style diagnostic for the non-fatal parse path. */
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
formatError(const char *fmt, ...)
{
    char buf[192];
    va_list ap;
    va_start(ap, fmt);
    vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    return buf;
}

/**
 * Segment-level check of a possibly partial EPC4 chunk payload: the
 * cut must land between segments (or right after the layer-0 header
 * byte), never inside a segment word or body.
 */
bool
validChunkPayloadPrefix(const uint8_t *data, size_t size, bool layer0)
{
    if (layer0) {
        if (size == 0)
            return true;
        ++data;
        --size;
    }
    return forEachSegment(data, size, [](const SegmentView &) {});
}

/** Chunk-frame walk of the partial tile sub-chunk that ends a cut. */
bool
validTilePrefix(const uint8_t *data, size_t size, bool layer0)
{
    size_t pos = 0;
    while (pos != size) {
        if (size - pos < 4)
            return false;
        uint32_t ecLen = util::readPodAt<uint32_t>(data, pos);
        pos += 4;
        if (ecLen > size - pos)
            return validChunkPayloadPrefix(data + pos, size - pos,
                                           layer0);
        pos += ecLen;
    }
    return true;
}

/**
 * True iff `size` bytes are a valid prefix of an EPC4 layer payload
 * over `nCodedTiles` sub-chunks — i.e. the cut that shortened the
 * enclosing stream landed on a recorded truncation point.
 */
bool
validLayerPrefix(const uint8_t *data, size_t size, size_t nCodedTiles,
                 bool layer0)
{
    size_t pos = 0;
    for (size_t t = 0; t < nCodedTiles; ++t) {
        if (pos == size)
            return true;
        if (size - pos < 4)
            return false;
        uint32_t subLen = util::readPodAt<uint32_t>(data, pos);
        pos += 4;
        if (subLen > size - pos)
            return validTilePrefix(data + pos, size - pos, layer0);
        pos += subLen;
    }
    return pos == size;
}

} // anonymous namespace

size_t
EncodedImage::payloadBytes() const
{
    size_t total = 0;
    for (const auto &chunk : layerChunks)
        total += chunk.size();
    return total;
}

size_t
EncodedImage::headerBytes() const
{
    // Fixed header (+ chunkRows in v2) + packed coded-tile bitmap +
    // per-layer length fields.
    return kFixedHeader + (chunkRows > 0 ? 4 : 0) +
           (tileCoded.size() + 7) / 8 + 4 * layerChunks.size();
}

size_t
EncodedImage::totalBytes() const
{
    return headerBytes() + payloadBytes();
}

size_t
EncodedImage::totalBytesForLayers(int layerCount) const
{
    if (layerCount < 0 ||
        layerCount > static_cast<int>(layerChunks.size()))
        layerCount = static_cast<int>(layerChunks.size());
    size_t total = kFixedHeader + (chunkRows > 0 ? 4 : 0) +
                   (tileCoded.size() + 7) / 8 +
                   4 * static_cast<size_t>(layerCount);
    for (int l = 0; l < layerCount; ++l)
        total += layerChunks[static_cast<size_t>(l)].size();
    return total;
}

double
EncodedImage::codedTileFraction() const
{
    if (tileCoded.empty())
        return 0.0;
    size_t set = 0;
    for (uint8_t f : tileCoded)
        set += f;
    return static_cast<double>(set) /
           static_cast<double>(tileCoded.size());
}

std::vector<uint8_t>
EncodedImage::serialize() const
{
    std::vector<uint8_t> out;
    EP_ASSERT(!truncated, "cannot re-serialize a truncated stream");
    out.reserve(totalBytes());
    appendPod(out, chunkRows > 0 ? (progressive ? kMagicV3 : kMagicV2)
                                 : kMagicV1);
    appendPod(out, static_cast<uint32_t>(width));
    appendPod(out, static_cast<uint32_t>(height));
    appendPod(out, static_cast<uint32_t>(tileSize));
    appendPod(out, static_cast<uint32_t>(dwtLevels));
    appendPod(out, static_cast<uint32_t>(layers));
    uint32_t flags = (wavelet == Wavelet::LeGall53 ? 1u : 0u) |
                     (lossless ? 2u : 0u) |
                     (static_cast<uint32_t>(losslessDepth) << 8);
    appendPod(out, flags);
    appendPod(out, quantStep);
    if (chunkRows > 0)
        appendPod(out, static_cast<uint32_t>(chunkRows));
    appendPod(out, static_cast<uint32_t>(tileCoded.size()));
    // Packed coded-tile bitmap.
    for (size_t i = 0; i < tileCoded.size(); i += 8) {
        uint8_t b = 0;
        for (size_t j = 0; j < 8 && i + j < tileCoded.size(); ++j)
            b |= static_cast<uint8_t>((tileCoded[i + j] ? 1 : 0) << j);
        out.push_back(b);
    }
    for (const auto &chunk : layerChunks) {
        appendPod(out, static_cast<uint32_t>(chunk.size()));
        out.insert(out.end(), chunk.begin(), chunk.end());
    }
    return out;
}

EncodedImage
EncodedImage::deserialize(const std::vector<uint8_t> &bytes)
{
    return deserialize(bytes.data(), bytes.size());
}

namespace {

/**
 * The shared parse behind deserialize()/tryDeserialize(). Every field
 * is validated before use: a truncated or corrupt stream must produce
 * a typed error (with the diagnostic deserialize() dies with in
 * `msg`) instead of out-of-bounds reads or absurd allocations. A
 * progressive stream cut at a recorded truncation point parses
 * successfully with `e.truncated` set.
 */
StreamError
parseStream(const uint8_t *data, size_t len, EncodedImage &e,
            std::string &msg)
{
    constexpr uint32_t kMaxDim = 1u << 20;      // 1M pixels per edge
    constexpr uint64_t kMaxPixels = 1ull << 28; // ~1 GB decoded plane
    constexpr uint32_t kMaxLayers = 1u << 16;

    auto cut = [&msg] {
        msg = "encoded image stream truncated";
        return StreamError::Truncated;
    };

    size_t pos = 0;
    uint32_t magic = 0;
    if (!tryReadPod(data, len, pos, magic))
        return cut();
    if (magic != kMagicV1 && magic != kMagicV2 && magic != kMagicV3) {
        msg = "bad encoded-image magic";
        return StreamError::Corrupt;
    }
    // Version-gated decode: the magic alone selects the stream layout,
    // and v1 (EPC2) streams stay decodable forever — chunkRows == 0
    // routes them through the original unframed tile-chunk path.
    const bool framed = magic != kMagicV1;
    e.progressive = magic == kMagicV3;
    uint32_t width = 0;
    uint32_t height = 0;
    uint32_t tileSize = 0;
    uint32_t dwtLevels = 0;
    uint32_t layers = 0;
    if (!tryReadPod(data, len, pos, width) ||
        !tryReadPod(data, len, pos, height) ||
        !tryReadPod(data, len, pos, tileSize) ||
        !tryReadPod(data, len, pos, dwtLevels) ||
        !tryReadPod(data, len, pos, layers))
        return cut();
    if (width == 0 || width > kMaxDim || height == 0 ||
        height > kMaxDim) {
        msg = formatError("encoded image has invalid dimensions %ux%u",
                          width, height);
        return StreamError::Corrupt;
    }
    if (static_cast<uint64_t>(width) * height > kMaxPixels) {
        msg = formatError(
            "encoded image dimensions %ux%u exceed the %llu-pixel cap",
            width, height, static_cast<unsigned long long>(kMaxPixels));
        return StreamError::Corrupt;
    }
    if (tileSize == 0 || tileSize > kMaxDim) {
        msg = formatError("encoded image has invalid tile size %u",
                          tileSize);
        return StreamError::Corrupt;
    }
    if (dwtLevels > 30) {
        msg = formatError(
            "encoded image has invalid DWT level count %u", dwtLevels);
        return StreamError::Corrupt;
    }
    if (layers == 0 || layers > kMaxLayers) {
        msg = formatError("encoded image has invalid layer count %u",
                          layers);
        return StreamError::Corrupt;
    }
    e.width = static_cast<int>(width);
    e.height = static_cast<int>(height);
    e.tileSize = static_cast<int>(tileSize);
    e.dwtLevels = static_cast<int>(dwtLevels);
    e.layers = static_cast<int>(layers);
    uint32_t flags = 0;
    if (!tryReadPod(data, len, pos, flags))
        return cut();
    e.wavelet = (flags & 1u) ? Wavelet::LeGall53 : Wavelet::CDF97;
    e.lossless = (flags & 2u) != 0;
    e.losslessDepth = static_cast<int>((flags >> 8) & 0xFFu);
    if (e.lossless &&
        (e.losslessDepth < 1 || e.losslessDepth > 16 ||
         e.wavelet != Wavelet::LeGall53)) {
        msg = formatError(
            "encoded image has invalid lossless flags 0x%x", flags);
        return StreamError::Corrupt;
    }
    if (!tryReadPod(data, len, pos, e.quantStep))
        return cut();
    if (!std::isfinite(e.quantStep) || e.quantStep <= 0.0) {
        msg = "encoded image has invalid quantizer step";
        return StreamError::Corrupt;
    }
    if (framed) {
        uint32_t chunkRows = 0;
        if (!tryReadPod(data, len, pos, chunkRows))
            return cut();
        if (chunkRows == 0 || chunkRows > kMaxDim) {
            msg = formatError(
                "encoded image has invalid chunk height %u", chunkRows);
            return StreamError::Corrupt;
        }
        e.chunkRows = static_cast<int>(chunkRows);
    }
    uint32_t tiles = 0;
    if (!tryReadPod(data, len, pos, tiles))
        return cut();
    uint64_t tilesX = (width + tileSize - 1) / tileSize;
    uint64_t tilesY = (height + tileSize - 1) / tileSize;
    if (tiles != tilesX * tilesY) {
        msg = formatError(
            "encoded image tile count %u does not match its "
            "%ux%u/%u grid (%llu tiles)",
            tiles, width, height, tileSize,
            static_cast<unsigned long long>(tilesX * tilesY));
        return StreamError::Corrupt;
    }
    // Bounds-check the packed bitmap BEFORE sizing tileCoded, so a
    // corrupt tile count cannot drive a huge allocation.
    size_t packed = (static_cast<size_t>(tiles) + 7) / 8;
    if (packed > len - pos) {
        msg = "encoded image stream truncated in tile bitmap";
        return StreamError::Truncated;
    }
    e.tileCoded.resize(tiles);
    size_t nCoded = 0;
    for (size_t i = 0; i < tiles; ++i) {
        e.tileCoded[i] = (data[pos + i / 8] >> (i % 8)) & 1u;
        nCoded += e.tileCoded[i];
    }
    pos += packed;
    for (int l = 0; l < e.layers; ++l) {
        if (e.progressive && pos == len) {
            // Clean cut at a layer boundary: the remaining layers
            // never arrived; decode degrades to the layers present.
            e.truncated = true;
            return StreamError::None;
        }
        uint32_t size = 0;
        if (!tryReadPod(data, len, pos, size))
            return cut();
        if (size > len - pos) {
            if (e.progressive &&
                validLayerPrefix(data + pos, len - pos, nCoded,
                                 l == 0)) {
                // Recorded mid-layer truncation point: keep the
                // partial layer; its segments decode best-effort.
                e.layerChunks.emplace_back(data + pos, data + len);
                e.truncated = true;
                return StreamError::None;
            }
            msg = formatError(
                "encoded image stream truncated in layer %d: chunk "
                "of %u bytes but only %zu remain",
                l, size, len - pos);
            return StreamError::Truncated;
        }
        e.layerChunks.emplace_back(data + pos, data + pos + size);
        pos += size;
    }
    return StreamError::None;
}

} // anonymous namespace

EncodedImage
EncodedImage::deserialize(const uint8_t *data, size_t len)
{
    EncodedImage e;
    std::string msg;
    if (parseStream(data, len, e, msg) != StreamError::None)
        fatal("%s", msg.c_str());
    return e;
}

StreamError
EncodedImage::tryDeserialize(const uint8_t *data, size_t len,
                             EncodedImage &out, std::string *message)
{
    EncodedImage e;
    std::string msg;
    StreamError err = parseStream(data, len, e, msg);
    if (err == StreamError::None)
        out = std::move(e);
    else if (message)
        *message = std::move(msg);
    return err;
}

namespace {

/** The header facts the truncation walkers need, parsed cheaply. */
struct StreamShape
{
    uint32_t magic = 0;
    int layers = 0;
    size_t nCoded = 0; ///< Coded tiles (set bits in the bitmap).
    size_t floor = 0;  ///< Offset just past the coded-tile bitmap.
};

/** Minimal header read for the walkers; fatal() on a broken header. */
StreamShape
readShape(const uint8_t *data, size_t len)
{
    StreamShape sh;
    size_t pos = 0;
    auto rd32 = [&]() -> uint32_t {
        if (len - pos < 4)
            fatal("encoded image stream truncated");
        uint32_t v = util::readPodAt<uint32_t>(data, pos);
        pos += 4;
        return v;
    };
    sh.magic = rd32();
    if (sh.magic != kMagicV1 && sh.magic != kMagicV2 &&
        sh.magic != kMagicV3)
        fatal("bad encoded-image magic");
    rd32(); // width
    rd32(); // height
    rd32(); // tileSize
    rd32(); // dwtLevels
    sh.layers = static_cast<int>(rd32());
    rd32(); // flags
    if (len - pos < 8)
        fatal("encoded image stream truncated");
    pos += 8; // quantStep
    if (sh.magic != kMagicV1)
        rd32(); // chunkRows
    uint32_t tiles = rd32();
    size_t packed = (static_cast<size_t>(tiles) + 7) / 8;
    if (packed > len - pos)
        fatal("encoded image stream truncated in tile bitmap");
    for (size_t i = 0; i < tiles; ++i)
        sh.nCoded += (data[pos + i / 8] >> (i % 8)) & 1u;
    pos += packed;
    sh.floor = pos;
    return sh;
}

/**
 * Visit every recorded truncation point of a complete progressive
 * stream in ascending order; `fn(offset)` returning false stops the
 * walk. The set visited here is exactly the set of prefix lengths
 * parseStream() accepts — tests/progressive_test.cc pins the two
 * against each other. fatal() on non-progressive or overrunning
 * framing (the input must be a full, valid EPC4 stream).
 */
template <typename Fn>
void
walkTruncationPoints(const uint8_t *data, size_t len, Fn &&fn)
{
    StreamShape sh = readShape(data, len);
    if (sh.magic != kMagicV3)
        fatal("stream is not progressive (EPC4): no truncation points");
    auto need = [&](size_t pos, size_t n) {
        if (n > len - pos)
            fatal("corrupt progressive stream at offset %zu", pos);
    };
    if (!fn(sh.floor))
        return;
    size_t pos = sh.floor;
    for (int l = 0; l < sh.layers && pos < len; ++l) {
        need(pos, 4);
        uint32_t layerLen = util::readPodAt<uint32_t>(data, pos);
        pos += 4;
        need(pos, layerLen);
        if (!fn(pos))
            return;
        const size_t layerEnd = pos + layerLen;
        for (size_t t = 0; t < sh.nCoded && pos < layerEnd; ++t) {
            need(pos, 4);
            uint32_t subLen = util::readPodAt<uint32_t>(data, pos);
            pos += 4;
            need(pos, subLen);
            if (!fn(pos))
                return;
            const size_t subEnd = pos + subLen;
            while (pos < subEnd) {
                need(pos, 4);
                uint32_t ecLen = util::readPodAt<uint32_t>(data, pos);
                pos += 4;
                need(pos, ecLen);
                if (!fn(pos))
                    return;
                const size_t chunkEnd = pos + ecLen;
                if (l == 0 && pos < chunkEnd) {
                    ++pos; // raw maxPlane byte heads the chunk
                    if (!fn(pos))
                        return;
                }
                while (pos < chunkEnd) {
                    need(pos, 4);
                    uint32_t segWord =
                        util::readPodAt<uint32_t>(data, pos);
                    pos += 4;
                    size_t segLen = segWord >> 2;
                    need(pos, segLen);
                    pos += segLen;
                    if (!fn(pos))
                        return;
                }
                pos = chunkEnd;
            }
            pos = subEnd;
        }
        pos = layerEnd;
    }
}

} // anonymous namespace

size_t
streamHeaderFloor(const uint8_t *data, size_t len)
{
    return readShape(data, len).floor;
}

size_t
streamHeaderFloor(const std::vector<uint8_t> &bytes)
{
    return streamHeaderFloor(bytes.data(), bytes.size());
}

std::vector<size_t>
truncationPoints(const uint8_t *data, size_t len)
{
    std::vector<size_t> points;
    walkTruncationPoints(data, len, [&](size_t off) {
        points.push_back(off);
        return true;
    });
    return points;
}

std::vector<size_t>
truncationPoints(const std::vector<uint8_t> &bytes)
{
    return truncationPoints(bytes.data(), bytes.size());
}

std::vector<uint8_t>
truncateStream(const uint8_t *data, size_t len, size_t budget)
{
    if (budget >= len) {
        if (readShape(data, len).magic != kMagicV3)
            fatal("stream is not progressive (EPC4): cannot truncate");
        return std::vector<uint8_t>(data, data + len);
    }
    size_t best = 0;
    bool any = false;
    walkTruncationPoints(data, len, [&](size_t off) {
        if (off > budget)
            return false;
        best = off;
        any = true;
        return true;
    });
    EP_ASSERT(any, "budget %zu below the stream header floor", budget);
    return std::vector<uint8_t>(data, data + best);
}

std::vector<uint8_t>
truncateStream(const std::vector<uint8_t> &bytes, size_t budget)
{
    return truncateStream(bytes.data(), bytes.size(), budget);
}

namespace {

/**
 * A run-once pipeline task whose owner can steal it: run() executes
 * the function on the first caller and is a no-op for everyone else,
 * so the task can sit in the pool queue AND be claimed directly by
 * the thread that needs its result — whoever gets there first wins.
 * This is what keeps every lane busy in the staged encode pipeline:
 * the assembling thread never parks behind a task the pool has not
 * scheduled yet, it just runs it.
 *
 * run() never throws (exceptions land in the shared future, rethrown
 * by get()), which makes settle() safe to call during unwinding.
 */
template <typename R>
class OnceTask
{
  public:
    explicit OnceTask(std::function<R()> fn)
        : fn_(std::move(fn)), future_(promise_.get_future().share())
    {
    }

    void
    run()
    {
        if (claimed_.exchange(true))
            return;
        try {
            promise_.set_value(fn_());
        } catch (...) {
            promise_.set_exception(std::current_exception());
        }
    }

    /** Steal-or-wait: run it here if unclaimed, else await the owner. */
    const R &
    get()
    {
        run();
        return future_.get();
    }

    /** True once the result (or its exception) is available. */
    bool
    ready() const
    {
        return future_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
    }

    /**
     * True once some lane owns the task. claimed() && !ready() means
     * a get() would genuinely wait on another lane — the pipeline's
     * stall metric keys on exactly that state.
     */
    bool
    claimed() const
    {
        return claimed_.load(std::memory_order_acquire);
    }

    /** Force completion without observing the result; never throws. */
    void
    settle()
    {
        run();
        future_.wait();
    }

  private:
    std::function<R()> fn_;
    std::atomic<bool> claimed_{false};
    std::promise<R> promise_;
    std::shared_future<R> future_;
};

using Coeffs = std::shared_ptr<const TileCoefficients>;
using ChunkStreams = std::vector<std::vector<uint8_t>>;

/**
 * One tile's slot in the staged encode pipeline: the DWT+quant task,
 * then (once it resolves) one entropy task per row-slab chunk.
 */
struct TileStage
{
    std::shared_ptr<OnceTask<Coeffs>> transform;
    std::vector<std::shared_ptr<OnceTask<ChunkStreams>>> chunks;
    size_t budget = 0;
};

} // anonymous namespace

EncodedImage
encode(const raster::Plane &img, const EncodeParams &params)
{
    telemetry::TraceSpan encodeSpan("codec.encode", "codec");
    EP_ASSERT(params.layers >= 1, "need at least one quality layer");
    EP_ASSERT(params.chunkRows >= 0, "negative chunk height");
    EP_ASSERT(params.bitsPerPixel > 0.0 || params.lossless,
              "non-positive bit budget");
    EP_ASSERT(!params.lossless || params.wavelet == Wavelet::LeGall53,
              "lossless coding requires the LeGall 5/3 wavelet");

    raster::TileGrid grid(img.width(), img.height(), params.tileSize);
    if (params.roi) {
        EP_ASSERT(params.roi->tilesX() == grid.tilesX() &&
                  params.roi->tilesY() == grid.tilesY(),
                  "ROI mask (%dx%d tiles) does not match grid (%dx%d)",
                  params.roi->tilesX(), params.roi->tilesY(),
                  grid.tilesX(), grid.tilesY());
    }

    EncodedImage out;
    out.width = img.width();
    out.height = img.height();
    out.tileSize = params.tileSize;
    out.dwtLevels = params.dwtLevels;
    out.layers = params.layers;
    out.wavelet = params.wavelet;
    out.lossless = params.lossless;
    out.losslessDepth = params.losslessDepth;
    out.quantStep = params.quantStep;
    out.chunkRows = params.chunkRows;
    // Progressive framing needs the chunked container; chunkRows == 0
    // keeps emitting the legacy v1 format.
    out.progressive = params.progressive && params.chunkRows > 0;
    out.tileCoded.assign(static_cast<size_t>(grid.tileCount()), 0);

    TileCoderParams tp;
    tp.dwtLevels = params.dwtLevels;
    tp.wavelet = params.wavelet;
    tp.lossless = params.lossless;
    tp.losslessDepth = params.losslessDepth;
    tp.quantStep = params.quantStep;
    tp.chunkRows = params.chunkRows;
    tp.progressive = out.progressive;

    std::vector<int> codedTiles;
    for (int t = 0; t < grid.tileCount(); ++t) {
        if (params.roi && !params.roi->get(t))
            continue;
        out.tileCoded[static_cast<size_t>(t)] = 1;
        codedTiles.push_back(t);
    }

    out.layerChunks.assign(static_cast<size_t>(params.layers), {});
    const int layers = params.layers;

    auto budgetFor = [&](const raster::TileRect &r) {
        size_t pixels = static_cast<size_t>(r.width) *
                        static_cast<size_t>(r.height);
        return params.lossless
            ? SIZE_MAX / 2
            : static_cast<size_t>(params.bitsPerPixel *
                                  static_cast<double>(pixels) / 8.0);
    };

    auto appendTile = [&](ChunkStreams tileLayers) {
        codecMetrics().tilesEncoded.add();
        for (int l = 0; l < layers; ++l) {
            const auto &sub = tileLayers[static_cast<size_t>(l)];
            auto &chunk = out.layerChunks[static_cast<size_t>(l)];
            appendPod(chunk, static_cast<uint32_t>(sub.size()));
            chunk.insert(chunk.end(), sub.begin(), sub.end());
        }
    };

    util::ThreadPool &pool = util::ThreadPool::global();
    if (!pool.canFanOut() || codedTiles.size() <= 1) {
        // Serial (or nested, or single-tile) path: plain in-order
        // per-tile encode. With one tile this deliberately skips the
        // pipeline so encodeTileLayers' own chunk fan-out still gets
        // the whole pool — that is the oversized-tile latency case.
        for (int t : codedTiles) {
            telemetry::TraceSpan tileSpan("codec.tile", "codec");
            raster::TileRect r = grid.rect(t);
            raster::Plane tile = img.crop(r.x0, r.y0, r.width, r.height);
            appendTile(encodeTileLayers(tile, tp, layers, budgetFor(r)));
        }
        return out;
    }

    // Staged pipeline: DWT+quant of tile N+k overlaps entropy coding
    // of tile N. A bounded lookahead window of transform tasks feeds
    // per-chunk entropy tasks as transforms resolve; the caller
    // assembles finished tiles in flat tile-index order, stealing any
    // unclaimed task it is about to wait on (OnceTask) so no lane
    // idles. Every task is a pure function of its inputs and the
    // assembly order is fixed, so the stream is byte-identical to the
    // serial path at every thread count.
    const size_t lookahead =
        2 * static_cast<size_t>(pool.threadCount());
    std::deque<TileStage> window;
    size_t nextTile = 0;

    auto topUp = [&] {
        while (window.size() < lookahead &&
               nextTile < codedTiles.size()) {
            raster::TileRect r = grid.rect(codedTiles[nextTile]);
            TileStage st;
            st.budget = budgetFor(r);
            st.transform = std::make_shared<OnceTask<Coeffs>>(
                [&img, r, &tp] {
                    telemetry::TraceSpan span("codec.transform",
                                              "codec");
                    telemetry::ScopedTimer timer(
                        codecMetrics().transformNs);
                    raster::Plane tile =
                        img.crop(r.x0, r.y0, r.width, r.height);
                    return std::make_shared<const TileCoefficients>(
                        transformTile(tile, tp));
                });
            pool.submit([t = st.transform] { t->run(); });
            window.push_back(std::move(st));
            ++nextTile;
        }
    };

    // Fan one resolved transform out into its entropy-chunk tasks.
    // Called at most once per stage (guarded by chunks.empty()).
    auto submitChunks = [&](TileStage &st) {
        if (!st.chunks.empty())
            return;
        Coeffs coeffs = st.transform->get();
        const int chunks = chunkCount(tp, coeffs->height);
        st.chunks.reserve(static_cast<size_t>(chunks));
        for (int c = 0; c < chunks; ++c) {
            auto task = std::make_shared<OnceTask<ChunkStreams>>(
                [coeffs, &tp, c, layers, budget = st.budget] {
                    telemetry::TraceSpan span("codec.entropy_chunk",
                                              "codec");
                    telemetry::ScopedTimer timer(
                        codecMetrics().entropyChunkNs);
                    return encodeTileChunk(*coeffs, tp, c, layers,
                                           budget);
                });
            pool.submit([task] { task->run(); });
            st.chunks.push_back(std::move(task));
        }
    };

    try {
        topUp();
        while (!window.empty()) {
            // Opportunistically fan out the entropy work of every
            // transformed tile in the window, not just the front one.
            for (TileStage &st : window)
                if (st.chunks.empty() && st.transform->ready())
                    submitChunks(st);
            TileStage &front = window.front();
            submitChunks(front); // steals the transform if unclaimed
            std::vector<ChunkStreams> perChunk;
            perChunk.reserve(front.chunks.size());
            for (auto &task : front.chunks) {
                if (task->claimed() && !task->ready()) {
                    // Another lane owns this chunk and has not
                    // finished: the assembly lane genuinely stalls.
                    codecMetrics().stalls.add();
                    telemetry::TraceSpan stallSpan(
                        "codec.pipeline.stall", "codec");
                    telemetry::ScopedTimer stall(
                        codecMetrics().stallNs);
                    perChunk.push_back(task->get());
                } else {
                    perChunk.push_back(task->get());
                }
            }
            appendTile(assembleChunkLayers(std::move(perChunk), layers,
                                           tp.chunkRows > 0));
            window.pop_front();
            topUp();
        }
    } catch (...) {
        // Tasks capture `img`, `tp` and window state by reference;
        // force every outstanding one to completion (settle never
        // throws) before unwinding the frame they point into.
        for (TileStage &st : window) {
            st.transform->settle();
            for (auto &task : st.chunks)
                task->settle();
        }
        throw;
    }
    return out;
}

namespace {

/** Per-tile sub-chunk spans of a stream, sliced and validated. */
struct SlicedStream
{
    TileCoderParams tp;
    int maxLayers = 0;
    /** Flat indices of coded tiles, ascending. */
    std::vector<int> codedTiles;
    /** tile index -> slot in codedTiles/spans, or -1 when not coded. */
    std::vector<int> slotOfTile;
    /** spans[slot][layer]. */
    std::vector<std::vector<ChunkSpan>> spans;
};

/**
 * Slice each layer chunk into validated per-tile sub-chunk spans. The
 * spans point into `e`'s chunk storage, so the stream must outlive the
 * returned view.
 */
SlicedStream
sliceStream(const EncodedImage &e, const raster::TileGrid &grid,
            int maxLayers)
{
    EP_ASSERT(static_cast<int>(e.tileCoded.size()) == grid.tileCount(),
              "coded-tile flags (%zu) do not match grid (%d)",
              e.tileCoded.size(), grid.tileCount());
    SlicedStream s;
    if (maxLayers < 0 || maxLayers > static_cast<int>(e.layerChunks.size()))
        maxLayers = static_cast<int>(e.layerChunks.size());
    s.maxLayers = maxLayers;
    s.tp.dwtLevels = e.dwtLevels;
    s.tp.wavelet = e.wavelet;
    s.tp.lossless = e.lossless;
    s.tp.losslessDepth = e.losslessDepth;
    s.tp.quantStep = e.quantStep;
    s.tp.chunkRows = e.chunkRows;
    s.tp.progressive = e.progressive;

    s.slotOfTile.assign(static_cast<size_t>(grid.tileCount()), -1);
    for (int t = 0; t < grid.tileCount(); ++t) {
        if (!e.tileCoded[static_cast<size_t>(t)])
            continue;
        s.slotOfTile[static_cast<size_t>(t)] =
            static_cast<int>(s.codedTiles.size());
        s.codedTiles.push_back(t);
    }

    s.spans.assign(s.codedTiles.size(),
                   std::vector<ChunkSpan>(static_cast<size_t>(maxLayers)));
    for (int layer = 0; layer < maxLayers; ++layer) {
        const auto &chunk = e.layerChunks[static_cast<size_t>(layer)];
        size_t pos = 0;
        for (size_t slot = 0; slot < s.codedTiles.size(); ++slot) {
            if (pos + 4 > chunk.size()) {
                // A truncated progressive stream legitimately ends
                // mid-layer: the remaining tiles keep empty spans and
                // reconstruct from earlier layers (or as zeros).
                if (e.truncated)
                    break;
                fatal("layer %d chunk truncated before tile %d",
                      layer, s.codedTiles[slot]);
            }
            uint32_t len;
            std::memcpy(&len, chunk.data() + pos, 4);
            pos += 4;
            if (len > chunk.size() - pos) {
                if (e.truncated) {
                    // The cut landed inside this tile's sub-chunk:
                    // hand the decoder the prefix that did arrive.
                    s.spans[slot][static_cast<size_t>(layer)] =
                        ChunkSpan{chunk.data() + pos,
                                  chunk.size() - pos};
                    break;
                }
                fatal("layer %d chunk truncated inside tile %d: "
                      "sub-chunk of %u bytes but only %zu remain",
                      layer, s.codedTiles[slot], len, chunk.size() - pos);
            }
            s.spans[slot][static_cast<size_t>(layer)] =
                ChunkSpan{chunk.data() + pos, len};
            pos += len;
        }
    }
    return s;
}

} // anonymous namespace

raster::Plane
decode(const EncodedImage &e, int maxLayers)
{
    telemetry::TraceSpan decodeSpan("codec.decode", "codec");
    raster::TileGrid grid(e.width, e.height, e.tileSize);
    SlicedStream s = sliceStream(e, grid, maxLayers);

    // Tiles decode in parallel: their pixel rectangles are disjoint,
    // so concurrent pastes never touch the same pixel.
    raster::Plane out(e.width, e.height, 0.0f);
    util::ThreadPool::global().parallelFor(
        0, static_cast<int64_t>(s.codedTiles.size()), [&](int64_t slot) {
            telemetry::TraceSpan span("codec.decode_tile", "codec");
            codecMetrics().tilesDecoded.add();
            raster::TileRect r =
                grid.rect(s.codedTiles[static_cast<size_t>(slot)]);
            out.paste(decodeTileLayers(r.width, r.height, s.tp,
                                       s.spans[static_cast<size_t>(slot)]),
                      r.x0, r.y0);
        });
    return out;
}

std::vector<raster::Plane>
decodeTiles(const EncodedImage &e, const std::vector<int> &tiles,
            int maxLayers)
{
    raster::TileGrid grid(e.width, e.height, e.tileSize);
    for (int t : tiles)
        EP_ASSERT(t >= 0 && t < grid.tileCount(),
                  "tile index %d outside grid of %d tiles", t,
                  grid.tileCount());
    SlicedStream s = sliceStream(e, grid, maxLayers);

    return util::parallelMap(tiles.size(), [&](size_t i) {
        telemetry::TraceSpan span("codec.decode_tile", "codec");
        int t = tiles[i];
        raster::TileRect r = grid.rect(t);
        int slot = s.slotOfTile[static_cast<size_t>(t)];
        if (slot < 0)
            return raster::Plane(r.width, r.height, 0.0f);
        codecMetrics().tilesDecoded.add();
        return decodeTileLayers(r.width, r.height, s.tp,
                                s.spans[static_cast<size_t>(slot)]);
    });
}

} // namespace earthplus::codec
