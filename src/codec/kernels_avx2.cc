/**
 * @file
 * AVX2 kernel table (8 float lanes). This translation unit is built
 * with `-mavx2` on x86 (see CMakeLists.txt); whether the running CPU
 * may use it is decided at runtime by util::simd::cpuSupports. On
 * builds without the flag the factory returns nullptr.
 */

#include "codec/kernels_impl.hh"

#if defined(__AVX2__)

#include <immintrin.h>

namespace earthplus::codec::kernels::detail {

namespace {

struct Avx2Traits
{
    static constexpr int kWidth = 8;
    using F = __m256;
    using I = __m256i;

    static F fload(const float *p) { return _mm256_loadu_ps(p); }
    static void fstore(float *p, F v) { _mm256_storeu_ps(p, v); }
    static F fset(float v) { return _mm256_set1_ps(v); }
    static F fadd(F a, F b) { return _mm256_add_ps(a, b); }
    static F fsub(F a, F b) { return _mm256_sub_ps(a, b); }
    static F fmul(F a, F b) { return _mm256_mul_ps(a, b); }
    static F fmin_(F a, F b) { return _mm256_min_ps(a, b); }
    static F fmax_(F a, F b) { return _mm256_max_ps(a, b); }
    static F
    fabs_(F v)
    {
        return _mm256_andnot_ps(_mm256_set1_ps(-0.0f), v);
    }
    static F fxor(F a, F b) { return _mm256_xor_ps(a, b); }
    static F
    fandnotF(I mask, F v)
    {
        return _mm256_andnot_ps(_mm256_castsi256_ps(mask), v);
    }
    static I
    flt0(F v)
    {
        return _mm256_castps_si256(
            _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_LT_OQ));
    }
    static I ftoi_trunc(F v) { return _mm256_cvttps_epi32(v); }
    static I ftoi_round(F v) { return _mm256_cvtps_epi32(v); }
    static F itof(I v) { return _mm256_cvtepi32_ps(v); }
    static F icastF(I v) { return _mm256_castsi256_ps(v); }

    static I
    iload(const int32_t *p)
    {
        return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    }
    static void
    istore(int32_t *p, I v)
    {
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
    }
    static I iset(int32_t v) { return _mm256_set1_epi32(v); }
    static I izero() { return _mm256_setzero_si256(); }
    static I iadd(I a, I b) { return _mm256_add_epi32(a, b); }
    static I isub(I a, I b) { return _mm256_sub_epi32(a, b); }
    static I iandnot(I mask, I v) { return _mm256_andnot_si256(mask, v); }
    static I ixor(I a, I b) { return _mm256_xor_si256(a, b); }
    static I ishl(I v, int k) { return _mm256_slli_epi32(v, k); }
    static I isra(I v, int k) { return _mm256_srai_epi32(v, k); }
    static I
    icmpeq0(I v)
    {
        return _mm256_cmpeq_epi32(v, _mm256_setzero_si256());
    }
    static I imax(I a, I b) { return _mm256_max_epi32(a, b); }
    static I
    loadU8(const uint8_t *p)
    {
        // 8 bytes -> 8 zero-extended int32 lanes.
        return _mm256_cvtepu8_epi32(
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p)));
    }
    static unsigned
    mask01(I laneMask)
    {
        return static_cast<unsigned>(
            _mm256_movemask_ps(_mm256_castsi256_ps(laneMask)));
    }
    static void
    storeMasks01(uint8_t *dst, I m0, I m1, I m2, I m3)
    {
        // 32 lane masks -> 32 0/1 bytes with one store. The 256-bit
        // packs interleave 128-bit halves; the permute restores source
        // order.
        I w01 = _mm256_packs_epi32(m0, m1);
        I w23 = _mm256_packs_epi32(m2, m3);
        I b = _mm256_packs_epi16(w01, w23);
        b = _mm256_permutevar8x32_epi32(
            b, _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7));
        b = _mm256_and_si256(b, _mm256_set1_epi8(1));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst), b);
    }
};

} // anonymous namespace

const KernelTable *
avx2Table()
{
    return makeTable<Avx2Traits>(util::simd::Level::AVX2);
}

} // namespace earthplus::codec::kernels::detail

#else // !__AVX2__

namespace earthplus::codec::kernels::detail {

const KernelTable *
avx2Table()
{
    return nullptr;
}

} // namespace earthplus::codec::kernels::detail

#endif
