/**
 * @file
 * Image-level codec front-end.
 *
 * Plays the role of the paper's JPEG-2000 encoder (Kakadu, §5): encodes
 * one image plane tile-by-tile with a bits-per-pixel budget, an optional
 * region-of-interest mask (only ROI tiles are coded, as in Earth+'s
 * changed-tile encoding), and SNR-progressive quality layers (used for
 * downlink-bandwidth adaptation, §5 "Handling bandwidth fluctuation").
 */

#ifndef EARTHPLUS_CODEC_CODEC_HH
#define EARTHPLUS_CODEC_CODEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "codec/tile_coder.hh"
#include "raster/plane.hh"
#include "raster/tile.hh"

namespace earthplus::codec {

/**
 * Outcome of a non-fatal stream parse (tryDeserialize()).
 *
 * `Truncated` means the bytes are a prefix of a longer stream cut at
 * an unrecorded offset (recorded truncation points of a progressive
 * stream parse successfully instead); `Corrupt` means a field failed
 * validation outright.
 */
enum class StreamError
{
    None = 0,
    Truncated,
    Corrupt,
};

/** Encoding configuration. */
struct EncodeParams
{
    /**
     * Bit budget per coded (ROI) pixel. Image-level rate equals
     * bitsPerPixel x (ROI fraction), matching §5: each encoded tile
     * receives a constant budget gamma.
     */
    double bitsPerPixel = 2.0;
    /** Dyadic DWT levels per tile. */
    int dwtLevels = 4;
    /** Wavelet filter. */
    Wavelet wavelet = Wavelet::CDF97;
    /** Exact reconstruction (forces LeGall53 + full bitplanes). */
    bool lossless = false;
    /** Integer depth for the lossless mapping. */
    int losslessDepth = 8;
    /** Deadzone quantizer step for the lossy path. */
    double quantStep = 1.0 / 512.0;
    /** Tile edge length in pixels. */
    int tileSize = raster::kDefaultTileSize;
    /** Optional region of interest; null encodes every tile. */
    const raster::TileMask *roi = nullptr;
    /** Number of SNR-progressive quality layers (>= 1). */
    int layers = 1;
    /**
     * Rows per entropy chunk inside each tile (see
     * TileCoderParams::chunkRows). 0 selects the legacy v1 format
     * with one unframed entropy stream per tile.
     */
    int chunkRows = kDefaultChunkRows;
    /**
     * Emit the progressive v3 (EPC4) stream format, whose inline
     * segment framing records truncation points so the stream can be
     * cut to any byte budget after encoding (truncateStream()) and
     * still decode best-effort. Requires chunkRows > 0 (chunkRows ==
     * 0 keeps the v1 format regardless). The default: new streams
     * are truncatable. Set false for byte-compatible v2 (EPC3)
     * output.
     */
    bool progressive = true;
};

/**
 * An encoded plane: container header, coded-tile flags and one byte
 * chunk per quality layer.
 */
struct EncodedImage
{
    int width = 0;
    int height = 0;
    int tileSize = raster::kDefaultTileSize;
    int dwtLevels = 4;
    int layers = 1;
    Wavelet wavelet = Wavelet::CDF97;
    bool lossless = false;
    int losslessDepth = 8;
    double quantStep = 1.0 / 512.0;
    /**
     * Entropy chunk height in rows: 0 for v1 (EPC2) streams, > 0 for
     * v2 (EPC3) streams whose per-tile sub-chunks are internally
     * framed into row-slab entropy chunks.
     */
    int chunkRows = 0;
    /**
     * True for v3 (EPC4) streams: chunk payloads carry the segment
     * framing that records truncation points (see forEachSegment()).
     */
    bool progressive = false;
    /**
     * True when the parsed stream was cut at a recorded truncation
     * point: the last layer chunk may be a partial prefix and later
     * layers may be missing entirely; decode reconstructs best-effort.
     * A truncated image cannot be re-serialized.
     */
    bool truncated = false;
    /** Per-tile coded flag, flat tile index order. */
    std::vector<uint8_t> tileCoded;
    /**
     * One entropy-coded chunk per quality layer. Within a chunk, each
     * coded tile contributes (in flat tile-index order) a 4-byte
     * little-endian length followed by that tile's self-contained
     * range-coded sub-chunk, so tiles encode and decode as independent
     * parallel jobs while the assembled stream stays deterministic.
     * In v2 streams each tile sub-chunk is itself a sequence of
     * length-prefixed entropy chunks (see docs/ARCHITECTURE.md).
     */
    std::vector<std::vector<uint8_t>> layerChunks;

    /** Sum of layer chunk sizes in bytes. */
    size_t payloadBytes() const;

    /** Container + coded-tile-bitmap overhead in bytes. */
    size_t headerBytes() const;

    /** Total wire size (what a downlink must carry). */
    size_t totalBytes() const;

    /** Wire size when only the first `layerCount` layers are sent. */
    size_t totalBytesForLayers(int layerCount) const;

    /** Fraction of tiles that were coded. */
    double codedTileFraction() const;

    /** Serialize to a self-describing byte stream. */
    std::vector<uint8_t> serialize() const;

    /** Parse a stream produced by serialize(); fatal() on corruption. */
    static EncodedImage deserialize(const std::vector<uint8_t> &bytes);

    /**
     * Parse a stream from a borrowed byte range (same validation).
     * The ground tile server parses archive payloads straight out of
     * their file mapping through this overload — no staging copy.
     */
    static EncodedImage deserialize(const uint8_t *data, size_t len);

    /**
     * Non-fatal parse: on success fills `out` (possibly with
     * `out.truncated` set when a progressive stream was cut at a
     * recorded truncation point) and returns StreamError::None; on
     * failure returns the typed error and, when `message` is non-null,
     * the diagnostic deserialize() would have died with. Never
     * fatal()s — this is the entry point for untrusted or
     * deliberately cut byte ranges.
     */
    static StreamError tryDeserialize(const uint8_t *data, size_t len,
                                      EncodedImage &out,
                                      std::string *message = nullptr);
};

/**
 * Header floor of a serialized stream: the byte offset just past the
 * fixed header and coded-tile bitmap — the smallest prefix any decode
 * needs. Valid for every stream version; fatal() on a stream too
 * corrupt to measure.
 */
size_t streamHeaderFloor(const uint8_t *data, size_t len);

/** @copydoc streamHeaderFloor(const uint8_t*,size_t) */
size_t streamHeaderFloor(const std::vector<uint8_t> &bytes);

/**
 * All recorded truncation points of a serialized progressive (EPC4)
 * stream, in ascending order. The first entry is the header floor and
 * the last is the full stream length; cutting the stream at any entry
 * yields a prefix that tryDeserialize() accepts and decode()
 * reconstructs best-effort, and cutting anywhere else yields
 * StreamError::Truncated. fatal() on non-progressive streams.
 */
std::vector<size_t> truncationPoints(const uint8_t *data, size_t len);

/** @copydoc truncationPoints(const uint8_t*,size_t) */
std::vector<size_t> truncationPoints(const std::vector<uint8_t> &bytes);

/**
 * Cut a serialized progressive (EPC4) stream to the largest recorded
 * truncation point that fits `budget` bytes — rate control without
 * re-encoding. The result always satisfies `size() <= budget`;
 * budgets at or above the stream length return the stream unchanged.
 * fatal() when `budget` is below the header floor or the stream is
 * not progressive.
 */
std::vector<uint8_t> truncateStream(const uint8_t *data, size_t len,
                                    size_t budget);

/** @copydoc truncateStream(const uint8_t*,size_t,size_t) */
std::vector<uint8_t> truncateStream(const std::vector<uint8_t> &bytes,
                                    size_t budget);

/**
 * Encode one plane.
 *
 * @param img Pixel data in [0, 1].
 * @param params Encoding configuration; params.roi, when set, must match
 *               the plane's tile grid.
 */
EncodedImage encode(const raster::Plane &img, const EncodeParams &params);

/**
 * Decode an encoded plane.
 *
 * Tiles outside the encoded ROI are filled with zeros — Earth+ overlays
 * decoded changed tiles onto the ground's reference copy.
 *
 * @param maxLayers Decode only the first maxLayers quality layers
 *                  (-1 = all). Fewer layers = lower quality, fewer bytes.
 */
raster::Plane decode(const EncodedImage &enc, int maxLayers = -1);

/**
 * Decode only the requested tiles (flat tile indices).
 *
 * The ground tile server answers rectangle queries without paying for
 * a full-plane decode: tiles are self-contained sub-chunks, so a
 * subset decodes in isolation. Returns one plane per requested tile in
 * request order; tiles outside the encoded ROI come back as zero
 * planes of the tile's rectangle (same fill decode() would produce).
 *
 * @param tiles Flat tile indices within the image's tile grid.
 * @param maxLayers Decode only the first maxLayers layers (-1 = all).
 */
std::vector<raster::Plane> decodeTiles(const EncodedImage &enc,
                                       const std::vector<int> &tiles,
                                       int maxLayers = -1);

} // namespace earthplus::codec

#endif // EARTHPLUS_CODEC_CODEC_HH
