#include "codec/dwt.hh"

#include <algorithm>

#include "util/logging.hh"

namespace earthplus::codec {

namespace {

// Daubechies-Sweldens lifting factorization of CDF 9/7.
constexpr double kAlpha = -1.586134342059924;
constexpr double kBeta = -0.052980118572961;
constexpr double kGamma = 0.882911075530934;
constexpr double kDelta = 0.443506852043971;
constexpr double kZeta = 1.149604398860241;

// Clamped access implements whole-sample symmetric extension for the
// two-tap lifting stencils used below.
template <typename T>
T
at(const std::vector<T> &v, int i)
{
    int n = static_cast<int>(v.size());
    return v[static_cast<size_t>(std::clamp(i, 0, n - 1))];
}

/** One forward 9/7 lifting pass over a strided 1D signal. */
void
forward97Line(float *x, int n, int stride, std::vector<float> &s,
              std::vector<float> &d)
{
    if (n < 2)
        return;
    int ns = (n + 1) / 2;
    int nd = n / 2;
    s.resize(static_cast<size_t>(ns));
    d.resize(static_cast<size_t>(nd));
    for (int i = 0; i < ns; ++i)
        s[static_cast<size_t>(i)] = x[2 * i * stride];
    for (int i = 0; i < nd; ++i)
        d[static_cast<size_t>(i)] = x[(2 * i + 1) * stride];

    for (int i = 0; i < nd; ++i)
        d[i] += static_cast<float>(kAlpha * (at(s, i) + at(s, i + 1)));
    for (int i = 0; i < ns; ++i)
        s[i] += static_cast<float>(kBeta * (at(d, i - 1) + at(d, i)));
    for (int i = 0; i < nd; ++i)
        d[i] += static_cast<float>(kGamma * (at(s, i) + at(s, i + 1)));
    for (int i = 0; i < ns; ++i)
        s[i] += static_cast<float>(kDelta * (at(d, i - 1) + at(d, i)));

    for (int i = 0; i < ns; ++i)
        x[i * stride] = static_cast<float>(s[i] * kZeta);
    for (int i = 0; i < nd; ++i)
        x[(ns + i) * stride] = static_cast<float>(d[i] / kZeta);
}

/** One inverse 9/7 lifting pass. */
void
inverse97Line(float *x, int n, int stride, std::vector<float> &s,
              std::vector<float> &d)
{
    if (n < 2)
        return;
    int ns = (n + 1) / 2;
    int nd = n / 2;
    s.resize(static_cast<size_t>(ns));
    d.resize(static_cast<size_t>(nd));
    for (int i = 0; i < ns; ++i)
        s[static_cast<size_t>(i)] =
            static_cast<float>(x[i * stride] / kZeta);
    for (int i = 0; i < nd; ++i)
        d[static_cast<size_t>(i)] =
            static_cast<float>(x[(ns + i) * stride] * kZeta);

    for (int i = 0; i < ns; ++i)
        s[i] -= static_cast<float>(kDelta * (at(d, i - 1) + at(d, i)));
    for (int i = 0; i < nd; ++i)
        d[i] -= static_cast<float>(kGamma * (at(s, i) + at(s, i + 1)));
    for (int i = 0; i < ns; ++i)
        s[i] -= static_cast<float>(kBeta * (at(d, i - 1) + at(d, i)));
    for (int i = 0; i < nd; ++i)
        d[i] -= static_cast<float>(kAlpha * (at(s, i) + at(s, i + 1)));

    for (int i = 0; i < ns; ++i)
        x[2 * i * stride] = s[static_cast<size_t>(i)];
    for (int i = 0; i < nd; ++i)
        x[(2 * i + 1) * stride] = d[static_cast<size_t>(i)];
}

/** One forward 5/3 lifting pass over a strided integer signal. */
void
forward53Line(int32_t *x, int n, int stride, std::vector<int32_t> &s,
              std::vector<int32_t> &d)
{
    if (n < 2)
        return;
    int ns = (n + 1) / 2;
    int nd = n / 2;
    s.resize(static_cast<size_t>(ns));
    d.resize(static_cast<size_t>(nd));
    for (int i = 0; i < ns; ++i)
        s[static_cast<size_t>(i)] = x[2 * i * stride];
    for (int i = 0; i < nd; ++i)
        d[static_cast<size_t>(i)] = x[(2 * i + 1) * stride];

    for (int i = 0; i < nd; ++i)
        d[i] -= (at(s, i) + at(s, i + 1)) >> 1;
    for (int i = 0; i < ns; ++i)
        s[i] += (at(d, i - 1) + at(d, i) + 2) >> 2;

    for (int i = 0; i < ns; ++i)
        x[i * stride] = s[static_cast<size_t>(i)];
    for (int i = 0; i < nd; ++i)
        x[(ns + i) * stride] = d[static_cast<size_t>(i)];
}

/** One inverse 5/3 lifting pass. */
void
inverse53Line(int32_t *x, int n, int stride, std::vector<int32_t> &s,
              std::vector<int32_t> &d)
{
    if (n < 2)
        return;
    int ns = (n + 1) / 2;
    int nd = n / 2;
    s.resize(static_cast<size_t>(ns));
    d.resize(static_cast<size_t>(nd));
    for (int i = 0; i < ns; ++i)
        s[static_cast<size_t>(i)] = x[i * stride];
    for (int i = 0; i < nd; ++i)
        d[static_cast<size_t>(i)] = x[(ns + i) * stride];

    for (int i = 0; i < ns; ++i)
        s[i] -= (at(d, i - 1) + at(d, i) + 2) >> 2;
    for (int i = 0; i < nd; ++i)
        d[i] += (at(s, i) + at(s, i + 1)) >> 1;

    for (int i = 0; i < ns; ++i)
        x[2 * i * stride] = s[static_cast<size_t>(i)];
    for (int i = 0; i < nd; ++i)
        x[(2 * i + 1) * stride] = d[static_cast<size_t>(i)];
}

/**
 * Apply a 1D pass to one decomposition level.
 *
 * The forward transform runs rows then columns; the inverse must mirror
 * it exactly (columns then rows) because the integer 5/3 lifting steps
 * contain floors and do not commute across axes.
 */
template <typename T, typename LineFn>
void
transformLevel(std::vector<T> &data, int fullWidth, int w, int h,
               bool rowsFirst, LineFn line)
{
    std::vector<T> s, d;
    auto doRows = [&]() {
        for (int y = 0; y < h; ++y)
            line(data.data() + static_cast<size_t>(y) * fullWidth, w, 1,
                 s, d);
    };
    auto doCols = [&]() {
        for (int x = 0; x < w; ++x)
            line(data.data() + x, h, fullWidth, s, d);
    };
    if (rowsFirst) {
        doRows();
        doCols();
    } else {
        doCols();
        doRows();
    }
}

template <typename T, typename LineFn>
void
forwardMulti(std::vector<T> &data, int width, int height, int levels,
             LineFn line)
{
    EP_ASSERT(static_cast<size_t>(width) * static_cast<size_t>(height) ==
              data.size(), "dwt buffer size mismatch");
    EP_ASSERT(levels >= 0, "negative dwt levels");
    int w = width, h = height;
    for (int l = 0; l < levels && (w > 1 || h > 1); ++l) {
        transformLevel(data, width, w, h, true, line);
        w = (w + 1) / 2;
        h = (h + 1) / 2;
    }
}

template <typename T, typename LineFn>
void
inverseMulti(std::vector<T> &data, int width, int height, int levels,
             LineFn line)
{
    EP_ASSERT(static_cast<size_t>(width) * static_cast<size_t>(height) ==
              data.size(), "dwt buffer size mismatch");
    // Recompute the per-level sizes the forward pass visited, then undo
    // them in reverse order.
    std::vector<std::pair<int, int>> sizes;
    int w = width, h = height;
    for (int l = 0; l < levels && (w > 1 || h > 1); ++l) {
        sizes.emplace_back(w, h);
        w = (w + 1) / 2;
        h = (h + 1) / 2;
    }
    for (auto it = sizes.rbegin(); it != sizes.rend(); ++it)
        transformLevel(data, width, it->first, it->second, false, line);
}

} // anonymous namespace

void
forwardDwt97(std::vector<float> &data, int width, int height, int levels)
{
    forwardMulti(data, width, height, levels, forward97Line);
}

void
inverseDwt97(std::vector<float> &data, int width, int height, int levels)
{
    inverseMulti(data, width, height, levels, inverse97Line);
}

void
forwardDwt53(std::vector<int32_t> &data, int width, int height, int levels)
{
    forwardMulti(data, width, height, levels, forward53Line);
}

void
inverseDwt53(std::vector<int32_t> &data, int width, int height, int levels)
{
    inverseMulti(data, width, height, levels, inverse53Line);
}

std::vector<uint8_t>
subbandOrientation(int width, int height, int levels)
{
    std::vector<uint8_t> orient(
        static_cast<size_t>(width) * static_cast<size_t>(height), 0);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            int w = width, h = height;
            uint8_t code = 0; // LL if the walk bottoms out
            for (int l = 0; l < levels && (w > 1 || h > 1); ++l) {
                int lw = (w + 1) / 2;
                int lh = (h + 1) / 2;
                bool inLow_x = x < lw;
                bool inLow_y = y < lh;
                if (inLow_x && inLow_y) {
                    w = lw;
                    h = lh;
                    continue;
                }
                if (!inLow_x && inLow_y)
                    code = 1; // HL
                else if (inLow_x && !inLow_y)
                    code = 2; // LH
                else
                    code = 3; // HH
                break;
            }
            orient[static_cast<size_t>(y) * width + x] = code;
        }
    }
    return orient;
}

} // namespace earthplus::codec
