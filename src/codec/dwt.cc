#include "codec/dwt.hh"

#include <utility>

#include "codec/kernels.hh"
#include "util/logging.hh"

namespace earthplus::codec {

namespace {

/**
 * Multi-level driver. Each decomposition level is one kernel-table
 * call that transforms the active top-left rectangle in place; the
 * kernels run rows then columns forward (columns in vector-width
 * batches) and the exact mirror on the inverse, because the integer
 * 5/3 lifting steps contain floors and do not commute across axes.
 */
template <typename T, typename LevelFn>
void
forwardMulti(std::vector<T> &data, int width, int height, int levels,
             LevelFn level)
{
    EP_ASSERT(static_cast<size_t>(width) * static_cast<size_t>(height) ==
              data.size(), "dwt buffer size mismatch");
    EP_ASSERT(levels >= 0, "negative dwt levels");
    int w = width, h = height;
    for (int l = 0; l < levels && (w > 1 || h > 1); ++l) {
        level(data.data(), width, w, h);
        w = (w + 1) / 2;
        h = (h + 1) / 2;
    }
}

template <typename T, typename LevelFn>
void
inverseMulti(std::vector<T> &data, int width, int height, int levels,
             LevelFn level)
{
    EP_ASSERT(static_cast<size_t>(width) * static_cast<size_t>(height) ==
              data.size(), "dwt buffer size mismatch");
    // Recompute the per-level sizes the forward pass visited, then undo
    // them in reverse order.
    std::vector<std::pair<int, int>> sizes;
    int w = width, h = height;
    for (int l = 0; l < levels && (w > 1 || h > 1); ++l) {
        sizes.emplace_back(w, h);
        w = (w + 1) / 2;
        h = (h + 1) / 2;
    }
    for (auto it = sizes.rbegin(); it != sizes.rend(); ++it)
        level(data.data(), width, it->first, it->second);
}

} // anonymous namespace

void
forwardDwt97(std::vector<float> &data, int width, int height, int levels)
{
    const kernels::KernelTable &k = kernels::active();
    forwardMulti(data, width, height, levels, k.fwd97);
}

void
inverseDwt97(std::vector<float> &data, int width, int height, int levels)
{
    const kernels::KernelTable &k = kernels::active();
    inverseMulti(data, width, height, levels, k.inv97);
}

void
forwardDwt53(std::vector<int32_t> &data, int width, int height, int levels)
{
    const kernels::KernelTable &k = kernels::active();
    forwardMulti(data, width, height, levels, k.fwd53);
}

void
inverseDwt53(std::vector<int32_t> &data, int width, int height, int levels)
{
    const kernels::KernelTable &k = kernels::active();
    inverseMulti(data, width, height, levels, k.inv53);
}

std::vector<uint8_t>
subbandOrientation(int width, int height, int levels)
{
    std::vector<uint8_t> orient(
        static_cast<size_t>(width) * static_cast<size_t>(height), 0);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            int w = width, h = height;
            uint8_t code = 0; // LL if the walk bottoms out
            for (int l = 0; l < levels && (w > 1 || h > 1); ++l) {
                int lw = (w + 1) / 2;
                int lh = (h + 1) / 2;
                bool inLow_x = x < lw;
                bool inLow_y = y < lh;
                if (inLow_x && inLow_y) {
                    w = lw;
                    h = lh;
                    continue;
                }
                if (!inLow_x && inLow_y)
                    code = 1; // HL
                else if (inLow_x && !inLow_y)
                    code = 2; // LH
                else
                    code = 3; // HH
                break;
            }
            orient[static_cast<size_t>(y) * width + x] = code;
        }
    }
    return orient;
}

} // namespace earthplus::codec
