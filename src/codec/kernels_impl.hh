/**
 * @file
 * Generic implementation behind every KernelTable.
 *
 * Included only by the per-ISA kernels_<level>.cc translation units,
 * each of which supplies a lane-traits type. The same template body
 * instantiated at width 1 *is* the scalar reference implementation, so
 * scalar and vector builds cannot drift apart: every lane performs
 * exactly the scalar single-precision dataflow (the build adds
 * `-ffp-contract=off`, so no level fuses multiply-add either).
 *
 * Loop-tail elements and narrow columns use the same plain-float
 * operations, which are IEEE-identical to one vector lane.
 *
 * DWT layout notes: the 1D lifting passes work on de-interleaved
 * low/high (s/d) arrays with one guard slot on each side; refreshing
 * the guards before each lifting step reproduces the whole-sample
 * symmetric extension the strided scalar code expressed with clamped
 * indexing. Column passes process `kWidth` columns per batch (one
 * column per lane) instead of strided single lanes.
 */

#ifndef EARTHPLUS_CODEC_KERNELS_IMPL_HH
#define EARTHPLUS_CODEC_KERNELS_IMPL_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "codec/kernels.hh"

namespace earthplus::codec::kernels::detail {

// Daubechies-Sweldens lifting factorization of CDF 9/7, rounded to
// single precision once so every dispatch level uses the same values.
constexpr float kAlpha97 = static_cast<float>(-1.586134342059924);
constexpr float kBeta97 = static_cast<float>(-0.052980118572961);
constexpr float kGamma97 = static_cast<float>(0.882911075530934);
constexpr float kDelta97 = static_cast<float>(0.443506852043971);
constexpr float kZeta97 = static_cast<float>(1.149604398860241);
constexpr float kInvZeta97 = static_cast<float>(1.0 / 1.149604398860241);

inline float
bitcastF(uint32_t v)
{
    float f;
    std::memcpy(&f, &v, sizeof(f));
    return f;
}

// Overflow-safe float->int32 conversions mirroring the x86
// cvttps/cvtps sentinel (0x80000000 for out-of-range and NaN) instead
// of invoking UB; no float lies strictly between 2^31-128 and 2^31,
// so the range test cannot disagree with the hardware's post-rounding
// check. Used by every scalar-ops tail and by the scalar traits.
inline bool
fitsI32(float v)
{
    return v >= -2147483648.0f && v < 2147483648.0f;
}

inline int32_t
truncToI32(float v)
{
    return fitsI32(v) ? static_cast<int32_t>(v) : INT32_MIN;
}

inline int32_t
roundToI32(float v)
{
    return fitsI32(v) ? static_cast<int32_t>(std::lrint(v)) : INT32_MIN;
}

template <class T>
struct Kernels
{
    using F = typename T::F;
    using I = typename T::I;
    static constexpr int K = T::kWidth;

    /** Per-thread float scratch, reused across tiles. */
    static float *
    fscratch(size_t n)
    {
        thread_local std::vector<float> buf;
        if (buf.size() < n)
            buf.resize(n);
        return buf.data();
    }

    /** Per-thread int scratch. */
    static int32_t *
    iscratch(size_t n)
    {
        thread_local std::vector<int32_t> buf;
        if (buf.size() < n)
            buf.resize(n);
        return buf.data();
    }

    /** Zero-extend K bytes into int32 lanes. */
    static I
    loadU8(const uint8_t *p)
    {
        return T::loadU8(p);
    }

    /** Write lane masks (-1/0) out as 0/1 bytes via the mask bits. */
    static void
    storeMaskBytes(uint8_t *dst, typename T::I laneMask)
    {
        unsigned bits = T::mask01(laneMask);
        for (int j = 0; j < K; ++j)
            dst[j] = static_cast<uint8_t>((bits >> j) & 1u);
    }

    /**
     * Quantizer core shared by quantF32/quantI32/splitI32: yields
     * (magnitude lanes, sign-mask lanes) per block of K inputs, and
     * writes sign bytes in packed 4-vector groups (one narrow store
     * per 4K elements instead of K scalar byte writes).
     */
    template <typename LoadFn>
    static void
    quantLoop(size_t n, uint32_t *mag, uint8_t *sign, const LoadFn &block)
    {
        size_t i = 0;
        for (; i + 4 * K <= n; i += 4 * K) {
            I s0, s1, s2, s3;
            T::istore(reinterpret_cast<int32_t *>(mag + i),
                      block(i, s0));
            T::istore(reinterpret_cast<int32_t *>(mag + i + K),
                      block(i + K, s1));
            T::istore(reinterpret_cast<int32_t *>(mag + i + 2 * K),
                      block(i + 2 * K, s2));
            T::istore(reinterpret_cast<int32_t *>(mag + i + 3 * K),
                      block(i + 3 * K, s3));
            T::storeMasks01(sign + i, s0, s1, s2, s3);
        }
        for (; i + K <= n; i += K) {
            I s;
            T::istore(reinterpret_cast<int32_t *>(mag + i), block(i, s));
            storeMaskBytes(sign + i, s);
        }
    }

    // ------------------------------------------------ 1D lifting steps

    /** dst[i] += coef * (src[i+o0] + src[i+o1]) over contiguous rows. */
    static void
    stepRowF(float *dst, int m, const float *src, int o0, int o1,
             float coef)
    {
        F c = T::fset(coef);
        int i = 0;
        for (; i + K <= m; i += K) {
            F sum = T::fadd(T::fload(src + i + o0), T::fload(src + i + o1));
            T::fstore(dst + i, T::fadd(T::fload(dst + i), T::fmul(c, sum)));
        }
        for (; i < m; ++i)
            dst[i] += coef * (src[i + o0] + src[i + o1]);
    }

    /** Integer lifting step: dst[i] -+= (src[i+o0]+src[i+o1]+bias)>>sh. */
    static void
    stepRowI(int32_t *dst, int m, const int32_t *src, int o0, int o1,
             int32_t bias, int sh, bool subtract)
    {
        I b = T::iset(bias);
        int i = 0;
        for (; i + K <= m; i += K) {
            I sum = T::iadd(
                T::iadd(T::iload(src + i + o0), T::iload(src + i + o1)), b);
            I upd = T::isra(sum, sh);
            I cur = T::iload(dst + i);
            T::istore(dst + i,
                      subtract ? T::isub(cur, upd) : T::iadd(cur, upd));
        }
        for (; i < m; ++i) {
            int32_t upd = (src[i + o0] + src[i + o1] + bias) >> sh;
            dst[i] = subtract ? dst[i] - upd : dst[i] + upd;
        }
    }

    /** Lane-batched lifting step: arrays have row stride K. */
    static void
    stepColF(float *dst, int m, const float *src, int o0, int o1,
             float coef)
    {
        F c = T::fset(coef);
        for (int i = 0; i < m; ++i) {
            F sum = T::fadd(T::fload(src + static_cast<ptrdiff_t>(i + o0) * K),
                            T::fload(src + static_cast<ptrdiff_t>(i + o1) * K));
            float *out = dst + static_cast<ptrdiff_t>(i) * K;
            T::fstore(out, T::fadd(T::fload(out), T::fmul(c, sum)));
        }
    }

    /** Lane-batched integer lifting step. */
    static void
    stepColI(int32_t *dst, int m, const int32_t *src, int o0, int o1,
             int32_t bias, int sh, bool subtract)
    {
        I b = T::iset(bias);
        for (int i = 0; i < m; ++i) {
            I sum = T::iadd(
                T::iadd(T::iload(src + static_cast<ptrdiff_t>(i + o0) * K),
                        T::iload(src + static_cast<ptrdiff_t>(i + o1) * K)),
                b);
            I upd = T::isra(sum, sh);
            int32_t *out = dst + static_cast<ptrdiff_t>(i) * K;
            I cur = T::iload(out);
            T::istore(out, subtract ? T::isub(cur, upd) : T::iadd(cur, upd));
        }
    }

    // ---------------------------------------------------- 9/7 row pass

    static void
    row97(float *x, int n, bool forward)
    {
        if (n < 2)
            return;
        int ns = (n + 1) / 2;
        int nd = n / 2;
        // Layout: [guard][s 0..ns)[guard] [guard][d 0..nd)[guard].
        float *base = fscratch(static_cast<size_t>(n) + 4);
        float *s = base + 1;
        float *d = base + ns + 3;
        if (forward) {
            for (int i = 0; i < ns; ++i)
                s[i] = x[2 * i];
            for (int i = 0; i < nd; ++i)
                d[i] = x[2 * i + 1];
            s[ns] = s[ns - 1];
            stepRowF(d, nd, s, 0, 1, kAlpha97);
            d[-1] = d[0];
            d[nd] = d[nd - 1];
            stepRowF(s, ns, d, -1, 0, kBeta97);
            s[ns] = s[ns - 1];
            stepRowF(d, nd, s, 0, 1, kGamma97);
            d[-1] = d[0];
            d[nd] = d[nd - 1];
            stepRowF(s, ns, d, -1, 0, kDelta97);
            scaleRow(x, s, ns, kZeta97);
            scaleRow(x + ns, d, nd, kInvZeta97);
        } else {
            scaleRow(s, x, ns, kInvZeta97);
            scaleRow(d, x + ns, nd, kZeta97);
            d[-1] = d[0];
            d[nd] = d[nd - 1];
            stepRowF(s, ns, d, -1, 0, -kDelta97);
            s[ns] = s[ns - 1];
            stepRowF(d, nd, s, 0, 1, -kGamma97);
            d[-1] = d[0];
            d[nd] = d[nd - 1];
            stepRowF(s, ns, d, -1, 0, -kBeta97);
            s[ns] = s[ns - 1];
            stepRowF(d, nd, s, 0, 1, -kAlpha97);
            for (int i = 0; i < ns; ++i)
                x[2 * i] = s[i];
            for (int i = 0; i < nd; ++i)
                x[2 * i + 1] = d[i];
        }
    }

    /** out[i] = in[i] * coef over contiguous elements. */
    static void
    scaleRow(float *out, const float *in, int m, float coef)
    {
        F c = T::fset(coef);
        int i = 0;
        for (; i + K <= m; i += K)
            T::fstore(out + i, T::fmul(T::fload(in + i), c));
        for (; i < m; ++i)
            out[i] = in[i] * coef;
    }

    // ---------------------------------------------------- 5/3 row pass

    static void
    row53(int32_t *x, int n, bool forward)
    {
        if (n < 2)
            return;
        int ns = (n + 1) / 2;
        int nd = n / 2;
        int32_t *base = iscratch(static_cast<size_t>(n) + 4);
        int32_t *s = base + 1;
        int32_t *d = base + ns + 3;
        if (forward) {
            for (int i = 0; i < ns; ++i)
                s[i] = x[2 * i];
            for (int i = 0; i < nd; ++i)
                d[i] = x[2 * i + 1];
            s[ns] = s[ns - 1];
            stepRowI(d, nd, s, 0, 1, 0, 1, true);
            d[-1] = d[0];
            d[nd] = d[nd - 1];
            stepRowI(s, ns, d, -1, 0, 2, 2, false);
            std::memcpy(x, s, static_cast<size_t>(ns) * sizeof(int32_t));
            std::memcpy(x + ns, d, static_cast<size_t>(nd) * sizeof(int32_t));
        } else {
            std::memcpy(s, x, static_cast<size_t>(ns) * sizeof(int32_t));
            std::memcpy(d, x + ns, static_cast<size_t>(nd) * sizeof(int32_t));
            d[-1] = d[0];
            d[nd] = d[nd - 1];
            stepRowI(s, ns, d, -1, 0, 2, 2, true);
            s[ns] = s[ns - 1];
            stepRowI(d, nd, s, 0, 1, 0, 1, false);
            for (int i = 0; i < ns; ++i)
                x[2 * i] = s[i];
            for (int i = 0; i < nd; ++i)
                x[2 * i + 1] = d[i];
        }
    }

    // ----------------------------------------------- 9/7 column passes

    /** One batch of K columns starting at x0, lanes = columns. */
    static void
    cols97Batch(float *data, int fullWidth, int x0, int h, bool forward)
    {
        int ns = (h + 1) / 2;
        int nd = h / 2;
        float *base = fscratch(static_cast<size_t>(h + 4) * K);
        float *s = base + K;
        float *d = base + static_cast<size_t>(ns + 2) * K + K;
        auto srow = [&](int i) { return s + static_cast<ptrdiff_t>(i) * K; };
        auto drow = [&](int i) { return d + static_cast<ptrdiff_t>(i) * K; };
        auto img = [&](int y) {
            return data + static_cast<size_t>(y) * fullWidth + x0;
        };
        auto copyRow = [&](float *dst, const float *src) {
            T::fstore(dst, T::fload(src));
        };
        if (forward) {
            for (int i = 0; i < ns; ++i)
                copyRow(srow(i), img(2 * i));
            for (int i = 0; i < nd; ++i)
                copyRow(drow(i), img(2 * i + 1));
            copyRow(srow(ns), srow(ns - 1));
            stepColF(d, nd, s, 0, 1, kAlpha97);
            copyRow(drow(-1), drow(0));
            copyRow(drow(nd), drow(nd - 1));
            stepColF(s, ns, d, -1, 0, kBeta97);
            copyRow(srow(ns), srow(ns - 1));
            stepColF(d, nd, s, 0, 1, kGamma97);
            copyRow(drow(-1), drow(0));
            copyRow(drow(nd), drow(nd - 1));
            stepColF(s, ns, d, -1, 0, kDelta97);
            F zeta = T::fset(kZeta97);
            F izeta = T::fset(kInvZeta97);
            for (int i = 0; i < ns; ++i)
                T::fstore(img(i), T::fmul(T::fload(srow(i)), zeta));
            for (int i = 0; i < nd; ++i)
                T::fstore(img(ns + i), T::fmul(T::fload(drow(i)), izeta));
        } else {
            F zeta = T::fset(kZeta97);
            F izeta = T::fset(kInvZeta97);
            for (int i = 0; i < ns; ++i)
                T::fstore(srow(i), T::fmul(T::fload(img(i)), izeta));
            for (int i = 0; i < nd; ++i)
                T::fstore(drow(i), T::fmul(T::fload(img(ns + i)), zeta));
            copyRow(drow(-1), drow(0));
            copyRow(drow(nd), drow(nd - 1));
            stepColF(s, ns, d, -1, 0, -kDelta97);
            copyRow(srow(ns), srow(ns - 1));
            stepColF(d, nd, s, 0, 1, -kGamma97);
            copyRow(drow(-1), drow(0));
            copyRow(drow(nd), drow(nd - 1));
            stepColF(s, ns, d, -1, 0, -kBeta97);
            copyRow(srow(ns), srow(ns - 1));
            stepColF(d, nd, s, 0, 1, -kAlpha97);
            for (int i = 0; i < ns; ++i)
                T::fstore(img(2 * i), T::fload(srow(i)));
            for (int i = 0; i < nd; ++i)
                T::fstore(img(2 * i + 1), T::fload(drow(i)));
        }
    }

    /**
     * One leftover column: gather it contiguously and reuse the row
     * pass. Per-element operations (and therefore bits) are identical
     * to a lane of cols97Batch; only the memory layout differs.
     */
    static void
    col97One(float *data, int fullWidth, int x, int h, bool forward)
    {
        thread_local std::vector<float> col;
        if (col.size() < static_cast<size_t>(h))
            col.resize(static_cast<size_t>(h));
        for (int y = 0; y < h; ++y)
            col[static_cast<size_t>(y)] =
                data[static_cast<size_t>(y) * fullWidth + x];
        row97(col.data(), h, forward);
        for (int y = 0; y < h; ++y)
            data[static_cast<size_t>(y) * fullWidth + x] =
                col[static_cast<size_t>(y)];
    }

    static void
    cols97(float *data, int fullWidth, int w, int h, bool forward)
    {
        if (h < 2)
            return;
        int x0 = 0;
        for (; x0 + K <= w; x0 += K)
            cols97Batch(data, fullWidth, x0, h, forward);
        for (; x0 < w; ++x0)
            col97One(data, fullWidth, x0, h, forward);
    }

    // ----------------------------------------------- 5/3 column passes

    static void
    cols53Batch(int32_t *data, int fullWidth, int x0, int h, bool forward)
    {
        int ns = (h + 1) / 2;
        int nd = h / 2;
        int32_t *base = iscratch(static_cast<size_t>(h + 4) * K);
        int32_t *s = base + K;
        int32_t *d = base + static_cast<size_t>(ns + 2) * K + K;
        auto srow = [&](int i) { return s + static_cast<ptrdiff_t>(i) * K; };
        auto drow = [&](int i) { return d + static_cast<ptrdiff_t>(i) * K; };
        auto img = [&](int y) {
            return data + static_cast<size_t>(y) * fullWidth + x0;
        };
        auto copyRow = [&](int32_t *dst, const int32_t *src) {
            T::istore(dst, T::iload(src));
        };
        if (forward) {
            for (int i = 0; i < ns; ++i)
                copyRow(srow(i), img(2 * i));
            for (int i = 0; i < nd; ++i)
                copyRow(drow(i), img(2 * i + 1));
            copyRow(srow(ns), srow(ns - 1));
            stepColI(d, nd, s, 0, 1, 0, 1, true);
            copyRow(drow(-1), drow(0));
            copyRow(drow(nd), drow(nd - 1));
            stepColI(s, ns, d, -1, 0, 2, 2, false);
            for (int i = 0; i < ns; ++i)
                copyRow(img(i), srow(i));
            for (int i = 0; i < nd; ++i)
                copyRow(img(ns + i), drow(i));
        } else {
            for (int i = 0; i < ns; ++i)
                copyRow(srow(i), img(i));
            for (int i = 0; i < nd; ++i)
                copyRow(drow(i), img(ns + i));
            copyRow(drow(-1), drow(0));
            copyRow(drow(nd), drow(nd - 1));
            stepColI(s, ns, d, -1, 0, 2, 2, true);
            copyRow(srow(ns), srow(ns - 1));
            stepColI(d, nd, s, 0, 1, 0, 1, false);
            for (int i = 0; i < ns; ++i)
                copyRow(img(2 * i), srow(i));
            for (int i = 0; i < nd; ++i)
                copyRow(img(2 * i + 1), drow(i));
        }
    }

    /** See col97One: gather, reuse the row pass, scatter back. */
    static void
    col53One(int32_t *data, int fullWidth, int x, int h, bool forward)
    {
        thread_local std::vector<int32_t> col;
        if (col.size() < static_cast<size_t>(h))
            col.resize(static_cast<size_t>(h));
        for (int y = 0; y < h; ++y)
            col[static_cast<size_t>(y)] =
                data[static_cast<size_t>(y) * fullWidth + x];
        row53(col.data(), h, forward);
        for (int y = 0; y < h; ++y)
            data[static_cast<size_t>(y) * fullWidth + x] =
                col[static_cast<size_t>(y)];
    }

    static void
    cols53(int32_t *data, int fullWidth, int w, int h, bool forward)
    {
        if (h < 2)
            return;
        int x0 = 0;
        for (; x0 + K <= w; x0 += K)
            cols53Batch(data, fullWidth, x0, h, forward);
        for (; x0 < w; ++x0)
            col53One(data, fullWidth, x0, h, forward);
    }

    // --------------------------------------------- table entry points

    static void
    fwd97(float *data, int fullWidth, int w, int h)
    {
        for (int y = 0; y < h; ++y)
            row97(data + static_cast<size_t>(y) * fullWidth, w, true);
        cols97(data, fullWidth, w, h, true);
    }

    static void
    inv97(float *data, int fullWidth, int w, int h)
    {
        cols97(data, fullWidth, w, h, false);
        for (int y = 0; y < h; ++y)
            row97(data + static_cast<size_t>(y) * fullWidth, w, false);
    }

    static void
    fwd53(int32_t *data, int fullWidth, int w, int h)
    {
        for (int y = 0; y < h; ++y)
            row53(data + static_cast<size_t>(y) * fullWidth, w, true);
        cols53(data, fullWidth, w, h, true);
    }

    static void
    inv53(int32_t *data, int fullWidth, int w, int h)
    {
        cols53(data, fullWidth, w, h, false);
        for (int y = 0; y < h; ++y)
            row53(data + static_cast<size_t>(y) * fullWidth, w, false);
    }

    static void
    quantF32(const float *coeffs, size_t n, float inv, uint32_t *mag,
             uint8_t *sign)
    {
        F vinv = T::fset(inv);
        quantLoop(n, mag, sign, [&](size_t i, I &signMask) {
            F v = T::fload(coeffs + i);
            signMask = T::flt0(v);
            return T::ftoi_trunc(T::fmul(T::fabs_(v), vinv));
        });
        for (size_t i = n - n % K; i < n; ++i) {
            float v = coeffs[i];
            sign[i] = v < 0.0f ? 1 : 0;
            mag[i] = static_cast<uint32_t>(truncToI32(std::fabs(v) * inv));
        }
    }

    static void
    quantI32(const int32_t *coeffs, size_t n, float inv, uint32_t *mag,
             uint8_t *sign)
    {
        F vinv = T::fset(inv);
        quantLoop(n, mag, sign, [&](size_t i, I &signMask) {
            I v = T::iload(coeffs + i);
            signMask = T::isra(v, 31);
            I av = T::isub(T::ixor(v, signMask), signMask);
            return T::ftoi_trunc(T::fmul(T::itof(av), vinv));
        });
        for (size_t i = n - n % K; i < n; ++i) {
            int32_t v = coeffs[i];
            sign[i] = v < 0 ? 1 : 0;
            int32_t av = v < 0 ? -v : v;
            mag[i] = static_cast<uint32_t>(
                truncToI32(static_cast<float>(av) * inv));
        }
    }

    static void
    splitI32(const int32_t *coeffs, size_t n, uint32_t *mag, uint8_t *sign)
    {
        quantLoop(n, mag, sign, [&](size_t i, I &signMask) {
            I v = T::iload(coeffs + i);
            signMask = T::isra(v, 31);
            return T::isub(T::ixor(v, signMask), signMask);
        });
        for (size_t i = n - n % K; i < n; ++i) {
            int32_t v = coeffs[i];
            sign[i] = v < 0 ? 1 : 0;
            mag[i] = static_cast<uint32_t>(v < 0 ? -v : v);
        }
    }

    static void
    combineI32(const uint32_t *mag, const uint8_t *sign, size_t n,
               int32_t *coeffs)
    {
        size_t i = 0;
        for (; i + K <= n; i += K) {
            I m = T::iload(reinterpret_cast<const int32_t *>(mag + i));
            I sm = T::isub(T::izero(), loadU8(sign + i));
            T::istore(coeffs + i, T::isub(T::ixor(m, sm), sm));
        }
        for (; i < n; ++i) {
            int32_t m = static_cast<int32_t>(mag[i]);
            coeffs[i] = sign[i] ? -m : m;
        }
    }

    static void
    dequant97(const uint32_t *mag, const uint8_t *sign, const uint8_t *low,
              size_t n, float step, float *coeffs)
    {
        F vstep = T::fset(step);
        I bias = T::iset(126);
        size_t i = 0;
        for (; i + K <= n; i += K) {
            I m = T::iload(reinterpret_cast<const int32_t *>(mag + i));
            I zeroMask = T::icmpeq0(m);
            F half = T::icastF(T::ishl(T::iadd(loadU8(low + i), bias), 23));
            F val = T::fmul(T::fadd(T::itof(m), half), vstep);
            val = T::fxor(val, T::icastF(T::ishl(loadU8(sign + i), 31)));
            T::fstore(coeffs + i, T::fandnotF(zeroMask, val));
        }
        for (; i < n; ++i) {
            int32_t m = static_cast<int32_t>(mag[i]);
            if (m == 0) {
                coeffs[i] = 0.0f;
                continue;
            }
            float half = bitcastF(static_cast<uint32_t>(126 + low[i]) << 23);
            float v = (static_cast<float>(m) + half) * step;
            coeffs[i] = sign[i] ? -v : v;
        }
    }

    static void
    dequant53(const uint32_t *mag, const uint8_t *sign, const uint8_t *low,
              size_t n, float toInt, int32_t *coeffs)
    {
        F vToInt = T::fset(toInt);
        I bias = T::iset(126);
        size_t i = 0;
        for (; i + K <= n; i += K) {
            I m = T::iload(reinterpret_cast<const int32_t *>(mag + i));
            I zeroMask = T::icmpeq0(m);
            F half = T::icastF(T::ishl(T::iadd(loadU8(low + i), bias), 23));
            I r = T::ftoi_round(T::fmul(T::fadd(T::itof(m), half), vToInt));
            I sm = T::isub(T::izero(), loadU8(sign + i));
            r = T::isub(T::ixor(r, sm), sm);
            T::istore(coeffs + i, T::iandnot(zeroMask, r));
        }
        for (; i < n; ++i) {
            int32_t m = static_cast<int32_t>(mag[i]);
            if (m == 0) {
                coeffs[i] = 0;
                continue;
            }
            float half = bitcastF(static_cast<uint32_t>(126 + low[i]) << 23);
            int32_t r = roundToI32((static_cast<float>(m) + half) * toInt);
            coeffs[i] = sign[i] ? -r : r;
        }
    }

    static uint32_t
    maxU32(const uint32_t *mag, size_t n)
    {
        // Unsigned max via sign-bit biasing: magnitudes >= 2^31 (a
        // saturated quantizer on an absurd quantStep) must win the
        // reduction so the bitplane-overflow assert still fires.
        I bias = T::iset(INT32_MIN);
        I acc = bias; // == 0 in the biased domain
        size_t i = 0;
        for (; i + K <= n; i += K)
            acc = T::imax(
                acc,
                T::ixor(T::iload(reinterpret_cast<const int32_t *>(mag + i)),
                        bias));
        int32_t lanes[K];
        T::istore(lanes, acc);
        uint32_t best = 0;
        for (int j = 0; j < K; ++j)
            best = std::max(best,
                            static_cast<uint32_t>(lanes[j]) ^ 0x80000000u);
        for (; i < n; ++i)
            best = std::max(best, mag[i]);
        return best;
    }

    static void
    bitplaneMask(const uint32_t *mag, size_t n, int plane, uint64_t *out)
    {
        // Shift the plane bit into the sign position and movemask K
        // lanes at a time into the packed word.
        size_t nw = (n + 63) / 64;
        size_t i = 0;
        for (size_t w = 0; w < nw; ++w) {
            size_t end = std::min(n, (w + 1) * 64);
            uint64_t bits = 0;
            int b = static_cast<int>(i - w * 64);
            for (; i + K <= end; i += K, b += K) {
                I v = T::iload(reinterpret_cast<const int32_t *>(mag + i));
                I m = T::isra(T::ishl(v, 31 - plane), 31);
                bits |= static_cast<uint64_t>(T::mask01(m)) << b;
            }
            for (; i < end; ++i, ++b)
                bits |= static_cast<uint64_t>((mag[i] >> plane) & 1u)
                        << b;
            out[w] = bits;
        }
    }

    static void
    dilateRow(const uint64_t *up, const uint64_t *row,
              const uint64_t *down, size_t nwords, uint64_t *out)
    {
        // Already word-level (64 pixels per op) at every width; the
        // per-ISA instantiations differ only in what the compiler
        // auto-vectorizes, never in the bits produced.
        for (size_t w = 0; w < nwords; ++w) {
            uint64_t cur = row[w];
            uint64_t nb = (cur << 1) | (cur >> 1);
            if (w > 0)
                nb |= row[w - 1] >> 63;
            if (w + 1 < nwords)
                nb |= row[w + 1] << 63;
            if (up)
                nb |= up[w];
            if (down)
                nb |= down[w];
            out[w] = nb;
        }
    }

    static void
    centerF(const float *in, size_t n, float *out)
    {
        F half = T::fset(0.5f);
        size_t i = 0;
        for (; i + K <= n; i += K)
            T::fstore(out + i, T::fsub(T::fload(in + i), half));
        for (; i < n; ++i)
            out[i] = in[i] - 0.5f;
    }

    static void
    uncenterClampF(const float *in, size_t n, float lo, float hi,
                   float *out)
    {
        F half = T::fset(0.5f);
        F vlo = T::fset(lo);
        F vhi = T::fset(hi);
        size_t i = 0;
        for (; i + K <= n; i += K) {
            F v = T::fadd(T::fload(in + i), half);
            T::fstore(out + i, T::fmin_(T::fmax_(v, vlo), vhi));
        }
        for (; i < n; ++i) {
            float v = in[i] + 0.5f;
            v = v > lo ? v : lo;
            out[i] = v < hi ? v : hi;
        }
    }

    static void
    pixelsToI32(const float *in, size_t n, bool clamp01, float sub,
                float mul, int32_t off, int32_t *out)
    {
        // The optional [0,1] clamp becomes an always-on clamp against
        // +/-FLT_MAX so every element takes the same branchless path.
        float lo = clamp01 ? 0.0f : -3.402823466e+38f;
        float hi = clamp01 ? 1.0f : 3.402823466e+38f;
        F vlo = T::fset(lo);
        F vhi = T::fset(hi);
        F vsub = T::fset(sub);
        F vmul = T::fset(mul);
        I voff = T::iset(off);
        size_t i = 0;
        for (; i + K <= n; i += K) {
            F v = T::fload(in + i);
            v = T::fmin_(T::fmax_(v, vlo), vhi);
            I r = T::ftoi_round(T::fmul(T::fsub(v, vsub), vmul));
            T::istore(out + i, T::isub(r, voff));
        }
        for (; i < n; ++i) {
            float v = in[i];
            v = v > lo ? v : lo;
            v = v < hi ? v : hi;
            out[i] = roundToI32((v - sub) * mul) - off;
        }
    }

    static void
    i32ToPixels(const int32_t *in, size_t n, float off, float invScale,
                float lo, float hi, float *out)
    {
        F voff = T::fset(off);
        F vinv = T::fset(invScale);
        F vlo = T::fset(lo);
        F vhi = T::fset(hi);
        size_t i = 0;
        for (; i + K <= n; i += K) {
            F v = T::fmul(T::fadd(T::itof(T::iload(in + i)), voff), vinv);
            T::fstore(out + i, T::fmin_(T::fmax_(v, vlo), vhi));
        }
        for (; i < n; ++i) {
            float v = (static_cast<float>(in[i]) + off) * invScale;
            v = v > lo ? v : lo;
            out[i] = v < hi ? v : hi;
        }
    }
};

/** Assemble the function table for one traits instantiation. */
template <class T>
const KernelTable *
makeTable(util::simd::Level level)
{
    using KT = Kernels<T>;
    static const KernelTable table = {
        level,         T::kWidth,      &KT::fwd97,       &KT::inv97,
        &KT::fwd53,    &KT::inv53,     &KT::quantF32,    &KT::quantI32,
        &KT::splitI32, &KT::combineI32, &KT::dequant97,  &KT::dequant53,
        &KT::maxU32,   &KT::bitplaneMask, &KT::dilateRow,
        &KT::centerF,  &KT::uncenterClampF,
        &KT::pixelsToI32, &KT::i32ToPixels,
    };
    return &table;
}

} // namespace earthplus::codec::kernels::detail

#endif // EARTHPLUS_CODEC_KERNELS_IMPL_HH
