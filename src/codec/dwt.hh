/**
 * @file
 * 2D discrete wavelet transforms via lifting.
 *
 * Implements the two JPEG-2000 wavelets: the lossy CDF 9/7 (float) and
 * the reversible LeGall 5/3 (integer), both with whole-sample symmetric
 * boundary extension, arbitrary signal lengths, and in-place Mallat
 * subband layout (LL recursion in the top-left corner).
 */

#ifndef EARTHPLUS_CODEC_DWT_HH
#define EARTHPLUS_CODEC_DWT_HH

#include <cstdint>
#include <vector>

namespace earthplus::codec {

/** Wavelet filter choice. */
enum class Wavelet
{
    CDF97,    ///< Cohen-Daubechies-Feauveau 9/7, lossy float transform.
    LeGall53, ///< LeGall 5/3, reversible integer transform.
};

/**
 * Forward 2D CDF 9/7 transform, in place.
 *
 * @param data Row-major float buffer of size width*height.
 * @param width Buffer width.
 * @param height Buffer height.
 * @param levels Number of dyadic decomposition levels (>= 0). Levels
 *               beyond what the size supports degenerate gracefully
 *               (1-pixel rows/columns pass through).
 */
void forwardDwt97(std::vector<float> &data, int width, int height,
                  int levels);

/** Inverse of forwardDwt97(). */
void inverseDwt97(std::vector<float> &data, int width, int height,
                  int levels);

/**
 * Forward 2D LeGall 5/3 transform on integers, in place. Exactly
 * reversible by inverseDwt53().
 */
void forwardDwt53(std::vector<int32_t> &data, int width, int height,
                  int levels);

/** Inverse of forwardDwt53(). */
void inverseDwt53(std::vector<int32_t> &data, int width, int height,
                  int levels);

/**
 * Per-coefficient subband orientation for the in-place Mallat layout.
 *
 * @return One code per coefficient: 0 = LL, 1 = HL (horizontal detail),
 *         2 = LH, 3 = HH. Used for entropy-coding context selection.
 */
std::vector<uint8_t> subbandOrientation(int width, int height, int levels);

} // namespace earthplus::codec

#endif // EARTHPLUS_CODEC_DWT_HH
