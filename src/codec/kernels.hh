/**
 * @file
 * Vectorized codec kernels with runtime dispatch.
 *
 * One KernelTable per instruction set (scalar, SSE2, AVX2, NEON); all
 * tables are instantiated from the same generic implementation
 * (kernels_impl.hh) at different vector widths, so every lane of every
 * vector kernel performs exactly the single-precision IEEE dataflow of
 * the scalar kernel. Combined with `-ffp-contract=off` (no FMA
 * fusion), this makes encoded streams byte-identical across dispatch
 * levels — the golden guarantee the codec tests assert.
 *
 * The tables cover the per-tile hot paths: the 9/7 and 5/3 lifting
 * passes (columns processed in vector-width batches instead of strided
 * single lanes), the deadzone quantizer and its midpoint dequantizer,
 * the sign/magnitude split/combine, and the pixel<->coefficient
 * conversion loops.
 */

#ifndef EARTHPLUS_CODEC_KERNELS_HH
#define EARTHPLUS_CODEC_KERNELS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/simd.hh"

namespace earthplus::codec::kernels {

/**
 * Function table for one dispatch level.
 *
 * DWT entries transform one decomposition level of a row-major buffer
 * in place: `fullWidth` is the allocation stride, (w, h) the active
 * top-left rectangle. Pointer-pair kernels operate on `n` contiguous
 * elements.
 */
struct KernelTable
{
    /** Dispatch level this table was compiled for. */
    util::simd::Level level;
    /** Float lanes per vector op (1 for scalar). */
    int laneWidth;

    // --- 2D lifting passes, one decomposition level each ---
    /** Forward CDF 9/7: rows then columns. */
    void (*fwd97)(float *data, int fullWidth, int w, int h);
    /** Inverse CDF 9/7: columns then rows. */
    void (*inv97)(float *data, int fullWidth, int w, int h);
    /** Forward LeGall 5/3 (reversible integer). */
    void (*fwd53)(int32_t *data, int fullWidth, int w, int h);
    /** Inverse LeGall 5/3. */
    void (*inv53)(int32_t *data, int fullWidth, int w, int h);

    // --- quantize / dequantize / sign-magnitude ---
    /** mag = trunc(|c| * inv), sign = (c < 0). */
    void (*quantF32)(const float *coeffs, size_t n, float inv,
                     uint32_t *mag, uint8_t *sign);
    /** Integer-coefficient variant of quantF32. */
    void (*quantI32)(const int32_t *coeffs, size_t n, float inv,
                     uint32_t *mag, uint8_t *sign);
    /** Lossless split: mag = |c|, sign = (c < 0). */
    void (*splitI32)(const int32_t *coeffs, size_t n, uint32_t *mag,
                     uint8_t *sign);
    /** Lossless combine: c = sign ? -mag : mag. */
    void (*combineI32)(const uint32_t *mag, const uint8_t *sign, size_t n,
                       int32_t *coeffs);
    /**
     * Midpoint dequantizer to float: 0 when mag == 0, else
     * +/-(mag + 2^(low-1)) * step.
     */
    void (*dequant97)(const uint32_t *mag, const uint8_t *sign,
                      const uint8_t *low, size_t n, float step,
                      float *coeffs);
    /** Midpoint dequantizer to int32 (round-to-nearest-even). */
    void (*dequant53)(const uint32_t *mag, const uint8_t *sign,
                      const uint8_t *low, size_t n, float toInt,
                      int32_t *coeffs);
    /** Maximum magnitude (0 for empty input). */
    uint32_t (*maxU32)(const uint32_t *mag, size_t n);

    // --- word-mask helpers for the bitset bitplane engine ---
    /**
     * Packed bitplane mask: bit i of `out` (LSB-first within uint64_t
     * words) is `(mag[i] >> plane) & 1`. Bits past `n` in the last
     * word are zero. The tile coder calls this once per (row, plane)
     * so the coding passes read one word per 64 coefficients instead
     * of one magnitude load per pixel.
     */
    void (*bitplaneMask)(const uint32_t *mag, size_t n, int plane,
                         uint64_t *out);
    /**
     * 4-neighbor dilation of one packed significance row: bit x of
     * `out` is set when any of (x-1, x+1) in `row` or x in `up`/`down`
     * is set. `up`/`down` may be null at the tile border. Pure integer
     * word ops, so every dispatch level is trivially bit-identical.
     */
    void (*dilateRow)(const uint64_t *up, const uint64_t *row,
                      const uint64_t *down, size_t nwords, uint64_t *out);

    // --- pixel <-> coefficient conversions ---
    /** out = in - 0.5 (center pixels for the 9/7 path). */
    void (*centerF)(const float *in, size_t n, float *out);
    /** out = clamp(in + 0.5, lo, hi). */
    void (*uncenterClampF)(const float *in, size_t n, float lo, float hi,
                           float *out);
    /**
     * out = roundNearestEven((clamp01? clamp(in,0,1) : in) - sub) * mul)
     *       - off. Integer pixel mapping for the 5/3 paths.
     */
    void (*pixelsToI32)(const float *in, size_t n, bool clamp01, float sub,
                        float mul, int32_t off, int32_t *out);
    /** out = clamp((in + off) * invScale, lo, hi). */
    void (*i32ToPixels)(const int32_t *in, size_t n, float off,
                        float invScale, float lo, float hi, float *out);
};

/** Table for the currently active dispatch level (util::simd). */
const KernelTable &active();

/**
 * Table for a specific level, or nullptr when that level was not
 * compiled in or the CPU cannot run it.
 */
const KernelTable *forLevel(util::simd::Level level);

/** Levels with a usable table on this machine, weakest first. */
std::vector<util::simd::Level> availableLevels();

} // namespace earthplus::codec::kernels

#endif // EARTHPLUS_CODEC_KERNELS_HH
