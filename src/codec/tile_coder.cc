#include "codec/tile_coder.hh"

#include <algorithm>
#include <climits>
#include <cmath>

#include "util/logging.hh"

namespace earthplus::codec {

namespace {

/** Highest usable magnitude bitplane (5-bit header limit). */
constexpr int kMaxPlaneLimit = 30;

/** Sentinel for "not yet significant" in the significance-plane map. */
constexpr uint8_t kNeverSignificant = 0xFF;

int
highestBit(uint32_t v)
{
    int p = -1;
    while (v) {
        ++p;
        v >>= 1;
    }
    return p;
}

} // anonymous namespace

TileEncoder::TileEncoder(const raster::Plane &tile,
                         const TileCoderParams &params)
    : params_(params), width_(tile.width()), height_(tile.height()),
      maxPlane_(-1), planesCoded_(0), headerDone_(false)
{
    EP_ASSERT(width_ > 0 && height_ > 0, "empty tile");
    size_t n = static_cast<size_t>(width_) * static_cast<size_t>(height_);
    magnitude_.assign(n, 0);
    sign_.assign(n, 0);
    significant_.assign(n, 0);
    sigPlane_.assign(n, kNeverSignificant);
    visited_.assign(n, 0);
    orient_ = subbandOrientation(width_, height_, params_.dwtLevels);

    if (params_.lossless) {
        EP_ASSERT(params_.wavelet == Wavelet::LeGall53,
                  "lossless coding requires the 5/3 wavelet");
        double scale = static_cast<double>((1 << params_.losslessDepth) - 1);
        int32_t offset = 1 << (params_.losslessDepth - 1);
        std::vector<int32_t> coeffs(n);
        for (int y = 0; y < height_; ++y) {
            const float *row = tile.row(y);
            for (int x = 0; x < width_; ++x) {
                double v = std::clamp(static_cast<double>(row[x]), 0.0, 1.0);
                coeffs[static_cast<size_t>(y) * width_ + x] =
                    static_cast<int32_t>(std::lround(v * scale)) - offset;
            }
        }
        forwardDwt53(coeffs, width_, height_, params_.dwtLevels);
        for (size_t i = 0; i < n; ++i) {
            int32_t c = coeffs[i];
            magnitude_[i] = static_cast<uint32_t>(c < 0 ? -c : c);
            sign_[i] = c < 0 ? 1 : 0;
        }
    } else if (params_.wavelet == Wavelet::CDF97) {
        std::vector<float> coeffs(n);
        for (int y = 0; y < height_; ++y) {
            const float *row = tile.row(y);
            for (int x = 0; x < width_; ++x)
                coeffs[static_cast<size_t>(y) * width_ + x] = row[x] - 0.5f;
        }
        forwardDwt97(coeffs, width_, height_, params_.dwtLevels);
        double inv = 1.0 / params_.quantStep;
        for (size_t i = 0; i < n; ++i) {
            double c = coeffs[i];
            // Deadzone scalar quantizer.
            magnitude_[i] =
                static_cast<uint32_t>(std::floor(std::abs(c) * inv));
            sign_[i] = c < 0 ? 1 : 0;
        }
    } else {
        // Lossy 5/3: integer transform of 8-bit-scaled pixels, then the
        // same deadzone quantizer in 1/255 units.
        std::vector<int32_t> icoeffs(n);
        for (int y = 0; y < height_; ++y) {
            const float *row = tile.row(y);
            for (int x = 0; x < width_; ++x)
                icoeffs[static_cast<size_t>(y) * width_ + x] =
                    static_cast<int32_t>(
                        std::lround((row[x] - 0.5f) * 255.0f));
        }
        forwardDwt53(icoeffs, width_, height_, params_.dwtLevels);
        double inv = 1.0 / (params_.quantStep * 255.0);
        for (size_t i = 0; i < n; ++i) {
            double c = icoeffs[i];
            magnitude_[i] =
                static_cast<uint32_t>(std::floor(std::abs(c) * inv));
            sign_[i] = c < 0 ? 1 : 0;
        }
    }

    for (size_t i = 0; i < n; ++i)
        maxPlane_ = std::max(maxPlane_, highestBit(magnitude_[i]));
    EP_ASSERT(maxPlane_ <= kMaxPlaneLimit,
              "coefficient magnitude overflows bitplane header (%d)",
              maxPlane_);
    nextPlane_ = maxPlane_;
    nextPass_ = 0;
}

void
TileEncoder::encodeHeader(RangeEncoder &enc)
{
    EP_ASSERT(!headerDone_, "tile header already coded");
    enc.encodeBitsRaw(static_cast<uint32_t>(maxPlane_ + 1), 5);
    headerDone_ = true;
}

bool
TileEncoder::done() const
{
    return nextPlane_ < 0;
}

int
TileEncoder::significantNeighbors(int x, int y) const
{
    int n = 0;
    auto sig = [&](int nx, int ny) {
        if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_)
            return 0;
        return static_cast<int>(
            significant_[static_cast<size_t>(ny) * width_ + nx]);
    };
    n += sig(x - 1, y);
    n += sig(x + 1, y);
    n += sig(x, y - 1);
    n += sig(x, y + 1);
    return n;
}

void
TileEncoder::encodePass(RangeEncoder &enc, int plane, int pass)
{
    if (pass == 0)
        std::fill(visited_.begin(), visited_.end(), 0);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            size_t i = static_cast<size_t>(y) * width_ + x;
            int bit = static_cast<int>((magnitude_[i] >> plane) & 1u);
            if (pass == 0) {
                // Significance propagation: insignificant coefficients
                // with at least one significant neighbor.
                if (significant_[i])
                    continue;
                int nn = significantNeighbors(x, y);
                if (nn == 0)
                    continue;
                visited_[i] = 1;
                enc.encodeBit(
                    ctx_.significance[orient_[i]]
                                     [static_cast<size_t>(std::min(nn, 3))],
                    bit);
                if (bit) {
                    enc.encodeBitRaw(sign_[i]);
                    significant_[i] = 1;
                    sigPlane_[i] = static_cast<uint8_t>(plane);
                }
            } else if (pass == 1) {
                // Refinement of coefficients significant before this
                // plane (sigPlane > plane because planes count down).
                if (!significant_[i] ||
                    sigPlane_[i] <= static_cast<uint8_t>(plane))
                    continue;
                enc.encodeBit(ctx_.refinement, bit);
            } else {
                // Cleanup: everything still insignificant and unvisited.
                if (significant_[i] || visited_[i])
                    continue;
                int nn = significantNeighbors(x, y);
                enc.encodeBit(
                    ctx_.significance[orient_[i]]
                                     [static_cast<size_t>(std::min(nn, 3))],
                    bit);
                if (bit) {
                    enc.encodeBitRaw(sign_[i]);
                    significant_[i] = 1;
                    sigPlane_[i] = static_cast<uint8_t>(plane);
                }
            }
        }
    }
}

int
TileEncoder::encodePlanes(RangeEncoder &enc, size_t byteLimit,
                          int maxPlanes)
{
    EP_ASSERT(headerDone_, "encodePlanes before encodeHeader");
    if (done())
        return 0;
    int planesThisCall = 0;
    // Every pass is preceded by a continue bit so the decoder needs no
    // side information about where the budget ran out. Once the final
    // pass of plane 0 is emitted no terminator is needed: the decoder
    // stops by itself when nextPlane_ goes negative.
    while (nextPlane_ >= 0 && planesThisCall < maxPlanes &&
           enc.bytesWritten() < byteLimit) {
        enc.encodeBitRaw(1);
        encodePass(enc, nextPlane_, nextPass_);
        ++nextPass_;
        if (nextPass_ == 3) {
            nextPass_ = 0;
            --nextPlane_;
            ++planesCoded_;
            ++planesThisCall;
        }
    }
    if (nextPlane_ >= 0)
        enc.encodeBitRaw(0);
    return planesThisCall;
}

TileDecoder::TileDecoder(int width, int height,
                         const TileCoderParams &params)
    : params_(params), width_(width), height_(height), maxPlane_(-1),
      nextPlane_(-1), nextPass_(0), planesCoded_(0)
{
    EP_ASSERT(width_ > 0 && height_ > 0, "empty tile");
    size_t n = static_cast<size_t>(width_) * static_cast<size_t>(height_);
    magnitude_.assign(n, 0);
    sign_.assign(n, 0);
    significant_.assign(n, 0);
    sigPlane_.assign(n, kNeverSignificant);
    visited_.assign(n, 0);
    lowPlane_.assign(n, 0);
    orient_ = subbandOrientation(width_, height_, params_.dwtLevels);
}

void
TileDecoder::decodeHeader(RangeDecoder &dec)
{
    uint32_t v = dec.decodeBitsRaw(5);
    maxPlane_ = static_cast<int>(v) - 1;
    nextPlane_ = maxPlane_;
    nextPass_ = 0;
    // Until any bit of a coefficient is seen, its uncertainty spans all
    // coded planes.
    std::fill(lowPlane_.begin(), lowPlane_.end(),
              static_cast<uint8_t>(std::max(maxPlane_ + 1, 0)));
}

int
TileDecoder::significantNeighbors(int x, int y) const
{
    int n = 0;
    auto sig = [&](int nx, int ny) {
        if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_)
            return 0;
        return static_cast<int>(
            significant_[static_cast<size_t>(ny) * width_ + nx]);
    };
    n += sig(x - 1, y);
    n += sig(x + 1, y);
    n += sig(x, y - 1);
    n += sig(x, y + 1);
    return n;
}

void
TileDecoder::decodePass(RangeDecoder &dec, int plane, int pass)
{
    if (pass == 0)
        std::fill(visited_.begin(), visited_.end(), 0);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            size_t i = static_cast<size_t>(y) * width_ + x;
            if (pass == 0) {
                if (significant_[i])
                    continue;
                int nn = significantNeighbors(x, y);
                if (nn == 0)
                    continue;
                visited_[i] = 1;
                int bit = dec.decodeBit(
                    ctx_.significance[orient_[i]]
                                     [static_cast<size_t>(std::min(nn, 3))]);
                lowPlane_[i] = static_cast<uint8_t>(plane);
                if (bit) {
                    magnitude_[i] |= 1u << plane;
                    sign_[i] = static_cast<uint8_t>(dec.decodeBitRaw());
                    significant_[i] = 1;
                    sigPlane_[i] = static_cast<uint8_t>(plane);
                }
            } else if (pass == 1) {
                if (!significant_[i] ||
                    sigPlane_[i] <= static_cast<uint8_t>(plane))
                    continue;
                int bit = dec.decodeBit(ctx_.refinement);
                lowPlane_[i] = static_cast<uint8_t>(plane);
                if (bit)
                    magnitude_[i] |= 1u << plane;
            } else {
                if (significant_[i] || visited_[i])
                    continue;
                int nn = significantNeighbors(x, y);
                int bit = dec.decodeBit(
                    ctx_.significance[orient_[i]]
                                     [static_cast<size_t>(std::min(nn, 3))]);
                lowPlane_[i] = static_cast<uint8_t>(plane);
                if (bit) {
                    magnitude_[i] |= 1u << plane;
                    sign_[i] = static_cast<uint8_t>(dec.decodeBitRaw());
                    significant_[i] = 1;
                    sigPlane_[i] = static_cast<uint8_t>(plane);
                }
            }
        }
    }
}

void
TileDecoder::decodePlanes(RangeDecoder &dec)
{
    while (nextPlane_ >= 0 && dec.decodeBitRaw() == 1) {
        decodePass(dec, nextPlane_, nextPass_);
        ++nextPass_;
        if (nextPass_ == 3) {
            nextPass_ = 0;
            --nextPlane_;
            ++planesCoded_;
        }
    }
}

raster::Plane
TileDecoder::reconstruct() const
{
    size_t n = static_cast<size_t>(width_) * static_cast<size_t>(height_);
    raster::Plane out(width_, height_);
    bool fullyDecoded = nextPlane_ < 0;

    if (params_.lossless && fullyDecoded) {
        std::vector<int32_t> coeffs(n);
        for (size_t i = 0; i < n; ++i) {
            int32_t m = static_cast<int32_t>(magnitude_[i]);
            coeffs[i] = sign_[i] ? -m : m;
        }
        inverseDwt53(coeffs, width_, height_, params_.dwtLevels);
        double scale = static_cast<double>((1 << params_.losslessDepth) - 1);
        int32_t offset = 1 << (params_.losslessDepth - 1);
        for (int y = 0; y < height_; ++y) {
            float *row = out.row(y);
            for (int x = 0; x < width_; ++x) {
                int32_t v = coeffs[static_cast<size_t>(y) * width_ + x] +
                            offset;
                row[x] = static_cast<float>(v / scale);
            }
        }
        return out;
    }

    // Midpoint reconstruction: for coefficient i the bits above
    // lowPlane_[i] are exact, so |c| lies in [m, m + 2^lowPlane[i])
    // quantizer steps; add half of that uncertainty when significant.
    auto midpoint = [&](size_t i) {
        double m = static_cast<double>(magnitude_[i]);
        if (m <= 0.0)
            return 0.0;
        double mag = m + std::ldexp(0.5, lowPlane_[i]);
        return sign_[i] ? -mag : mag;
    };

    if (params_.wavelet == Wavelet::CDF97) {
        std::vector<float> coeffs(n);
        for (size_t i = 0; i < n; ++i)
            coeffs[i] = static_cast<float>(midpoint(i) * params_.quantStep);
        inverseDwt97(coeffs, width_, height_, params_.dwtLevels);
        for (int y = 0; y < height_; ++y) {
            float *row = out.row(y);
            for (int x = 0; x < width_; ++x)
                row[x] = coeffs[static_cast<size_t>(y) * width_ + x] + 0.5f;
        }
        out.clampTo(0.0f, 1.0f);
        return out;
    }

    // 5/3 integer path: lossy 5/3 (quantizer in 1/255 units) or a
    // truncated lossless stream (quantizer step 1).
    std::vector<int32_t> coeffs(n);
    double toInt = params_.lossless ? 1.0 : params_.quantStep * 255.0;
    for (size_t i = 0; i < n; ++i)
        coeffs[i] = static_cast<int32_t>(std::lround(midpoint(i) * toInt));
    inverseDwt53(coeffs, width_, height_, params_.dwtLevels);

    double scale;
    double offset;
    if (params_.lossless) {
        scale = static_cast<double>((1 << params_.losslessDepth) - 1);
        offset = static_cast<double>(1 << (params_.losslessDepth - 1));
    } else {
        scale = 255.0;
        offset = 0.5 * 255.0;
    }
    for (int y = 0; y < height_; ++y) {
        float *row = out.row(y);
        for (int x = 0; x < width_; ++x) {
            double v = coeffs[static_cast<size_t>(y) * width_ + x];
            row[x] = static_cast<float>((v + offset) / scale);
        }
    }
    out.clampTo(0.0f, 1.0f);
    return out;
}

std::vector<std::vector<uint8_t>>
encodeTileLayers(const raster::Plane &tile, const TileCoderParams &params,
                 int layers, size_t byteBudget)
{
    EP_ASSERT(layers >= 1, "need at least one quality layer");
    TileEncoder coder(tile, params);
    std::vector<std::vector<uint8_t>> out(static_cast<size_t>(layers));
    size_t spent = 0;
    for (int layer = 0; layer < layers; ++layer) {
        std::vector<uint8_t> &chunk = out[static_cast<size_t>(layer)];
        RangeEncoder enc(chunk);
        if (layer == 0)
            coder.encodeHeader(enc);
        // Cumulative budget through this layer grows linearly so each
        // layer carries a roughly equal share of the bits.
        size_t cumBudget = params.lossless
            ? byteBudget
            : byteBudget * static_cast<size_t>(layer + 1) /
                  static_cast<size_t>(layers);
        size_t remaining = cumBudget > spent ? cumBudget - spent : 0;
        int maxPlanes = INT_MAX;
        if (params.lossless) {
            // Spread bitplanes evenly across layers.
            int total = coder.maxPlane() + 1;
            maxPlanes = (total + layers - 1) / layers;
        }
        coder.encodePlanes(enc, enc.bytesWritten() + remaining, maxPlanes);
        enc.flush();
        spent += chunk.size();
    }
    return out;
}

raster::Plane
decodeTileLayers(int width, int height, const TileCoderParams &params,
                 const std::vector<ChunkSpan> &layerSpans)
{
    TileDecoder dec(width, height, params);
    for (size_t l = 0; l < layerSpans.size(); ++l) {
        RangeDecoder rd(layerSpans[l].data, layerSpans[l].size);
        if (l == 0)
            dec.decodeHeader(rd);
        dec.decodePlanes(rd);
    }
    return dec.reconstruct();
}

} // namespace earthplus::codec
