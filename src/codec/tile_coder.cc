#include "codec/tile_coder.hh"

#include <algorithm>
#include <climits>
#include <cmath>

#include "codec/kernels.hh"
#include "util/logging.hh"

namespace earthplus::codec {

namespace {

/** Highest usable magnitude bitplane (5-bit header limit). */
constexpr int kMaxPlaneLimit = 30;

/** Sentinel for "not yet significant" in the significance-plane map. */
constexpr uint8_t kNeverSignificant = 0xFF;

int
highestBit(uint32_t v)
{
    int p = -1;
    while (v) {
        ++p;
        v >>= 1;
    }
    return p;
}

} // anonymous namespace

TileEncoder::TileEncoder(const raster::Plane &tile,
                         const TileCoderParams &params)
    : params_(params), width_(tile.width()), height_(tile.height()),
      maxPlane_(-1), planesCoded_(0), headerDone_(false)
{
    EP_ASSERT(width_ > 0 && height_ > 0, "empty tile");
    size_t n = static_cast<size_t>(width_) * static_cast<size_t>(height_);
    magnitude_.assign(n, 0);
    sign_.assign(n, 0);
    significant_.assign(n, 0);
    sigPlane_.assign(n, kNeverSignificant);
    visited_.assign(n, 0);
    orient_ = subbandOrientation(width_, height_, params_.dwtLevels);

    // Pixel conversion, quantization and the sign/magnitude split run
    // through the dispatched kernel table; every level shares the
    // scalar single-precision dataflow, so the quantized coefficients
    // (and therefore the encoded stream) do not depend on the level.
    const kernels::KernelTable &K = kernels::active();
    const float *pixels = tile.row(0);
    if (params_.lossless) {
        EP_ASSERT(params_.wavelet == Wavelet::LeGall53,
                  "lossless coding requires the 5/3 wavelet");
        float scale =
            static_cast<float>((1 << params_.losslessDepth) - 1);
        int32_t offset = 1 << (params_.losslessDepth - 1);
        std::vector<int32_t> coeffs(n);
        K.pixelsToI32(pixels, n, true, 0.0f, scale, offset,
                      coeffs.data());
        forwardDwt53(coeffs, width_, height_, params_.dwtLevels);
        K.splitI32(coeffs.data(), n, magnitude_.data(), sign_.data());
    } else if (params_.wavelet == Wavelet::CDF97) {
        std::vector<float> coeffs(n);
        K.centerF(pixels, n, coeffs.data());
        forwardDwt97(coeffs, width_, height_, params_.dwtLevels);
        // Deadzone scalar quantizer.
        float inv = static_cast<float>(1.0 / params_.quantStep);
        K.quantF32(coeffs.data(), n, inv, magnitude_.data(),
                   sign_.data());
    } else {
        // Lossy 5/3: integer transform of 8-bit-scaled pixels, then the
        // same deadzone quantizer in 1/255 units.
        std::vector<int32_t> icoeffs(n);
        K.pixelsToI32(pixels, n, false, 0.5f, 255.0f, 0, icoeffs.data());
        forwardDwt53(icoeffs, width_, height_, params_.dwtLevels);
        float inv = static_cast<float>(1.0 / (params_.quantStep * 255.0));
        K.quantI32(icoeffs.data(), n, inv, magnitude_.data(),
                   sign_.data());
    }

    maxPlane_ = highestBit(K.maxU32(magnitude_.data(), n));
    EP_ASSERT(maxPlane_ <= kMaxPlaneLimit,
              "coefficient magnitude overflows bitplane header (%d)",
              maxPlane_);
    nextPlane_ = maxPlane_;
    nextPass_ = 0;
}

void
TileEncoder::encodeHeader(RangeEncoder &enc)
{
    EP_ASSERT(!headerDone_, "tile header already coded");
    enc.encodeBitsRaw(static_cast<uint32_t>(maxPlane_ + 1), 5);
    headerDone_ = true;
}

bool
TileEncoder::done() const
{
    return nextPlane_ < 0;
}

int
TileEncoder::significantNeighbors(int x, int y) const
{
    int n = 0;
    auto sig = [&](int nx, int ny) {
        if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_)
            return 0;
        return static_cast<int>(
            significant_[static_cast<size_t>(ny) * width_ + nx]);
    };
    n += sig(x - 1, y);
    n += sig(x + 1, y);
    n += sig(x, y - 1);
    n += sig(x, y + 1);
    return n;
}

void
TileEncoder::encodePass(RangeEncoder &enc, int plane, int pass)
{
    if (pass == 0)
        std::fill(visited_.begin(), visited_.end(), 0);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            size_t i = static_cast<size_t>(y) * width_ + x;
            int bit = static_cast<int>((magnitude_[i] >> plane) & 1u);
            if (pass == 0) {
                // Significance propagation: insignificant coefficients
                // with at least one significant neighbor.
                if (significant_[i])
                    continue;
                int nn = significantNeighbors(x, y);
                if (nn == 0)
                    continue;
                visited_[i] = 1;
                enc.encodeBit(
                    ctx_.significance[orient_[i]]
                                     [static_cast<size_t>(std::min(nn, 3))],
                    bit);
                if (bit) {
                    enc.encodeBitRaw(sign_[i]);
                    significant_[i] = 1;
                    sigPlane_[i] = static_cast<uint8_t>(plane);
                }
            } else if (pass == 1) {
                // Refinement of coefficients significant before this
                // plane (sigPlane > plane because planes count down).
                if (!significant_[i] ||
                    sigPlane_[i] <= static_cast<uint8_t>(plane))
                    continue;
                enc.encodeBit(ctx_.refinement, bit);
            } else {
                // Cleanup: everything still insignificant and unvisited.
                if (significant_[i] || visited_[i])
                    continue;
                int nn = significantNeighbors(x, y);
                enc.encodeBit(
                    ctx_.significance[orient_[i]]
                                     [static_cast<size_t>(std::min(nn, 3))],
                    bit);
                if (bit) {
                    enc.encodeBitRaw(sign_[i]);
                    significant_[i] = 1;
                    sigPlane_[i] = static_cast<uint8_t>(plane);
                }
            }
        }
    }
}

int
TileEncoder::encodePlanes(RangeEncoder &enc, size_t byteLimit,
                          int maxPlanes)
{
    EP_ASSERT(headerDone_, "encodePlanes before encodeHeader");
    if (done())
        return 0;
    int planesThisCall = 0;
    // Every pass is preceded by a continue bit so the decoder needs no
    // side information about where the budget ran out. Once the final
    // pass of plane 0 is emitted no terminator is needed: the decoder
    // stops by itself when nextPlane_ goes negative.
    while (nextPlane_ >= 0 && planesThisCall < maxPlanes &&
           enc.bytesWritten() < byteLimit) {
        enc.encodeBitRaw(1);
        encodePass(enc, nextPlane_, nextPass_);
        ++nextPass_;
        if (nextPass_ == 3) {
            nextPass_ = 0;
            --nextPlane_;
            ++planesCoded_;
            ++planesThisCall;
        }
    }
    if (nextPlane_ >= 0)
        enc.encodeBitRaw(0);
    return planesThisCall;
}

TileDecoder::TileDecoder(int width, int height,
                         const TileCoderParams &params)
    : params_(params), width_(width), height_(height), maxPlane_(-1),
      nextPlane_(-1), nextPass_(0), planesCoded_(0)
{
    EP_ASSERT(width_ > 0 && height_ > 0, "empty tile");
    size_t n = static_cast<size_t>(width_) * static_cast<size_t>(height_);
    magnitude_.assign(n, 0);
    sign_.assign(n, 0);
    significant_.assign(n, 0);
    sigPlane_.assign(n, kNeverSignificant);
    visited_.assign(n, 0);
    lowPlane_.assign(n, 0);
    orient_ = subbandOrientation(width_, height_, params_.dwtLevels);
}

void
TileDecoder::decodeHeader(RangeDecoder &dec)
{
    uint32_t v = dec.decodeBitsRaw(5);
    maxPlane_ = static_cast<int>(v) - 1;
    nextPlane_ = maxPlane_;
    nextPass_ = 0;
    // Until any bit of a coefficient is seen, its uncertainty spans all
    // coded planes.
    std::fill(lowPlane_.begin(), lowPlane_.end(),
              static_cast<uint8_t>(std::max(maxPlane_ + 1, 0)));
}

int
TileDecoder::significantNeighbors(int x, int y) const
{
    int n = 0;
    auto sig = [&](int nx, int ny) {
        if (nx < 0 || nx >= width_ || ny < 0 || ny >= height_)
            return 0;
        return static_cast<int>(
            significant_[static_cast<size_t>(ny) * width_ + nx]);
    };
    n += sig(x - 1, y);
    n += sig(x + 1, y);
    n += sig(x, y - 1);
    n += sig(x, y + 1);
    return n;
}

void
TileDecoder::decodePass(RangeDecoder &dec, int plane, int pass)
{
    if (pass == 0)
        std::fill(visited_.begin(), visited_.end(), 0);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            size_t i = static_cast<size_t>(y) * width_ + x;
            if (pass == 0) {
                if (significant_[i])
                    continue;
                int nn = significantNeighbors(x, y);
                if (nn == 0)
                    continue;
                visited_[i] = 1;
                int bit = dec.decodeBit(
                    ctx_.significance[orient_[i]]
                                     [static_cast<size_t>(std::min(nn, 3))]);
                lowPlane_[i] = static_cast<uint8_t>(plane);
                if (bit) {
                    magnitude_[i] |= 1u << plane;
                    sign_[i] = static_cast<uint8_t>(dec.decodeBitRaw());
                    significant_[i] = 1;
                    sigPlane_[i] = static_cast<uint8_t>(plane);
                }
            } else if (pass == 1) {
                if (!significant_[i] ||
                    sigPlane_[i] <= static_cast<uint8_t>(plane))
                    continue;
                int bit = dec.decodeBit(ctx_.refinement);
                lowPlane_[i] = static_cast<uint8_t>(plane);
                if (bit)
                    magnitude_[i] |= 1u << plane;
            } else {
                if (significant_[i] || visited_[i])
                    continue;
                int nn = significantNeighbors(x, y);
                int bit = dec.decodeBit(
                    ctx_.significance[orient_[i]]
                                     [static_cast<size_t>(std::min(nn, 3))]);
                lowPlane_[i] = static_cast<uint8_t>(plane);
                if (bit) {
                    magnitude_[i] |= 1u << plane;
                    sign_[i] = static_cast<uint8_t>(dec.decodeBitRaw());
                    significant_[i] = 1;
                    sigPlane_[i] = static_cast<uint8_t>(plane);
                }
            }
        }
    }
}

void
TileDecoder::decodePlanes(RangeDecoder &dec)
{
    while (nextPlane_ >= 0 && dec.decodeBitRaw() == 1) {
        decodePass(dec, nextPlane_, nextPass_);
        ++nextPass_;
        if (nextPass_ == 3) {
            nextPass_ = 0;
            --nextPlane_;
            ++planesCoded_;
        }
    }
}

raster::Plane
TileDecoder::reconstruct() const
{
    size_t n = static_cast<size_t>(width_) * static_cast<size_t>(height_);
    raster::Plane out(width_, height_);
    bool fullyDecoded = nextPlane_ < 0;
    const kernels::KernelTable &K = kernels::active();

    if (params_.lossless && fullyDecoded) {
        std::vector<int32_t> coeffs(n);
        K.combineI32(magnitude_.data(), sign_.data(), n, coeffs.data());
        inverseDwt53(coeffs, width_, height_, params_.dwtLevels);
        float invScale = static_cast<float>(
            1.0 / ((1 << params_.losslessDepth) - 1));
        float offset =
            static_cast<float>(1 << (params_.losslessDepth - 1));
        K.i32ToPixels(coeffs.data(), n, offset, invScale, 0.0f, 1.0f,
                      out.row(0));
        return out;
    }

    // Midpoint reconstruction: for coefficient i the bits above
    // lowPlane_[i] are exact, so |c| lies in [m, m + 2^lowPlane[i])
    // quantizer steps; the dequant kernels add half of that
    // uncertainty when significant (and decode zero otherwise).

    if (params_.wavelet == Wavelet::CDF97) {
        std::vector<float> coeffs(n);
        K.dequant97(magnitude_.data(), sign_.data(), lowPlane_.data(), n,
                    static_cast<float>(params_.quantStep), coeffs.data());
        inverseDwt97(coeffs, width_, height_, params_.dwtLevels);
        K.uncenterClampF(coeffs.data(), n, 0.0f, 1.0f, out.row(0));
        return out;
    }

    // 5/3 integer path: lossy 5/3 (quantizer in 1/255 units) or a
    // truncated lossless stream (quantizer step 1).
    std::vector<int32_t> coeffs(n);
    float toInt = params_.lossless
        ? 1.0f
        : static_cast<float>(params_.quantStep * 255.0);
    K.dequant53(magnitude_.data(), sign_.data(), lowPlane_.data(), n,
                toInt, coeffs.data());
    inverseDwt53(coeffs, width_, height_, params_.dwtLevels);

    float invScale;
    float offset;
    if (params_.lossless) {
        invScale = static_cast<float>(
            1.0 / ((1 << params_.losslessDepth) - 1));
        offset = static_cast<float>(1 << (params_.losslessDepth - 1));
    } else {
        invScale = static_cast<float>(1.0 / 255.0);
        offset = 127.5f;
    }
    K.i32ToPixels(coeffs.data(), n, offset, invScale, 0.0f, 1.0f,
                  out.row(0));
    return out;
}

std::vector<std::vector<uint8_t>>
encodeTileLayers(const raster::Plane &tile, const TileCoderParams &params,
                 int layers, size_t byteBudget)
{
    EP_ASSERT(layers >= 1, "need at least one quality layer");
    TileEncoder coder(tile, params);
    std::vector<std::vector<uint8_t>> out(static_cast<size_t>(layers));
    size_t spent = 0;
    for (int layer = 0; layer < layers; ++layer) {
        std::vector<uint8_t> &chunk = out[static_cast<size_t>(layer)];
        RangeEncoder enc(chunk);
        if (layer == 0)
            coder.encodeHeader(enc);
        // Cumulative budget through this layer grows linearly so each
        // layer carries a roughly equal share of the bits.
        size_t cumBudget = params.lossless
            ? byteBudget
            : byteBudget * static_cast<size_t>(layer + 1) /
                  static_cast<size_t>(layers);
        size_t remaining = cumBudget > spent ? cumBudget - spent : 0;
        int maxPlanes = INT_MAX;
        if (params.lossless) {
            // Spread bitplanes evenly across layers.
            int total = coder.maxPlane() + 1;
            maxPlanes = (total + layers - 1) / layers;
        }
        coder.encodePlanes(enc, enc.bytesWritten() + remaining, maxPlanes);
        enc.flush();
        spent += chunk.size();
    }
    return out;
}

raster::Plane
decodeTileLayers(int width, int height, const TileCoderParams &params,
                 const std::vector<ChunkSpan> &layerSpans)
{
    TileDecoder dec(width, height, params);
    for (size_t l = 0; l < layerSpans.size(); ++l) {
        RangeDecoder rd(layerSpans[l].data, layerSpans[l].size);
        if (l == 0)
            dec.decodeHeader(rd);
        dec.decodePlanes(rd);
    }
    return dec.reconstruct();
}

} // namespace earthplus::codec
