#include "codec/tile_coder.hh"

#include <algorithm>
#include <climits>
#include <cmath>

#include "codec/kernels.hh"
#include "util/bytes.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace earthplus::codec {

namespace {

/** Highest usable magnitude bitplane (5-bit header limit). */
constexpr int kMaxPlaneLimit = 30;

/** Words needed to pack one `width`-pixel row. */
int
packedWords(int width)
{
    return (width + 63) / 64;
}

/** All-ones over the bits a row's last word actually uses. */
uint64_t
lastWordMask(int width)
{
    int used = width % 64;
    return used == 0 ? ~0ull : ~0ull >> (64 - used);
}

/** First row of chunk `chunk` on the params' slab grid. */
int
chunkRow0(const TileCoderParams &params, int height, int chunk)
{
    int rowsPer = params.chunkRows <= 0 ? height : params.chunkRows;
    return chunk * rowsPer;
}

/** Row count of chunk `chunk` (the last slab may be short). */
int
chunkRows(const TileCoderParams &params, int height, int chunk)
{
    int rowsPer = params.chunkRows <= 0 ? height : params.chunkRows;
    return std::min(rowsPer, height - chunkRow0(params, height, chunk));
}

/**
 * Per-word snapshot of everything the neighbor count of one candidate
 * word needs. The coding loops keep these in registers across the
 * whole word: the range coder stores bytes through `uint8_t *`, which
 * aliases every array in the coder, so reading the words back from
 * memory after each coded bit would defeat the bitset representation.
 *
 * Correctness of the snapshot: while word `w` of row `y` is being
 * processed, `up` (row y-1) is final for this pass, `down` (row y+1)
 * and the right carry (word w+1) are untouched, and the left carry
 * (word w-1) was written back before this word started. Only `sig`
 * (word w itself) changes mid-word, and it is updated in place.
 */
struct NeighborWords
{
    uint64_t sig;        ///< Live significance of this word.
    uint64_t up;         ///< Row above (0 at the top border).
    uint64_t down;       ///< Row below (0 at the bottom border).
    uint64_t leftCarry;  ///< Bit 63 of word w-1 (left of bit 0).
    uint64_t rightCarry; ///< Bit 0 of word w+1 (right of bit 63).

    NeighborWords(const uint64_t *sigRow, const uint64_t *sigUp,
                  const uint64_t *sigDn, int w, int words)
        : sig(sigRow[w]), up(sigUp ? sigUp[w] : 0),
          down(sigDn ? sigDn[w] : 0),
          leftCarry(w > 0 ? sigRow[w - 1] >> 63 : 0),
          rightCarry(w + 1 < words ? sigRow[w + 1] & 1u : 0)
    {
    }

    /** Significant 4-neighbors of bit `b`, from the live snapshot. */
    int
    count(int b) const
    {
        uint64_t left = b > 0 ? (sig >> (b - 1)) & 1u : leftCarry;
        uint64_t right = b < 63 ? (sig >> (b + 1)) & 1u : rightCarry;
        return static_cast<int>(((up >> b) & 1u) + ((down >> b) & 1u) +
                                left + right);
    }
};

/** The packed per-pixel state one significance scan works over. */
struct ScanGrid
{
    int width;
    int height;
    int words; ///< wordsPerRow.
    uint64_t *sig;
    uint64_t *visited;
    uint64_t *dilation; ///< Per-row scratch, `words` entries.
    const uint8_t *orient;
    TileContexts *ctx;
};

/**
 * Word-scan driver shared by the significance-propagation (pass 0)
 * and cleanup (pass 2) scans of the encoder AND the decoder — the
 * candidate evolution is the byte-identity-critical part, so it
 * exists exactly once. `Coder` supplies the two per-coefficient
 * actions that differ between the four call sites:
 *
 *   int  code(size_t i, int y, int w, int b, BitModel &model);
 *        Code the significance bit of coefficient i under `model`
 *        and return it.
 *   void significant(size_t i);
 *        Coefficient i just turned significant: handle its sign (and,
 *        on the decoder, its magnitude bit).
 *
 * Pass 0 (kCleanup = false) visits insignificant coefficients with at
 * least one significant neighbor — the dilation row masked to
 * `~significant` — marking each visited, and a coefficient turning
 * significant recruits its right neighbor into the live candidate
 * word (or the next word's dilation bit), reproducing the per-pixel
 * raster scan's left-to-right propagation wave exactly. Pass 2
 * (kCleanup = true) visits everything still insignificant and
 * unvisited; there the dilation word only gates the neighbor count
 * (isolated coefficients take the zero-neighbor context without
 * touching their neighbors), and new significance extends the gate
 * instead of the candidate set.
 */
template <bool kCleanup, typename Coder>
void
runSigScan(const ScanGrid &g, Coder &&coder)
{
    const int W = g.words;
    const kernels::KernelTable &K = kernels::active();
    const uint64_t lastMask = lastWordMask(g.width);
    uint64_t *nb = g.dilation;
    for (int y = 0; y < g.height; ++y) {
        uint64_t *sigRow = g.sig + static_cast<size_t>(y) * W;
        const uint64_t *sigUp = y > 0 ? sigRow - W : nullptr;
        const uint64_t *sigDn = y + 1 < g.height ? sigRow + W : nullptr;
        uint64_t *visRow = g.visited + static_cast<size_t>(y) * W;
        K.dilateRow(sigUp, sigRow, sigDn, static_cast<size_t>(W), nb);
        size_t rowBase =
            static_cast<size_t>(y) * static_cast<size_t>(g.width);
        const uint8_t *orientRow = g.orient + rowBase;
        for (int w = 0; w < W; ++w) {
            const uint64_t valid = w == W - 1 ? lastMask : ~0ull;
            uint64_t m = kCleanup ? ~sigRow[w] & ~visRow[w] & valid
                                  : nb[w] & ~sigRow[w] & valid;
            if (m == 0)
                continue;
            NeighborWords nw(sigRow, sigUp, sigDn, w, W);
            uint64_t nbW = nb[w];
            uint64_t vis = visRow[w];
            do {
                int b = util::countTrailingZeros(m);
                m &= m - 1;
                int x = (w << 6) + b;
                int nn;
                if (kCleanup) {
                    nn = ((nbW >> b) & 1u) != 0 ? nw.count(b) : 0;
                } else {
                    nn = nw.count(b);
                    vis |= 1ull << b;
                }
                BitModel &model =
                    g.ctx->significance[orientRow[x]]
                                       [static_cast<size_t>(
                                           nn < 3 ? nn : 3)];
                int bit = coder.code(rowBase + static_cast<size_t>(x),
                                     y, w, b, model);
                if (bit) {
                    coder.significant(rowBase + static_cast<size_t>(x));
                    nw.sig |= 1ull << b;
                    if (b < 63) {
                        if (kCleanup)
                            nbW |= 1ull << (b + 1);
                        else
                            m |= (1ull << (b + 1)) & ~nw.sig & valid;
                    } else if (w + 1 < W) {
                        nb[w + 1] |= 1ull;
                    }
                }
            } while (m != 0);
            sigRow[w] = nw.sig;
            if (!kCleanup)
                visRow[w] = vis;
        }
    }
}

/** Encoder-side scan actions: bits come from the plane-bit mask. */
template <typename Encoder>
struct EncoderScan
{
    Encoder &enc;
    const uint64_t *planeBits;
    int words;
    const uint8_t *sign;

    int
    code(size_t, int y, int w, int b, BitModel &model)
    {
        int bit = static_cast<int>(
            (planeBits[static_cast<size_t>(y) * words + w] >> b) & 1u);
        enc.encodeBit(model, bit);
        return bit;
    }

    void significant(size_t i) { enc.encodeBitRaw(sign[i]); }
};

/**
 * Progressive-encode tee: the real per-segment coder and the
 * EPC3-accounting shadow consume the identical (probability, bit)
 * sequence while the shared context model updates exactly once, so
 * the shadow's byte count reproduces the EPC3 coder's rate decisions
 * exactly and the real stream stays decodable under the same model
 * evolution.
 */
struct DualEncoder
{
    RangeEncoder &real;
    RangeEncoder &shadow;

    void
    encodeBit(BitModel &model, int bit)
    {
        uint16_t p = model.prob();
        real.encodeBitProb(p, bit);
        shadow.encodeBitProb(p, bit);
        model.update(static_cast<uint32_t>(bit != 0));
    }

    void
    encodeBitRaw(int bit)
    {
        real.encodeBitRaw(bit);
        shadow.encodeBitRaw(bit);
    }
};

/** Decoder-side scan actions: bits come from the stream. */
struct DecoderScan
{
    RangeDecoder &dec;
    uint32_t *magnitude;
    uint8_t *sign;
    uint8_t *lowPlane;
    int plane;

    int
    code(size_t i, int, int, int, BitModel &model)
    {
        int bit = dec.decodeBit(model);
        lowPlane[i] = static_cast<uint8_t>(plane);
        return bit;
    }

    void
    significant(size_t i)
    {
        magnitude[i] |= 1u << plane;
        sign[i] = static_cast<uint8_t>(dec.decodeBitRaw());
    }
};

} // anonymous namespace

TileCoefficients
transformTile(const raster::Plane &tile, const TileCoderParams &params)
{
    TileCoefficients out;
    out.width = tile.width();
    out.height = tile.height();
    EP_ASSERT(out.width > 0 && out.height > 0, "empty tile");
    size_t n =
        static_cast<size_t>(out.width) * static_cast<size_t>(out.height);
    out.magnitude.assign(n, 0);
    out.sign.assign(n, 0);
    out.orient = subbandOrientation(out.width, out.height,
                                    params.dwtLevels);

    // Pixel conversion, quantization and the sign/magnitude split run
    // through the dispatched kernel table; every level shares the
    // scalar single-precision dataflow, so the quantized coefficients
    // (and therefore the encoded stream) do not depend on the level.
    const kernels::KernelTable &K = kernels::active();
    const float *pixels = tile.row(0);
    if (params.lossless) {
        EP_ASSERT(params.wavelet == Wavelet::LeGall53,
                  "lossless coding requires the 5/3 wavelet");
        float scale =
            static_cast<float>((1 << params.losslessDepth) - 1);
        int32_t offset = 1 << (params.losslessDepth - 1);
        std::vector<int32_t> coeffs(n);
        K.pixelsToI32(pixels, n, true, 0.0f, scale, offset,
                      coeffs.data());
        forwardDwt53(coeffs, out.width, out.height, params.dwtLevels);
        K.splitI32(coeffs.data(), n, out.magnitude.data(),
                   out.sign.data());
    } else if (params.wavelet == Wavelet::CDF97) {
        std::vector<float> coeffs(n);
        K.centerF(pixels, n, coeffs.data());
        forwardDwt97(coeffs, out.width, out.height, params.dwtLevels);
        // Deadzone scalar quantizer.
        float inv = static_cast<float>(1.0 / params.quantStep);
        K.quantF32(coeffs.data(), n, inv, out.magnitude.data(),
                   out.sign.data());
    } else {
        // Lossy 5/3: integer transform of 8-bit-scaled pixels, then the
        // same deadzone quantizer in 1/255 units.
        std::vector<int32_t> icoeffs(n);
        K.pixelsToI32(pixels, n, false, 0.5f, 255.0f, 0, icoeffs.data());
        forwardDwt53(icoeffs, out.width, out.height, params.dwtLevels);
        float inv = static_cast<float>(1.0 / (params.quantStep * 255.0));
        K.quantI32(icoeffs.data(), n, inv, out.magnitude.data(),
                   out.sign.data());
    }
    return out;
}

TileEncoder::TileEncoder(const TileCoefficients &coeffs, int row0,
                         int rows, const TileCoderParams &params)
    : params_(params), width_(coeffs.width), height_(rows),
      wordsPerRow_(packedWords(coeffs.width)), maxPlane_(-1),
      planesCoded_(0), headerDone_(false)
{
    EP_ASSERT(width_ > 0 && rows > 0 && row0 >= 0 &&
                  row0 + rows <= coeffs.height,
              "chunk slab [%d, %d) outside tile of %d rows", row0,
              row0 + rows, coeffs.height);
    size_t base =
        static_cast<size_t>(row0) * static_cast<size_t>(width_);
    size_t n = static_cast<size_t>(width_) * static_cast<size_t>(rows);
    magnitude_ = coeffs.magnitude.data() + base;
    sign_ = coeffs.sign.data() + base;
    orient_ = coeffs.orient.data() + base;
    size_t nWords =
        static_cast<size_t>(wordsPerRow_) * static_cast<size_t>(rows);
    sigBits_.assign(nWords, 0);
    visitedBits_.assign(nWords, 0);
    refinableBits_.assign(nWords, 0);
    planeBits_.assign(nWords, 0);
    dilation_.assign(static_cast<size_t>(wordsPerRow_), 0);

    const kernels::KernelTable &K = kernels::active();
    maxPlane_ = util::bitWidth(K.maxU32(magnitude_, n)) - 1;
    EP_ASSERT(maxPlane_ <= kMaxPlaneLimit,
              "coefficient magnitude overflows bitplane header (%d)",
              maxPlane_);
    nextPlane_ = maxPlane_;
    nextPass_ = 0;
}

void
TileEncoder::encodeHeader(RangeEncoder &enc)
{
    EP_ASSERT(!headerDone_, "tile header already coded");
    enc.encodeBitsRaw(static_cast<uint32_t>(maxPlane_ + 1), 5);
    headerDone_ = true;
}

bool
TileEncoder::done() const
{
    return nextPlane_ < 0;
}

void
TileEncoder::beginPlane(int plane)
{
    // Refinement (pass 1) covers exactly the coefficients significant
    // before this plane's pass 0 runs — the snapshot replaces the old
    // per-pixel "plane where it turned significant" map.
    std::copy(sigBits_.begin(), sigBits_.end(), refinableBits_.begin());
    std::fill(visitedBits_.begin(), visitedBits_.end(), 0);
    const kernels::KernelTable &K = kernels::active();
    for (int y = 0; y < height_; ++y)
        K.bitplaneMask(magnitude_ + static_cast<size_t>(y) * width_,
                       static_cast<size_t>(width_), plane,
                       planeBits_.data() +
                           static_cast<size_t>(y) * wordsPerRow_);
}

template <typename Encoder>
void
TileEncoder::encodeSigPass(Encoder &enc)
{
    runSigScan<false>(
        ScanGrid{width_, height_, wordsPerRow_, sigBits_.data(),
                 visitedBits_.data(), dilation_.data(), orient_, &ctx_},
        EncoderScan<Encoder>{enc, planeBits_.data(), wordsPerRow_,
                             sign_});
}

template <typename Encoder>
void
TileEncoder::encodeRefinePass(Encoder &enc)
{
    const size_t nWords = refinableBits_.size();
    for (size_t w = 0; w < nWords; ++w) {
        uint64_t m = refinableBits_[w];
        const uint64_t bitsWord = planeBits_[w];
        while (m != 0) {
            int b = util::countTrailingZeros(m);
            m &= m - 1;
            enc.encodeBit(ctx_.refinement,
                          static_cast<int>((bitsWord >> b) & 1u));
        }
    }
}

template <typename Encoder>
void
TileEncoder::encodeCleanupPass(Encoder &enc)
{
    runSigScan<true>(
        ScanGrid{width_, height_, wordsPerRow_, sigBits_.data(),
                 visitedBits_.data(), dilation_.data(), orient_, &ctx_},
        EncoderScan<Encoder>{enc, planeBits_.data(), wordsPerRow_,
                             sign_});
}

template <typename Encoder>
void
TileEncoder::encodePass(Encoder &enc, int plane, int pass)
{
    if (pass == 0) {
        beginPlane(plane);
        encodeSigPass(enc);
    } else if (pass == 1) {
        encodeRefinePass(enc);
    } else {
        encodeCleanupPass(enc);
    }
}

int
TileEncoder::encodePlanes(RangeEncoder &enc, size_t byteLimit,
                          int maxPlanes)
{
    EP_ASSERT(headerDone_, "encodePlanes before encodeHeader");
    if (done())
        return 0;
    int planesThisCall = 0;
    // Every pass is preceded by a continue bit so the decoder needs no
    // side information about where the budget ran out. Once the final
    // pass of plane 0 is emitted no terminator is needed: the decoder
    // stops by itself when nextPlane_ goes negative.
    while (nextPlane_ >= 0 && planesThisCall < maxPlanes &&
           enc.bytesWritten() < byteLimit) {
        enc.encodeBitRaw(1);
        encodePass(enc, nextPlane_, nextPass_);
        ++nextPass_;
        if (nextPass_ == 3) {
            nextPass_ = 0;
            --nextPlane_;
            ++planesCoded_;
            ++planesThisCall;
        }
    }
    if (nextPlane_ >= 0)
        enc.encodeBitRaw(0);
    return planesThisCall;
}

int
TileEncoder::encodePlanesSegmented(std::vector<uint8_t> &payload,
                                   RangeEncoder &shadow,
                                   size_t shadowByteLimit, int maxPlanes)
{
    EP_ASSERT(headerDone_, "encodePlanes before encodeHeader");
    if (done())
        return 0;
    int planesThisCall = 0;
    std::vector<uint8_t> seg;
    // The loop conditions — checked before every pass — are exactly
    // the EPC3 encodePlanes() conditions, evaluated against the
    // shadow coder, so a segment break never changes which passes are
    // emitted; it only changes how the real bits are framed. Each
    // segment holds the consecutive passes of one plane coded within
    // this layer (the first segment of a layer may resume mid-plane).
    while (nextPlane_ >= 0 && planesThisCall < maxPlanes &&
           shadow.bytesWritten() < shadowByteLimit) {
        seg.clear();
        RangeEncoder real(seg);
        DualEncoder dual{real, shadow};
        const int plane = nextPlane_;
        int passes = 0;
        do {
            shadow.encodeBitRaw(1); // EPC3 continue bit (rate only).
            encodePass(dual, plane, nextPass_);
            ++nextPass_;
            ++passes;
            if (nextPass_ == 3) {
                nextPass_ = 0;
                --nextPlane_;
                ++planesCoded_;
                ++planesThisCall;
            }
        } while (nextPlane_ == plane && planesThisCall < maxPlanes &&
                 shadow.bytesWritten() < shadowByteLimit);
        real.flush();
        EP_ASSERT(seg.size() < (1u << 30) && passes <= 3,
                  "segment overflows its framing word");
        util::appendPod(
            payload,
            static_cast<uint32_t>(seg.size() << 2) |
                static_cast<uint32_t>(passes - 1));
        payload.insert(payload.end(), seg.begin(), seg.end());
    }
    if (nextPlane_ >= 0)
        shadow.encodeBitRaw(0); // EPC3 trailing continue bit.
    return planesThisCall;
}

TileDecoder::TileDecoder(int width, int rows,
                         const TileCoderParams &params,
                         uint32_t *magnitude, uint8_t *sign,
                         uint8_t *lowPlane, const uint8_t *orient)
    : params_(params), width_(width), height_(rows),
      wordsPerRow_(packedWords(width)), magnitude_(magnitude),
      sign_(sign), lowPlane_(lowPlane), orient_(orient), maxPlane_(-1),
      nextPlane_(-1), nextPass_(0), planesCoded_(0)
{
    EP_ASSERT(width_ > 0 && height_ > 0, "empty tile chunk");
    size_t nWords =
        static_cast<size_t>(wordsPerRow_) * static_cast<size_t>(height_);
    sigBits_.assign(nWords, 0);
    visitedBits_.assign(nWords, 0);
    refinableBits_.assign(nWords, 0);
    dilation_.assign(static_cast<size_t>(wordsPerRow_), 0);
}

void
TileDecoder::decodeHeader(RangeDecoder &dec)
{
    decodeHeaderRaw(dec.decodeBitsRaw(5));
}

void
TileDecoder::decodeHeaderRaw(uint32_t maxPlanePlus1)
{
    uint32_t v = std::min(
        maxPlanePlus1, static_cast<uint32_t>(kMaxPlaneLimit + 1));
    maxPlane_ = static_cast<int>(v) - 1;
    nextPlane_ = maxPlane_;
    nextPass_ = 0;
    // Until any bit of a coefficient is seen, its uncertainty spans all
    // coded planes.
    size_t n = static_cast<size_t>(width_) * static_cast<size_t>(height_);
    std::fill(lowPlane_, lowPlane_ + n,
              static_cast<uint8_t>(std::max(maxPlane_ + 1, 0)));
}

void
TileDecoder::beginPlane()
{
    std::copy(sigBits_.begin(), sigBits_.end(), refinableBits_.begin());
    std::fill(visitedBits_.begin(), visitedBits_.end(), 0);
}

void
TileDecoder::decodeSigPass(RangeDecoder &dec, int plane)
{
    runSigScan<false>(
        ScanGrid{width_, height_, wordsPerRow_, sigBits_.data(),
                 visitedBits_.data(), dilation_.data(), orient_, &ctx_},
        DecoderScan{dec, magnitude_, sign_, lowPlane_, plane});
}

void
TileDecoder::decodeRefinePass(RangeDecoder &dec, int plane)
{
    const int W = wordsPerRow_;
    for (int y = 0; y < height_; ++y) {
        const uint64_t *refRow =
            refinableBits_.data() + static_cast<size_t>(y) * W;
        size_t rowBase =
            static_cast<size_t>(y) * static_cast<size_t>(width_);
        uint8_t *lowRow = lowPlane_ + rowBase;
        uint32_t *magRow = magnitude_ + rowBase;
        for (int w = 0; w < W; ++w) {
            uint64_t m = refRow[w];
            while (m != 0) {
                int b = util::countTrailingZeros(m);
                m &= m - 1;
                int x = (w << 6) + b;
                int bit = dec.decodeBit(ctx_.refinement);
                lowRow[x] = static_cast<uint8_t>(plane);
                if (bit)
                    magRow[x] |= 1u << plane;
            }
        }
    }
}

void
TileDecoder::decodeCleanupPass(RangeDecoder &dec, int plane)
{
    runSigScan<true>(
        ScanGrid{width_, height_, wordsPerRow_, sigBits_.data(),
                 visitedBits_.data(), dilation_.data(), orient_, &ctx_},
        DecoderScan{dec, magnitude_, sign_, lowPlane_, plane});
}

void
TileDecoder::decodePass(RangeDecoder &dec, int plane, int pass)
{
    if (pass == 0) {
        beginPlane();
        decodeSigPass(dec, plane);
    } else if (pass == 1) {
        decodeRefinePass(dec, plane);
    } else {
        decodeCleanupPass(dec, plane);
    }
}

void
TileDecoder::decodePlanes(RangeDecoder &dec)
{
    while (nextPlane_ >= 0 && dec.decodeBitRaw() == 1) {
        decodePass(dec, nextPlane_, nextPass_);
        ++nextPass_;
        if (nextPass_ == 3) {
            nextPass_ = 0;
            --nextPlane_;
            ++planesCoded_;
        }
    }
}

void
TileDecoder::decodePassRun(RangeDecoder &dec, int passes)
{
    // EPC4 segments carry their pass count in the framing word, so no
    // in-stream continue bits exist: decode exactly what is framed.
    for (int i = 0; i < passes && nextPlane_ >= 0; ++i) {
        decodePass(dec, nextPlane_, nextPass_);
        ++nextPass_;
        if (nextPass_ == 3) {
            nextPass_ = 0;
            --nextPlane_;
            ++planesCoded_;
        }
    }
}

raster::Plane
reconstructTile(int width, int height, const TileCoderParams &params,
                const uint32_t *magnitude, const uint8_t *sign,
                const uint8_t *lowPlane, bool fullyDecoded)
{
    size_t n = static_cast<size_t>(width) * static_cast<size_t>(height);
    raster::Plane out(width, height);
    const kernels::KernelTable &K = kernels::active();

    if (params.lossless && fullyDecoded) {
        std::vector<int32_t> coeffs(n);
        K.combineI32(magnitude, sign, n, coeffs.data());
        inverseDwt53(coeffs, width, height, params.dwtLevels);
        float invScale = static_cast<float>(
            1.0 / ((1 << params.losslessDepth) - 1));
        float offset =
            static_cast<float>(1 << (params.losslessDepth - 1));
        K.i32ToPixels(coeffs.data(), n, offset, invScale, 0.0f, 1.0f,
                      out.row(0));
        return out;
    }

    // Midpoint reconstruction: for coefficient i the bits above
    // lowPlane[i] are exact, so |c| lies in [m, m + 2^lowPlane[i])
    // quantizer steps; the dequant kernels add half of that
    // uncertainty when significant (and decode zero otherwise).

    if (params.wavelet == Wavelet::CDF97) {
        std::vector<float> coeffs(n);
        K.dequant97(magnitude, sign, lowPlane, n,
                    static_cast<float>(params.quantStep), coeffs.data());
        inverseDwt97(coeffs, width, height, params.dwtLevels);
        K.uncenterClampF(coeffs.data(), n, 0.0f, 1.0f, out.row(0));
        return out;
    }

    // 5/3 integer path: lossy 5/3 (quantizer in 1/255 units) or a
    // truncated lossless stream (quantizer step 1).
    std::vector<int32_t> coeffs(n);
    float toInt = params.lossless
        ? 1.0f
        : static_cast<float>(params.quantStep * 255.0);
    K.dequant53(magnitude, sign, lowPlane, n, toInt, coeffs.data());
    inverseDwt53(coeffs, width, height, params.dwtLevels);

    float invScale;
    float offset;
    if (params.lossless) {
        invScale = static_cast<float>(
            1.0 / ((1 << params.losslessDepth) - 1));
        offset = static_cast<float>(1 << (params.losslessDepth - 1));
    } else {
        invScale = static_cast<float>(1.0 / 255.0);
        offset = 127.5f;
    }
    K.i32ToPixels(coeffs.data(), n, offset, invScale, 0.0f, 1.0f,
                  out.row(0));
    return out;
}

std::vector<std::vector<uint8_t>>
encodeTileChunk(const TileCoefficients &coeffs,
                const TileCoderParams &params, int chunk, int layers,
                size_t tileByteBudget)
{
    EP_ASSERT(layers >= 1, "need at least one quality layer");
    EP_ASSERT(!params.progressive || params.chunkRows > 0,
              "progressive (EPC4) streams require chunked framing");
    EP_ASSERT(chunk >= 0 && chunk < chunkCount(params, coeffs.height),
              "chunk %d out of range", chunk);
    const int row0 = chunkRow0(params, coeffs.height, chunk);
    const int rows = chunkRows(params, coeffs.height, chunk);

    // Row-proportional share of the tile budget, computed without
    // overflow even for the effectively-unbounded lossless budgets:
    // exact pass-through when the chunk spans the whole tile, and the
    // shares of a split tile never exceed the whole.
    const size_t h = static_cast<size_t>(coeffs.height);
    const size_t r = static_cast<size_t>(rows);
    size_t byteBudget =
        (tileByteBudget / h) * r + (tileByteBudget % h) * r / h;

    TileEncoder coder(coeffs, row0, rows, params);
    std::vector<std::vector<uint8_t>> out(static_cast<size_t>(layers));
    size_t spent = 0;
    std::vector<uint8_t> shadowBuf;
    for (int layer = 0; layer < layers; ++layer) {
        std::vector<uint8_t> &stream = out[static_cast<size_t>(layer)];
        // Cumulative budget through this layer grows linearly so each
        // layer carries a roughly equal share of the bits.
        size_t cumBudget = params.lossless
            ? byteBudget
            : byteBudget * static_cast<size_t>(layer + 1) /
                  static_cast<size_t>(layers);
        size_t remaining = cumBudget > spent ? cumBudget - spent : 0;
        int maxPlanes = INT_MAX;
        if (params.lossless) {
            // Spread bitplanes evenly across layers.
            int total = coder.maxPlane() + 1;
            maxPlanes = (total + layers - 1) / layers;
        }
        if (params.progressive) {
            // EPC4: real bits go into per-plane segments in `stream`;
            // the shadow coder replays the EPC3 layer stream (header,
            // continue and pass bits) purely for rate accounting, so
            // `spent` evolves exactly as it would for EPC3 and the
            // pass schedule is identical.
            shadowBuf.clear();
            RangeEncoder shadow(shadowBuf);
            if (layer == 0) {
                coder.encodeHeader(shadow);
                stream.push_back(
                    static_cast<uint8_t>(coder.maxPlane() + 1));
            }
            coder.encodePlanesSegmented(
                stream, shadow, shadow.bytesWritten() + remaining,
                maxPlanes);
            shadow.flush();
            spent += shadowBuf.size();
            continue;
        }
        RangeEncoder enc(stream);
        if (layer == 0)
            coder.encodeHeader(enc);
        coder.encodePlanes(enc, enc.bytesWritten() + remaining,
                           maxPlanes);
        enc.flush();
        spent += stream.size();
    }
    return out;
}

std::vector<std::vector<uint8_t>>
assembleChunkLayers(std::vector<std::vector<std::vector<uint8_t>>> perChunk,
                    int layers, bool framed)
{
    std::vector<std::vector<uint8_t>> out(static_cast<size_t>(layers));
    if (!framed) {
        EP_ASSERT(perChunk.size() == 1,
                  "unframed (v1) streams hold exactly one chunk, not %zu",
                  perChunk.size());
        for (int l = 0; l < layers; ++l)
            out[static_cast<size_t>(l)] =
                std::move(perChunk[0][static_cast<size_t>(l)]);
        return out;
    }
    for (int l = 0; l < layers; ++l) {
        std::vector<uint8_t> &layer = out[static_cast<size_t>(l)];
        for (auto &chunk : perChunk) {
            const std::vector<uint8_t> &stream =
                chunk[static_cast<size_t>(l)];
            util::appendPod(layer,
                            static_cast<uint32_t>(stream.size()));
            layer.insert(layer.end(), stream.begin(), stream.end());
        }
    }
    return out;
}

std::vector<std::vector<uint8_t>>
encodeTileLayers(const raster::Plane &tile, const TileCoderParams &params,
                 int layers, size_t byteBudget)
{
    EP_ASSERT(layers >= 1, "need at least one quality layer");
    TileCoefficients coeffs = transformTile(tile, params);
    if (params.chunkRows <= 0)
        return encodeTileChunk(coeffs, params, 0, layers, byteBudget);

    const int chunks = chunkCount(params, coeffs.height);
    std::vector<std::vector<std::vector<uint8_t>>> perChunk(
        static_cast<size_t>(chunks));
    util::ThreadPool::global().parallelFor(
        0, chunks,
        [&](int64_t c) {
            perChunk[static_cast<size_t>(c)] = encodeTileChunk(
                coeffs, params, static_cast<int>(c), layers, byteBudget);
        },
        1);
    return assembleChunkLayers(std::move(perChunk), layers, true);
}

raster::Plane
decodeTileLayers(int width, int height, const TileCoderParams &params,
                 const std::vector<ChunkSpan> &layerSpans)
{
    const int chunks = chunkCount(params, height);
    const size_t nLayers = layerSpans.size();

    // Split every layer span into its per-chunk windows up front
    // (spans[chunk][layer]); v1 streams are one unframed chunk.
    std::vector<std::vector<ChunkSpan>> spans(
        static_cast<size_t>(chunks), std::vector<ChunkSpan>(nLayers));
    if (params.chunkRows <= 0) {
        for (size_t l = 0; l < nLayers; ++l)
            spans[0][l] = layerSpans[l];
    } else {
        for (size_t l = 0; l < nLayers; ++l) {
            const uint8_t *base = layerSpans[l].data;
            const size_t size = layerSpans[l].size;
            size_t pos = 0;
            for (int c = 0; c < chunks; ++c) {
                if (size - pos < 4) {
                    // A progressive stream may have been cut at a
                    // recorded truncation point: the chunks that never
                    // arrived simply keep their empty spans. For v2
                    // framing a short sub-chunk is corruption.
                    if (params.progressive)
                        break;
                    fatal("tile chunk %d length prefix truncated in "
                          "layer %zu",
                          c, l);
                }
                uint32_t len = util::readPodAt<uint32_t>(base, pos);
                pos += 4;
                if (len > size - pos) {
                    if (params.progressive) {
                        // The cut landed inside this chunk: decode the
                        // segments that did arrive.
                        spans[static_cast<size_t>(c)][l] = {base + pos,
                                                            size - pos};
                        pos = size;
                        break;
                    }
                    fatal("tile chunk %d truncated in layer %zu: %u "
                          "bytes framed but only %zu remain",
                          c, l, len, size - pos);
                }
                spans[static_cast<size_t>(c)][l] = {base + pos, len};
                pos += len;
            }
        }
    }

    size_t n = static_cast<size_t>(width) * static_cast<size_t>(height);
    std::vector<uint32_t> magnitude(n, 0);
    std::vector<uint8_t> sign(n, 0);
    std::vector<uint8_t> lowPlane(n, 0);
    std::vector<uint8_t> orient =
        subbandOrientation(width, height, params.dwtLevels);

    // Chunks write disjoint row slabs of the shared tile buffers, so
    // decoding them concurrently is race-free; a single-chunk tile
    // skips the loop machinery entirely.
    std::vector<uint8_t> chunkFull(static_cast<size_t>(chunks), 0);
    auto decodeChunk = [&](int64_t c) {
        const int row0 =
            chunkRow0(params, height, static_cast<int>(c));
        const int rows =
            chunkRows(params, height, static_cast<int>(c));
        const size_t base =
            static_cast<size_t>(row0) * static_cast<size_t>(width);
        TileDecoder dec(width, rows, params, magnitude.data() + base,
                        sign.data() + base, lowPlane.data() + base,
                        orient.data() + base);
        bool headerSeen = false;
        for (size_t l = 0; l < nLayers; ++l) {
            const ChunkSpan &s = spans[static_cast<size_t>(c)][l];
            if (params.progressive) {
                const uint8_t *p = s.data;
                size_t sz = s.size;
                if (l == 0) {
                    // EPC4 carries maxPlane + 1 as the first payload
                    // byte; a chunk whose header never arrived (cut
                    // before it) reconstructs as zeros.
                    if (sz == 0)
                        break;
                    dec.decodeHeaderRaw(p[0]);
                    headerSeen = true;
                    ++p;
                    --sz;
                }
                forEachSegment(p, sz, [&](const SegmentView &seg) {
                    RangeDecoder rd(seg.data, seg.size);
                    dec.decodePassRun(rd, seg.passes);
                });
                continue;
            }
            headerSeen = true;
            RangeDecoder rd(s.data, s.size);
            if (l == 0)
                dec.decodeHeader(rd);
            dec.decodePlanes(rd);
        }
        chunkFull[static_cast<size_t>(c)] =
            headerSeen && dec.fullyDecoded() ? 1 : 0;
    };
    if (chunks == 1)
        decodeChunk(0);
    else
        util::ThreadPool::global().parallelFor(0, chunks, decodeChunk, 1);

    bool fullyDecoded = true;
    for (uint8_t f : chunkFull)
        fullyDecoded = fullyDecoded && f != 0;
    return reconstructTile(width, height, params, magnitude.data(),
                           sign.data(), lowPlane.data(), fullyDecoded);
}

} // namespace earthplus::codec
