#include "codec/kernels.hh"

namespace earthplus::codec::kernels {

namespace detail {

// Defined one per translation unit so each can be compiled with its
// own ISA flags; a factory returns nullptr when its level was not
// compiled in.
const KernelTable *scalarTable();
const KernelTable *sse2Table();
const KernelTable *avx2Table();
const KernelTable *neonTable();

} // namespace detail

const KernelTable *
forLevel(util::simd::Level level)
{
    using util::simd::Level;
    if (!util::simd::cpuSupports(level))
        return nullptr;
    switch (level) {
    case Level::Scalar:
        return detail::scalarTable();
    case Level::SSE2:
        return detail::sse2Table();
    case Level::AVX2:
        return detail::avx2Table();
    case Level::NEON:
        return detail::neonTable();
    }
    return nullptr;
}

const KernelTable &
active()
{
    if (const KernelTable *t = forLevel(util::simd::activeLevel()))
        return *t;
    // The CPU claims a level this binary was not compiled with (e.g.
    // an AVX2 host running a build whose AVX2 TU lacked -mavx2): fall
    // back to the strongest table that did compile in, not scalar.
    const KernelTable *best = detail::scalarTable();
    for (util::simd::Level l : availableLevels())
        best = forLevel(l);
    return *best;
}

std::vector<util::simd::Level>
availableLevels()
{
    using util::simd::Level;
    std::vector<Level> out;
    for (Level l : {Level::Scalar, Level::SSE2, Level::AVX2, Level::NEON})
        if (forLevel(l))
            out.push_back(l);
    return out;
}

} // namespace earthplus::codec::kernels
