/**
 * @file
 * Scalar (width-1) kernel table: the reference implementation every
 * vector level must match bit for bit. Built without any vector ISA
 * flags so it runs on any target.
 */

#include <algorithm>
#include <cmath>
#include <cstring>

#include "codec/kernels_impl.hh"

namespace earthplus::codec::kernels::detail {

namespace {

struct ScalarTraits
{
    static constexpr int kWidth = 1;
    using F = float;
    using I = int32_t;

    static F fload(const float *p) { return *p; }
    static void fstore(float *p, F v) { *p = v; }
    static F fset(float v) { return v; }
    static F fadd(F a, F b) { return a + b; }
    static F fsub(F a, F b) { return a - b; }
    static F fmul(F a, F b) { return a * b; }
    // min/max mirror the x86 MINPS/MAXPS selection rule (second
    // operand on ties) so ties resolve identically at every level.
    static F fmin_(F a, F b) { return a < b ? a : b; }
    static F fmax_(F a, F b) { return a > b ? a : b; }
    static F fabs_(F v) { return std::fabs(v); }

    static I
    castI(F v)
    {
        I r;
        std::memcpy(&r, &v, sizeof(r));
        return r;
    }

    static F
    icastF(I v)
    {
        F r;
        std::memcpy(&r, &v, sizeof(r));
        return r;
    }

    static F fxor(F a, F b) { return icastF(castI(a) ^ castI(b)); }
    static F fandnotF(I mask, F v) { return icastF(~mask & castI(v)); }
    static I flt0(F v) { return v < 0.0f ? -1 : 0; }

    static I ftoi_trunc(F v) { return truncToI32(v); }
    static I ftoi_round(F v) { return roundToI32(v); }
    static F itof(I v) { return static_cast<float>(v); }

    static I iload(const int32_t *p) { return *p; }
    static void istore(int32_t *p, I v) { *p = v; }
    static I iset(int32_t v) { return v; }
    static I izero() { return 0; }
    static I iadd(I a, I b) { return a + b; }
    static I isub(I a, I b) { return a - b; }
    static I iandnot(I mask, I v) { return ~mask & v; }
    static I ixor(I a, I b) { return a ^ b; }
    static I ishl(I v, int k) { return static_cast<I>(
        static_cast<uint32_t>(v) << k); }
    static I isra(I v, int k) { return v >> k; }
    static I icmpeq0(I v) { return v == 0 ? -1 : 0; }
    static I imax(I a, I b) { return std::max(a, b); }
    static I loadU8(const uint8_t *p) { return *p; }
    static unsigned mask01(I laneMask) { return laneMask & 1; }
    static void
    storeMasks01(uint8_t *dst, I m0, I m1, I m2, I m3)
    {
        dst[0] = static_cast<uint8_t>(m0 & 1);
        dst[1] = static_cast<uint8_t>(m1 & 1);
        dst[2] = static_cast<uint8_t>(m2 & 1);
        dst[3] = static_cast<uint8_t>(m3 & 1);
    }
};

} // anonymous namespace

const KernelTable *
scalarTable()
{
    return makeTable<ScalarTraits>(util::simd::Level::Scalar);
}

} // namespace earthplus::codec::kernels::detail
