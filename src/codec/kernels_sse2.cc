/**
 * @file
 * SSE2 kernel table (x86-64 baseline, 4 float lanes). Compiled without
 * extra ISA flags: SSE2 is architectural on x86-64, so this table is
 * always usable there. On other targets the factory returns nullptr.
 */

#include "codec/kernels_impl.hh"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace earthplus::codec::kernels::detail {

namespace {

struct Sse2Traits
{
    static constexpr int kWidth = 4;
    using F = __m128;
    using I = __m128i;

    static F fload(const float *p) { return _mm_loadu_ps(p); }
    static void fstore(float *p, F v) { _mm_storeu_ps(p, v); }
    static F fset(float v) { return _mm_set1_ps(v); }
    static F fadd(F a, F b) { return _mm_add_ps(a, b); }
    static F fsub(F a, F b) { return _mm_sub_ps(a, b); }
    static F fmul(F a, F b) { return _mm_mul_ps(a, b); }
    static F fmin_(F a, F b) { return _mm_min_ps(a, b); }
    static F fmax_(F a, F b) { return _mm_max_ps(a, b); }
    static F
    fabs_(F v)
    {
        return _mm_andnot_ps(_mm_set1_ps(-0.0f), v);
    }
    static F fxor(F a, F b) { return _mm_xor_ps(a, b); }
    static F
    fandnotF(I mask, F v)
    {
        return _mm_andnot_ps(_mm_castsi128_ps(mask), v);
    }
    static I
    flt0(F v)
    {
        return _mm_castps_si128(_mm_cmplt_ps(v, _mm_setzero_ps()));
    }
    static I ftoi_trunc(F v) { return _mm_cvttps_epi32(v); }
    static I ftoi_round(F v) { return _mm_cvtps_epi32(v); }
    static F itof(I v) { return _mm_cvtepi32_ps(v); }
    static F icastF(I v) { return _mm_castsi128_ps(v); }

    static I
    iload(const int32_t *p)
    {
        return _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    }
    static void
    istore(int32_t *p, I v)
    {
        _mm_storeu_si128(reinterpret_cast<__m128i *>(p), v);
    }
    static I iset(int32_t v) { return _mm_set1_epi32(v); }
    static I izero() { return _mm_setzero_si128(); }
    static I iadd(I a, I b) { return _mm_add_epi32(a, b); }
    static I isub(I a, I b) { return _mm_sub_epi32(a, b); }
    static I iandnot(I mask, I v) { return _mm_andnot_si128(mask, v); }
    static I ixor(I a, I b) { return _mm_xor_si128(a, b); }
    static I ishl(I v, int k) { return _mm_slli_epi32(v, k); }
    static I isra(I v, int k) { return _mm_srai_epi32(v, k); }
    static I
    icmpeq0(I v)
    {
        return _mm_cmpeq_epi32(v, _mm_setzero_si128());
    }
    static I
    imax(I a, I b)
    {
        // SSE2 lacks pmaxsd: select via the signed-greater mask.
        I gt = _mm_cmpgt_epi32(a, b);
        return _mm_or_si128(_mm_and_si128(gt, a),
                            _mm_andnot_si128(gt, b));
    }
    static I
    loadU8(const uint8_t *p)
    {
        // 4 bytes -> 4 zero-extended int32 lanes (SSE2 lacks pmovzx).
        uint32_t word;
        std::memcpy(&word, p, sizeof(word));
        I v = _mm_cvtsi32_si128(static_cast<int>(word));
        I zero = _mm_setzero_si128();
        return _mm_unpacklo_epi16(_mm_unpacklo_epi8(v, zero), zero);
    }
    static unsigned
    mask01(I laneMask)
    {
        return static_cast<unsigned>(
            _mm_movemask_ps(_mm_castsi128_ps(laneMask)));
    }
    static void
    storeMasks01(uint8_t *dst, I m0, I m1, I m2, I m3)
    {
        // 16 lane masks -> 16 0/1 bytes with one store.
        I w01 = _mm_packs_epi32(m0, m1);
        I w23 = _mm_packs_epi32(m2, m3);
        I b = _mm_and_si128(_mm_packs_epi16(w01, w23),
                            _mm_set1_epi8(1));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst), b);
    }
};

} // anonymous namespace

const KernelTable *
sse2Table()
{
    return makeTable<Sse2Traits>(util::simd::Level::SSE2);
}

} // namespace earthplus::codec::kernels::detail

#else // !__SSE2__

namespace earthplus::codec::kernels::detail {

const KernelTable *
sse2Table()
{
    return nullptr;
}

} // namespace earthplus::codec::kernels::detail

#endif
