/**
 * @file
 * Downlink packet framing, reassembly and the lossy contact channel.
 *
 * The satellite cannot hand an `EncodedImage` to the ground as a C++
 * object: the X-band downlink carries fixed-size frames, packets get
 * lost, and a capture's payload rarely fits into a single 10-minute
 * contact. This module models that boundary at the byte level:
 *
 *  - packetize() frames an opaque payload into fixed-size packets,
 *    each with a validated header (magic, stream id, sequence number,
 *    total count, payload length) protected by its own CRC32 plus a
 *    CRC32 of the payload slice.
 *  - StreamReassembler accepts packets in any order, rejects corrupt
 *    or foreign ones, tracks which sequence numbers are still missing
 *    (the ARQ feedback sent back to the satellite), and reproduces the
 *    original payload byte-identically once complete.
 *  - DownlinkChannel simulates per-contact transmission against a
 *    byte budget (orbit::LinkBudget) with Bernoulli packet loss and
 *    ARQ-style retransmission of missing packets on the next contact.
 *    Transfers follow the Appendix-A storage rule: the satellite keeps
 *    a capture for `retentionContacts` consecutive contacts; a
 *    transfer still incomplete after that is dropped and counted as
 *    failed.
 */

#ifndef EARTHPLUS_GROUND_PACKET_HH
#define EARTHPLUS_GROUND_PACKET_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "util/rng.hh"

namespace earthplus::ground {

/** Serialized size of a packet header in bytes. */
constexpr size_t kPacketHeaderBytes = 28;

/** Parsed packet header (wire layout is little-endian PODs). */
struct PacketHeader
{
    /** Transfer this packet belongs to. */
    uint32_t streamId = 0;
    /** Packet index within the stream, in [0, totalPackets). */
    uint32_t seq = 0;
    /** Total packets of the stream. */
    uint32_t totalPackets = 0;
    /** Payload bytes carried by this packet. */
    uint32_t payloadLen = 0;
    /** CRC32 of the payload bytes. */
    uint32_t payloadCrc = 0;
};

/**
 * Frame a payload into packets of at most `payloadBytesPerPacket`
 * payload bytes each (the last packet may be short). An empty payload
 * produces a single zero-length packet so the stream still completes.
 */
std::vector<std::vector<uint8_t>>
packetize(uint32_t streamId, const std::vector<uint8_t> &payload,
          size_t payloadBytesPerPacket);

/**
 * Frame a payload into packets whose total wire size — packet headers
 * included — fits `byteBudget`. A payload too large for the budget
 * must be a progressive (EPC4) stream: it is cut with
 * codec::truncateStream() to the largest recorded truncation point
 * whose packetized wire size fits, so a short contact carries a
 * lower-fidelity capture instead of failing the transfer. fatal()
 * when the budget cannot fit even the stream's header floor, or when
 * an oversized payload is not progressive.
 */
std::vector<std::vector<uint8_t>>
packetizeToBudget(uint32_t streamId,
                  const std::vector<uint8_t> &payload,
                  size_t payloadBytesPerPacket, size_t byteBudget);

/** Why a packet was not accepted. */
enum class PacketVerdict
{
    Accepted,      ///< New payload slice stored.
    Duplicate,     ///< Valid but already held (idempotent).
    BadHeader,     ///< Truncated, bad magic, or header CRC mismatch.
    BadPayloadCrc, ///< Header fine, payload corrupt — dropped.
    WrongStream,   ///< streamId does not match this reassembler.
    Inconsistent,  ///< seq/totalPackets disagree with the stream.
};

/** Parse and validate a packet; nullopt when the header is invalid. */
std::optional<PacketHeader>
parsePacketHeader(const std::vector<uint8_t> &packet);

/**
 * Ground-side reassembly of one packetized stream.
 */
class StreamReassembler
{
  public:
    /** @param streamId Stream this reassembler accepts. */
    explicit StreamReassembler(uint32_t streamId);

    /** Validate one received packet and store its payload slice. */
    PacketVerdict accept(const std::vector<uint8_t> &packet);

    /** True once every sequence number has been received. */
    bool complete() const;

    /**
     * Sequence numbers not yet received — the ARQ feedback. Empty
     * until the first packet reveals totalPackets.
     */
    std::vector<uint32_t> missingSeqs() const;

    /** Reassembled payload (must be complete()). */
    std::vector<uint8_t> payload() const;

    /** Stream id this reassembler accepts. */
    uint32_t streamId() const { return streamId_; }

    /** Packets accepted so far (excluding duplicates). */
    uint32_t receivedCount() const { return received_; }

  private:
    uint32_t streamId_;
    /** 0 until the first accepted packet. */
    uint32_t totalPackets_ = 0;
    uint32_t received_ = 0;
    std::vector<uint8_t> have_;
    std::vector<std::vector<uint8_t>> slices_;
};

/** Aggregate transmission statistics of a DownlinkChannel. */
struct ChannelStats
{
    uint64_t packetsSent = 0; ///< Packets transmitted (incl. lost).
    uint64_t packetsLost = 0; ///< Packets dropped by the channel.
    uint64_t packetsRetransmitted = 0; ///< ARQ re-sends.
    uint64_t bytesSent = 0;   ///< Wire bytes (headers included).
    uint32_t streamsCompleted = 0; ///< Transfers fully reassembled.
    uint32_t streamsFailed = 0; ///< Transfers dropped by retention.

    /** Fraction of sent packets that were lost. */
    double lossRate() const
    {
        return packetsSent
            ? static_cast<double>(packetsLost) /
                  static_cast<double>(packetsSent)
            : 0.0;
    }
};

/** Configuration of the simulated downlink channel. */
struct ChannelParams
{
    /** Payload bytes per packet (header adds kPacketHeaderBytes). */
    size_t payloadBytesPerPacket = 1024;
    /** Per-packet Bernoulli loss probability. */
    double lossProbability = 0.0;
    /** Bytes transferable during one contact (headers included). */
    double bytesPerContact = 15e9;
    /**
     * Contacts a transfer is retained on board before being dropped
     * (Appendix A: captures are kept for two consecutive contacts as
     * retransmission insurance).
     */
    int retentionContacts = 2;
    /** Seed of the loss process. */
    uint64_t seed = 0x600dcafeULL;
};

/**
 * Satellite-to-ground transfer queue across lossy contacts.
 */
class DownlinkChannel
{
  public:
    explicit DownlinkChannel(const ChannelParams &params);

    /**
     * Queue a payload for transmission at the next contact.
     *
     * @return The stream id assigned to the transfer.
     */
    uint32_t submit(std::vector<uint8_t> payload);

    /**
     * Queue a payload for transmission, first cutting it
     * (packetizeToBudget()) so the whole transfer — headers included
     * — fits `contactByteBudget` wire bytes: a transfer sized to
     * complete within one loss-free contact of that budget. Same
     * preconditions as packetizeToBudget().
     */
    uint32_t submit(std::vector<uint8_t> payload,
                    size_t contactByteBudget);

    /** A transfer that completed during a contact. */
    struct Delivery
    {
        uint32_t streamId = 0;
        std::vector<uint8_t> payload;
    };

    /** What happened during one contact. */
    struct ContactReport
    {
        /** Transfers whose reassembly completed this contact. */
        std::vector<Delivery> delivered;
        /** Transfers dropped after exhausting their retention. */
        std::vector<uint32_t> failed;
    };

    /**
     * Simulate one ground contact: transmit fresh packets and ARQ
     * retransmissions of earlier losses, oldest transfer first, until
     * the contact byte budget runs out. Transfers past their retention
     * window are dropped and reported (and counted in stats()).
     */
    ContactReport runContact();

    /** Transfers still queued or partially received. */
    size_t pendingCount() const { return pending_.size(); }

    /** Aggregate transmission statistics so far. */
    const ChannelStats &stats() const { return stats_; }

    /** Configuration this channel was built with. */
    const ChannelParams &params() const { return params_; }

  private:
    struct Transfer
    {
        uint32_t streamId;
        std::vector<std::vector<uint8_t>> packets;
        StreamReassembler reassembler;
        /** Seqs already attempted at least once (for retransmit stats). */
        std::vector<uint8_t> attempted;
        int contactsUsed = 0;
    };

    ChannelParams params_;
    Rng rng_;
    uint32_t nextStreamId_ = 1;
    std::deque<Transfer> pending_;
    ChannelStats stats_;
};

} // namespace earthplus::ground

#endif // EARTHPLUS_GROUND_PACKET_HH
