#include "ground/station.hh"

#include <limits>

#include "util/logging.hh"

namespace earthplus::ground {

GroundStation::GroundStation(const GroundSegmentParams &params,
                             CompletionFn onComplete)
    : params_(params), onComplete_(std::move(onComplete)),
      contacts_(params.contactsPerDay, params.contactPhaseDays),
      channel_(params.channel), archive_(params.archivePath),
      lastAdvanceDay_(-std::numeric_limits<double>::infinity())
{
}

void
GroundStation::submit(CaptureDownload download)
{
    uint64_t id = nextCaptureId_++;
    PendingCapture cap;
    for (size_t b = 0; b < download.bandPayloads.size(); ++b) {
        uint32_t streamId = channel_.submit(download.bandPayloads[b]);
        cap.streams[streamId] = static_cast<int>(b);
        streamToCapture_[streamId] = id;
    }
    cap.download = std::move(download);
    if (cap.streams.empty()) {
        // Nothing to transmit: the capture completes on the spot
        // instead of sitting in pending_ with no stream to resolve it.
        completeCapture(cap, cap.download.captureDay);
        return;
    }
    pending_.emplace(id, std::move(cap));
}

void
GroundStation::completeCapture(PendingCapture &cap, double day)
{
    // Byte-identity invariant: what the ground reassembled must be
    // exactly what the satellite serialized.
    bool identical = true;
    for (const auto &[band, payload] : cap.received)
        if (payload !=
            cap.download.bandPayloads[static_cast<size_t>(band)])
            identical = false;

    for (const auto &[band, payload] : cap.received) {
        RecordMeta meta;
        meta.locationId = cap.download.locationId;
        meta.satelliteId = cap.download.satelliteId;
        meta.band = band;
        meta.captureDay = cap.download.captureDay;
        meta.referenceDay = cap.download.referenceDay;
        meta.fullDownload = cap.download.fullDownload;
        archive_.append(meta, payload);
    }

    ++stats_.capturesCompleted;
    if (identical)
        ++stats_.capturesByteIdentical;
    stats_.lastCompletionDay = day;
    if (onComplete_)
        onComplete_(cap.download);
}

int
GroundStation::advanceTo(double day)
{
    int completed = 0;
    for (double contact = contacts_.nextContactAtOrAfter(
             lastAdvanceDay_ == -std::numeric_limits<double>::infinity()
                 ? day - 1.0
                 : lastAdvanceDay_ + 1e-9);
         contact <= day; contact = contacts_.nextContactAtOrAfter(
             contact + 1e-9)) {
        if (channel_.pendingCount() == 0)
            continue;
        DownlinkChannel::ContactReport report = channel_.runContact();

        for (auto &delivery : report.delivered) {
            auto itCap = streamToCapture_.find(delivery.streamId);
            if (itCap == streamToCapture_.end())
                continue;
            uint64_t capId = itCap->second;
            streamToCapture_.erase(itCap);
            PendingCapture &cap = pending_.at(capId);
            int band = cap.streams.at(delivery.streamId);
            cap.streams.erase(delivery.streamId);
            cap.received[band] = std::move(delivery.payload);
            if (cap.streams.empty()) {
                // A capture with any failed band is lost even when the
                // remaining bands arrive.
                if (!cap.failed) {
                    completeCapture(cap, contact);
                    ++completed;
                }
                pending_.erase(capId);
            }
        }

        for (uint32_t streamId : report.failed) {
            auto itCap = streamToCapture_.find(streamId);
            if (itCap == streamToCapture_.end())
                continue;
            uint64_t capId = itCap->second;
            streamToCapture_.erase(itCap);
            auto itPending = pending_.find(capId);
            if (itPending == pending_.end())
                continue;
            PendingCapture &cap = itPending->second;
            cap.streams.erase(streamId);
            if (!cap.failed) {
                cap.failed = true;
                ++stats_.capturesFailed;
            }
            // Forget the capture once its last stream resolves.
            if (cap.streams.empty())
                pending_.erase(itPending);
        }
    }
    lastAdvanceDay_ = std::max(lastAdvanceDay_, day);
    stats_.channel = channel_.stats();
    return completed;
}

StationStats
GroundStation::stats() const
{
    StationStats s = stats_;
    s.channel = channel_.stats();
    return s;
}

} // namespace earthplus::ground
