#include "ground/tile_server.hh"

#include <algorithm>
#include <functional>

#include "codec/codec.hh"
#include "raster/tile.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace earthplus::ground {

DecodedTileCache::DecodedTileCache(size_t capacityBytes)
    : shardCapacityBytes_(capacityBytes / kShards)
{
}

DecodedTileCache::Shard &
DecodedTileCache::shardFor(const Key &key)
{
    size_t h = std::hash<size_t>()(std::get<0>(key)) ^
               std::hash<int>()(std::get<1>(key)) * 0x9e3779b9u;
    return shards_[h % kShards];
}

bool
DecodedTileCache::get(size_t recordIdx, int tile, int maxLayers,
                      raster::Plane &out)
{
    Key key{recordIdx, tile, maxLayers};
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end())
        return false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    out = it->second->pixels;
    return true;
}

void
DecodedTileCache::put(size_t recordIdx, int tile, int maxLayers,
                      const raster::Plane &pixels)
{
    size_t bytes = static_cast<size_t>(pixels.width()) *
                   static_cast<size_t>(pixels.height()) * sizeof(float);
    if (bytes > shardCapacityBytes_)
        return; // larger than a whole shard; never cacheable
    Key key{recordIdx, tile, maxLayers};
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.count(key))
        return; // another thread filled it first
    shard.lru.push_front(Entry{key, pixels, bytes});
    shard.map[key] = shard.lru.begin();
    shard.sizeBytes += bytes;
    while (shard.sizeBytes > shardCapacityBytes_ && !shard.lru.empty()) {
        Entry &victim = shard.lru.back();
        shard.sizeBytes -= victim.bytes;
        shard.map.erase(victim.key);
        shard.lru.pop_back();
        ++shard.evictions;
    }
}

size_t
DecodedTileCache::sizeBytes() const
{
    size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.sizeBytes;
    }
    return total;
}

uint64_t
DecodedTileCache::evictions() const
{
    uint64_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.evictions;
    }
    return total;
}

TileServer::TileServer(const Archive &archive, size_t cacheBytes)
    : archive_(archive), cache_(cacheBytes)
{
}

const TileServer::StreamInfo *
TileServer::findInfo(size_t recordIdx) const
{
    std::lock_guard<std::mutex> lock(infoMutex_);
    auto it = info_.find(recordIdx);
    return it == info_.end() ? nullptr : &it->second;
}

const TileServer::StreamInfo &
TileServer::rememberInfo(size_t recordIdx,
                         const codec::EncodedImage &stream)
{
    StreamInfo parsed;
    parsed.width = stream.width;
    parsed.height = stream.height;
    parsed.tileSize = stream.tileSize;
    parsed.tileCoded = stream.tileCoded;
    std::lock_guard<std::mutex> lock(infoMutex_);
    return info_.emplace(recordIdx, std::move(parsed)).first->second;
}

TileResult
TileServer::serve(const TileQuery &query)
{
    TileResult result;

    // Resolve the delta chain: records at or before the query day,
    // starting from the latest full download among them. Append order
    // is download-*completion* order, which ARQ retransmissions can
    // reorder relative to capture order, so sort by capture day.
    std::vector<size_t> chain = archive_.chain(query.locationId,
                                               query.band);
    std::vector<size_t> relevant;
    for (size_t idx : chain)
        if (archive_.record(idx).meta.captureDay <= query.day)
            relevant.push_back(idx);
    if (relevant.empty()) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.queries;
        return result;
    }
    std::stable_sort(relevant.begin(), relevant.end(),
                     [this](size_t a, size_t b) {
                         return archive_.record(a).meta.captureDay <
                                archive_.record(b).meta.captureDay;
                     });
    size_t firstUseful = 0;
    for (size_t i = 0; i < relevant.size(); ++i)
        if (archive_.record(relevant[i]).meta.fullDownload)
            firstUseful = i;
    relevant.erase(relevant.begin(),
                   relevant.begin() + static_cast<ptrdiff_t>(firstUseful));

    // Memoized stream geometry: no payload I/O on the warm path. A
    // record parsed cold here is kept for this query, so the miss
    // branch below does not load + parse the same payload twice.
    std::map<size_t, codec::EncodedImage> parsedThisQuery;
    std::vector<const StreamInfo *> infos;
    infos.reserve(relevant.size());
    for (size_t idx : relevant) {
        if (const StreamInfo *hit = findInfo(idx)) {
            infos.push_back(hit);
            continue;
        }
        // Parse outside the info lock; concurrent first touches of
        // the same record both parse, the second insert is a no-op.
        codec::EncodedImage stream = codec::EncodedImage::deserialize(
            archive_.loadPayload(idx));
        infos.push_back(&rememberInfo(idx, stream));
        parsedThisQuery.emplace(idx, std::move(stream));
    }
    const StreamInfo &newest = *infos.back();
    raster::TileGrid grid(newest.width, newest.height, newest.tileSize);
    for (const StreamInfo *info : infos)
        EP_ASSERT(info->width == newest.width &&
                      info->height == newest.height &&
                      info->tileSize == newest.tileSize,
                  "archive chain mixes geometries for location %d band %d",
                  query.locationId, query.band);

    // Clip the request to the image.
    int x0 = std::max(query.x0, 0);
    int y0 = std::max(query.y0, 0);
    int x1 = std::min(query.x0 + query.width, newest.width);
    int y1 = std::min(query.y0 + query.height, newest.height);
    if (x0 >= x1 || y0 >= y1) {
        std::lock_guard<std::mutex> lock(statsMutex_);
        ++stats_.queries;
        return result;
    }

    result.found = true;
    result.pixels = raster::Plane(x1 - x0, y1 - y0, 0.0f);

    // Newest record wins per tile: walk streams newest -> oldest and
    // pick the first that coded the tile.
    int tx0 = x0 / newest.tileSize;
    int ty0 = y0 / newest.tileSize;
    int tx1 = (x1 - 1) / newest.tileSize;
    int ty1 = (y1 - 1) / newest.tileSize;
    // Tiles wanted from each stream (by relevant-chain position).
    std::vector<std::vector<int>> wanted(relevant.size());
    for (int ty = ty0; ty <= ty1; ++ty) {
        for (int tx = tx0; tx <= tx1; ++tx) {
            int t = grid.tileIndex(tx, ty);
            for (size_t s = relevant.size(); s-- > 0;) {
                if (infos[s]->tileCoded[static_cast<size_t>(t)]) {
                    wanted[s].push_back(t);
                    result.servedDay = std::max(
                        result.servedDay,
                        archive_.record(relevant[s]).meta.captureDay);
                    break;
                }
            }
        }
    }

    for (size_t s = 0; s < relevant.size(); ++s) {
        if (wanted[s].empty())
            continue;
        size_t recordIdx = relevant[s];
        // Serve cached tiles; collect the rest for one batched decode.
        std::vector<int> misses;
        std::vector<std::pair<int, raster::Plane>> tiles;
        for (int t : wanted[s]) {
            raster::Plane cached;
            if (cache_.get(recordIdx, t, query.maxLayers, cached)) {
                tiles.emplace_back(t, std::move(cached));
                ++result.tilesFromCache;
            } else {
                misses.push_back(t);
            }
        }
        if (!misses.empty()) {
            // Only a miss pays for payload load + stream parse, and a
            // stream already parsed for geometry this query is reused.
            auto itParsed = parsedThisQuery.find(recordIdx);
            codec::EncodedImage local;
            const codec::EncodedImage *stream;
            if (itParsed != parsedThisQuery.end()) {
                stream = &itParsed->second;
            } else {
                local = codec::EncodedImage::deserialize(
                    archive_.loadPayload(recordIdx));
                stream = &local;
            }
            auto decoded = codec::decodeTiles(*stream, misses,
                                              query.maxLayers);
            for (size_t i = 0; i < misses.size(); ++i) {
                cache_.put(recordIdx, misses[i], query.maxLayers,
                           decoded[i]);
                tiles.emplace_back(misses[i], std::move(decoded[i]));
                ++result.tilesDecoded;
            }
        }
        for (auto &[t, pixels] : tiles) {
            raster::TileRect r = grid.rect(t);
            // Intersection of this tile with the clipped request.
            int ix0 = std::max(r.x0, x0);
            int iy0 = std::max(r.y0, y0);
            int ix1 = std::min(r.x0 + r.width, x1);
            int iy1 = std::min(r.y0 + r.height, y1);
            if (ix0 >= ix1 || iy0 >= iy1)
                continue;
            result.pixels.paste(pixels.crop(ix0 - r.x0, iy0 - r.y0,
                                            ix1 - ix0, iy1 - iy0),
                                ix0 - x0, iy0 - y0);
        }
    }

    std::lock_guard<std::mutex> lock(statsMutex_);
    ++stats_.queries;
    stats_.tilesDecoded += static_cast<uint64_t>(result.tilesDecoded);
    stats_.tilesFromCache += static_cast<uint64_t>(result.tilesFromCache);
    stats_.cacheEvictions = cache_.evictions();
    return result;
}

std::vector<TileResult>
TileServer::serveBatch(const std::vector<TileQuery> &batch)
{
    return util::parallelMap(batch.size(), [&](size_t i) {
        return serve(batch[i]);
    });
}

ServerStats
TileServer::stats() const
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    return stats_;
}

void
TileServer::resetStats()
{
    std::lock_guard<std::mutex> lock(statsMutex_);
    stats_ = ServerStats{};
}

} // namespace earthplus::ground