#include "ground/tile_server.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <exception>
#include <functional>
#include <limits>
#include <utility>

#include "codec/codec.hh"
#include "raster/tile.hh"
#include "util/logging.hh"

namespace earthplus::ground {

namespace {

/**
 * Tile-server metrics, resolved once per process. Registry entries
 * are leaked, so the references outlive every TileServer. These are
 * the single source of truth for serving statistics: StatsView is a
 * windowed read of exactly these entries.
 */
struct ServeMetrics
{
    telemetry::Counter &queries =
        telemetry::counter("ground.serve.queries");
    telemetry::Counter &tilesDecoded =
        telemetry::counter("ground.tiles.decoded");
    telemetry::Counter &tilesFromCache =
        telemetry::counter("ground.tiles.cache_hit");
    telemetry::Counter &tilesCoalesced =
        telemetry::counter("ground.tiles.coalesced");
    telemetry::Counter &coalesceClaims =
        telemetry::counter("ground.coalesce.claims");
    telemetry::Histogram &coalesceWaitNs =
        telemetry::histogram("ground.coalesce.wait_ns");
    telemetry::Counter &prefetchTasks =
        telemetry::counter("ground.prefetch.tasks");
    telemetry::Counter &prefetchDropped =
        telemetry::counter("ground.prefetch.dropped");
    telemetry::Counter &refineTasks =
        telemetry::counter("ground.refine.tasks");
    telemetry::Counter &refineDropped =
        telemetry::counter("ground.refine.dropped");
};

ServeMetrics &
serveMetrics()
{
    static ServeMetrics m;
    return m;
}

} // anonymous namespace

const char *
serveErrorName(ServeError error)
{
    switch (error) {
    case ServeError::None:
        return "ok";
    case ServeError::NotFound:
        return "not_found";
    case ServeError::Truncated:
        return "truncated";
    case ServeError::Shed:
        return "shed";
    case ServeError::BadQuery:
        return "bad_query";
    }
    return "unknown";
}

ServeError
TileQuery::validate() const
{
    if (width <= 0 || height <= 0)
        return ServeError::BadQuery;
    if (locationId < 0 || band < 0)
        return ServeError::BadQuery;
    if (!std::isfinite(day))
        return ServeError::BadQuery;
    if (maxLayers < -1)
        return ServeError::BadQuery;
    if (quality < -1 || quality > 100)
        return ServeError::BadQuery;
    return ServeError::None;
}

ClippedRect
TileQuery::clipTo(int imageWidth, int imageHeight) const
{
    ClippedRect rect;
    rect.x0 = std::max(x0, 0);
    rect.y0 = std::max(y0, 0);
    rect.x1 = std::min(x0 + width, imageWidth);
    rect.y1 = std::min(y0 + height, imageHeight);
    rect.truncated = rect.x0 != x0 || rect.y0 != y0 ||
                     rect.x1 != x0 + width || rect.y1 != y0 + height;
    return rect;
}

DecodedTileCache::DecodedTileCache(size_t capacityBytes)
    : shardCapacityBytes_(capacityBytes / kShards)
{
}

DecodedTileCache::Shard &
DecodedTileCache::shardFor(const Key &key)
{
    size_t h = std::hash<size_t>()(std::get<0>(key)) ^
               std::hash<int>()(std::get<1>(key)) * 0x9e3779b9u;
    return shards_[h % kShards];
}

bool
DecodedTileCache::get(size_t recordIdx, int tile, int maxLayers,
                      int quality, raster::Plane &out)
{
    Key key{recordIdx, tile, maxLayers, quality};
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    if (it == shard.map.end())
        return false;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    out = it->second->pixels;
    return true;
}

void
DecodedTileCache::put(size_t recordIdx, int tile, int maxLayers,
                      int quality, const raster::Plane &pixels)
{
    size_t bytes = static_cast<size_t>(pixels.width()) *
                   static_cast<size_t>(pixels.height()) * sizeof(float);
    if (bytes > shardCapacityBytes_)
        return; // larger than a whole shard; never cacheable
    Key key{recordIdx, tile, maxLayers, quality};
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.map.count(key))
        return; // another thread filled it first
    shard.lru.push_front(Entry{key, pixels, bytes});
    shard.map[key] = shard.lru.begin();
    shard.sizeBytes += bytes;
    while (shard.sizeBytes > shardCapacityBytes_ && !shard.lru.empty()) {
        Entry &victim = shard.lru.back();
        shard.sizeBytes -= victim.bytes;
        shard.map.erase(victim.key);
        shard.lru.pop_back();
        ++shard.evictions;
    }
}

size_t
DecodedTileCache::sizeBytes() const
{
    size_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.sizeBytes;
    }
    return total;
}

uint64_t
DecodedTileCache::evictions() const
{
    uint64_t total = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        total += shard.evictions;
    }
    return total;
}

namespace {

TileServerOptions
optionsWithCacheBytes(size_t cacheBytes)
{
    TileServerOptions options;
    options.cacheBytes = cacheBytes;
    return options;
}

} // anonymous namespace

TileServer::TileServer(const Archive &archive, size_t cacheBytes)
    : TileServer(archive, optionsWithCacheBytes(cacheBytes))
{
}

TileServer::TileServer(const Archive &archive,
                       const TileServerOptions &options)
    : archive_(archive), cache_(options.cacheBytes), options_(options),
      latencyHist_(&telemetry::histogram("ground.serve.latency_ns"))
{
    // Baseline at construction: a fresh server's StatsView window
    // must not include queries an earlier server in this process ran.
    ServeMetrics &m = serveMetrics();
    metricsBase_.queries = m.queries.value();
    metricsBase_.tilesDecoded = m.tilesDecoded.value();
    metricsBase_.tilesCacheHit = m.tilesFromCache.value();
    metricsBase_.tilesCoalesced = m.tilesCoalesced.value();
    metricsBase_.coalesceClaims = m.coalesceClaims.value();
    metricsBase_.prefetchTasks = m.prefetchTasks.value();
    metricsBase_.prefetchDropped = m.prefetchDropped.value();
    metricsBase_.cacheEvictions = 0; // cache_ is brand new
    latencyBase_ = latencyHist_->snapshot();
    if (options_.prefetch)
        prefetchQueue_ = std::make_unique<util::BackgroundQueue>(
            options_.prefetchQueueDepth);
}

TileServer::~TileServer()
{
    // Stop the prefetch worker before any member it touches dies.
    prefetchQueue_.reset();
}

const TileServer::StreamInfo *
TileServer::findInfo(size_t recordIdx) const
{
    std::lock_guard<std::mutex> lock(infoMutex_);
    auto it = info_.find(recordIdx);
    return it == info_.end() ? nullptr : &it->second;
}

const TileServer::StreamInfo &
TileServer::rememberInfo(size_t recordIdx,
                         const codec::EncodedImage &stream)
{
    StreamInfo parsed;
    parsed.width = stream.width;
    parsed.height = stream.height;
    parsed.tileSize = stream.tileSize;
    parsed.tileCoded = stream.tileCoded;
    std::lock_guard<std::mutex> lock(infoMutex_);
    return info_.emplace(recordIdx, std::move(parsed)).first->second;
}

std::shared_future<TileResult>
TileServer::serveAsync(const TileQuery &query, ServeCompletion onDone)
{
    // ThreadPool::submit carries the whole dispatch policy: a
    // multi-lane pool queues the serve to a worker (the future
    // completes off-thread, which is what lets an event loop keep
    // polling), while a single-lane pool or a caller already inside a
    // parallel region runs it inline — exactly the pre-async serve()
    // behavior, so in-process callers and benches see no change.
    return util::ThreadPool::global()
        .submit([this, query, done = std::move(onDone)]() {
            TileResult result = serveFront(query);
            if (done)
                done(result);
            return result;
        })
        .share();
}

TileResult
TileServer::serve(const TileQuery &query)
{
    // Equivalent to serveAsync(query).get(), but runs the core
    // directly on the calling thread: a blocked caller gains nothing
    // from a pool hop, and skipping the future keeps the sync path's
    // overhead identical to the pre-async API (the latency-histogram
    // bracketing tests measure that).
    return serveFront(query);
}

TileResult
TileServer::serveFront(const TileQuery &query)
{
    telemetry::TraceSpan span("ground.serve", "ground");
    uint64_t t0 = telemetry::nowNanos();
    double nextDay = std::numeric_limits<double>::infinity();
    TileResult result = serveImpl(query, &nextDay);
    result.serveNs = telemetry::nowNanos() - t0;
    if (telemetry::metricsEnabled())
        latencyHist_->record(result.serveNs);

    ServeMetrics &m = serveMetrics();
    m.queries.add();
    m.tilesDecoded.add(static_cast<uint64_t>(result.tilesDecoded));
    m.tilesFromCache.add(static_cast<uint64_t>(result.tilesFromCache));
    m.tilesCoalesced.add(static_cast<uint64_t>(result.tilesCoalesced));

    if (result.ok() && options_.prefetch)
        maybePrefetch(query, nextDay);
    // A reduced-fidelity answer went out fast; refine in the
    // background so the next identical query serves full quality.
    if (result.ok() && query.quality >= 0 && query.quality < 100)
        scheduleRefine(query);
    return result;
}

codec::EncodedImage
TileServer::parseRecord(size_t recordIdx, int quality) const
{
    telemetry::TraceSpan parseSpan("ground.payload_parse", "ground");
    PayloadView view = archive_.payloadView(recordIdx);
    const uint8_t *data = view.data();
    size_t size = view.size();
    if (quality >= 0 && quality < 100 && size >= 4 &&
        std::memcmp(data, "EPC4", 4) == 0) {
        // Serve from a truncated prefix: the largest recorded
        // truncation point within quality% of the payload bytes
        // (never below the header floor). The parse borrows the
        // archive mapping — no staging copy of the cut prefix.
        std::vector<size_t> points =
            codec::truncationPoints(data, size);
        size_t budget = std::max(
            points.front(),
            static_cast<size_t>(static_cast<double>(size) *
                                static_cast<double>(quality) / 100.0));
        auto it =
            std::upper_bound(points.begin(), points.end(), budget);
        size_t cut = *(it - 1);
        codec::EncodedImage e;
        codec::StreamError err =
            codec::EncodedImage::tryDeserialize(data, cut, e);
        EP_ASSERT(err == codec::StreamError::None,
                  "archive record %zu: recorded truncation point %zu "
                  "did not parse",
                  recordIdx, cut);
        return e;
    }
    return codec::EncodedImage::deserialize(data, size);
}

TileResult
TileServer::serveImpl(const TileQuery &query, double *nextDayOut)
{
    TileResult result;
    if (query.validate() != ServeError::None) {
        result.error = ServeError::BadQuery;
        return result;
    }

    // Resolve the delta chain: records at or before the query day,
    // starting from the latest full download among them. Append order
    // is download-*completion* order, which ARQ retransmissions can
    // reorder relative to capture order, so sort by capture day.
    // One locked pass snapshots the whole chain's metadata (the
    // archive may be appended to concurrently; a per-record lookup
    // would pay two lock round trips per chain element).
    std::vector<std::pair<size_t, RecordMeta>> relevant =
        archive_.chainEntries(query.locationId, query.band);
    double nextDay = std::numeric_limits<double>::infinity();
    auto afterQuery = [&](const std::pair<size_t, RecordMeta> &e) {
        if (e.second.captureDay > query.day) {
            nextDay = std::min(nextDay, e.second.captureDay);
            return true;
        }
        return false;
    };
    relevant.erase(std::remove_if(relevant.begin(), relevant.end(),
                                  afterQuery),
                   relevant.end());
    if (nextDayOut)
        *nextDayOut = nextDay;
    if (relevant.empty())
        return result; // NotFound (the default)
    std::stable_sort(relevant.begin(), relevant.end(),
                     [](const auto &a, const auto &b) {
                         return a.second.captureDay < b.second.captureDay;
                     });
    size_t firstUseful = 0;
    for (size_t i = 0; i < relevant.size(); ++i)
        if (relevant[i].second.fullDownload)
            firstUseful = i;
    relevant.erase(relevant.begin(),
                   relevant.begin() + static_cast<ptrdiff_t>(firstUseful));

    // Memoized stream geometry: no payload I/O on the warm path. A
    // record parsed cold here is kept for this query, so the miss
    // branch below does not load + parse the same payload twice.
    std::map<size_t, codec::EncodedImage> parsedThisQuery;
    std::vector<const StreamInfo *> infos;
    infos.reserve(relevant.size());
    for (const auto &[idx, meta] : relevant) {
        if (const StreamInfo *hit = findInfo(idx)) {
            infos.push_back(hit);
            continue;
        }
        // Parse outside the info lock; concurrent first touches of
        // the same record both parse, the second insert is a no-op.
        // The payload view aims into the shard's file mapping, so
        // parsing copies only the entropy chunks, never the whole
        // serialized payload. The quality hint applies here too: a
        // reduced-fidelity parse reads only the truncated prefix, and
        // its geometry (all in the header) is identical.
        codec::EncodedImage stream = parseRecord(idx, query.quality);
        infos.push_back(&rememberInfo(idx, stream));
        parsedThisQuery.emplace(idx, std::move(stream));
    }
    const StreamInfo &newest = *infos.back();
    raster::TileGrid grid(newest.width, newest.height, newest.tileSize);
    for (const StreamInfo *info : infos)
        EP_ASSERT(info->width == newest.width &&
                      info->height == newest.height &&
                      info->tileSize == newest.tileSize,
                  "archive chain mixes geometries for location %d band %d",
                  query.locationId, query.band);

    // Clip the request to the image — TileQuery::clipTo is the one
    // clamping authority; a rect that misses the image entirely is a
    // malformed request, not an absent record.
    ClippedRect rect = query.clipTo(newest.width, newest.height);
    if (rect.empty()) {
        result.error = ServeError::BadQuery;
        return result;
    }
    int x0 = rect.x0;
    int y0 = rect.y0;
    int x1 = rect.x1;
    int y1 = rect.y1;

    result.error =
        rect.truncated ? ServeError::Truncated : ServeError::None;
    result.pixels = raster::Plane(x1 - x0, y1 - y0, 0.0f);

    // Newest record wins per tile: walk streams newest -> oldest and
    // pick the first that coded the tile.
    int tx0 = x0 / newest.tileSize;
    int ty0 = y0 / newest.tileSize;
    int tx1 = (x1 - 1) / newest.tileSize;
    int ty1 = (y1 - 1) / newest.tileSize;
    // Tiles wanted from each stream (by relevant-chain position).
    std::vector<std::vector<int>> wanted(relevant.size());
    for (int ty = ty0; ty <= ty1; ++ty) {
        for (int tx = tx0; tx <= tx1; ++tx) {
            int t = grid.tileIndex(tx, ty);
            for (size_t s = relevant.size(); s-- > 0;) {
                if (infos[s]->tileCoded[static_cast<size_t>(t)]) {
                    wanted[s].push_back(t);
                    result.servedDay = std::max(
                        result.servedDay, relevant[s].second.captureDay);
                    break;
                }
            }
        }
    }

    for (size_t s = 0; s < relevant.size(); ++s) {
        if (wanted[s].empty())
            continue;
        size_t recordIdx = relevant[s].first;
        // Serve cached tiles; of the misses, *claim* the tiles nobody
        // is decoding (one promise per tile published under the
        // in-flight lock) and *join* the decodes already running —
        // identical concurrent queries dedupe onto one decode. The
        // whole claim lifecycle sits inside one try block: once a
        // claim is published, ANY exception before its fulfilment
        // must propagate into the future and release the key, or the
        // tile would be wedged for every later query.
        std::vector<int> misses;
        std::vector<std::promise<raster::Plane>> claims;
        std::vector<TileKey> claimKeys;
        std::vector<std::pair<int, std::shared_future<raster::Plane>>>
            joined;
        std::vector<std::pair<int, raster::Plane>> tiles;
        size_t fulfilled = 0; // claims[0..fulfilled) have a value
        try {
            for (int t : wanted[s]) {
                raster::Plane cached;
                if (cache_.get(recordIdx, t, query.maxLayers,
                               query.quality, cached)) {
                    tiles.emplace_back(t, std::move(cached));
                    ++result.tilesFromCache;
                    continue;
                }
                TileKey key{recordIdx, t, query.maxLayers,
                            query.quality};
                bool claimed = false;
                {
                    std::lock_guard<std::mutex> lock(inflightMutex_);
                    auto it = inflight_.find(key);
                    if (it != inflight_.end()) {
                        joined.emplace_back(t, it->second);
                    } else {
                        claims.emplace_back();
                        claimKeys.push_back(key);
                        misses.push_back(t);
                        inflight_[key] =
                            claims.back().get_future().share();
                        claimed = true;
                    }
                }
                if (!claimed)
                    continue;
                // Re-check the cache after claiming: a decode that
                // finished between our miss and our claim has already
                // done cache_.put() (put precedes the in-flight erase
                // that made our claim possible), so this read closes
                // the duplicate-decode window.
                if (cache_.get(recordIdx, t, query.maxLayers,
                               query.quality, cached)) {
                    claims.back().set_value(cached);
                    {
                        std::lock_guard<std::mutex> lock(inflightMutex_);
                        inflight_.erase(key);
                    }
                    // Future holders keep the shared state alive.
                    claims.pop_back();
                    claimKeys.pop_back();
                    misses.pop_back();
                    tiles.emplace_back(t, std::move(cached));
                    ++result.tilesFromCache;
                }
            }
            if (!misses.empty()) {
                // Only a claimed miss pays for payload mapping +
                // stream parse, and a stream already parsed for
                // geometry this query is reused.
                auto itParsed = parsedThisQuery.find(recordIdx);
                codec::EncodedImage local;
                const codec::EncodedImage *stream;
                if (itParsed != parsedThisQuery.end()) {
                    stream = &itParsed->second;
                } else {
                    local = parseRecord(recordIdx, query.quality);
                    stream = &local;
                }
                serveMetrics().coalesceClaims.add(misses.size());
                // Decoding while holding claims may fan tile and
                // entropy-chunk work into the pool even though other
                // workers could be parked in fut.get() on exactly
                // these claims: parallelFor's helper jobs are
                // detached, so the calling thread drains the whole
                // range itself when no worker ever picks one up —
                // completion never depends on pool scheduling, which
                // is what makes this fan-out deadlock-free. Large
                // tiles decode chunk-parallel here, which is the
                // serve-latency win of the chunked (v2) format.
                telemetry::TraceSpan decodeSpan("ground.decode",
                                                "ground");
                auto decoded = codec::decodeTiles(*stream, misses,
                                                  query.maxLayers);
                for (size_t i = 0; i < misses.size(); ++i) {
                    cache_.put(recordIdx, misses[i], query.maxLayers,
                               query.quality, decoded[i]);
                    claims[i].set_value(decoded[i]);
                    fulfilled = i + 1;
                    {
                        std::lock_guard<std::mutex> lock(inflightMutex_);
                        inflight_.erase(claimKeys[i]);
                    }
                    tiles.emplace_back(misses[i], std::move(decoded[i]));
                    ++result.tilesDecoded;
                }
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(inflightMutex_);
            for (size_t i = fulfilled; i < claims.size(); ++i) {
                claims[i].set_exception(std::current_exception());
                inflight_.erase(claimKeys[i]);
            }
            throw;
        }
        for (auto &[t, fut] : joined) {
            // Safe to block: the claim holder always completes its own
            // decode — any pool fan-out it attempts degrades to a
            // caller-driven drain when workers are busy (detached
            // parallelFor helpers), so this join can never be queued
            // behind the very decode it waits on.
            {
                telemetry::TraceSpan joinSpan("ground.coalesce.join",
                                              "ground");
                telemetry::ScopedTimer wait(
                    serveMetrics().coalesceWaitNs);
                tiles.emplace_back(t, fut.get());
            }
            ++result.tilesCoalesced;
        }
        for (auto &[t, pixels] : tiles) {
            raster::TileRect r = grid.rect(t);
            // Intersection of this tile with the clipped request.
            int ix0 = std::max(r.x0, x0);
            int iy0 = std::max(r.y0, y0);
            int ix1 = std::min(r.x0 + r.width, x1);
            int iy1 = std::min(r.y0 + r.height, y1);
            if (ix0 >= ix1 || iy0 >= iy1)
                continue;
            result.pixels.paste(pixels.crop(ix0 - r.x0, iy0 - r.y0,
                                            ix1 - ix0, iy1 - iy0),
                                ix0 - x0, iy0 - y0);
        }
    }

    return result;
}

void
TileServer::maybePrefetch(const TileQuery &query, double nextDay)
{
    // Sequential-day detection: the same (location, band) was last
    // served an earlier day. One step forward predicts another.
    bool sequential = false;
    {
        std::lock_guard<std::mutex> lock(prefetchMutex_);
        auto key = std::make_pair(query.locationId, query.band);
        auto it = lastServedDay_.find(key);
        sequential = it != lastServedDay_.end() &&
                     query.day > it->second;
        lastServedDay_[key] = query.day;
    }
    if (!sequential || !prefetchQueue_)
        return;

    // `nextDay` (computed by serveImpl while it scanned the chain) is
    // the earliest record strictly after the query day. Prefetching
    // *that* day's chain warms exactly the records a continuing
    // sequential consumer asks for next.
    if (!std::isfinite(nextDay))
        return;

    TileQuery ahead = query;
    ahead.day = nextDay;
    bool posted = prefetchQueue_->post([this, ahead] {
        telemetry::TraceSpan span("ground.prefetch", "ground");
        serveImpl(ahead);
        serveMetrics().prefetchTasks.add();
    });
    if (!posted)
        serveMetrics().prefetchDropped.add();
}

void
TileServer::scheduleRefine(const TileQuery &query)
{
    if (!prefetchQueue_)
        return;
    TileQuery full = query;
    full.quality = -1;
    // Same BackgroundQueue as prefetching: refines stay off the
    // serving threads' latency path and never touch the global pool.
    bool posted = prefetchQueue_->post([this, full] {
        telemetry::TraceSpan span("ground.refine", "ground");
        serveImpl(full);
        serveMetrics().refineTasks.add();
    });
    if (!posted)
        serveMetrics().refineDropped.add();
}

std::vector<TileResult>
TileServer::serveBatch(const std::vector<TileQuery> &batch)
{
    telemetry::TraceSpan span("ground.serve_batch", "ground");
    return util::parallelMap(batch.size(), [&](size_t i) {
        return serve(batch[i]);
    });
}

StatsView
TileServer::statsView() const
{
    // Copy the baselines under the lock; read the registry and merge
    // the histogram shards outside it so percentile computation never
    // stalls concurrent serve() completions.
    MetricsBaseline base;
    telemetry::HistogramSnapshot histBase;
    {
        std::lock_guard<std::mutex> lock(statsMutex_);
        base = metricsBase_;
        histBase = latencyBase_;
    }
    ServeMetrics &m = serveMetrics();
    StatsView out;
    out.queries = m.queries.value() - base.queries;
    out.tilesDecoded = m.tilesDecoded.value() - base.tilesDecoded;
    out.tilesCacheHit = m.tilesFromCache.value() - base.tilesCacheHit;
    out.tilesCoalesced = m.tilesCoalesced.value() - base.tilesCoalesced;
    out.coalesceClaims = m.coalesceClaims.value() - base.coalesceClaims;
    out.prefetchTasks = m.prefetchTasks.value() - base.prefetchTasks;
    out.prefetchDropped =
        m.prefetchDropped.value() - base.prefetchDropped;
    out.cacheEvictions = cache_.evictions() - base.cacheEvictions;
    telemetry::HistogramSnapshot window =
        latencyHist_->snapshot().since(histBase);
    constexpr double kNsPerMs = 1e6;
    out.latencyP50Ms = window.quantile(0.50) / kNsPerMs;
    out.latencyP99Ms = window.quantile(0.99) / kNsPerMs;
    out.latencyP999Ms = window.quantile(0.999) / kNsPerMs;
    return out;
}

void
TileServer::resetStats()
{
    // The registry metrics are monotonic by design; resetting the
    // window means re-baselining, not clearing.
    ServeMetrics &m = serveMetrics();
    MetricsBaseline base;
    base.queries = m.queries.value();
    base.tilesDecoded = m.tilesDecoded.value();
    base.tilesCacheHit = m.tilesFromCache.value();
    base.tilesCoalesced = m.tilesCoalesced.value();
    base.coalesceClaims = m.coalesceClaims.value();
    base.prefetchTasks = m.prefetchTasks.value();
    base.prefetchDropped = m.prefetchDropped.value();
    base.cacheEvictions = cache_.evictions();
    telemetry::HistogramSnapshot histBase = latencyHist_->snapshot();
    std::lock_guard<std::mutex> lock(statsMutex_);
    metricsBase_ = base;
    latencyBase_ = std::move(histBase);
}

void
TileServer::waitForPrefetchIdle()
{
    if (prefetchQueue_)
        prefetchQueue_->drain();
}

} // namespace earthplus::ground
