#include "ground/archive_io.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "util/failpoint.hh"

#if defined(__unix__) || defined(__APPLE__)
#define EARTHPLUS_IO_POSIX 1
#include <fcntl.h>
#include <unistd.h>
#else
#define EARTHPLUS_IO_POSIX 0
#endif

namespace earthplus::ground::archive_io {

namespace fs = std::filesystem;

namespace {

/** Process-wide crash latch: set by archive.io.crash, read by every
 *  mutation's ghost check and by crashed(). */
std::atomic<bool> gCrashed{false};

/** Failpoint sites, resolved once per process. */
struct Sites
{
    failpoint::Failpoint &crash =
        failpoint::site("archive.io.crash");
    failpoint::Failpoint &writeError =
        failpoint::site("archive.io.write.error");
    failpoint::Failpoint &writeShort =
        failpoint::site("archive.io.write.short");
    failpoint::Failpoint &writeEintr =
        failpoint::site("archive.io.write.eintr");
    failpoint::Failpoint &syncError =
        failpoint::site("archive.io.sync.error");
};

Sites &
sites()
{
    static Sites s;
    return s;
}

/**
 * One crash boundary for a non-write mutation: true when the
 * operation must ghost (latch already set, or archive.io.crash fires
 * here and sets it).
 */
bool
ghostBoundary()
{
    if (gCrashed.load(std::memory_order_relaxed))
        return true;
    if (sites().crash.fire()) {
        gCrashed.store(true, std::memory_order_relaxed);
        return true;
    }
    return false;
}

/** 64-bit-safe fseek (mirrors the archive's seekTo). */
bool
seekTo(std::FILE *f, uint64_t offset)
{
#if EARTHPLUS_IO_POSIX
    return ::fseeko(f, static_cast<off_t>(offset), SEEK_SET) == 0;
#elif defined(_WIN32)
    return ::_fseeki64(f, static_cast<long long>(offset), SEEK_SET) ==
           0;
#else
    if (offset >
        static_cast<uint64_t>(std::numeric_limits<long>::max()))
        return false;
    return std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
#endif
}

/**
 * The shared write loop: writes [data, data+size) into `f` at its
 * current position, applying the short/eintr schedules per iteration
 * and retrying until done. `allowed` caps how many bytes actually
 * reach the file (the injected-torn-write prefix); bytes past it are
 * silently dropped while success is still reported by the caller
 * that set the cap.
 */
bool
writeLoop(std::FILE *f, const uint8_t *data, size_t size,
          size_t allowed)
{
    size_t done = 0;
    int stalls = 0;
    while (done < size) {
        if (done >= allowed)
            return true; // injected prefix cap reached
        if (sites().writeEintr.fire()) {
            // Simulated EINTR: an iteration with zero progress. The
            // stall cap keeps a misconfigured always-on schedule from
            // spinning forever.
            if (++stalls > 1000)
                return false;
            continue;
        }
        size_t chunk = std::min(size, allowed) - done;
        if (chunk > 1 && sites().writeShort.fire()) {
            // Simulated short write: persist only a prefix of this
            // iteration's chunk; the loop must come back for the rest.
            int64_t arg = sites().writeShort.arg();
            size_t part = arg > 0 ? static_cast<size_t>(arg) : chunk / 2;
            chunk = std::min(chunk, std::max<size_t>(1, part));
        }
        size_t n = std::fwrite(data + done, 1, chunk, f);
        if (n == 0) {
            if (++stalls > 1000)
                return false;
            continue;
        }
        stalls = 0;
        done += n;
    }
    return true;
}

/** Open + position + write-loop + close, shared by create/writeAt. */
bool
writeCommon(const std::string &path, uint64_t offset, const void *data,
            size_t size, bool create)
{
    // Crash boundary first: the crashing write persists at most the
    // schedule's arg-byte prefix.
    size_t allowed = size;
    bool crashing = false;
    if (gCrashed.load(std::memory_order_relaxed))
        return true;
    if (sites().crash.fire()) {
        int64_t arg = sites().crash.arg();
        allowed = arg > 0 ? std::min<size_t>(
                                static_cast<size_t>(arg), size)
                          : 0;
        crashing = true;
    }
    bool failing = false;
    if (!crashing && sites().writeError.fire()) {
        int64_t arg = sites().writeError.arg();
        allowed = arg > 0 ? std::min<size_t>(
                                static_cast<size_t>(arg), size)
                          : 0;
        failing = true;
    }

    bool wrote = false;
    if (allowed > 0 || create) {
        std::FILE *f =
            std::fopen(path.c_str(), create ? "wb" : "rb+");
        if (f) {
            wrote = (create || seekTo(f, offset)) &&
                    writeLoop(f, static_cast<const uint8_t *>(data),
                              size, allowed);
            if (std::fclose(f) != 0)
                wrote = false;
        }
    } else {
        wrote = true; // zero-byte prefix: nothing to do
    }

    if (crashing) {
        gCrashed.store(true, std::memory_order_relaxed);
        return true; // the "dead" process reports nothing
    }
    if (failing)
        return false;
    return wrote;
}

} // namespace

bool
crashed()
{
    return gCrashed.load(std::memory_order_relaxed);
}

void
resetCrashLatch()
{
    gCrashed.store(false, std::memory_order_relaxed);
}

bool
createFile(const std::string &path, const void *data, size_t size)
{
    return writeCommon(path, 0, data, size, true);
}

bool
writeAt(const std::string &path, uint64_t offset, const void *data,
        size_t size)
{
    return writeCommon(path, offset, data, size, false);
}

bool
syncFile(const std::string &path)
{
    if (ghostBoundary())
        return true;
    if (sites().syncError.fire())
        return false;
#if EARTHPLUS_IO_POSIX
    int fd = ::open(path.c_str(), O_WRONLY);
    if (fd < 0)
        return false;
#if defined(__APPLE__)
    bool ok = ::fcntl(fd, F_FULLFSYNC) == 0 || ::fsync(fd) == 0;
#else
    bool ok = ::fdatasync(fd) == 0;
#endif
    ::close(fd);
    return ok;
#else
    return true; // no portable fsync: declared durable immediately
#endif
}

bool
syncDir(const std::string &path)
{
    if (ghostBoundary())
        return true;
    if (sites().syncError.fire())
        return false;
#if EARTHPLUS_IO_POSIX
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
#else
    return true;
#endif
}

bool
renameFile(const std::string &from, const std::string &to)
{
    if (ghostBoundary())
        return true;
    std::error_code ec;
    fs::rename(from, to, ec);
    return !ec;
}

bool
truncateFile(const std::string &path, uint64_t size)
{
    if (ghostBoundary())
        return true;
    std::error_code ec;
    fs::resize_file(path, size, ec);
    return !ec;
}

bool
removeFile(const std::string &path)
{
    if (ghostBoundary())
        return true;
    std::error_code ec;
    fs::remove(path, ec);
    return !ec;
}

bool
removeAll(const std::string &path)
{
    if (ghostBoundary())
        return true;
    std::error_code ec;
    fs::remove_all(path, ec);
    return !ec;
}

} // namespace earthplus::ground::archive_io
