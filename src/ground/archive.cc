#include "ground/archive.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>

#include "ground/crc32.hh"
#include "util/bytes.hh"
#include "util/logging.hh"

namespace earthplus::ground {

namespace {

// "EPAR": archive file magic; "EPRC": record magic.
constexpr uint32_t kFileMagic = 0x52415045;
constexpr uint32_t kRecordMagic = 0x43525045;
constexpr uint32_t kVersion = 1;

constexpr size_t kFileHeaderBytes = 8;
/** magic + headerCrc + 4 u32 + 2 f64 + u64 + u32. */
constexpr size_t kRecordHeaderBytes = 52;

using util::appendPod;
using util::readPodAt;

/** Record flag bits. */
constexpr uint32_t kFlagFullDownload = 1u << 0;
constexpr uint32_t kFlagHasReference = 1u << 1;

/**
 * Serialize a record header. The header CRC covers every field after
 * itself, so any bit flip in the metadata is caught by the scan.
 */
std::vector<uint8_t>
recordHeaderBytes(const RecordMeta &meta, uint32_t payloadCrc)
{
    std::vector<uint8_t> body;
    body.reserve(kRecordHeaderBytes - 8);
    appendPod(body, static_cast<uint32_t>(meta.locationId));
    appendPod(body, static_cast<uint32_t>(meta.satelliteId));
    appendPod(body, static_cast<uint32_t>(meta.band));
    uint32_t flags = (meta.fullDownload ? kFlagFullDownload : 0u) |
                     (meta.referenceDay >= 0.0 ? kFlagHasReference : 0u);
    appendPod(body, flags);
    appendPod(body, meta.captureDay);
    appendPod(body, meta.referenceDay >= 0.0 ? meta.referenceDay : 0.0);
    appendPod(body, meta.payloadBytes);
    appendPod(body, payloadCrc);

    std::vector<uint8_t> out;
    out.reserve(kRecordHeaderBytes);
    appendPod(out, kRecordMagic);
    appendPod(out, crc32(body.data(), body.size()));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

/** Parse + validate a record header; false on any inconsistency. */
bool
parseRecordHeader(const uint8_t *buf, RecordEntry &entry)
{
    if (readPodAt<uint32_t>(buf, 0) != kRecordMagic)
        return false;
    uint32_t headerCrc = readPodAt<uint32_t>(buf, 4);
    if (crc32(buf + 8, kRecordHeaderBytes - 8) != headerCrc)
        return false;
    RecordMeta m;
    m.locationId = static_cast<int>(readPodAt<uint32_t>(buf, 8));
    m.satelliteId = static_cast<int>(readPodAt<uint32_t>(buf, 12));
    m.band = static_cast<int>(readPodAt<uint32_t>(buf, 16));
    uint32_t flags = readPodAt<uint32_t>(buf, 20);
    m.fullDownload = (flags & kFlagFullDownload) != 0;
    m.captureDay = readPodAt<double>(buf, 24);
    double refDay = readPodAt<double>(buf, 32);
    m.referenceDay = (flags & kFlagHasReference) ? refDay : -1.0;
    m.payloadBytes = readPodAt<uint64_t>(buf, 40);
    entry.meta = m;
    entry.payloadCrc = readPodAt<uint32_t>(buf, 48);
    return true;
}

} // anonymous namespace

Archive::Archive(const std::string &path)
    : path_(path)
{
    if (path_.empty()) {
        appendOffset_ = kFileHeaderBytes;
        scanReport_.validBytes = appendOffset_;
        return;
    }
    openAndScan();
}

Archive::~Archive() = default;

void
Archive::openAndScan()
{
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (!f) {
        // New archive: write the file header.
        f = std::fopen(path_.c_str(), "wb");
        if (!f)
            fatal("cannot create archive '%s'", path_.c_str());
        std::vector<uint8_t> header;
        appendPod(header, kFileMagic);
        appendPod(header, kVersion);
        if (std::fwrite(header.data(), 1, header.size(), f) !=
            header.size())
            fatal("cannot write archive header to '%s'", path_.c_str());
        std::fclose(f);
        appendOffset_ = kFileHeaderBytes;
        scanReport_.validBytes = appendOffset_;
        return;
    }

    uint8_t fileHeader[kFileHeaderBytes];
    if (std::fread(fileHeader, 1, kFileHeaderBytes, f) !=
            kFileHeaderBytes ||
        readPodAt<uint32_t>(fileHeader, 0) != kFileMagic)
        fatal("'%s' is not an Earth+ archive", path_.c_str());
    uint32_t version = readPodAt<uint32_t>(fileHeader, 4);
    if (version != kVersion)
        fatal("archive '%s' has unsupported version %u", path_.c_str(),
              version);

    // Scan records until the end of the file or the first corrupt /
    // truncated record; everything before it stays usable.
    uint64_t pos = kFileHeaderBytes;
    for (;;) {
        uint8_t buf[kRecordHeaderBytes];
        if (std::fseek(f, static_cast<long>(pos), SEEK_SET) != 0)
            break;
        size_t got = std::fread(buf, 1, kRecordHeaderBytes, f);
        if (got == 0)
            break; // clean end of file
        if (got < kRecordHeaderBytes) {
            scanReport_.truncatedTail = true;
            break;
        }
        RecordEntry entry;
        if (!parseRecordHeader(buf, entry)) {
            scanReport_.truncatedTail = true;
            break;
        }
        entry.payloadOffset = pos + kRecordHeaderBytes;
        // The payload must fit in the file and match its CRC; a bad
        // tail payload means the append was cut short.
        std::vector<uint8_t> payload(entry.meta.payloadBytes);
        size_t gotPayload = payload.empty()
            ? 0
            : std::fread(payload.data(), 1, payload.size(), f);
        if (gotPayload != payload.size() ||
            crc32(payload.data(), payload.size()) != entry.payloadCrc) {
            scanReport_.truncatedTail = true;
            break;
        }
        size_t idx = records_.size();
        records_.push_back(entry);
        index_[{entry.meta.locationId, entry.meta.band}].push_back(idx);
        pos += kRecordHeaderBytes + entry.meta.payloadBytes;
    }
    std::fclose(f);

    appendOffset_ = pos;
    scanReport_.recordCount = records_.size();
    scanReport_.validBytes = pos;
    if (scanReport_.truncatedTail) {
        // Drop the garbage so the next append starts on a clean tail.
        warn("archive '%s': discarding corrupt tail after %llu bytes "
             "(%zu records recovered)", path_.c_str(),
             static_cast<unsigned long long>(pos), records_.size());
        std::vector<uint8_t> prefix(pos);
        std::FILE *in = std::fopen(path_.c_str(), "rb");
        if (!in)
            fatal("cannot reopen archive '%s'", path_.c_str());
        size_t n = std::fread(prefix.data(), 1, prefix.size(), in);
        std::fclose(in);
        std::FILE *out = std::fopen(path_.c_str(), "wb");
        if (!out || std::fwrite(prefix.data(), 1, n, out) != n)
            fatal("cannot rewrite archive '%s'", path_.c_str());
        std::fclose(out);
    }
}

void
Archive::appendRecordBytes(const RecordMeta &meta, uint32_t payloadCrc,
                           const std::vector<uint8_t> &payload)
{
    if (path_.empty()) {
        memPayloads_.push_back(payload);
        appendOffset_ += kRecordHeaderBytes + payload.size();
        return;
    }
    std::FILE *f = std::fopen(path_.c_str(), "rb+");
    if (!f)
        fatal("cannot open archive '%s' for append", path_.c_str());
    std::vector<uint8_t> header = recordHeaderBytes(meta, payloadCrc);
    bool ok =
        std::fseek(f, static_cast<long>(appendOffset_), SEEK_SET) == 0 &&
        std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
        (payload.empty() ||
         std::fwrite(payload.data(), 1, payload.size(), f) ==
             payload.size());
    std::fclose(f);
    if (!ok)
        fatal("append to archive '%s' failed", path_.c_str());
    appendOffset_ += header.size() + payload.size();
}

size_t
Archive::append(const RecordMeta &meta, const std::vector<uint8_t> &payload)
{
    RecordEntry entry;
    entry.meta = meta;
    entry.meta.payloadBytes = payload.size();
    entry.payloadCrc = crc32(payload.data(), payload.size());
    entry.payloadOffset = appendOffset_ + kRecordHeaderBytes;

    appendRecordBytes(entry.meta, entry.payloadCrc, payload);

    size_t idx = records_.size();
    records_.push_back(entry);
    index_[{meta.locationId, meta.band}].push_back(idx);
    return idx;
}

const RecordEntry &
Archive::record(size_t idx) const
{
    EP_ASSERT(idx < records_.size(), "record index %zu out of range "
              "(%zu records)", idx, records_.size());
    return records_[idx];
}

std::vector<size_t>
Archive::chain(int locationId, int band) const
{
    auto it = index_.find({locationId, band});
    return it == index_.end() ? std::vector<size_t>() : it->second;
}

std::vector<std::pair<int, int>>
Archive::keys() const
{
    std::vector<std::pair<int, int>> out;
    out.reserve(index_.size());
    for (const auto &[key, ids] : index_)
        out.push_back(key);
    return out;
}

std::vector<uint8_t>
Archive::loadPayload(size_t idx) const
{
    const RecordEntry &entry = record(idx);
    if (path_.empty())
        return memPayloads_[idx];

    std::vector<uint8_t> payload(entry.meta.payloadBytes);
    // A private handle per call keeps concurrent tile-server reads
    // free of shared seek state.
    std::FILE *f = std::fopen(path_.c_str(), "rb");
    if (!f)
        fatal("cannot open archive '%s'", path_.c_str());
    bool ok = std::fseek(f, static_cast<long>(entry.payloadOffset),
                         SEEK_SET) == 0 &&
              (payload.empty() ||
               std::fread(payload.data(), 1, payload.size(), f) ==
                   payload.size());
    std::fclose(f);
    if (!ok)
        fatal("archive '%s': record %zu payload unreadable",
              path_.c_str(), idx);
    if (crc32(payload.data(), payload.size()) != entry.payloadCrc)
        fatal("archive '%s': record %zu payload CRC mismatch",
              path_.c_str(), idx);
    return payload;
}

uint64_t
Archive::compact()
{
    // Keep, per (location, band), everything captured at or after the
    // latest full download. "Latest" is by capture day, not append
    // order: ARQ can complete downloads out of capture order, so a
    // small delta captured after a big full download may sit *before*
    // it in the file.
    std::vector<uint8_t> keep(records_.size(), 1);
    for (const auto &[key, ids] : index_) {
        double lastFullDay = -std::numeric_limits<double>::infinity();
        for (size_t id : ids)
            if (records_[id].meta.fullDownload)
                lastFullDay = std::max(lastFullDay,
                                       records_[id].meta.captureDay);
        for (size_t id : ids)
            if (records_[id].meta.captureDay < lastFullDay)
                keep[id] = 0;
    }

    uint64_t before = fileBytes();
    std::vector<std::vector<uint8_t>> payloads;
    payloads.reserve(records_.size());
    for (size_t i = 0; i < records_.size(); ++i)
        payloads.push_back(keep[i] ? loadPayload(i)
                                   : std::vector<uint8_t>());
    std::vector<RecordEntry> oldRecords = std::move(records_);

    // Reset and re-append the surviving records in order.
    records_.clear();
    index_.clear();
    memPayloads_.clear();
    appendOffset_ = kFileHeaderBytes;
    if (!path_.empty()) {
        std::FILE *f = std::fopen(path_.c_str(), "wb");
        if (!f)
            fatal("cannot rewrite archive '%s'", path_.c_str());
        std::vector<uint8_t> header;
        appendPod(header, kFileMagic);
        appendPod(header, kVersion);
        if (std::fwrite(header.data(), 1, header.size(), f) !=
            header.size())
            fatal("cannot write archive header to '%s'", path_.c_str());
        std::fclose(f);
    }
    for (size_t i = 0; i < oldRecords.size(); ++i)
        if (keep[i])
            append(oldRecords[i].meta, payloads[i]);

    scanReport_.recordCount = records_.size();
    scanReport_.validBytes = appendOffset_;
    return before - fileBytes();
}

uint64_t
Archive::fileBytes() const
{
    return appendOffset_;
}

} // namespace earthplus::ground
