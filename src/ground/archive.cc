#include "ground/archive.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

#include "ground/crc32.hh"
#include "util/bytes.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

#if defined(__unix__) || defined(__APPLE__)
#define EARTHPLUS_ARCHIVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define EARTHPLUS_ARCHIVE_MMAP 0
#endif

// Hosts where a MAP_SHARED mapping is documented to see file growth
// within the mapped range (Linux, Darwin). Elsewhere POSIX leaves it
// unspecified, so mappings are sized to the file and remapped on
// growth instead of over-mapped.
#if defined(__linux__) || defined(__APPLE__)
#define EARTHPLUS_ARCHIVE_MMAP_GROWS 1
#else
#define EARTHPLUS_ARCHIVE_MMAP_GROWS 0
#endif

namespace earthplus::ground {

namespace fs = std::filesystem;

namespace {

// "EPAR": shard container magic; "EPRC": record magic; "EPSM": the
// sharded-layout manifest magic.
constexpr uint32_t kFileMagic = 0x52415045;
constexpr uint32_t kRecordMagic = 0x43525045;
constexpr uint32_t kManifestMagic = 0x4D535045;
constexpr uint32_t kVersion = 1;

constexpr size_t kFileHeaderBytes = 8;
/** magic + headerCrc + 4 u32 + 2 f64 + u64 + u32. */
constexpr size_t kRecordHeaderBytes = 52;

constexpr size_t kManifestBytes = 12;
constexpr const char *kManifestName = "MANIFEST";

using util::appendPod;
using util::readPodAt;

/** Record flag bits. */
constexpr uint32_t kFlagFullDownload = 1u << 0;
constexpr uint32_t kFlagHasReference = 1u << 1;

/**
 * Archive metrics, resolved once per process. Registry entries are
 * leaked, so the references outlive every Archive instance.
 */
struct ArchiveMetrics
{
    telemetry::Counter &appends =
        telemetry::counter("archive.appends");
    telemetry::Counter &appendBytes =
        telemetry::counter("archive.append_bytes");
    telemetry::Counter &payloadViews =
        telemetry::counter("archive.payload_views");
    telemetry::Counter &bytesMapped =
        telemetry::counter("archive.bytes_mapped");
    telemetry::Histogram &shardLockWaitNs =
        telemetry::histogram("archive.shard_lock_wait_ns");
};

ArchiveMetrics &
archiveMetrics()
{
    static ArchiveMetrics m;
    return m;
}

/** Locks a shard mutex, recording the acquisition wait. */
std::unique_lock<std::mutex>
lockShardTimed(std::mutex &mutex)
{
    if (!telemetry::metricsEnabled())
        return std::unique_lock<std::mutex>(mutex);
    uint64_t t0 = telemetry::nowNanos();
    std::unique_lock<std::mutex> lock(mutex);
    archiveMetrics().shardLockWaitNs.record(telemetry::nowNanos() -
                                            t0);
    return lock;
}

/**
 * Seek with a 64-bit offset. std::fseek takes a long, which is 32
 * bits on LLP64 hosts — exactly the hosts whose reads always go
 * through stdio (mmap is compiled out there) — so shards past 2 GiB
 * would silently seek to a wrapped offset.
 */
bool
seekTo(std::FILE *f, uint64_t offset)
{
#if EARTHPLUS_ARCHIVE_MMAP
    return ::fseeko(f, static_cast<off_t>(offset), SEEK_SET) == 0;
#elif defined(_WIN32)
    return ::_fseeki64(f, static_cast<long long>(offset), SEEK_SET) == 0;
#else
    if (offset > static_cast<uint64_t>(std::numeric_limits<long>::max()))
        return false;
    return std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
#endif
}

/**
 * Serialize a record header. The header CRC covers every field after
 * itself, so any bit flip in the metadata is caught by the scan.
 */
std::vector<uint8_t>
recordHeaderBytes(const RecordMeta &meta, uint32_t payloadCrc)
{
    std::vector<uint8_t> body;
    body.reserve(kRecordHeaderBytes - 8);
    appendPod(body, static_cast<uint32_t>(meta.locationId));
    appendPod(body, static_cast<uint32_t>(meta.satelliteId));
    appendPod(body, static_cast<uint32_t>(meta.band));
    uint32_t flags = (meta.fullDownload ? kFlagFullDownload : 0u) |
                     (meta.referenceDay >= 0.0 ? kFlagHasReference : 0u);
    appendPod(body, flags);
    appendPod(body, meta.captureDay);
    appendPod(body, meta.referenceDay >= 0.0 ? meta.referenceDay : 0.0);
    appendPod(body, meta.payloadBytes);
    appendPod(body, payloadCrc);

    std::vector<uint8_t> out;
    out.reserve(kRecordHeaderBytes);
    appendPod(out, kRecordMagic);
    appendPod(out, crc32(body.data(), body.size()));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

/** Parse + validate a record header; false on any inconsistency. */
bool
parseRecordHeader(const uint8_t *buf, RecordEntry &entry)
{
    if (readPodAt<uint32_t>(buf, 0) != kRecordMagic)
        return false;
    uint32_t headerCrc = readPodAt<uint32_t>(buf, 4);
    if (crc32(buf + 8, kRecordHeaderBytes - 8) != headerCrc)
        return false;
    RecordMeta m;
    m.locationId = static_cast<int>(readPodAt<uint32_t>(buf, 8));
    m.satelliteId = static_cast<int>(readPodAt<uint32_t>(buf, 12));
    m.band = static_cast<int>(readPodAt<uint32_t>(buf, 16));
    uint32_t flags = readPodAt<uint32_t>(buf, 20);
    m.fullDownload = (flags & kFlagFullDownload) != 0;
    m.captureDay = readPodAt<double>(buf, 24);
    double refDay = readPodAt<double>(buf, 32);
    m.referenceDay = (flags & kFlagHasReference) ? refDay : -1.0;
    m.payloadBytes = readPodAt<uint64_t>(buf, 40);
    entry.meta = m;
    entry.payloadCrc = readPodAt<uint32_t>(buf, 48);
    return true;
}

/** Create an empty container file holding just the file header. */
void
writeContainerHeader(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        fatal("cannot create archive shard '%s'", path.c_str());
    std::vector<uint8_t> header;
    appendPod(header, kFileMagic);
    appendPod(header, kVersion);
    if (std::fwrite(header.data(), 1, header.size(), f) != header.size())
        fatal("cannot write shard header to '%s'", path.c_str());
    std::fclose(f);
}

/**
 * Scan one container file (a shard, or a legacy single-file archive),
 * recovering the valid record prefix. A truncated or corrupt tail
 * stops the scan; when `rewriteTail` is set the garbage is cut off so
 * the next append starts on a clean tail.
 */
ScanReport
scanContainerFile(const std::string &path, std::vector<RecordEntry> &out,
                  bool rewriteTail)
{
    ScanReport report;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open archive container '%s'", path.c_str());

    uint8_t fileHeader[kFileHeaderBytes];
    if (std::fread(fileHeader, 1, kFileHeaderBytes, f) !=
            kFileHeaderBytes ||
        readPodAt<uint32_t>(fileHeader, 0) != kFileMagic)
        fatal("'%s' is not an Earth+ archive container", path.c_str());
    uint32_t version = readPodAt<uint32_t>(fileHeader, 4);
    if (version != kVersion)
        fatal("archive container '%s' has unsupported version %u",
              path.c_str(), version);

    // Scan records until the end of the file or the first corrupt /
    // truncated record; everything before it stays usable.
    uint64_t pos = kFileHeaderBytes;
    for (;;) {
        uint8_t buf[kRecordHeaderBytes];
        if (!seekTo(f, pos))
            break;
        size_t got = std::fread(buf, 1, kRecordHeaderBytes, f);
        if (got == 0)
            break; // clean end of file
        if (got < kRecordHeaderBytes) {
            report.truncatedTail = true;
            break;
        }
        RecordEntry entry;
        if (!parseRecordHeader(buf, entry)) {
            report.truncatedTail = true;
            break;
        }
        entry.payloadOffset = pos + kRecordHeaderBytes;
        // The payload must fit in the file and match its CRC; a bad
        // tail payload means the append was cut short.
        std::vector<uint8_t> payload(entry.meta.payloadBytes);
        size_t gotPayload = payload.empty()
            ? 0
            : std::fread(payload.data(), 1, payload.size(), f);
        if (gotPayload != payload.size() ||
            crc32(payload.data(), payload.size()) != entry.payloadCrc) {
            report.truncatedTail = true;
            break;
        }
        out.push_back(entry);
        pos += kRecordHeaderBytes + entry.meta.payloadBytes;
    }
    std::fclose(f);

    report.recordCount = out.size();
    report.validBytes = pos;
    if (report.truncatedTail && rewriteTail) {
        // Drop the garbage so the next append starts on a clean tail.
        // resize_file is one metadata operation: the valid prefix is
        // never rewritten, so a crash here cannot lose it.
        warn("archive container '%s': discarding corrupt tail after "
             "%llu bytes (%zu records recovered)", path.c_str(),
             static_cast<unsigned long long>(pos), out.size());
        std::error_code ec;
        fs::resize_file(path, pos, ec);
        if (ec)
            fatal("cannot truncate archive container '%s': %s",
                  path.c_str(), ec.message().c_str());
    }
    return report;
}

/** Append one record's header + payload at `offset` in `path`. */
void
appendRecordToFile(const std::string &path, uint64_t offset,
                   const RecordMeta &meta, uint32_t payloadCrc,
                   const std::vector<uint8_t> &payload)
{
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    if (!f)
        fatal("cannot open archive shard '%s' for append", path.c_str());
    std::vector<uint8_t> header = recordHeaderBytes(meta, payloadCrc);
    bool ok =
        seekTo(f, offset) &&
        std::fwrite(header.data(), 1, header.size(), f) == header.size() &&
        (payload.empty() ||
         std::fwrite(payload.data(), 1, payload.size(), f) ==
             payload.size());
    std::fclose(f);
    if (!ok)
        fatal("append to archive shard '%s' failed", path.c_str());
}

/** Read `size` bytes at `offset` from `path` (stdio fallback path). */
std::vector<uint8_t>
readFileRange(const std::string &path, uint64_t offset, size_t size)
{
    std::vector<uint8_t> bytes(size);
    // A private handle per call keeps concurrent reads free of shared
    // seek state.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open archive shard '%s'", path.c_str());
    bool ok = seekTo(f, offset) &&
              (bytes.empty() ||
               std::fread(bytes.data(), 1, bytes.size(), f) ==
                   bytes.size());
    std::fclose(f);
    if (!ok)
        fatal("archive shard '%s': range [%llu, +%zu) unreadable",
              path.c_str(), static_cast<unsigned long long>(offset),
              size);
    return bytes;
}

/** Shard container file name for shard `idx`. */
std::string
shardFileName(const std::string &dir, int idx)
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%03d.epar", idx);
    return (fs::path(dir) / name).string();
}

/** True when `path` is a pre-sharding single-file archive. */
bool
isLegacyArchiveFile(const std::string &path)
{
    std::error_code ec;
    if (!fs::is_regular_file(path, ec))
        return false;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    uint8_t magic[4] = {0, 0, 0, 0};
    size_t got = std::fread(magic, 1, sizeof(magic), f);
    std::fclose(f);
    return got == sizeof(magic) &&
           readPodAt<uint32_t>(magic, 0) == kFileMagic;
}

} // anonymous namespace

Archive::Archive(const std::string &path, int shardCount)
    : path_(path)
{
    int shards = shardCount > 0 ? shardCount : kDefaultShardCount;
    // The reopen path rejects absurd manifest counts; enforce the
    // same bound at creation time, where the caller can still fix it.
    if (shards > 4096)
        fatal("archive '%s': shard count %d exceeds the 4096 cap",
              path_.c_str(), shards);
    if (!path_.empty()) {
        recoverInterruptedMigration();
        if (isLegacyArchiveFile(path_)) {
            migrateLegacyFile(shards);
            return;
        }
    }
    openShards(shards);
}

Archive::~Archive()
{
#if EARTHPLUS_ARCHIVE_MMAP
    for (auto &shard : shards_) {
        if (shard->mapAddr)
            ::munmap(const_cast<uint8_t *>(shard->mapAddr),
                     shard->mapLen);
        for (auto &[addr, len] : shard->retired)
            ::munmap(const_cast<uint8_t *>(addr), len);
    }
#endif
}

int
Archive::shardForLocation(int locationId) const
{
    // Stable 64-bit mix (first half of the MurmurHash3 fmix64
    // finalizer; docs/ARCHITECTURE.md spells out the exact formula):
    // the mapping is part of the on-disk layout, so it must not
    // depend on std::hash.
    uint64_t h = static_cast<uint32_t>(locationId);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<int>(h % shards_.size());
}

void
Archive::openShards(int shardCount)
{
    bool manifestExisted = false;
    if (!path_.empty()) {
        std::error_code ec;
        fs::create_directories(path_, ec);
        if (ec)
            fatal("cannot create archive directory '%s': %s",
                  path_.c_str(), ec.message().c_str());

        // The manifest pins the shard count: the location -> shard
        // mapping is modular, so reopening with a different count
        // would split chains across shards.
        std::string manifestPath =
            (fs::path(path_) / kManifestName).string();
        if (!fs::exists(manifestPath)) {
            // Shard files without their manifest: the shard count (and
            // with it the location -> shard mapping) is unknown, and
            // guessing would silently split every chain. Refuse if ANY
            // shard file is present.
            for (const auto &entry : fs::directory_iterator(path_)) {
                std::string name = entry.path().filename().string();
                if (name.rfind("shard-", 0) == 0 &&
                    name.size() > 5 &&
                    name.substr(name.size() - 5) == ".epar")
                    fatal("archive '%s' has shard files but no "
                          "manifest — restore '%s' or rebuild the "
                          "archive", path_.c_str(),
                          manifestPath.c_str());
            }
        }
        if (fs::exists(manifestPath)) {
            manifestExisted = true;
            std::vector<uint8_t> m =
                readFileRange(manifestPath, 0, kManifestBytes);
            if (readPodAt<uint32_t>(m.data(), 0) != kManifestMagic)
                fatal("'%s' is not an Earth+ archive manifest",
                      manifestPath.c_str());
            uint32_t version = readPodAt<uint32_t>(m.data(), 4);
            if (version != kVersion)
                fatal("archive manifest '%s' has unsupported version %u",
                      manifestPath.c_str(), version);
            uint32_t count = readPodAt<uint32_t>(m.data(), 8);
            if (count == 0 || count > 4096)
                fatal("archive manifest '%s' has absurd shard count %u",
                      manifestPath.c_str(), count);
            shardCount = static_cast<int>(count);
        } else {
            // Create the shard containers BEFORE the manifest lands:
            // the manifest's existence is the "this archive was fully
            // initialized" marker, so a crash in between leaves either
            // no manifest (re-initialized next open) or a complete
            // layout — never a manifest whose missing shard files
            // would read as data loss.
            for (int s = 0; s < shardCount; ++s) {
                std::string shardPath = shardFileName(path_, s);
                if (!fs::exists(shardPath))
                    writeContainerHeader(shardPath);
            }
            // Write-temp-then-rename: a crash mid-write must not
            // leave a partial manifest that wedges every later open.
            std::vector<uint8_t> m;
            appendPod(m, kManifestMagic);
            appendPod(m, kVersion);
            appendPod(m, static_cast<uint32_t>(shardCount));
            std::string tmpPath = manifestPath + ".tmp";
            std::FILE *f = std::fopen(tmpPath.c_str(), "wb");
            if (!f || std::fwrite(m.data(), 1, m.size(), f) != m.size())
                fatal("cannot write archive manifest '%s'",
                      tmpPath.c_str());
            std::fclose(f);
            std::error_code ec;
            fs::rename(tmpPath, manifestPath, ec);
            if (ec)
                fatal("cannot move archive manifest into place at "
                      "'%s': %s", manifestPath.c_str(),
                      ec.message().c_str());
        }
    }

    shards_.clear();
    shards_.reserve(static_cast<size_t>(shardCount));
    for (int s = 0; s < shardCount; ++s) {
        auto shard = std::make_unique<Shard>();
        if (!path_.empty()) {
            shard->path = shardFileName(path_, s);
            if (!fs::exists(shard->path)) {
                // In a pre-existing archive a missing shard file is
                // always data loss (its chains are gone), never a
                // fresh start — recreate it so the archive stays
                // usable, but say so.
                if (manifestExisted)
                    warn("archive '%s': shard file '%s' is missing — "
                         "chains stored in it are lost; recreating "
                         "empty", path_.c_str(), shard->path.c_str());
                writeContainerHeader(shard->path);
            }
        }
        shard->appendOffset = kFileHeaderBytes;
        shard->scan.validBytes = shard->appendOffset;
        shards_.push_back(std::move(shard));
    }

    if (path_.empty()) {
        scanReport_.validBytes =
            kFileHeaderBytes * static_cast<uint64_t>(shardCount);
        return;
    }

    // Scan every shard, then interleave the per-shard records into one
    // global append order. Within a shard, file order is append order;
    // across shards the original interleaving is unrecoverable (and
    // irrelevant — chains never span shards), so shards are replayed
    // in index order, records sorted per (location, band) by the
    // consumers that need day order.
    scanReport_ = ScanReport{};
    for (size_t s = 0; s < shards_.size(); ++s) {
        Shard &shard = *shards_[s];
        std::vector<RecordEntry> entries;
        shard.scan = scanContainerFile(shard.path, entries, true);
        shard.appendOffset = shard.scan.validBytes;
        for (const RecordEntry &entry : entries) {
            uint32_t local = static_cast<uint32_t>(shard.records.size());
            shard.records.push_back(entry);
            size_t gid = globalRecords_.size();
            globalRecords_.push_back({static_cast<uint32_t>(s), local});
            shard.index[{entry.meta.locationId, entry.meta.band}]
                .push_back(gid);
        }
        scanReport_.recordCount += shard.scan.recordCount;
        scanReport_.validBytes += shard.scan.validBytes;
        scanReport_.truncatedTail |= shard.scan.truncatedTail;
    }
}

void
Archive::recoverInterruptedMigration()
{
    // Finish (or clean up after) a legacy migration that crashed
    // between steps. The migration sequence is: replay into
    // '<path>.migrating' (legacy file stays authoritative at <path>),
    // rename <path> -> '<path>.legacy-done', rename the staging
    // directory into place, remove the aside file. A crash before the
    // first rename leaves the legacy file authoritative (the stale
    // staging directory is rebuilt); a crash between the renames is
    // completed here; a leftover aside file after a completed swap is
    // removed.
    std::string stagingPath = path_ + ".migrating";
    std::string asidePath = path_ + ".legacy-done";
    std::error_code ec;
    if (!fs::exists(path_, ec) && fs::exists(asidePath, ec)) {
        if (!fs::exists(stagingPath, ec))
            fatal("archive '%s': interrupted migration left only '%s' "
                  "— recover it manually", path_.c_str(),
                  asidePath.c_str());
        warn("archive '%s': completing interrupted legacy migration",
             path_.c_str());
        fs::rename(stagingPath, path_, ec);
        if (ec)
            fatal("cannot finish migration of archive '%s': %s",
                  path_.c_str(), ec.message().c_str());
    }
    if (fs::exists(path_, ec) && fs::exists(asidePath, ec)) {
        fs::remove(asidePath, ec);
        if (ec)
            warn("cannot remove migrated legacy archive '%s': %s",
                 asidePath.c_str(), ec.message().c_str());
    }
}

void
Archive::migrateLegacyFile(int shardCount)
{
    // One-time migration of a pre-sharding single-file archive. The
    // legacy file stays authoritative at path_ until a complete
    // sharded replica exists: records are replayed into a staging
    // directory first, then swapped into place with two renames (see
    // recoverInterruptedMigration() for the crash story).
    std::string stagingPath = path_ + ".migrating";
    std::string asidePath = path_ + ".legacy-done";
    std::error_code ec;
    fs::remove_all(stagingPath, ec); // stale partial replay, if any

    std::vector<RecordEntry> entries;
    ScanReport legacyScan = scanContainerFile(path_, entries, false);
    {
        Archive staging(stagingPath, shardCount);
        for (const RecordEntry &entry : entries) {
            std::vector<uint8_t> payload = readFileRange(
                path_, entry.payloadOffset,
                static_cast<size_t>(entry.meta.payloadBytes));
            if (crc32(payload.data(), payload.size()) !=
                entry.payloadCrc)
                fatal("legacy archive '%s': payload CRC mismatch "
                      "during migration", path_.c_str());
            staging.append(entry.meta, payload);
        }
    }

    fs::rename(path_, asidePath, ec);
    if (ec)
        fatal("cannot move legacy archive '%s' aside: %s",
              path_.c_str(), ec.message().c_str());
    fs::rename(stagingPath, path_, ec);
    if (ec)
        fatal("cannot move migrated archive into place at '%s': %s",
              path_.c_str(), ec.message().c_str());
    fs::remove(asidePath, ec);
    if (ec)
        warn("cannot remove migrated legacy archive '%s': %s",
             asidePath.c_str(), ec.message().c_str());

    openShards(shardCount);
    scanReport_.migratedLegacy = true;
    scanReport_.truncatedTail |= legacyScan.truncatedTail;
    inform("archive '%s': migrated %zu legacy records into %d shards",
           path_.c_str(), globalRecords_.size(), shardCount);
}

RecordEntry
Archive::writeRecordLocked(Shard &shard, const RecordMeta &meta,
                           const std::vector<uint8_t> &payload)
{
    RecordEntry entry;
    entry.meta = meta;
    entry.meta.payloadBytes = payload.size();
    entry.payloadCrc = crc32(payload.data(), payload.size());
    entry.payloadOffset = shard.appendOffset + kRecordHeaderBytes;
    if (shard.path.empty())
        shard.memPayloads.push_back(payload);
    else
        appendRecordToFile(shard.path, shard.appendOffset, entry.meta,
                           entry.payloadCrc, payload);
    shard.appendOffset += kRecordHeaderBytes + payload.size();
    shard.records.push_back(entry);
    return entry;
}

size_t
Archive::indexRecordLocked(size_t shardIdx, uint32_t local,
                           const RecordMeta &meta)
{
    size_t gid = globalRecords_.size();
    globalRecords_.push_back({static_cast<uint32_t>(shardIdx), local});
    shards_[shardIdx]->index[{meta.locationId, meta.band}]
        .push_back(gid);
    return gid;
}

size_t
Archive::append(const RecordMeta &meta, const std::vector<uint8_t> &payload)
{
    telemetry::TraceSpan span("archive.append", "archive");
    size_t shardIdx =
        static_cast<size_t>(shardForLocation(meta.locationId));
    Shard &shard = *shards_[shardIdx];
    archiveMetrics().appends.add();
    archiveMetrics().appendBytes.add(payload.size());

    std::unique_lock<std::mutex> lock = lockShardTimed(shard.mutex);
    uint32_t local = static_cast<uint32_t>(shard.records.size());
    writeRecordLocked(shard, meta, payload);
    // Shard -> global is the one nesting order everywhere (see
    // compact()), so the global table lock cannot deadlock.
    std::unique_lock<std::shared_mutex> g(globalMutex_);
    return indexRecordLocked(shardIdx, local, meta);
}

size_t
Archive::recordCount() const
{
    std::shared_lock<std::shared_mutex> g(globalMutex_);
    return globalRecords_.size();
}

RecordEntry
Archive::record(size_t idx) const
{
    GlobalRef ref;
    {
        std::shared_lock<std::shared_mutex> g(globalMutex_);
        EP_ASSERT(idx < globalRecords_.size(),
                  "record index %zu out of range (%zu records)", idx,
                  globalRecords_.size());
        ref = globalRecords_[idx];
    }
    Shard &shard = *shards_[ref.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.records[ref.local];
}

std::vector<size_t>
Archive::chain(int locationId, int band) const
{
    const Shard &shard =
        *shards_[static_cast<size_t>(shardForLocation(locationId))];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find({locationId, band});
    return it == shard.index.end() ? std::vector<size_t>() : it->second;
}

std::vector<std::pair<size_t, RecordMeta>>
Archive::chainEntries(int locationId, int band) const
{
    const Shard &shard =
        *shards_[static_cast<size_t>(shardForLocation(locationId))];
    std::vector<std::pair<size_t, RecordMeta>> out;
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find({locationId, band});
    if (it == shard.index.end())
        return out;
    out.reserve(it->second.size());
    // Shard -> global is the nesting order used everywhere.
    std::shared_lock<std::shared_mutex> g(globalMutex_);
    for (size_t gid : it->second) {
        const GlobalRef &ref = globalRecords_[gid];
        out.emplace_back(gid, shard.records[ref.local].meta);
    }
    return out;
}

std::vector<std::pair<int, int>>
Archive::keys() const
{
    std::vector<std::pair<int, int>> out;
    for (const auto &shardPtr : shards_) {
        std::lock_guard<std::mutex> lock(shardPtr->mutex);
        for (const auto &[key, ids] : shardPtr->index)
            out.push_back(key);
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
Archive::ensureMapped(Shard &shard, uint64_t end) const
{
#if EARTHPLUS_ARCHIVE_MMAP
    // Retired mappings are retained for the archive's lifetime (views
    // may aim into them). With doubling growth the list stays tiny;
    // on hosts mapped exactly to file size it grows per remap, so cap
    // it and degrade to the stdio fallback instead of accumulating
    // mappings without bound.
    constexpr size_t kMaxRetiredMappings = 64;
    if (shard.mapAddr && end <= shard.mapValidBytes)
        return true;
    if (shard.retired.size() >= kMaxRetiredMappings)
        return false;
#if EARTHPLUS_ARCHIVE_MMAP_GROWS
    // Growth-visible hosts: the mapping may extend past the file, and
    // pages become readable as appends grow the file underneath it.
    // Before touching pages past the size observed at map time,
    // re-validate that the file has actually grown to cover them.
    if (shard.mapAddr && end <= shard.mapLen) {
        struct stat st;
        if (::stat(shard.path.c_str(), &st) != 0 ||
            static_cast<uint64_t>(st.st_size) < end)
            return false;
        shard.mapValidBytes =
            std::min<uint64_t>(static_cast<uint64_t>(st.st_size),
                               shard.mapLen);
        return true;
    }
#endif
    int fd = ::open(shard.path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<uint64_t>(st.st_size) < end) {
        ::close(fd);
        return false;
    }
#if EARTHPLUS_ARCHIVE_MMAP_GROWS
    // Map with doubling growth so the retired-mapping list stays
    // O(log growth) per shard instead of one mapping per growth-read
    // cycle. Reads never pass mapValidBytes, so the excess pages are
    // only touched once the file has grown over them (re-validated
    // above).
    size_t len = std::max(static_cast<size_t>(st.st_size),
                          shard.mapLen * 2);
#else
    // Portability fallback: POSIX leaves references to file regions
    // grown after mmap() unspecified, so map exactly the current size
    // and remap on every growth.
    size_t len = static_cast<size_t>(st.st_size);
#endif
    void *addr = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED)
        return false;
    archiveMetrics().bytesMapped.add(len);
    // Outstanding PayloadViews aim into the old mapping, so it is
    // retired (freed at destruction), never unmapped here.
    if (shard.mapAddr)
        shard.retired.emplace_back(shard.mapAddr, shard.mapLen);
    shard.mapAddr = static_cast<const uint8_t *>(addr);
    shard.mapLen = len;
    shard.mapValidBytes = static_cast<uint64_t>(st.st_size);
    return true;
#else
    (void)shard;
    (void)end;
    return false;
#endif
}

PayloadView
Archive::payloadView(size_t idx) const
{
    telemetry::TraceSpan span("archive.payload_view", "archive");
    archiveMetrics().payloadViews.add();
    GlobalRef ref;
    {
        std::shared_lock<std::shared_mutex> g(globalMutex_);
        EP_ASSERT(idx < globalRecords_.size(),
                  "record index %zu out of range (%zu records)", idx,
                  globalRecords_.size());
        ref = globalRecords_[idx];
    }
    Shard &shard = *shards_[ref.shard];

    // Only the entry snapshot and the mapping lookup happen under the
    // shard lock; the CRC pass over the payload runs outside it so a
    // cold read of a hot shard does not stall that shard's appends.
    // Everything read after unlock is immutable by construction: a
    // written record's bytes never change, mappings are retired (not
    // unmapped) while the archive lives, and memory-backed payload
    // vectors never move once appended (deque growth keeps elements
    // in place).
    RecordEntry entry;
    const uint8_t *mapped = nullptr;
    {
        std::unique_lock<std::mutex> lock =
            lockShardTimed(shard.mutex);
        entry = shard.records[ref.local];
        if (shard.path.empty()) {
            const std::vector<uint8_t> &bytes =
                shard.memPayloads[ref.local];
            return PayloadView(bytes.data(), bytes.size());
        }
        uint64_t end = entry.payloadOffset + entry.meta.payloadBytes;
        if (ensureMapped(shard, end))
            mapped = shard.mapAddr + entry.payloadOffset;
    }

    size_t size = static_cast<size_t>(entry.meta.payloadBytes);
    if (mapped) {
        if (crc32(mapped, size) != entry.payloadCrc)
            fatal("archive '%s': record %zu payload CRC mismatch",
                  path_.c_str(), idx);
        return PayloadView(mapped, size);
    }
    // Portable fallback: a private stdio read per call (the record's
    // byte range is immutable, so no lock is needed here either).
    std::vector<uint8_t> bytes =
        readFileRange(shard.path, entry.payloadOffset, size);
    if (crc32(bytes.data(), bytes.size()) != entry.payloadCrc)
        fatal("archive '%s': record %zu payload CRC mismatch",
              path_.c_str(), idx);
    return PayloadView(std::move(bytes));
}

std::vector<uint8_t>
Archive::loadPayload(size_t idx) const
{
    return payloadView(idx).toVector();
}

uint64_t
Archive::compact()
{
    // Exclusive over the whole archive: shards in index order, then
    // the global table — the same nesting order append() uses.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto &shard : shards_)
        locks.emplace_back(shard->mutex);
    std::unique_lock<std::shared_mutex> g(globalMutex_);

    // Keep, per (location, band), everything captured at or after the
    // latest full download. "Latest" is by capture day, not append
    // order: ARQ can complete downloads out of capture order, so a
    // small delta captured after a big full download may sit *before*
    // it in the file.
    size_t n = globalRecords_.size();
    std::vector<uint8_t> keep(n, 1);
    auto entryOf = [&](size_t gid) -> const RecordEntry & {
        const GlobalRef &ref = globalRecords_[gid];
        return shards_[ref.shard]->records[ref.local];
    };
    for (const auto &shardPtr : shards_) {
        for (const auto &[key, gids] : shardPtr->index) {
            double lastFullDay =
                -std::numeric_limits<double>::infinity();
            for (size_t gid : gids)
                if (entryOf(gid).meta.fullDownload)
                    lastFullDay = std::max(lastFullDay,
                                           entryOf(gid).meta.captureDay);
            for (size_t gid : gids)
                if (entryOf(gid).meta.captureDay < lastFullDay)
                    keep[gid] = 0;
        }
    }

    uint64_t before = 0;
    for (const auto &shardPtr : shards_)
        before += shardPtr->appendOffset;

    // Pull surviving payloads into memory before the rewrite,
    // verifying each against its stored CRC: a compact must never
    // re-bless rotten bytes with a freshly computed checksum.
    std::vector<std::pair<RecordMeta, std::vector<uint8_t>>> survivors;
    for (size_t gid = 0; gid < n; ++gid) {
        if (!keep[gid])
            continue;
        const GlobalRef &ref = globalRecords_[gid];
        const Shard &shard = *shards_[ref.shard];
        const RecordEntry &entry = shard.records[ref.local];
        std::vector<uint8_t> payload = shard.path.empty()
            ? shard.memPayloads[ref.local]
            : readFileRange(shard.path, entry.payloadOffset,
                            static_cast<size_t>(entry.meta.payloadBytes));
        if (!shard.path.empty() &&
            crc32(payload.data(), payload.size()) != entry.payloadCrc)
            fatal("archive '%s': record %zu payload CRC mismatch "
                  "during compact", path_.c_str(), gid);
        survivors.emplace_back(entry.meta, std::move(payload));
    }

    // Reset every shard. Rewriting a file invalidates the *content*
    // behind its mapping, so the mapping is retired along with any
    // outstanding views (the API contract: compact() invalidates
    // views and indices).
    globalRecords_.clear();
    uint64_t after = 0;
    for (auto &shardPtr : shards_) {
        Shard &shard = *shardPtr;
        shard.records.clear();
        shard.index.clear();
        shard.memPayloads.clear();
        shard.appendOffset = kFileHeaderBytes;
        if (shard.mapAddr) {
            shard.retired.emplace_back(shard.mapAddr, shard.mapLen);
            shard.mapAddr = nullptr;
            shard.mapLen = 0;
            shard.mapValidBytes = 0;
        }
        if (!shard.path.empty())
            writeContainerHeader(shard.path);
    }

    // Replay the survivors in their original global order. Locks are
    // already held, so this writes through the shared append core
    // without re-locking.
    for (auto &[meta, payload] : survivors) {
        size_t shardIdx =
            static_cast<size_t>(shardForLocation(meta.locationId));
        Shard &shard = *shards_[shardIdx];
        uint32_t local = static_cast<uint32_t>(shard.records.size());
        writeRecordLocked(shard, meta, payload);
        indexRecordLocked(shardIdx, local, meta);
    }

    scanReport_.recordCount = globalRecords_.size();
    scanReport_.validBytes = 0;
    // Every shard was just rewritten cleanly, so an open-time
    // truncated tail no longer describes the on-disk state.
    // (migratedLegacy stays: it records how this open started.)
    scanReport_.truncatedTail = false;
    for (const auto &shardPtr : shards_) {
        after += shardPtr->appendOffset;
        scanReport_.validBytes += shardPtr->appendOffset;
    }
    return before - after;
}

uint64_t
Archive::fileBytes() const
{
    uint64_t total = 0;
    for (const auto &shardPtr : shards_) {
        std::lock_guard<std::mutex> lock(shardPtr->mutex);
        total += shardPtr->appendOffset;
    }
    return total;
}

} // namespace earthplus::ground
