#include "ground/archive.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>

#include "codec/codec.hh"
#include "ground/archive_io.hh"
#include "ground/crc32.hh"
#include "util/bytes.hh"
#include "util/logging.hh"
#include "util/telemetry.hh"

#if defined(__unix__) || defined(__APPLE__)
#define EARTHPLUS_ARCHIVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define EARTHPLUS_ARCHIVE_MMAP 0
#endif

// Hosts where a MAP_SHARED mapping is documented to see file growth
// within the mapped range (Linux, Darwin). Elsewhere POSIX leaves it
// unspecified, so mappings are sized to the file and remapped on
// growth instead of over-mapped.
#if defined(__linux__) || defined(__APPLE__)
#define EARTHPLUS_ARCHIVE_MMAP_GROWS 1
#else
#define EARTHPLUS_ARCHIVE_MMAP_GROWS 0
#endif

namespace earthplus::ground {

namespace fs = std::filesystem;

namespace {

// "EPAR": shard container magic; "EPRC": record magic; "EPSM": the
// sharded-layout manifest magic.
constexpr uint32_t kFileMagic = 0x52415045;
constexpr uint32_t kRecordMagic = 0x43525045;
constexpr uint32_t kManifestMagic = 0x4D535045;
constexpr uint32_t kVersion = 1;

constexpr size_t kFileHeaderBytes = 8;
/** magic + headerCrc + 4 u32 + 2 f64 + u64 + u32. */
constexpr size_t kRecordHeaderBytes = 52;

constexpr size_t kManifestBytes = 12;
constexpr const char *kManifestName = "MANIFEST";

using util::appendPod;
using util::readPodAt;

/** Record flag bits. */
constexpr uint32_t kFlagFullDownload = 1u << 0;
constexpr uint32_t kFlagHasReference = 1u << 1;

/**
 * Archive metrics, resolved once per process. Registry entries are
 * leaked, so the references outlive every Archive instance.
 */
struct ArchiveMetrics
{
    telemetry::Counter &appends =
        telemetry::counter("archive.appends");
    telemetry::Counter &appendBytes =
        telemetry::counter("archive.append_bytes");
    telemetry::Counter &payloadViews =
        telemetry::counter("archive.payload_views");
    telemetry::Counter &bytesMapped =
        telemetry::counter("archive.bytes_mapped");
    telemetry::Histogram &shardLockWaitNs =
        telemetry::histogram("archive.shard_lock_wait_ns");
    telemetry::Counter &tailTruncated =
        telemetry::counter("archive.tail_truncated");
    telemetry::Counter &fsyncFailures =
        telemetry::counter("archive.fsync_failures");
    telemetry::Counter &syncs = telemetry::counter("archive.syncs");
};

ArchiveMetrics &
archiveMetrics()
{
    static ArchiveMetrics m;
    return m;
}

/** Locks a shard mutex, recording the acquisition wait. */
std::unique_lock<std::mutex>
lockShardTimed(std::mutex &mutex)
{
    if (!telemetry::metricsEnabled())
        return std::unique_lock<std::mutex>(mutex);
    uint64_t t0 = telemetry::nowNanos();
    std::unique_lock<std::mutex> lock(mutex);
    archiveMetrics().shardLockWaitNs.record(telemetry::nowNanos() -
                                            t0);
    return lock;
}

/**
 * Seek with a 64-bit offset. std::fseek takes a long, which is 32
 * bits on LLP64 hosts — exactly the hosts whose reads always go
 * through stdio (mmap is compiled out there) — so shards past 2 GiB
 * would silently seek to a wrapped offset.
 */
bool
seekTo(std::FILE *f, uint64_t offset)
{
#if EARTHPLUS_ARCHIVE_MMAP
    return ::fseeko(f, static_cast<off_t>(offset), SEEK_SET) == 0;
#elif defined(_WIN32)
    return ::_fseeki64(f, static_cast<long long>(offset), SEEK_SET) == 0;
#else
    if (offset > static_cast<uint64_t>(std::numeric_limits<long>::max()))
        return false;
    return std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0;
#endif
}

/**
 * Serialize a record header. The header CRC covers every field after
 * itself, so any bit flip in the metadata is caught by the scan.
 */
std::vector<uint8_t>
recordHeaderBytes(const RecordMeta &meta, uint32_t payloadCrc)
{
    std::vector<uint8_t> body;
    body.reserve(kRecordHeaderBytes - 8);
    appendPod(body, static_cast<uint32_t>(meta.locationId));
    appendPod(body, static_cast<uint32_t>(meta.satelliteId));
    appendPod(body, static_cast<uint32_t>(meta.band));
    uint32_t flags = (meta.fullDownload ? kFlagFullDownload : 0u) |
                     (meta.referenceDay >= 0.0 ? kFlagHasReference : 0u);
    appendPod(body, flags);
    appendPod(body, meta.captureDay);
    appendPod(body, meta.referenceDay >= 0.0 ? meta.referenceDay : 0.0);
    appendPod(body, meta.payloadBytes);
    appendPod(body, payloadCrc);

    std::vector<uint8_t> out;
    out.reserve(kRecordHeaderBytes);
    appendPod(out, kRecordMagic);
    appendPod(out, crc32(body.data(), body.size()));
    out.insert(out.end(), body.begin(), body.end());
    return out;
}

/** Parse + validate a record header; false on any inconsistency. */
bool
parseRecordHeader(const uint8_t *buf, RecordEntry &entry)
{
    if (readPodAt<uint32_t>(buf, 0) != kRecordMagic)
        return false;
    uint32_t headerCrc = readPodAt<uint32_t>(buf, 4);
    if (crc32(buf + 8, kRecordHeaderBytes - 8) != headerCrc)
        return false;
    RecordMeta m;
    m.locationId = static_cast<int>(readPodAt<uint32_t>(buf, 8));
    m.satelliteId = static_cast<int>(readPodAt<uint32_t>(buf, 12));
    m.band = static_cast<int>(readPodAt<uint32_t>(buf, 16));
    uint32_t flags = readPodAt<uint32_t>(buf, 20);
    m.fullDownload = (flags & kFlagFullDownload) != 0;
    m.captureDay = readPodAt<double>(buf, 24);
    double refDay = readPodAt<double>(buf, 32);
    m.referenceDay = (flags & kFlagHasReference) ? refDay : -1.0;
    m.payloadBytes = readPodAt<uint64_t>(buf, 40);
    entry.meta = m;
    entry.payloadCrc = readPodAt<uint32_t>(buf, 48);
    return true;
}

/** Create an empty container file holding just the file header. */
bool
writeContainerHeader(const std::string &path)
{
    std::vector<uint8_t> header;
    appendPod(header, kFileMagic);
    appendPod(header, kVersion);
    return archive_io::createFile(path, header.data(), header.size());
}

/** Outcome of scanning one container file. */
struct ScanResult
{
    ScanReport report;
    /** OpenErrorKind::None when the scan is usable. */
    OpenErrorKind error = OpenErrorKind::None;
    /** Human-readable detail for a non-None error. */
    std::string detail;
};

/**
 * Scan one container file (a shard, or a legacy single-file archive),
 * recovering the valid record prefix. A *torn-write* tail — one that
 * begins with our own record magic, or is too short to judge — stops
 * the scan; when `rewriteTail` is set that garbage is cut off so the
 * next append starts on a clean tail. A tail that provably was never
 * ours (>= 4 readable bytes with the wrong record magic: a foreign
 * writer grew the shard) is a fail-closed error instead — nothing is
 * truncated, the bytes are preserved for forensics.
 */
ScanResult
scanContainerFile(const std::string &path, std::vector<RecordEntry> &out,
                  bool rewriteTail)
{
    ScanResult result;
    ScanReport &report = result.report;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        // Ghost mode: the file this open "created" was never
        // persisted because the simulated process already died.
        // Present it as the empty container the creator thinks it is.
        if (archive_io::crashed()) {
            report.validBytes = kFileHeaderBytes;
            return result;
        }
        result.error = OpenErrorKind::BadShard;
        result.detail = strfmt("cannot open archive container '%s'",
                               path.c_str());
        return result;
    }

    uint8_t fileHeader[kFileHeaderBytes];
    size_t gotHeader = std::fread(fileHeader, 1, kFileHeaderBytes, f);
    if (gotHeader != kFileHeaderBytes ||
        readPodAt<uint32_t>(fileHeader, 0) != kFileMagic) {
        std::fclose(f);
        // Ghost mode: a container header torn by the simulated crash
        // reads as the empty container its (dead) creator believes it
        // wrote; the discarded ghost instance must not fail the scan.
        if (archive_io::crashed()) {
            report.validBytes = kFileHeaderBytes;
            return result;
        }
        result.error = OpenErrorKind::BadShard;
        result.detail = strfmt(
            "'%s' is not an Earth+ archive container (%s)",
            path.c_str(),
            gotHeader == 0 ? "zero-byte file"
                           : "bad or truncated file header");
        return result;
    }
    uint32_t version = readPodAt<uint32_t>(fileHeader, 4);
    if (version != kVersion) {
        std::fclose(f);
        if (archive_io::crashed()) {
            report.validBytes = kFileHeaderBytes;
            return result;
        }
        result.error = OpenErrorKind::BadShard;
        result.detail =
            strfmt("archive container '%s' has unsupported version %u",
                   path.c_str(), version);
        return result;
    }

    // Scan records until the end of the file or the first corrupt /
    // truncated record; everything before it stays usable.
    uint64_t pos = kFileHeaderBytes;
    bool foreignTail = false;
    for (;;) {
        uint8_t buf[kRecordHeaderBytes];
        if (!seekTo(f, pos))
            break;
        size_t got = std::fread(buf, 1, kRecordHeaderBytes, f);
        if (got == 0)
            break; // clean end of file
        if (got < kRecordHeaderBytes) {
            report.truncatedTail = true;
            foreignTail = got >= 4 &&
                readPodAt<uint32_t>(buf, 0) != kRecordMagic;
            break;
        }
        RecordEntry entry;
        if (!parseRecordHeader(buf, entry)) {
            report.truncatedTail = true;
            // Our own torn header always starts with the record magic
            // (headers are written front-first); anything else is a
            // tail some other writer appended.
            foreignTail = readPodAt<uint32_t>(buf, 0) != kRecordMagic;
            break;
        }
        entry.payloadOffset = pos + kRecordHeaderBytes;
        // The payload must fit in the file and match its CRC; a bad
        // tail payload means the append was cut short.
        std::vector<uint8_t> payload(entry.meta.payloadBytes);
        size_t gotPayload = payload.empty()
            ? 0
            : std::fread(payload.data(), 1, payload.size(), f);
        if (gotPayload != payload.size() ||
            crc32(payload.data(), payload.size()) != entry.payloadCrc) {
            report.truncatedTail = true;
            break;
        }
        out.push_back(entry);
        pos += kRecordHeaderBytes + entry.meta.payloadBytes;
    }
    std::fclose(f);

    report.recordCount = out.size();
    report.validBytes = pos;
    if (foreignTail) {
        result.error = OpenErrorKind::ForeignData;
        result.detail = strfmt(
            "archive container '%s': tail at byte %llu was not "
            "written by this archive (foreign writer?) — refusing to "
            "truncate it", path.c_str(),
            static_cast<unsigned long long>(pos));
        return result;
    }
    if (report.truncatedTail && rewriteTail) {
        // Drop the garbage so the next append starts on a clean tail.
        // The truncate is one metadata operation: the valid prefix is
        // never rewritten, so a crash here cannot lose it.
        warn("archive container '%s': discarding corrupt tail after "
             "%llu bytes (%zu records recovered)", path.c_str(),
             static_cast<unsigned long long>(pos), out.size());
        archiveMetrics().tailTruncated.add();
        if (!archive_io::truncateFile(path, pos)) {
            result.error = OpenErrorKind::Unwritable;
            result.detail =
                strfmt("cannot truncate archive container '%s'",
                       path.c_str());
            return result;
        }
    }
    return result;
}

/**
 * Append one record's header + payload at `offset` in `path`. Header
 * and payload are separate write boundaries, so injected crashes can
 * land between them. False when either write fails.
 */
bool
appendRecordToFile(const std::string &path, uint64_t offset,
                   const RecordMeta &meta, uint32_t payloadCrc,
                   const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> header = recordHeaderBytes(meta, payloadCrc);
    if (!archive_io::writeAt(path, offset, header.data(),
                             header.size()))
        return false;
    return payload.empty() ||
           archive_io::writeAt(path, offset + header.size(),
                               payload.data(), payload.size());
}

/** Read `size` bytes at `offset` from `path` (stdio fallback path). */
std::vector<uint8_t>
readFileRange(const std::string &path, uint64_t offset, size_t size)
{
    std::vector<uint8_t> bytes(size);
    // A private handle per call keeps concurrent reads free of shared
    // seek state.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        fatal("cannot open archive shard '%s'", path.c_str());
    bool ok = seekTo(f, offset) &&
              (bytes.empty() ||
               std::fread(bytes.data(), 1, bytes.size(), f) ==
                   bytes.size());
    std::fclose(f);
    if (!ok)
        fatal("archive shard '%s': range [%llu, +%zu) unreadable",
              path.c_str(), static_cast<unsigned long long>(offset),
              size);
    return bytes;
}

/** Directory holding `path` ("." when the path has no parent). */
std::string
parentDirOf(const std::string &path)
{
    fs::path parent = fs::path(path).parent_path();
    return parent.empty() ? std::string(".") : parent.string();
}

/** Shard container file name for shard `idx`. */
std::string
shardFileName(const std::string &dir, int idx)
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard-%03d.epar", idx);
    return (fs::path(dir) / name).string();
}

/** True when `path` is a pre-sharding single-file archive. */
bool
isLegacyArchiveFile(const std::string &path)
{
    std::error_code ec;
    if (!fs::is_regular_file(path, ec))
        return false;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    uint8_t magic[4] = {0, 0, 0, 0};
    size_t got = std::fread(magic, 1, sizeof(magic), f);
    std::fclose(f);
    return got == sizeof(magic) &&
           readPodAt<uint32_t>(magic, 0) == kFileMagic;
}

} // anonymous namespace

Archive::Archive(const std::string &path, int shardCount)
    : Archive(path,
              [&] {
                  ArchiveOptions o;
                  o.shardCount = shardCount;
                  return o;
              }(),
              nullptr)
{
}

Archive::Archive(const std::string &path, const ArchiveOptions &options)
    : Archive(path, options, nullptr)
{
}

Archive::Archive(const std::string &path, const ArchiveOptions &options,
                 ArchiveOpenError *error)
    : path_(path), options_(options), err_(error)
{
    int shards = options_.shardCount > 0 ? options_.shardCount
                                         : kDefaultShardCount;
    // The reopen path rejects absurd manifest counts; enforce the
    // same bound at creation time, where the caller can still fix it.
    if (shards > 4096) {
        openFail(OpenErrorKind::BadManifest,
                 strfmt("archive '%s': shard count %d exceeds the "
                        "4096 cap", path_.c_str(), shards));
        err_ = nullptr;
        return;
    }
    if (!path_.empty()) {
        if (!recoverInterruptedMigration()) {
            err_ = nullptr;
            return;
        }
        if (archive_io::crashed()) {
            makeGhostShards(shards);
            err_ = nullptr;
            return;
        }
        if (isLegacyArchiveFile(path_)) {
            migrateLegacyFile(shards);
            // A simulated crash mid-migration leaves no usable shard
            // set; degrade to a discardable ghost instance.
            if (shards_.empty() && archive_io::crashed())
                makeGhostShards(shards);
            err_ = nullptr;
            return;
        }
    }
    openShards(shards);
    err_ = nullptr;
}

std::unique_ptr<Archive>
Archive::open(const std::string &path, const ArchiveOptions &options,
              ArchiveOpenError *error)
{
    ArchiveOpenError scratch;
    ArchiveOpenError *slot = error ? error : &scratch;
    slot->kind = OpenErrorKind::None;
    slot->detail.clear();
    std::unique_ptr<Archive> archive(new Archive(path, options, slot));
    if (slot->kind != OpenErrorKind::None)
        return nullptr;
    return archive;
}

bool
Archive::openFail(OpenErrorKind kind, std::string detail)
{
    if (!err_)
        fatal("%s", detail.c_str());
    // First error wins: later cascading failures of the same open
    // would only obscure the root cause.
    if (err_->kind == OpenErrorKind::None) {
        err_->kind = kind;
        err_->detail = std::move(detail);
    }
    return false;
}

void
Archive::makeGhostShards(int shardCount)
{
    // Empty-path shards behave like the memory-backed mode: every
    // later append lands in memory only, which is exactly what a
    // dead process's writes amount to.
    shards_.clear();
    globalRecords_.clear();
    scanReport_ = ScanReport{};
    for (int s = 0; s < shardCount; ++s) {
        auto shard = std::make_unique<Shard>();
        shard->appendOffset = kFileHeaderBytes;
        shard->scan.validBytes = shard->appendOffset;
        shards_.push_back(std::move(shard));
    }
}

Archive::~Archive()
{
#if EARTHPLUS_ARCHIVE_MMAP
    for (auto &shard : shards_) {
        if (shard->mapAddr)
            ::munmap(const_cast<uint8_t *>(shard->mapAddr),
                     shard->mapLen);
        for (auto &[addr, len] : shard->retired)
            ::munmap(const_cast<uint8_t *>(addr), len);
    }
#endif
}

int
Archive::shardForLocation(int locationId) const
{
    // Stable 64-bit mix (first half of the MurmurHash3 fmix64
    // finalizer; docs/ARCHITECTURE.md spells out the exact formula):
    // the mapping is part of the on-disk layout, so it must not
    // depend on std::hash.
    uint64_t h = static_cast<uint32_t>(locationId);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<int>(h % shards_.size());
}

bool
Archive::openShards(int shardCount)
{
    bool manifestExisted = false;
    if (!path_.empty()) {
        std::error_code ec;
        fs::create_directories(path_, ec);
        if (ec)
            return openFail(
                OpenErrorKind::Unwritable,
                strfmt("cannot create archive directory '%s': %s",
                       path_.c_str(), ec.message().c_str()));

        // The manifest pins the shard count: the location -> shard
        // mapping is modular, so reopening with a different count
        // would split chains across shards.
        std::string manifestPath =
            (fs::path(path_) / kManifestName).string();
        if (!fs::exists(manifestPath)) {
            // Shard files without their manifest: if any shard can
            // hold records, the shard count (and with it the
            // location -> shard mapping) is unknown and guessing
            // would silently split every chain — refuse. Header-sized
            // or smaller files are debris from a creation that
            // crashed before its manifest landed (shard containers
            // are written first, appends only start once the manifest
            // exists): recordless by construction, so remove them and
            // re-initialize.
            std::vector<std::string> creationDebris;
            for (const auto &entry : fs::directory_iterator(path_)) {
                std::string name = entry.path().filename().string();
                if (name.rfind("shard-", 0) != 0 ||
                    name.size() <= 5 ||
                    name.substr(name.size() - 5) != ".epar")
                    continue;
                std::error_code sec;
                uint64_t size = fs::file_size(entry.path(), sec);
                if (!sec && size <= kFileHeaderBytes) {
                    creationDebris.push_back(entry.path().string());
                    continue;
                }
                return openFail(
                    OpenErrorKind::MissingManifest,
                    strfmt("archive '%s' has shard files but no "
                           "manifest — restore '%s' or rebuild "
                           "the archive", path_.c_str(),
                           manifestPath.c_str()));
            }
            for (const std::string &p : creationDebris)
                archive_io::removeFile(p);
        } else {
            // An interrupted compact() can leave staged shard
            // rewrites behind; they were never renamed into place, so
            // they are dead weight, never data.
            for (const auto &entry : fs::directory_iterator(path_)) {
                std::string name = entry.path().filename().string();
                if (name.rfind("shard-", 0) == 0 &&
                    name.size() > 9 &&
                    name.substr(name.size() - 9) == ".epar.tmp")
                    archive_io::removeFile(entry.path().string());
            }
        }
        if (fs::exists(manifestPath)) {
            manifestExisted = true;
            std::vector<uint8_t> m(kManifestBytes);
            std::FILE *mf = std::fopen(manifestPath.c_str(), "rb");
            bool readOk = mf &&
                std::fread(m.data(), 1, m.size(), mf) == m.size();
            if (mf)
                std::fclose(mf);
            if (!readOk)
                return openFail(
                    OpenErrorKind::BadManifest,
                    strfmt("archive manifest '%s' is unreadable or "
                           "truncated", manifestPath.c_str()));
            if (readPodAt<uint32_t>(m.data(), 0) != kManifestMagic)
                return openFail(
                    OpenErrorKind::BadManifest,
                    strfmt("'%s' is not an Earth+ archive manifest",
                           manifestPath.c_str()));
            uint32_t version = readPodAt<uint32_t>(m.data(), 4);
            if (version != kVersion)
                return openFail(
                    OpenErrorKind::BadManifest,
                    strfmt("archive manifest '%s' has unsupported "
                           "version %u", manifestPath.c_str(),
                           version));
            uint32_t count = readPodAt<uint32_t>(m.data(), 8);
            if (count == 0 || count > 4096)
                return openFail(
                    OpenErrorKind::BadManifest,
                    strfmt("archive manifest '%s' has absurd shard "
                           "count %u", manifestPath.c_str(), count));
            shardCount = static_cast<int>(count);
        } else {
            // Create the shard containers BEFORE the manifest lands:
            // the manifest's existence is the "this archive was fully
            // initialized" marker, so a crash in between leaves either
            // no manifest (re-initialized next open) or a complete
            // layout — never a manifest whose missing shard files
            // would read as data loss.
            for (int s = 0; s < shardCount; ++s) {
                std::string shardPath = shardFileName(path_, s);
                if (!fs::exists(shardPath) &&
                    !writeContainerHeader(shardPath))
                    return openFail(
                        OpenErrorKind::Unwritable,
                        strfmt("cannot create archive shard '%s'",
                               shardPath.c_str()));
            }
            // Write-temp, fsync, rename, fsync-dir: a crash anywhere
            // in the sequence leaves either no manifest (the archive
            // re-initializes on the next open) or a durable complete
            // one — never a partial manifest that wedges every later
            // open.
            std::vector<uint8_t> m;
            appendPod(m, kManifestMagic);
            appendPod(m, kVersion);
            appendPod(m, static_cast<uint32_t>(shardCount));
            std::string tmpPath = manifestPath + ".tmp";
            if (!archive_io::createFile(tmpPath, m.data(), m.size()))
                return openFail(
                    OpenErrorKind::Unwritable,
                    strfmt("cannot write archive manifest '%s'",
                           tmpPath.c_str()));
            if (!archive_io::syncFile(tmpPath)) {
                archiveMetrics().fsyncFailures.add();
                warn("archive '%s': cannot fsync manifest before "
                     "rename", path_.c_str());
            }
            if (!archive_io::renameFile(tmpPath, manifestPath))
                return openFail(
                    OpenErrorKind::Unwritable,
                    strfmt("cannot move archive manifest into place "
                           "at '%s'", manifestPath.c_str()));
            if (!archive_io::syncDir(path_)) {
                archiveMetrics().fsyncFailures.add();
                warn("archive '%s': cannot fsync directory after "
                     "manifest rename", path_.c_str());
            }
        }
    }

    shards_.clear();
    shards_.reserve(static_cast<size_t>(shardCount));
    for (int s = 0; s < shardCount; ++s) {
        auto shard = std::make_unique<Shard>();
        if (!path_.empty()) {
            shard->path = shardFileName(path_, s);
            if (!fs::exists(shard->path)) {
                // A manifest referencing a missing shard file is data
                // loss (every chain stored in it is gone). Silently
                // recreating it empty would bless that loss, so the
                // open fails closed; a fresh-creation race (no
                // manifest yet) recreates freely above.
                if (manifestExisted && !archive_io::crashed())
                    return openFail(
                        OpenErrorKind::MissingShard,
                        strfmt("archive '%s': manifest references "
                               "missing shard file '%s' — its chains "
                               "are lost; restore the file or rebuild "
                               "the archive", path_.c_str(),
                               shard->path.c_str()));
                if (!writeContainerHeader(shard->path))
                    return openFail(
                        OpenErrorKind::Unwritable,
                        strfmt("cannot create archive shard '%s'",
                               shard->path.c_str()));
            }
        }
        shard->appendOffset = kFileHeaderBytes;
        shard->scan.validBytes = shard->appendOffset;
        shards_.push_back(std::move(shard));
    }

    if (path_.empty()) {
        scanReport_.validBytes =
            kFileHeaderBytes * static_cast<uint64_t>(shardCount);
        return true;
    }

    // Scan every shard, then interleave the per-shard records into one
    // global append order. Within a shard, file order is append order;
    // across shards the original interleaving is unrecoverable (and
    // irrelevant — chains never span shards), so shards are replayed
    // in index order, records sorted per (location, band) by the
    // consumers that need day order.
    scanReport_ = ScanReport{};
    for (size_t s = 0; s < shards_.size(); ++s) {
        Shard &shard = *shards_[s];
        std::vector<RecordEntry> entries;
        ScanResult scan = scanContainerFile(shard.path, entries, true);
        if (scan.error != OpenErrorKind::None)
            return openFail(scan.error, std::move(scan.detail));
        shard.scan = scan.report;
        shard.appendOffset = shard.scan.validBytes;
        for (const RecordEntry &entry : entries) {
            uint32_t local = static_cast<uint32_t>(shard.records.size());
            shard.records.push_back(entry);
            size_t gid = globalRecords_.size();
            globalRecords_.push_back({static_cast<uint32_t>(s), local});
            shard.index[{entry.meta.locationId, entry.meta.band}]
                .push_back(gid);
        }
        scanReport_.recordCount += shard.scan.recordCount;
        scanReport_.validBytes += shard.scan.validBytes;
        scanReport_.truncatedTail |= shard.scan.truncatedTail;
    }
    return true;
}

bool
Archive::recoverInterruptedMigration()
{
    // Finish (or clean up after) a legacy migration that crashed
    // between steps. The migration sequence is: replay into
    // '<path>.migrating' (legacy file stays authoritative at <path>),
    // rename <path> -> '<path>.legacy-done', rename the staging
    // directory into place, remove the aside file. A crash before the
    // first rename leaves the legacy file authoritative (the stale
    // staging directory is rebuilt); a crash between the renames is
    // completed here; a leftover aside file after a completed swap is
    // removed.
    std::string stagingPath = path_ + ".migrating";
    std::string asidePath = path_ + ".legacy-done";
    std::error_code ec;
    if (!fs::exists(path_, ec) && fs::exists(asidePath, ec)) {
        if (!fs::exists(stagingPath, ec))
            return openFail(
                OpenErrorKind::BadMigration,
                strfmt("archive '%s': interrupted migration left only "
                       "'%s' — recover it manually", path_.c_str(),
                       asidePath.c_str()));
        warn("archive '%s': completing interrupted legacy migration",
             path_.c_str());
        if (!archive_io::renameFile(stagingPath, path_))
            return openFail(
                OpenErrorKind::BadMigration,
                strfmt("cannot finish migration of archive '%s'",
                       path_.c_str()));
        archive_io::syncDir(parentDirOf(path_));
    }
    if (fs::exists(path_, ec) && fs::exists(asidePath, ec)) {
        if (!archive_io::removeFile(asidePath))
            warn("cannot remove migrated legacy archive '%s'",
                 asidePath.c_str());
    }
    return true;
}

bool
Archive::migrateLegacyFile(int shardCount)
{
    // One-time migration of a pre-sharding single-file archive. The
    // legacy file stays authoritative at path_ until a complete
    // sharded replica exists: records are replayed into a staging
    // directory first, then swapped into place with two renames (see
    // recoverInterruptedMigration() for the crash story). Each rename
    // is followed by a directory fsync so the swap is durable before
    // the legacy bytes are removed.
    std::string stagingPath = path_ + ".migrating";
    std::string asidePath = path_ + ".legacy-done";
    archive_io::removeAll(stagingPath); // stale partial replay, if any

    std::vector<RecordEntry> entries;
    ScanResult legacyScan = scanContainerFile(path_, entries, false);
    if (legacyScan.error != OpenErrorKind::None)
        return openFail(legacyScan.error,
                        std::move(legacyScan.detail));
    {
        ArchiveOptions stagingOptions = options_;
        stagingOptions.shardCount = shardCount;
        Archive staging(stagingPath, stagingOptions);
        for (const RecordEntry &entry : entries) {
            if (archive_io::crashed())
                break;
            std::vector<uint8_t> payload = readFileRange(
                path_, entry.payloadOffset,
                static_cast<size_t>(entry.meta.payloadBytes));
            if (crc32(payload.data(), payload.size()) !=
                entry.payloadCrc)
                fatal("legacy archive '%s': payload CRC mismatch "
                      "during migration", path_.c_str());
            staging.append(entry.meta, payload);
        }
        // The replica must be on disk before the swap makes it
        // authoritative.
        staging.sync();
    }

    if (!archive_io::renameFile(path_, asidePath))
        return openFail(
            OpenErrorKind::BadMigration,
            strfmt("cannot move legacy archive '%s' aside",
                   path_.c_str()));
    if (!archive_io::renameFile(stagingPath, path_))
        return openFail(
            OpenErrorKind::BadMigration,
            strfmt("cannot move migrated archive into place at '%s'",
                   path_.c_str()));
    archive_io::syncDir(parentDirOf(path_));
    if (!archive_io::removeFile(asidePath))
        warn("cannot remove migrated legacy archive '%s'",
             asidePath.c_str());

    // A simulated crash anywhere above leaves the on-disk swap
    // incomplete; the caller degrades this instance to a ghost and
    // the next (real) open finishes or redoes the migration.
    if (archive_io::crashed())
        return true;

    if (!openShards(shardCount))
        return false;
    scanReport_.migratedLegacy = true;
    scanReport_.truncatedTail |= legacyScan.report.truncatedTail;
    inform("archive '%s': migrated %zu legacy records into %d shards",
           path_.c_str(), globalRecords_.size(), shardCount);
    return true;
}

RecordEntry
Archive::writeRecordLocked(Shard &shard, const RecordMeta &meta,
                           const std::vector<uint8_t> &payload,
                           bool persist)
{
    RecordEntry entry;
    entry.meta = meta;
    entry.meta.payloadBytes = payload.size();
    entry.payloadCrc = crc32(payload.data(), payload.size());
    entry.payloadOffset = shard.appendOffset + kRecordHeaderBytes;
    if (shard.path.empty()) {
        shard.memPayloads.push_back(payload);
    } else if (persist) {
        if (!appendRecordToFile(shard.path, shard.appendOffset,
                                entry.meta, entry.payloadCrc, payload))
            fatal("append to archive shard '%s' failed (disk full, "
                  "I/O error, or injected fault)", shard.path.c_str());
        shard.bytesSinceSync += kRecordHeaderBytes + payload.size();
        // The durability contract: Always fdatasyncs before the
        // append acknowledges (fsync failure here is fail-stop — a
        // success return would promise durability we do not have);
        // Interval amortizes the fsync over syncIntervalBytes.
        bool wantSync =
            options_.syncPolicy == SyncPolicy::Always ||
            (options_.syncPolicy == SyncPolicy::Interval &&
             shard.bytesSinceSync >= options_.syncIntervalBytes);
        if (wantSync) {
            if (archive_io::syncFile(shard.path)) {
                archiveMetrics().syncs.add();
                shard.bytesSinceSync = 0;
            } else {
                archiveMetrics().fsyncFailures.add();
                if (options_.syncPolicy == SyncPolicy::Always)
                    fatal("archive shard '%s': fdatasync failed under "
                          "SyncPolicy::Always — cannot acknowledge "
                          "the append", shard.path.c_str());
                warn("archive shard '%s': fdatasync failed; retrying "
                     "at the next interval", shard.path.c_str());
                shard.bytesSinceSync = 0;
            }
        }
    }
    shard.appendOffset += kRecordHeaderBytes + payload.size();
    shard.records.push_back(entry);
    return entry;
}

size_t
Archive::indexRecordLocked(size_t shardIdx, uint32_t local,
                           const RecordMeta &meta)
{
    size_t gid = globalRecords_.size();
    globalRecords_.push_back({static_cast<uint32_t>(shardIdx), local});
    shards_[shardIdx]->index[{meta.locationId, meta.band}]
        .push_back(gid);
    return gid;
}

size_t
Archive::append(const RecordMeta &meta, const std::vector<uint8_t> &payload)
{
    telemetry::TraceSpan span("archive.append", "archive");
    size_t shardIdx =
        static_cast<size_t>(shardForLocation(meta.locationId));
    Shard &shard = *shards_[shardIdx];
    archiveMetrics().appends.add();
    archiveMetrics().appendBytes.add(payload.size());

    std::unique_lock<std::mutex> lock = lockShardTimed(shard.mutex);
    uint32_t local = static_cast<uint32_t>(shard.records.size());
    writeRecordLocked(shard, meta, payload);
    // Shard -> global is the one nesting order everywhere (see
    // compact()), so the global table lock cannot deadlock.
    std::unique_lock<std::shared_mutex> g(globalMutex_);
    return indexRecordLocked(shardIdx, local, meta);
}

size_t
Archive::recordCount() const
{
    std::shared_lock<std::shared_mutex> g(globalMutex_);
    return globalRecords_.size();
}

RecordEntry
Archive::record(size_t idx) const
{
    GlobalRef ref;
    {
        std::shared_lock<std::shared_mutex> g(globalMutex_);
        EP_ASSERT(idx < globalRecords_.size(),
                  "record index %zu out of range (%zu records)", idx,
                  globalRecords_.size());
        ref = globalRecords_[idx];
    }
    Shard &shard = *shards_[ref.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    return shard.records[ref.local];
}

std::vector<size_t>
Archive::chain(int locationId, int band) const
{
    const Shard &shard =
        *shards_[static_cast<size_t>(shardForLocation(locationId))];
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find({locationId, band});
    return it == shard.index.end() ? std::vector<size_t>() : it->second;
}

std::vector<std::pair<size_t, RecordMeta>>
Archive::chainEntries(int locationId, int band) const
{
    const Shard &shard =
        *shards_[static_cast<size_t>(shardForLocation(locationId))];
    std::vector<std::pair<size_t, RecordMeta>> out;
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find({locationId, band});
    if (it == shard.index.end())
        return out;
    out.reserve(it->second.size());
    // Shard -> global is the nesting order used everywhere.
    std::shared_lock<std::shared_mutex> g(globalMutex_);
    for (size_t gid : it->second) {
        const GlobalRef &ref = globalRecords_[gid];
        out.emplace_back(gid, shard.records[ref.local].meta);
    }
    return out;
}

std::vector<std::pair<int, int>>
Archive::keys() const
{
    std::vector<std::pair<int, int>> out;
    for (const auto &shardPtr : shards_) {
        std::lock_guard<std::mutex> lock(shardPtr->mutex);
        for (const auto &[key, ids] : shardPtr->index)
            out.push_back(key);
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
Archive::ensureMapped(Shard &shard, uint64_t end) const
{
#if EARTHPLUS_ARCHIVE_MMAP
    // Retired mappings are retained for the archive's lifetime (views
    // may aim into them). With doubling growth the list stays tiny;
    // on hosts mapped exactly to file size it grows per remap, so cap
    // it and degrade to the stdio fallback instead of accumulating
    // mappings without bound.
    constexpr size_t kMaxRetiredMappings = 64;
    if (shard.mapAddr && end <= shard.mapValidBytes)
        return true;
    if (shard.retired.size() >= kMaxRetiredMappings)
        return false;
#if EARTHPLUS_ARCHIVE_MMAP_GROWS
    // Growth-visible hosts: the mapping may extend past the file, and
    // pages become readable as appends grow the file underneath it.
    // Before touching pages past the size observed at map time,
    // re-validate that the file has actually grown to cover them.
    if (shard.mapAddr && end <= shard.mapLen) {
        struct stat st;
        if (::stat(shard.path.c_str(), &st) != 0 ||
            static_cast<uint64_t>(st.st_size) < end)
            return false;
        shard.mapValidBytes =
            std::min<uint64_t>(static_cast<uint64_t>(st.st_size),
                               shard.mapLen);
        return true;
    }
#endif
    int fd = ::open(shard.path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    struct stat st;
    if (::fstat(fd, &st) != 0 ||
        static_cast<uint64_t>(st.st_size) < end) {
        ::close(fd);
        return false;
    }
#if EARTHPLUS_ARCHIVE_MMAP_GROWS
    // Map with doubling growth so the retired-mapping list stays
    // O(log growth) per shard instead of one mapping per growth-read
    // cycle. Reads never pass mapValidBytes, so the excess pages are
    // only touched once the file has grown over them (re-validated
    // above).
    size_t len = std::max(static_cast<size_t>(st.st_size),
                          shard.mapLen * 2);
#else
    // Portability fallback: POSIX leaves references to file regions
    // grown after mmap() unspecified, so map exactly the current size
    // and remap on every growth.
    size_t len = static_cast<size_t>(st.st_size);
#endif
    void *addr = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED)
        return false;
    archiveMetrics().bytesMapped.add(len);
    // Outstanding PayloadViews aim into the old mapping, so it is
    // retired (freed at destruction), never unmapped here.
    if (shard.mapAddr)
        shard.retired.emplace_back(shard.mapAddr, shard.mapLen);
    shard.mapAddr = static_cast<const uint8_t *>(addr);
    shard.mapLen = len;
    shard.mapValidBytes = static_cast<uint64_t>(st.st_size);
    return true;
#else
    (void)shard;
    (void)end;
    return false;
#endif
}

PayloadView
Archive::payloadView(size_t idx) const
{
    telemetry::TraceSpan span("archive.payload_view", "archive");
    archiveMetrics().payloadViews.add();
    GlobalRef ref;
    {
        std::shared_lock<std::shared_mutex> g(globalMutex_);
        EP_ASSERT(idx < globalRecords_.size(),
                  "record index %zu out of range (%zu records)", idx,
                  globalRecords_.size());
        ref = globalRecords_[idx];
    }
    Shard &shard = *shards_[ref.shard];

    // Only the entry snapshot and the mapping lookup happen under the
    // shard lock; the CRC pass over the payload runs outside it so a
    // cold read of a hot shard does not stall that shard's appends.
    // Everything read after unlock is immutable by construction: a
    // written record's bytes never change, mappings are retired (not
    // unmapped) while the archive lives, and memory-backed payload
    // vectors never move once appended (deque growth keeps elements
    // in place).
    RecordEntry entry;
    const uint8_t *mapped = nullptr;
    {
        std::unique_lock<std::mutex> lock =
            lockShardTimed(shard.mutex);
        entry = shard.records[ref.local];
        if (shard.path.empty()) {
            const std::vector<uint8_t> &bytes =
                shard.memPayloads[ref.local];
            return PayloadView(bytes.data(), bytes.size());
        }
        uint64_t end = entry.payloadOffset + entry.meta.payloadBytes;
        if (ensureMapped(shard, end))
            mapped = shard.mapAddr + entry.payloadOffset;
    }

    size_t size = static_cast<size_t>(entry.meta.payloadBytes);
    if (mapped) {
        if (crc32(mapped, size) != entry.payloadCrc)
            fatal("archive '%s': record %zu payload CRC mismatch",
                  path_.c_str(), idx);
        return PayloadView(mapped, size);
    }
    // Portable fallback: a private stdio read per call (the record's
    // byte range is immutable, so no lock is needed here either).
    std::vector<uint8_t> bytes =
        readFileRange(shard.path, entry.payloadOffset, size);
    if (crc32(bytes.data(), bytes.size()) != entry.payloadCrc)
        fatal("archive '%s': record %zu payload CRC mismatch",
              path_.c_str(), idx);
    return PayloadView(std::move(bytes));
}

std::vector<uint8_t>
Archive::loadPayload(size_t idx) const
{
    return payloadView(idx).toVector();
}

uint64_t
Archive::compact()
{
    // Exclusive over the whole archive: shards in index order, then
    // the global table — the same nesting order append() uses.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto &shard : shards_)
        locks.emplace_back(shard->mutex);
    std::unique_lock<std::shared_mutex> g(globalMutex_);

    // Keep, per (location, band), everything captured at or after the
    // latest full download. "Latest" is by capture day, not append
    // order: ARQ can complete downloads out of capture order, so a
    // small delta captured after a big full download may sit *before*
    // it in the file.
    size_t n = globalRecords_.size();
    std::vector<uint8_t> keep(n, 1);
    auto entryOf = [&](size_t gid) -> const RecordEntry & {
        const GlobalRef &ref = globalRecords_[gid];
        return shards_[ref.shard]->records[ref.local];
    };
    for (const auto &shardPtr : shards_) {
        for (const auto &[key, gids] : shardPtr->index) {
            double lastFullDay =
                -std::numeric_limits<double>::infinity();
            for (size_t gid : gids)
                if (entryOf(gid).meta.fullDownload)
                    lastFullDay = std::max(lastFullDay,
                                           entryOf(gid).meta.captureDay);
            for (size_t gid : gids)
                if (entryOf(gid).meta.captureDay < lastFullDay)
                    keep[gid] = 0;
        }
    }

    uint64_t before = 0;
    for (const auto &shardPtr : shards_)
        before += shardPtr->appendOffset;

    // Pull surviving payloads into memory before the rewrite,
    // verifying each against its stored CRC: a compact must never
    // re-bless rotten bytes with a freshly computed checksum.
    std::vector<std::pair<RecordMeta, std::vector<uint8_t>>> survivors;
    for (size_t gid = 0; gid < n; ++gid) {
        if (!keep[gid])
            continue;
        const GlobalRef &ref = globalRecords_[gid];
        const Shard &shard = *shards_[ref.shard];
        const RecordEntry &entry = shard.records[ref.local];
        std::vector<uint8_t> payload = shard.path.empty()
            ? shard.memPayloads[ref.local]
            : readFileRange(shard.path, entry.payloadOffset,
                            static_cast<size_t>(entry.meta.payloadBytes));
        if (!shard.path.empty() &&
            crc32(payload.data(), payload.size()) != entry.payloadCrc)
            fatal("archive '%s': record %zu payload CRC mismatch "
                  "during compact", path_.c_str(), gid);
        survivors.emplace_back(entry.meta, std::move(payload));
    }

    uint64_t after = rewriteAllShardsLocked(survivors);
    return before - after;
}

uint64_t
Archive::rewriteAllShardsLocked(
    std::vector<std::pair<RecordMeta, std::vector<uint8_t>>> &records)
{
    // Crash-safe rewrite: each shard's records go to a staged
    // 'shard-NNN.epar.tmp' first, the staged file is fsynced, then
    // renamed over the live shard. A crash anywhere leaves every
    // shard either fully old or fully new — both valid containers —
    // and per-shard independence makes a partially renamed rewrite a
    // legal archive state (chains never span shards). Stray .tmp
    // files are swept on the next open.
    if (!path_.empty()) {
        std::vector<uint64_t> tmpOffsets(shards_.size(),
                                         kFileHeaderBytes);
        auto tmpPathOf = [](const Shard &shard) {
            return shard.path + ".tmp";
        };
        for (auto &shardPtr : shards_) {
            if (!writeContainerHeader(tmpPathOf(*shardPtr)))
                fatal("rewrite: cannot stage rewrite of shard '%s'",
                      shardPtr->path.c_str());
        }
        for (const auto &[meta, payload] : records) {
            size_t shardIdx =
                static_cast<size_t>(shardForLocation(meta.locationId));
            Shard &shard = *shards_[shardIdx];
            RecordMeta stamped = meta;
            stamped.payloadBytes = payload.size();
            if (!appendRecordToFile(tmpPathOf(shard),
                                    tmpOffsets[shardIdx], stamped,
                                    crc32(payload.data(),
                                          payload.size()),
                                    payload))
                fatal("rewrite: staged write to '%s' failed",
                      tmpPathOf(shard).c_str());
            tmpOffsets[shardIdx] +=
                kRecordHeaderBytes + payload.size();
        }
        for (auto &shardPtr : shards_) {
            std::string tmp = tmpPathOf(*shardPtr);
            if (!archive_io::syncFile(tmp)) {
                archiveMetrics().fsyncFailures.add();
                warn("rewrite: cannot fsync staged shard '%s'",
                     tmp.c_str());
            } else {
                archiveMetrics().syncs.add();
            }
            if (!archive_io::renameFile(tmp, shardPtr->path))
                fatal("rewrite: cannot move staged shard over '%s' — "
                      "already-renamed shards are rewritten, the rest "
                      "are untouched (every shard is still a valid "
                      "container)", shardPtr->path.c_str());
        }
        archive_io::syncDir(path_);
    }

    // Reset every shard. Rewriting a file invalidates the *content*
    // behind its mapping, so the mapping is retired along with any
    // outstanding views (the API contract: a full rewrite invalidates
    // views and indices).
    globalRecords_.clear();
    uint64_t after = 0;
    for (auto &shardPtr : shards_) {
        Shard &shard = *shardPtr;
        shard.records.clear();
        shard.index.clear();
        shard.memPayloads.clear();
        shard.appendOffset = kFileHeaderBytes;
        shard.bytesSinceSync = 0;
        if (shard.mapAddr) {
            shard.retired.emplace_back(shard.mapAddr, shard.mapLen);
            shard.mapAddr = nullptr;
            shard.mapLen = 0;
            shard.mapValidBytes = 0;
        }
    }

    // Replay the records in their original global order to rebuild
    // the in-memory records and indexes. The bytes are already on
    // disk (staged + renamed above), so the replay is memory-only.
    for (auto &[meta, payload] : records) {
        size_t shardIdx =
            static_cast<size_t>(shardForLocation(meta.locationId));
        Shard &shard = *shards_[shardIdx];
        uint32_t local = static_cast<uint32_t>(shard.records.size());
        writeRecordLocked(shard, meta, payload, false);
        indexRecordLocked(shardIdx, local, meta);
    }

    scanReport_.recordCount = globalRecords_.size();
    scanReport_.validBytes = 0;
    // Every shard was just rewritten cleanly, so an open-time
    // truncated tail no longer describes the on-disk state.
    // (migratedLegacy stays: it records how this open started.)
    scanReport_.truncatedTail = false;
    for (const auto &shardPtr : shards_) {
        after += shardPtr->appendOffset;
        scanReport_.validBytes += shardPtr->appendOffset;
    }
    return after;
}

PressureReport
Archive::applyStoragePressure(uint64_t targetBytes)
{
    // Exclusive over the whole archive, same nesting as compact():
    // shards in index order, then the global table.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto &shard : shards_)
        locks.emplace_back(shard->mutex);
    std::unique_lock<std::shared_mutex> g(globalMutex_);

    PressureReport report;
    uint64_t before = 0;
    for (const auto &shardPtr : shards_)
        before += shardPtr->appendOffset;
    if (before <= targetBytes)
        return report;

    // Pull every payload into memory, verifying each against its
    // stored CRC — like compact(), the rewrite must never re-bless
    // rotten bytes with a fresh checksum.
    size_t n = globalRecords_.size();
    std::vector<std::pair<RecordMeta, std::vector<uint8_t>>> records;
    records.reserve(n);
    for (size_t gid = 0; gid < n; ++gid) {
        const GlobalRef &ref = globalRecords_[gid];
        const Shard &shard = *shards_[ref.shard];
        const RecordEntry &entry = shard.records[ref.local];
        std::vector<uint8_t> payload = shard.path.empty()
            ? shard.memPayloads[ref.local]
            : readFileRange(shard.path, entry.payloadOffset,
                            static_cast<size_t>(
                                entry.meta.payloadBytes));
        if (!shard.path.empty() &&
            crc32(payload.data(), payload.size()) != entry.payloadCrc)
            fatal("archive '%s': record %zu payload CRC mismatch "
                  "during storage-pressure rewrite", path_.c_str(),
                  gid);
        records.emplace_back(entry.meta, std::move(payload));
    }

    // Each progressive (EPC4) payload can shrink from its current
    // size down to its header floor; spread the byte deficit
    // proportionally over those truncatable spans so quality degrades
    // evenly across the archive instead of zeroing out whole records.
    constexpr char kV3Magic[4] = {'E', 'P', 'C', '4'};
    uint64_t need = before - targetBytes;
    uint64_t cuttable = 0;
    std::vector<size_t> floors(records.size(), 0);
    std::vector<uint8_t> progressive(records.size(), 0);
    for (size_t i = 0; i < records.size(); ++i) {
        const std::vector<uint8_t> &payload = records[i].second;
        if (payload.size() < 4 ||
            std::memcmp(payload.data(), kV3Magic, 4) != 0) {
            ++report.recordsSkipped;
            continue;
        }
        size_t floor = codec::streamHeaderFloor(payload);
        if (payload.size() <= floor) {
            ++report.recordsSkipped;
            continue;
        }
        progressive[i] = 1;
        floors[i] = floor;
        cuttable += payload.size() - floor;
    }
    if (cuttable == 0) {
        // Nothing can shrink: every record is pre-progressive or
        // already at its floor. Report the floor instead of evicting.
        report.atFloor = true;
        return report;
    }

    double keepFrac = need >= cuttable
        ? 0.0
        : 1.0 - static_cast<double>(need) /
                    static_cast<double>(cuttable);
    for (size_t i = 0; i < records.size(); ++i) {
        if (!progressive[i])
            continue;
        std::vector<uint8_t> &payload = records[i].second;
        size_t span = payload.size() - floors[i];
        size_t budget =
            floors[i] +
            static_cast<size_t>(static_cast<double>(span) * keepFrac);
        std::vector<uint8_t> cut =
            codec::truncateStream(payload, budget);
        if (cut.size() < payload.size()) {
            ++report.recordsTruncated;
            payload = std::move(cut);
            records[i].first.payloadBytes = payload.size();
        } else {
            ++report.recordsSkipped;
        }
    }

    uint64_t after = rewriteAllShardsLocked(records);
    report.bytesReclaimed = before - after;
    // Proportional budgets always land at or below their targets, so
    // one pass reaches targetBytes whenever the floors allow it.
    report.atFloor = after > targetBytes;
    return report;
}

bool
Archive::sync()
{
    bool ok = true;
    for (auto &shardPtr : shards_) {
        std::lock_guard<std::mutex> lock(shardPtr->mutex);
        if (shardPtr->path.empty())
            continue;
        if (archive_io::syncFile(shardPtr->path)) {
            archiveMetrics().syncs.add();
            shardPtr->bytesSinceSync = 0;
        } else {
            archiveMetrics().fsyncFailures.add();
            ok = false;
        }
    }
    return ok;
}

uint64_t
Archive::fileBytes() const
{
    uint64_t total = 0;
    for (const auto &shardPtr : shards_) {
        std::lock_guard<std::mutex> lock(shardPtr->mutex);
        total += shardPtr->appendOffset;
    }
    return total;
}

} // namespace earthplus::ground
