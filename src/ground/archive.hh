/**
 * @file
 * Persistent sharded archive of downloaded encoded imagery.
 *
 * The ground segment must keep every downloaded `EncodedImage` delta
 * and its reference lineage — reconstruction of a (location, day,
 * band) needs the latest full download plus all deltas since, and a
 * production archive survives process restarts. At constellation
 * scale the archive is written by many download completions and read
 * by many serving threads at once, so it is **sharded by location**:
 * a non-empty path names a *directory* holding a manifest plus one
 * append-only container file per shard, and a record lands in the
 * shard selected by hashing its locationId. Every (location, band)
 * chain therefore lives wholly inside one shard — the per-shard
 * indexes are shared-nothing and each shard has its own mutex, so
 * appends and reads on different shards never contend.
 *
 *   directory := MANIFEST shard-NNN.epar*
 *   manifest  := magic "EPSM" | version u32 | shardCount u32
 *   shard     := fileHeader record*            (one container file)
 *   header    := magic "EPAR" | version u32
 *   record    := recordMagic "EPRC" | headerCrc u32 | locationId u32 |
 *                satelliteId u32 | band u32 | flags u32 |
 *                captureDay f64 | referenceDay f64 | payloadBytes u64 |
 *                payloadCrc u32 | payload bytes
 *
 * The shard container format is byte-identical to the pre-sharding
 * single-file archive format; opening a path that is a regular file
 * with the "EPAR" magic migrates it in place into the sharded layout
 * (see ScanReport::migratedLegacy).
 *
 * Appends go to the end of a shard file; open() scans every shard to
 * rebuild the in-memory indexes and is corruption-tolerant per shard:
 * a truncated or corrupt tail record stops that shard's scan, the
 * valid prefix stays usable, and the next append to the shard rewinds
 * over the garbage. Payload reads are backed by `mmap` on POSIX hosts
 * (with a portable stdio fallback), so serving resolves delta chains
 * zero-copy: payloadView() hands out pointers into the mapping and
 * the codec parses the stream straight out of the page cache. Views
 * stay valid for the archive's lifetime — grown files are remapped,
 * and superseded mappings are retired, not unmapped, until the
 * archive is destroyed. compact() drops records captured before the
 * latest full download of their (location, band) — queries for the
 * pruned days stop resolving, which is the storage/history trade-off
 * compaction exists to make.
 *
 * An Archive constructed with an empty path is memory-backed: same
 * API, sharding and thread-safety, no persistence (used by
 * simulations that do not need files on disk).
 */

#ifndef EARTHPLUS_GROUND_ARCHIVE_HH
#define EARTHPLUS_GROUND_ARCHIVE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace earthplus::ground {

/**
 * When appended records are forced to stable storage
 * (docs/RELIABILITY.md spells out the full durability contract).
 */
enum class SyncPolicy
{
    /**
     * Never fdatasync on the append path: an acknowledged append can
     * be lost to power failure (never to a process crash — the write
     * itself completes before the acknowledgement). Metadata
     * operations (manifest creation, migration and compaction
     * renames) still get the full temp-fsync-rename-dirsync
     * choreography under every policy.
     */
    None,
    /** fdatasync a shard once every syncIntervalBytes appended to it:
     *  bounded loss window, amortized fsync cost. */
    Interval,
    /** fdatasync the shard before every append acknowledges: an
     *  acknowledged append survives power failure. Append-path fsync
     *  failure is fail-stop (fatal) — the acknowledgement would
     *  otherwise be a lie. */
    Always,
};

/** Construction-time knobs for Archive (beyond the path). */
struct ArchiveOptions
{
    /** Shards to create (<= 0 picks Archive::kDefaultShardCount); an
     *  existing directory's manifest wins. */
    int shardCount = 0;
    /** Append durability (see SyncPolicy). */
    SyncPolicy syncPolicy = SyncPolicy::None;
    /** SyncPolicy::Interval: fdatasync a shard after this many bytes
     *  appended to it since its last sync. */
    uint64_t syncIntervalBytes = 4u << 20;
};

/** Why Archive::open() refused an archive (fail-closed open). */
enum class OpenErrorKind
{
    None,           ///< No error.
    BadShard,       ///< Shard unreadable / zero-byte / bad header.
    MissingShard,   ///< Manifest references a shard file that is gone.
    MissingManifest,///< Shard files present but no manifest.
    BadManifest,    ///< Manifest unreadable or malformed.
    Unwritable,     ///< Cannot create the directory/manifest/shards.
    ForeignData,    ///< A shard grew a tail we provably never wrote.
    BadMigration,   ///< Interrupted legacy migration beyond recovery.
};

/**
 * Typed outcome of a failed Archive::open(): the kind plus a
 * human-readable detail naming the offending path.
 */
struct ArchiveOpenError
{
    OpenErrorKind kind = OpenErrorKind::None; ///< What went wrong.
    std::string detail; ///< Message naming the offending file.
};

/** Metadata of one archived download (one band of one capture). */
struct RecordMeta
{
    int locationId = 0;  ///< Captured location (selects the shard).
    int satelliteId = 0; ///< Capturing satellite.
    int band = 0;        ///< Band index within the capture.
    /** Capture time in days. */
    double captureDay = 0.0;
    /**
     * Capture day of the reference this delta was encoded against
     * (< 0 when the record is self-contained).
     */
    double referenceDay = -1.0;
    /** Full download: decodes without consulting earlier records. */
    bool fullDownload = false;
    /** Serialized EncodedImage size in bytes. */
    uint64_t payloadBytes = 0;
};

/** Index entry: metadata plus where the payload lives in its shard. */
struct RecordEntry
{
    RecordMeta meta;
    /** Byte offset of the payload within its shard file. */
    uint64_t payloadOffset = 0;
    /** CRC32 of the payload bytes. */
    uint32_t payloadCrc = 0;
};

/** Outcome of one Archive::applyStoragePressure() pass. */
struct PressureReport
{
    /** Shard-file bytes reclaimed by the rewrite. */
    uint64_t bytesReclaimed = 0;
    /** Records whose payloads were cut to a smaller truncation point. */
    size_t recordsTruncated = 0;
    /** Records that could not shrink: non-progressive (pre-EPC4)
     *  payloads and streams already at their header floor. */
    size_t recordsSkipped = 0;
    /** True when the pass hit the archive's degradation floor — every
     *  payload is non-progressive or already fully truncated — while
     *  still above the requested target. */
    bool atFloor = false;
};

/** Outcome of opening an archive (aggregated across shards). */
struct ScanReport
{
    /** Records recovered from the valid prefixes of all shards. */
    size_t recordCount = 0;
    /** Bytes of the valid prefixes (headers included). */
    uint64_t validBytes = 0;
    /** True when any shard discarded a corrupt/truncated tail. */
    bool truncatedTail = false;
    /** True when a pre-sharding single-file archive was migrated. */
    bool migratedLegacy = false;
};

/**
 * Borrowed view of one record's payload bytes.
 *
 * On POSIX hosts the pointer aims straight into the shard file's
 * read-only mapping (zero-copy); on the fallback path the view owns a
 * heap copy. Either way the bytes stay valid for the lifetime of the
 * Archive that produced the view (mappings are retired, never
 * unmapped, while the archive lives).
 */
class PayloadView
{
  public:
    PayloadView() = default;

    /** Zero-copy view into storage owned by the archive. */
    PayloadView(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    /** Owning view (portable fallback path). */
    explicit PayloadView(std::vector<uint8_t> owned)
        : owned_(std::make_shared<std::vector<uint8_t>>(std::move(owned)))
    {
        data_ = owned_->data();
        size_ = owned_->size();
    }

    /** First payload byte (null for an empty payload). */
    const uint8_t *data() const { return data_; }

    /** Payload size in bytes. */
    size_t size() const { return size_; }

    /** Copy the viewed bytes into a fresh vector. */
    std::vector<uint8_t> toVector() const
    {
        return std::vector<uint8_t>(data_, data_ + size_);
    }

  private:
    const uint8_t *data_ = nullptr;
    size_t size_ = 0;
    std::shared_ptr<std::vector<uint8_t>> owned_;
};

/**
 * Sharded append-only archive of encoded downloads with in-memory
 * per-shard indexes.
 *
 * Thread-safe: append(), the read accessors and payload loads may all
 * race freely (per-shard mutexes plus a global record table under a
 * shared mutex). compact() is the one exception — it rewrites every
 * shard and reassigns record indices, so it must not run concurrently
 * with anything (see its doc comment).
 */
class Archive
{
  public:
    /** Shards used when the caller does not pick a count. */
    static constexpr int kDefaultShardCount = 8;

    /**
     * Open (or create) an archive.
     *
     * A non-empty path names a directory (created as needed). When
     * the path is an existing regular file carrying the pre-sharding
     * "EPAR" magic, it is migrated into the sharded layout in place:
     * the file is renamed aside, its records are redistributed into
     * shards in append order, and the original is removed on success.
     *
     * @param path Directory path; empty for a memory-backed archive.
     * @param shardCount Shards to create (<= 0 picks
     *        kDefaultShardCount). An existing directory's manifest
     *        wins over this argument.
     */
    explicit Archive(const std::string &path, int shardCount = 0);

    /**
     * Open with explicit options (durability policy included). Any
     * open failure is fatal(); use open() for a typed error instead.
     */
    Archive(const std::string &path, const ArchiveOptions &options);

    /**
     * Fail-closed open: returns the archive, or nullptr with `error`
     * (when non-null) describing why — a zero-byte or header-corrupt
     * shard, a manifest referencing a missing shard, an unwritable
     * directory, a shard grown by a foreign writer, and the other
     * OpenErrorKind cases — instead of terminating the process the
     * way the constructors do. On success `error` is left untouched.
     */
    static std::unique_ptr<Archive> open(const std::string &path,
                                         const ArchiveOptions &options,
                                         ArchiveOpenError *error);

    /** Unmaps every shard (including retired mappings). */
    ~Archive();

    Archive(const Archive &) = delete;            ///< Non-copyable.
    Archive &operator=(const Archive &) = delete; ///< Non-copyable.

    /** Result of the open()-time scan (aggregated over shards). */
    const ScanReport &scanReport() const { return scanReport_; }

    /** Number of shards (fixed for the archive's lifetime). */
    int shardCount() const { return static_cast<int>(shards_.size()); }

    /** Shard index the given location hashes to. */
    int shardForLocation(int locationId) const;

    /**
     * Append one record.
     *
     * Thread-safe; appends to different shards proceed in parallel.
     *
     * @param meta Record metadata (payloadBytes is overwritten).
     * @param payload Serialized EncodedImage bytes.
     * @return Global index of the new record.
     */
    size_t append(const RecordMeta &meta,
                  const std::vector<uint8_t> &payload);

    /** Number of indexed records across all shards. */
    size_t recordCount() const;

    /** Metadata + location of record `idx` (by value: thread-safe). */
    RecordEntry record(size_t idx) const;

    /**
     * Indices of records for one (location, band), in append order.
     * Append order is download-completion order — ARQ retransmission
     * can complete captures out of capture order, so consumers that
     * need day order (the tile server) sort by RecordMeta::captureDay.
     */
    std::vector<size_t> chain(int locationId, int band) const;

    /**
     * The chain's (global id, metadata) pairs in append order,
     * snapshotted under one shard lock — the serving hot path uses
     * this instead of a record() round trip per chain element.
     */
    std::vector<std::pair<size_t, RecordMeta>>
    chainEntries(int locationId, int band) const;

    /** All (location, band) keys present in the archive. */
    std::vector<std::pair<int, int>> keys() const;

    /**
     * Load and CRC-verify the payload of record `idx` as an owned
     * copy. Prefer payloadView() on hot paths — this exists for
     * callers that need to keep bytes past the archive's lifetime.
     *
     * fatal()s when the stored bytes no longer match their CRC (disk
     * corruption after the open()-time scan).
     */
    std::vector<uint8_t> loadPayload(size_t idx) const;

    /**
     * Borrow the payload of record `idx`, CRC-verified, without
     * copying when the shard is mmap-backed. The view stays valid for
     * this archive's lifetime (not across compact()).
     */
    PayloadView payloadView(size_t idx) const;

    /**
     * Rewrite every shard keeping, for each (location, band), only
     * the records captured at or after its latest full download
     * ("latest" by capture day — append order can differ under ARQ).
     *
     * This intentionally prunes history: queries for days before a
     * chain's latest full download stop resolving after a compact.
     * Record indices are reassigned and outstanding PayloadViews are
     * invalidated, so anything holding indices or views into this
     * archive (a TileServer and its caches in particular) must be
     * discarded and rebuilt — do not compact while serving or
     * appending.
     *
     * @return Bytes reclaimed across all shards.
     */
    uint64_t compact();

    /**
     * Degrade the archive in place to fit `targetBytes` of shard-file
     * storage, truncating progressive (EPC4) payloads at recorded
     * truncation points instead of evicting records: every record —
     * and every acknowledged append — survives the pass, at reduced
     * quality. The byte deficit is spread proportionally over the
     * truncatable span of every progressive payload; non-progressive
     * records are left byte-identical (and counted in
     * PressureReport::recordsSkipped).
     *
     * Durability follows compact(): each shard's records are staged to
     * 'shard-NNN.epar.tmp', fsynced, renamed over the live shard, and
     * the directory is fsynced — a crash anywhere leaves every shard
     * either fully old or fully new. Like compact(), this rewrites
     * every shard and reassigns record indices/views, so it must not
     * run concurrently with serving or appending.
     *
     * @param targetBytes Desired ceiling for fileBytes(). A pass that
     *        cannot reach it (all payloads at their floor) reports
     *        atFloor instead of failing.
     */
    PressureReport applyStoragePressure(uint64_t targetBytes);

    /** Total bytes across shard files (headers + payloads). */
    uint64_t fileBytes() const;

    /**
     * Force every shard's appended bytes to stable storage now,
     * regardless of the configured SyncPolicy. Returns false (after
     * trying every shard, and counting archive.fsync_failures) when
     * any fdatasync failed; a false return means the durability of
     * recent acknowledgements is unknown. No-op true when
     * memory-backed.
     */
    bool sync();

    /** The options this archive was opened with. */
    const ArchiveOptions &options() const { return options_; }

    /** Path backing this archive (empty = memory-backed). */
    const std::string &path() const { return path_; }

  private:
    /** One shard: container file, mutex, records and index. */
    struct Shard
    {
        mutable std::mutex mutex;
        /** Shard container file path (empty in memory-backed mode). */
        std::string path;
        /** Records in shard-local append order. */
        std::deque<RecordEntry> records;
        /** (location, band) -> global record ids, append order. */
        std::map<std::pair<int, int>, std::vector<size_t>> index;
        /** Payload bytes in memory-backed mode, local index order. */
        std::deque<std::vector<uint8_t>> memPayloads;
        /** Next append position (file header included). */
        uint64_t appendOffset = 0;
        /** Read-only mapping of the shard file, or null. */
        const uint8_t *mapAddr = nullptr;
        /** Mapped length (on growth-visible hosts, past the file). */
        size_t mapLen = 0;
        /** File bytes verified present behind the mapping so far. */
        uint64_t mapValidBytes = 0;
        /** Superseded mappings kept alive for outstanding views. */
        std::vector<std::pair<const uint8_t *, size_t>> retired;
        /** Scan outcome for this shard. */
        ScanReport scan;
        /** Bytes appended since the last fdatasync (Interval policy). */
        uint64_t bytesSinceSync = 0;
    };

    /** Record id -> owning shard and shard-local index. */
    struct GlobalRef
    {
        uint32_t shard = 0;
        uint32_t local = 0;
    };

    Archive(const std::string &path, const ArchiveOptions &options,
            ArchiveOpenError *error);
    bool openShards(int shardCount);
    bool recoverInterruptedMigration();
    bool migrateLegacyFile(int shardCount);
    /**
     * Record an open failure: stores into the caller-provided error
     * slot when one exists (open() path), fatal()s otherwise
     * (constructor path). Returns false for tail-calling.
     */
    bool openFail(OpenErrorKind kind, std::string detail);
    /**
     * Degrade to an empty memory-backed shard set after the simulated
     * crash latch trips mid-open: the instance stays safe to destroy
     * and query but persists nothing (the harness discards it).
     */
    void makeGhostShards(int shardCount);
    /**
     * Write one record into `shard` (file or memory) and push it onto
     * the shard's record list. Requires shard.mutex held; follow with
     * indexRecordLocked() to assign its global id. `persist` false
     * records in memory only (compact() replay after the shard file
     * was already rewritten via temp + rename).
     */
    RecordEntry writeRecordLocked(Shard &shard, const RecordMeta &meta,
                                  const std::vector<uint8_t> &payload,
                                  bool persist = true);
    /**
     * Assign the next global id to (shardIdx, local) and add it to
     * the shard's (location, band) index. Requires shard.mutex and a
     * unique lock on globalMutex_ held.
     */
    size_t indexRecordLocked(size_t shardIdx, uint32_t local,
                             const RecordMeta &meta);
    /** Map (or grow the mapping of) `shard` to cover `end` bytes. */
    bool ensureMapped(Shard &shard, uint64_t end) const;
    /**
     * Replace the archive's contents with `records` (in global-id
     * order): stage each shard's share to 'shard-NNN.epar.tmp', fsync,
     * rename over the live shard, fsync the directory, then rebuild
     * the in-memory records and indexes by replay. The shared
     * crash-consistent rewrite under compact() and
     * applyStoragePressure(). Requires every shard mutex and a unique
     * lock on globalMutex_ held. Returns total shard-file bytes after
     * the rewrite.
     */
    uint64_t rewriteAllShardsLocked(
        std::vector<std::pair<RecordMeta, std::vector<uint8_t>>>
            &records);

    std::string path_;
    ArchiveOptions options_;
    /** Error slot active during construction (null = fatal on error). */
    ArchiveOpenError *err_ = nullptr;
    std::vector<std::unique_ptr<Shard>> shards_;
    /** Global record table; guards ordering of ids across shards. */
    mutable std::shared_mutex globalMutex_;
    std::deque<GlobalRef> globalRecords_;
    ScanReport scanReport_;
};

} // namespace earthplus::ground

#endif // EARTHPLUS_GROUND_ARCHIVE_HH
