/**
 * @file
 * Persistent archive of downloaded encoded imagery.
 *
 * The ground segment must keep every downloaded `EncodedImage` delta
 * and its reference lineage — reconstruction of a (location, day,
 * band) needs the latest full download plus all deltas since, and a
 * production archive survives process restarts. This is an
 * append-only container file:
 *
 *   file   := fileHeader record*
 *   header := magic "EPAR" | version u32
 *   record := recordMagic "EPRC" | headerCrc u32 | locationId u32 |
 *             satelliteId u32 | band u32 | flags u32 | captureDay f64 |
 *             referenceDay f64 | payloadBytes u64 | payloadCrc u32 |
 *             payload bytes
 *
 * Appends go to the end of the file; open() scans the file to rebuild
 * the in-memory index and is corruption-tolerant: a truncated or
 * corrupt tail record stops the scan, the valid prefix stays usable,
 * and the next append rewinds over the garbage. Payloads are read
 * back lazily (the index holds offsets, not bytes) and verified
 * against their CRC on load. compact() drops records captured before
 * the latest full download of their (location, band) — queries for the
 * pruned days stop resolving, which is the storage/history trade-off
 * compaction exists to make.
 *
 * An Archive constructed with an empty path is memory-backed: same
 * API and index, no persistence (used by simulations that do not need
 * a file on disk).
 */

#ifndef EARTHPLUS_GROUND_ARCHIVE_HH
#define EARTHPLUS_GROUND_ARCHIVE_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace earthplus::ground {

/** Metadata of one archived download (one band of one capture). */
struct RecordMeta
{
    int locationId = 0;
    int satelliteId = 0;
    int band = 0;
    /** Capture time in days. */
    double captureDay = 0.0;
    /**
     * Capture day of the reference this delta was encoded against
     * (< 0 when the record is self-contained).
     */
    double referenceDay = -1.0;
    /** Full download: decodes without consulting earlier records. */
    bool fullDownload = false;
    /** Serialized EncodedImage size in bytes. */
    uint64_t payloadBytes = 0;
};

/** Index entry: metadata plus where the payload lives. */
struct RecordEntry
{
    RecordMeta meta;
    /** Byte offset of the payload within the archive file. */
    uint64_t payloadOffset = 0;
    /** CRC32 of the payload bytes. */
    uint32_t payloadCrc = 0;
};

/** Outcome of opening an archive file. */
struct ScanReport
{
    /** Records recovered from the valid prefix. */
    size_t recordCount = 0;
    /** Bytes of the valid prefix (next append position). */
    uint64_t validBytes = 0;
    /** True when a corrupt/truncated tail was discarded. */
    bool truncatedTail = false;
};

/**
 * Append-only archive of encoded downloads with an in-memory index.
 *
 * Append and read are thread-compatible: append() must not race with
 * anything, loadPayload() may be called concurrently from the tile
 * server's worker threads.
 */
class Archive
{
  public:
    /**
     * Open (or create) an archive.
     *
     * @param path File path; empty for a memory-backed archive.
     */
    explicit Archive(const std::string &path);

    ~Archive();

    Archive(const Archive &) = delete;
    Archive &operator=(const Archive &) = delete;

    /** Result of the open()-time scan. */
    const ScanReport &scanReport() const { return scanReport_; }

    /**
     * Append one record.
     *
     * @param meta Record metadata (payloadBytes is overwritten).
     * @param payload Serialized EncodedImage bytes.
     * @return Index of the new record.
     */
    size_t append(const RecordMeta &meta,
                  const std::vector<uint8_t> &payload);

    /** Number of indexed records. */
    size_t recordCount() const { return records_.size(); }

    /** Metadata + location of record `idx`. */
    const RecordEntry &record(size_t idx) const;

    /**
     * Indices of records for one (location, band), in append order.
     * Append order is download-completion order — ARQ retransmission
     * can complete captures out of capture order, so consumers that
     * need day order (the tile server) sort by RecordMeta::captureDay.
     */
    std::vector<size_t> chain(int locationId, int band) const;

    /** All (location, band) keys present in the archive. */
    std::vector<std::pair<int, int>> keys() const;

    /**
     * Load and CRC-verify the payload of record `idx`.
     *
     * fatal()s when the stored bytes no longer match their CRC (disk
     * corruption after the open()-time scan).
     */
    std::vector<uint8_t> loadPayload(size_t idx) const;

    /**
     * Rewrite the archive keeping, for each (location, band), only the
     * records captured at or after its latest full download ("latest"
     * by capture day — append order can differ under ARQ).
     *
     * This intentionally prunes history: queries for days before a
     * chain's latest full download stop resolving after a compact.
     * Record indices are reassigned, so anything holding indices into
     * this archive (a TileServer and its caches in particular) must be
     * discarded and rebuilt — do not compact while serving.
     *
     * @return Bytes reclaimed.
     */
    uint64_t compact();

    /** Archive file size in bytes (index + payloads, header included). */
    uint64_t fileBytes() const;

    /** Path backing this archive (empty = memory-backed). */
    const std::string &path() const { return path_; }

  private:
    void openAndScan();
    void appendRecordBytes(const RecordMeta &meta, uint32_t payloadCrc,
                           const std::vector<uint8_t> &payload);

    std::string path_;
    /** Payload bytes for the memory-backed mode, indexed as records_. */
    std::vector<std::vector<uint8_t>> memPayloads_;
    std::vector<RecordEntry> records_;
    std::map<std::pair<int, int>, std::vector<size_t>> index_;
    ScanReport scanReport_;
    uint64_t appendOffset_ = 0;
};

} // namespace earthplus::ground

#endif // EARTHPLUS_GROUND_ARCHIVE_HH
