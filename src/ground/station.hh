/**
 * @file
 * Ground station: the receive side of the ground segment.
 *
 * Ties the downlink channel, the persistent archive and the consumer
 * of completed downloads together. A capture submitted by the
 * simulation becomes one packetized transfer per band; the station
 * advances through ground contacts (orbit::ContactSchedule), collects
 * completed band streams, and only when *every* band of a capture has
 * been reassembled byte-identically does the capture count as
 * downloaded: its records are appended to the archive and the
 * completion callback fires (the simulation uses it to feed the
 * ReferenceStore — references become available on the ground when the
 * download finishes, not at capture time).
 *
 * Captures whose transfers exhaust the satellite's retention window
 * (Appendix A: two contacts) are lost and reported as failed.
 */

#ifndef EARTHPLUS_GROUND_STATION_HH
#define EARTHPLUS_GROUND_STATION_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ground/archive.hh"
#include "ground/packet.hh"
#include "orbit/contact.hh"
#include "raster/image.hh"

namespace earthplus::ground {

/** Configuration of a simulated ground segment. */
struct GroundSegmentParams
{
    /** Route downloads through the ground segment at all. */
    bool enabled = false;
    /** Downlink channel model (packet size, loss, retention, budget). */
    ChannelParams channel;
    /** Ground contacts per day (paper §6.1: 7). */
    int contactsPerDay = 7;
    /** Phase of the first daily contact. */
    double contactPhaseDays = 0.0;
    /**
     * Archive directory path; empty keeps the archive in memory. A
     * path naming a pre-sharding single-file archive is migrated into
     * the sharded directory layout on open. Each GroundStation owns
     * its directory exclusively — concurrent simulations
     * (core::runSimulationsBatch jobs) must use distinct paths or
     * leave this empty, or their interleaved appends corrupt the
     * shard files.
     */
    std::string archivePath;
};

/** One capture queued for download. */
struct CaptureDownload
{
    int locationId = 0;      ///< Captured location.
    int satelliteId = 0;     ///< Capturing satellite.
    double captureDay = 0.0; ///< Capture time in days.
    /** Reference the deltas were encoded against (< 0 = none). */
    double referenceDay = -1.0;
    /** Guaranteed full download (self-contained streams). */
    bool fullDownload = false;
    /** Serialized EncodedImage per band, band-index order. */
    std::vector<std::vector<uint8_t>> bandPayloads;
    /** Ground reconstruction, released to the consumer on completion. */
    raster::Image reconstructed;
    /** Ground-side cloud coverage of the reconstruction. */
    double cloudFraction = 1.0;
};

/** Station-level statistics (channel stats included by value). */
struct StationStats
{
    ChannelStats channel;            ///< Downlink-channel statistics.
    uint32_t capturesCompleted = 0;  ///< Captures fully downloaded.
    uint32_t capturesFailed = 0;     ///< Captures lost to retention.
    /** Completed captures whose payloads matched bit for bit. */
    uint32_t capturesByteIdentical = 0;
    /** Day the most recent capture completed. */
    double lastCompletionDay = 0.0;
};

/**
 * Receives packetized downloads across contacts and lands them in the
 * archive.
 */
class GroundStation
{
  public:
    /** Invoked when a capture's download completes. */
    using CompletionFn = std::function<void(const CaptureDownload &)>;

    /**
     * @param params Ground segment configuration.
     * @param onComplete Optional completion callback.
     */
    explicit GroundStation(const GroundSegmentParams &params,
                           CompletionFn onComplete = nullptr);

    /** Queue a capture; transmission starts at the next contact. */
    void submit(CaptureDownload download);

    /**
     * Run every ground contact in (lastAdvanceDay, day], completing
     * and archiving downloads as their packets arrive.
     *
     * @return Captures completed during the advance.
     */
    int advanceTo(double day);

    /** The archive downloads land in. */
    Archive &archive() { return archive_; }

    /** The archive downloads land in (const view). */
    const Archive &archive() const { return archive_; }

    /** Captures submitted but not yet completed or failed. */
    size_t pendingCaptures() const { return pending_.size(); }

    /** Station-level statistics (current channel stats included). */
    StationStats stats() const;

    /** Configuration this station was built with. */
    const GroundSegmentParams &params() const { return params_; }

  private:
    struct PendingCapture
    {
        CaptureDownload download;
        /** streamId -> band index; erased as bands complete. */
        std::map<uint32_t, int> streams;
        /** Reassembled payload per completed band. */
        std::map<int, std::vector<uint8_t>> received;
        bool failed = false;
    };

    void completeCapture(PendingCapture &cap, double day);

    GroundSegmentParams params_;
    CompletionFn onComplete_;
    orbit::ContactSchedule contacts_;
    DownlinkChannel channel_;
    Archive archive_;
    /** Keyed by an internal capture id. */
    std::map<uint64_t, PendingCapture> pending_;
    /** streamId -> capture id. */
    std::map<uint32_t, uint64_t> streamToCapture_;
    uint64_t nextCaptureId_ = 1;
    double lastAdvanceDay_;
    StationStats stats_;
};

} // namespace earthplus::ground

#endif // EARTHPLUS_GROUND_STATION_HH
