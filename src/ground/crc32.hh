/**
 * @file
 * CRC-32 (IEEE 802.3) checksum.
 *
 * Integrity primitive shared by the downlink packet framing and the
 * on-disk archive format: every payload that crosses the space-ground
 * boundary or the memory-disk boundary carries a CRC so corruption is
 * detected instead of decoded as garbage.
 */

#ifndef EARTHPLUS_GROUND_CRC32_HH
#define EARTHPLUS_GROUND_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace earthplus::ground {

/**
 * CRC-32 of a byte range (IEEE 802.3 polynomial, reflected,
 * initial/final XOR 0xFFFFFFFF — the zlib/Ethernet convention, so
 * crc32("123456789") == 0xCBF43926).
 */
uint32_t crc32(const uint8_t *data, size_t size);

/** Incremental variant: feed `prev` the previous return value. */
uint32_t crc32Update(uint32_t prev, const uint8_t *data, size_t size);

} // namespace earthplus::ground

#endif // EARTHPLUS_GROUND_CRC32_HH
