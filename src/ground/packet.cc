#include "ground/packet.hh"

#include <algorithm>
#include <cstring>

#include "codec/codec.hh"
#include "ground/crc32.hh"
#include "util/bytes.hh"
#include "util/logging.hh"

namespace earthplus::ground {

namespace {

// "EPPK": downlink packet magic.
constexpr uint32_t kPacketMagic = 0x4B505045;

} // anonymous namespace

using util::appendPod;
using util::readPodAt;

std::vector<std::vector<uint8_t>>
packetize(uint32_t streamId, const std::vector<uint8_t> &payload,
          size_t payloadBytesPerPacket)
{
    EP_ASSERT(payloadBytesPerPacket > 0, "packet payload size must be > 0");
    size_t total = payload.empty()
        ? 1
        : (payload.size() + payloadBytesPerPacket - 1) /
              payloadBytesPerPacket;
    EP_ASSERT(total <= UINT32_MAX, "payload needs too many packets");

    std::vector<std::vector<uint8_t>> packets;
    packets.reserve(total);
    for (size_t seq = 0; seq < total; ++seq) {
        size_t off = seq * payloadBytesPerPacket;
        size_t len = payload.empty()
            ? 0
            : std::min(payloadBytesPerPacket, payload.size() - off);

        std::vector<uint8_t> pkt;
        pkt.reserve(kPacketHeaderBytes + len);
        appendPod(pkt, kPacketMagic);
        appendPod(pkt, streamId);
        appendPod(pkt, static_cast<uint32_t>(seq));
        appendPod(pkt, static_cast<uint32_t>(total));
        appendPod(pkt, static_cast<uint32_t>(len));
        appendPod(pkt, len ? crc32(payload.data() + off, len) : crc32(nullptr, 0));
        // Header CRC over everything before it, so a corrupted header
        // is rejected instead of mis-routing the payload.
        appendPod(pkt, crc32(pkt.data(), pkt.size()));
        if (len)
            pkt.insert(pkt.end(), payload.begin() + static_cast<ptrdiff_t>(off),
                       payload.begin() + static_cast<ptrdiff_t>(off + len));
        packets.push_back(std::move(pkt));
    }
    return packets;
}

std::vector<std::vector<uint8_t>>
packetizeToBudget(uint32_t streamId,
                  const std::vector<uint8_t> &payload,
                  size_t payloadBytesPerPacket, size_t byteBudget)
{
    EP_ASSERT(payloadBytesPerPacket > 0,
              "packet payload size must be > 0");
    auto wireSize = [&](size_t len) {
        size_t n = len == 0 ? 1
                            : (len + payloadBytesPerPacket - 1) /
                                  payloadBytesPerPacket;
        return len + n * kPacketHeaderBytes;
    };
    if (wireSize(payload.size()) <= byteBudget)
        return packetize(streamId, payload, payloadBytesPerPacket);

    // Largest payload allowance whose framed size fits: with n
    // packets the wire size is len + n * kPacketHeaderBytes and len
    // lies in ((n-1)*P, n*P], so scan packet counts upward until
    // another packet's header no longer buys any payload.
    size_t allow = 0;
    for (size_t n = 1;; ++n) {
        size_t headers = n * kPacketHeaderBytes;
        if (headers >= byteBudget)
            break;
        size_t lenCap = std::min(n * payloadBytesPerPacket,
                                 byteBudget - headers);
        if (lenCap <= (n - 1) * payloadBytesPerPacket)
            break;
        allow = std::max(allow, lenCap);
    }
    EP_ASSERT(allow > 0, "contact budget %zu cannot fit one packet",
              byteBudget);
    // truncateStream() itself rejects non-progressive payloads and
    // budgets below the stream's header floor.
    std::vector<uint8_t> cut = codec::truncateStream(payload, allow);
    return packetize(streamId, cut, payloadBytesPerPacket);
}

std::optional<PacketHeader>
parsePacketHeader(const std::vector<uint8_t> &packet)
{
    if (packet.size() < kPacketHeaderBytes)
        return std::nullopt;
    if (readPodAt<uint32_t>(packet.data(), 0) != kPacketMagic)
        return std::nullopt;
    uint32_t headerCrc = readPodAt<uint32_t>(packet.data(), 24);
    if (crc32(packet.data(), 24) != headerCrc)
        return std::nullopt;
    PacketHeader h;
    h.streamId = readPodAt<uint32_t>(packet.data(), 4);
    h.seq = readPodAt<uint32_t>(packet.data(), 8);
    h.totalPackets = readPodAt<uint32_t>(packet.data(), 12);
    h.payloadLen = readPodAt<uint32_t>(packet.data(), 16);
    h.payloadCrc = readPodAt<uint32_t>(packet.data(), 20);
    if (h.totalPackets == 0 || h.seq >= h.totalPackets)
        return std::nullopt;
    if (packet.size() != kPacketHeaderBytes + h.payloadLen)
        return std::nullopt;
    return h;
}

StreamReassembler::StreamReassembler(uint32_t streamId)
    : streamId_(streamId)
{
}

PacketVerdict
StreamReassembler::accept(const std::vector<uint8_t> &packet)
{
    auto header = parsePacketHeader(packet);
    if (!header)
        return PacketVerdict::BadHeader;
    if (header->streamId != streamId_)
        return PacketVerdict::WrongStream;
    if (totalPackets_ == 0) {
        totalPackets_ = header->totalPackets;
        have_.assign(totalPackets_, 0);
        slices_.assign(totalPackets_, {});
    } else if (header->totalPackets != totalPackets_) {
        return PacketVerdict::Inconsistent;
    }
    const uint8_t *payload = packet.data() + kPacketHeaderBytes;
    if (crc32(payload, header->payloadLen) != header->payloadCrc)
        return PacketVerdict::BadPayloadCrc;
    if (have_[header->seq])
        return PacketVerdict::Duplicate;
    have_[header->seq] = 1;
    slices_[header->seq].assign(payload, payload + header->payloadLen);
    ++received_;
    return PacketVerdict::Accepted;
}

bool
StreamReassembler::complete() const
{
    return totalPackets_ > 0 && received_ == totalPackets_;
}

std::vector<uint32_t>
StreamReassembler::missingSeqs() const
{
    std::vector<uint32_t> missing;
    for (uint32_t s = 0; s < totalPackets_; ++s)
        if (!have_[s])
            missing.push_back(s);
    return missing;
}

std::vector<uint8_t>
StreamReassembler::payload() const
{
    EP_ASSERT(complete(), "stream %u reassembly incomplete (%u/%u)",
              streamId_, received_, totalPackets_);
    size_t total = 0;
    for (const auto &s : slices_)
        total += s.size();
    std::vector<uint8_t> out;
    out.reserve(total);
    for (const auto &s : slices_)
        out.insert(out.end(), s.begin(), s.end());
    return out;
}

DownlinkChannel::DownlinkChannel(const ChannelParams &params)
    : params_(params), rng_(params.seed)
{
    EP_ASSERT(params.payloadBytesPerPacket > 0, "invalid packet size");
    EP_ASSERT(params.lossProbability >= 0.0 &&
                  params.lossProbability < 1.0,
              "loss probability %f outside [0, 1)",
              params.lossProbability);
    EP_ASSERT(params.retentionContacts >= 1,
              "need at least one retention contact");
}

uint32_t
DownlinkChannel::submit(std::vector<uint8_t> payload)
{
    uint32_t id = nextStreamId_++;
    Transfer t{id, packetize(id, payload, params_.payloadBytesPerPacket),
               StreamReassembler(id), {}, 0};
    t.attempted.assign(t.packets.size(), 0);
    pending_.push_back(std::move(t));
    return id;
}

uint32_t
DownlinkChannel::submit(std::vector<uint8_t> payload,
                        size_t contactByteBudget)
{
    uint32_t id = nextStreamId_++;
    Transfer t{id,
               packetizeToBudget(id, payload,
                                 params_.payloadBytesPerPacket,
                                 contactByteBudget),
               StreamReassembler(id), {}, 0};
    t.attempted.assign(t.packets.size(), 0);
    pending_.push_back(std::move(t));
    return id;
}

DownlinkChannel::ContactReport
DownlinkChannel::runContact()
{
    ContactReport report;
    double budget = params_.bytesPerContact;

    // Oldest transfer first: ARQ retransmissions of earlier captures
    // outrank fresh data, so nothing starves inside its retention
    // window.
    for (auto &t : pending_) {
        ++t.contactsUsed;
        if (budget <= 0.0)
            continue;
        // The ground's ARQ feedback names the missing seqs; before any
        // packet arrives the ground knows nothing, so every packet is
        // due.
        std::vector<uint32_t> want = t.reassembler.missingSeqs();
        if (want.empty() && !t.reassembler.complete()) {
            want.resize(t.packets.size());
            for (uint32_t s = 0; s < want.size(); ++s)
                want[s] = s;
        }
        for (uint32_t seq : want) {
            double wire =
                static_cast<double>(t.packets[seq].size());
            if (budget < wire)
                break; // contact over; rest goes next pass
            budget -= wire;
            ++stats_.packetsSent;
            stats_.bytesSent += t.packets[seq].size();
            if (t.attempted[seq])
                ++stats_.packetsRetransmitted;
            t.attempted[seq] = 1;
            if (rng_.bernoulli(params_.lossProbability)) {
                ++stats_.packetsLost;
                continue;
            }
            t.reassembler.accept(t.packets[seq]);
        }
        if (t.reassembler.complete())
            report.delivered.push_back(
                {t.streamId, t.reassembler.payload()});
    }

    // Drop completed transfers and those past their retention window.
    std::deque<Transfer> still;
    for (auto &t : pending_) {
        if (t.reassembler.complete()) {
            ++stats_.streamsCompleted;
            continue;
        }
        if (t.contactsUsed >= params_.retentionContacts) {
            ++stats_.streamsFailed;
            report.failed.push_back(t.streamId);
            continue;
        }
        still.push_back(std::move(t));
    }
    pending_ = std::move(still);
    return report;
}

} // namespace earthplus::ground
