/**
 * @file
 * The archive's file-mutation layer: every write, sync, rename,
 * truncate and remove the sharded archive performs goes through these
 * free functions, so fault injection (util/failpoint.hh) can make any
 * of them short-write, fail, or "crash" — without a test double and
 * without the production code paths forking.
 *
 * Fault model (docs/RELIABILITY.md holds the full matrix):
 *
 *  - `archive.io.write.error` — the write persists an `arg`-byte
 *    prefix, then reports failure (ENOSPC/EIO-style).
 *  - `archive.io.write.short` / `archive.io.write.eintr` — one loop
 *    iteration makes partial/zero progress; the internal retry loop
 *    must finish the write anyway (these never surface to callers).
 *  - `archive.io.sync.error` — fdatasync/fsync reports failure.
 *  - `archive.io.crash` — the process "dies" at this boundary: the
 *    firing operation persists at most an `arg`-byte prefix, a
 *    process-wide crash latch sets, and from then on every mutation
 *    in this module reports success while touching nothing (ghost
 *    execution). The crash-consistency harness runs a workload to the
 *    latch, resets it, reopens the archive, and checks what survived
 *    — simulating a kill at every write boundary without forking a
 *    process per boundary.
 *
 * Reads deliberately stay outside this layer: a crashed process does
 * not read, and the harness stops the workload at the latch, so read
 * paths never observe ghost state.
 *
 * With no failpoint armed each hook costs one relaxed atomic load —
 * these functions stay on the production append path and in the
 * gated benches.
 */

#ifndef EARTHPLUS_GROUND_ARCHIVE_IO_HH
#define EARTHPLUS_GROUND_ARCHIVE_IO_HH

#include <cstdint>
#include <string>

namespace earthplus::ground::archive_io {

/**
 * True once `archive.io.crash` has fired: the simulated process is
 * dead and every later mutation ghost-succeeds. Workloads under a
 * crash schedule poll this after each operation and stop at the
 * latch.
 */
bool crashed();

/** Clear the crash latch (the harness's "restart the process"). */
void resetCrashLatch();

/**
 * Create (truncate) `path` and write `size` bytes from `data` into
 * it. False on failure; ghost-succeeds after a crash.
 */
bool createFile(const std::string &path, const void *data, size_t size);

/**
 * Write `size` bytes from `data` at byte `offset` of existing file
 * `path`, retrying internally over short writes and simulated EINTR.
 * False on failure (the file may hold a partial prefix of the write —
 * exactly what a real torn write leaves); ghost-succeeds after a
 * crash.
 */
bool writeAt(const std::string &path, uint64_t offset, const void *data,
             size_t size);

/**
 * fdatasync `path`'s data to stable storage. False on failure (a
 * caller-visible event: the archive's durability contract counts and
 * reports it); ghost-succeeds after a crash. No-op true on hosts
 * without fdatasync.
 */
bool syncFile(const std::string &path);

/**
 * fsync the directory `path`, making previously renamed/created
 * entries durable. Same failure/ghost semantics as syncFile().
 */
bool syncDir(const std::string &path);

/** Atomically rename `from` to `to`. False on failure; ghost-succeeds
 *  after a crash. */
bool renameFile(const std::string &from, const std::string &to);

/** Truncate `path` to `size` bytes. False on failure; ghost-succeeds
 *  after a crash. */
bool truncateFile(const std::string &path, uint64_t size);

/** Remove one file, tolerating absence. False on failure;
 *  ghost-succeeds after a crash. */
bool removeFile(const std::string &path);

/** Recursively remove a directory tree, tolerating absence. False on
 *  failure; ghost-succeeds after a crash. */
bool removeAll(const std::string &path);

} // namespace earthplus::ground::archive_io

#endif // EARTHPLUS_GROUND_ARCHIVE_IO_HH
