#include "ground/crc32.hh"

#include <array>

namespace earthplus::ground {

namespace {

std::array<uint32_t, 256>
makeTable()
{
    std::array<uint32_t, 256> table{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<uint32_t, 256> &
table()
{
    static const std::array<uint32_t, 256> t = makeTable();
    return t;
}

} // anonymous namespace

uint32_t
crc32Update(uint32_t prev, const uint8_t *data, size_t size)
{
    uint32_t c = prev ^ 0xFFFFFFFFu;
    const auto &t = table();
    for (size_t i = 0; i < size; ++i)
        c = t[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint32_t
crc32(const uint8_t *data, size_t size)
{
    return crc32Update(0, data, size);
}

} // namespace earthplus::ground
