/**
 * @file
 * Decode-on-demand tile server over the encoded archive.
 *
 * Consumers of the ground segment do not want whole downloads — they
 * ask for "this field, that day, band 3" (a tile rectangle). Decoding
 * the full delta chain per request would be prohibitively expensive
 * at serving scale, so the server:
 *
 *  - resolves a (location, day, band) to its delta chain: the latest
 *    full download at or before the day, plus every delta after it,
 *    newest record wins per tile;
 *  - decodes only the tiles intersecting the requested rectangle
 *    (codec::decodeTiles — tiles are self-contained sub-chunks),
 *    parsing payloads straight out of the archive's file mapping
 *    (Archive::payloadView, no staging copy);
 *  - keeps decoded tiles in a size-bounded LRU cache shared by all
 *    queries, so a warm working set serves from memory;
 *  - **coalesces in-flight decodes**: when two queries race on the
 *    same cold tile, one decodes and the other waits on the same
 *    result instead of decoding twice (the thundering-herd guard a
 *    hot-spot workload needs);
 *  - **prefetches along the delta chain**: a consumer stepping
 *    day-by-day through a location's history (the dominant analytic
 *    access pattern) triggers a background decode of the next day's
 *    records into the cache, off the serving threads' latency path;
 *  - tracks per-query latency and reports p50/p99 in ServerStats —
 *    the serving SLO numbers, not just throughput;
 *  - executes batches fanned across the util::parallel thread pool
 *    (serveBatch), the serving-throughput path bench_ground_serving
 *    measures.
 */

#ifndef EARTHPLUS_GROUND_TILE_SERVER_HH
#define EARTHPLUS_GROUND_TILE_SERVER_HH

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "ground/archive.hh"
#include "raster/plane.hh"
#include "util/parallel.hh"
#include "util/telemetry.hh"

namespace earthplus::codec {
struct EncodedImage;
}

namespace earthplus::ground {

/** One tile-rectangle request. */
struct TileQuery
{
    int locationId = 0; ///< Location whose imagery is requested.
    /** Serve the image state as of this day. */
    double day = 0.0;
    int band = 0;       ///< Band index.
    int x0 = 0;     ///< Requested rect: left edge (clipped).
    int y0 = 0;     ///< Requested rect: top edge (clipped).
    int width = 0;  ///< Requested rect: width in pixels.
    int height = 0; ///< Requested rect: height in pixels.
    /** Decode only the first maxLayers quality layers (-1 = all). */
    int maxLayers = -1;
};

/** Answer to one TileQuery. */
struct TileResult
{
    /** False when no archived download covers the query. */
    bool found = false;
    /** Requested pixels (clipped rectangle, zero-filled where no
     *  record ever covered a tile). */
    raster::Plane pixels;
    /** Capture day of the newest record that contributed. */
    double servedDay = 0.0;
    /** Tiles whose decode ran for this query (cache misses). */
    int tilesDecoded = 0;
    /** Tiles served from the decoded-tile cache. */
    int tilesFromCache = 0;
    /** Tiles served by joining another query's in-flight decode. */
    int tilesCoalesced = 0;
};

/** Aggregate serving statistics. */
struct ServerStats
{
    uint64_t queries = 0;        ///< Foreground queries served.
    uint64_t tilesDecoded = 0;   ///< Tile decodes actually executed.
    uint64_t tilesFromCache = 0; ///< Tiles served from the LRU cache.
    /** Tile waits that joined another query's in-flight decode. */
    uint64_t tilesCoalesced = 0;
    uint64_t cacheEvictions = 0; ///< LRU evictions so far.
    /** Background delta-chain prefetch tasks executed. */
    uint64_t prefetchTasks = 0;
    /** Prefetch tasks dropped because the queue was saturated. */
    uint64_t prefetchDropped = 0;

    /**
     * Median foreground serve() latency in milliseconds. Percentiles
     * come from the process-wide "ground.serve.latency_ns" registry
     * histogram, windowed to the samples since this server's
     * construction (or last resetStats()): exact counts, log-bucketed
     * values (error bounded by telemetry::Histogram::kMaxRelativeError),
     * covering *every* query in the window rather than a recent ring.
     * Zero when telemetry metrics are disabled.
     */
    double latencyP50Ms = 0.0;
    /** 99th-percentile foreground serve() latency in milliseconds. */
    double latencyP99Ms = 0.0;
    /** 99.9th-percentile foreground serve() latency in milliseconds. */
    double latencyP999Ms = 0.0;

    /**
     * Fraction of tile serves that did not pay for a decode, in
     * [0, 1]: cache hits and coalesced joins both count as warm.
     */
    double hitRate() const
    {
        uint64_t warm = tilesFromCache + tilesCoalesced;
        uint64_t total = tilesDecoded + warm;
        return total ? static_cast<double>(warm) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Size-bounded LRU cache of decoded tiles, keyed by
 * (record index, tile index, layer count). Thread-safe; internally
 * sharded by key hash so concurrent serving threads do not contend on
 * one mutex (each shard owns an equal slice of the byte budget and
 * its own LRU list).
 */
class DecodedTileCache
{
  public:
    /** @param capacityBytes Pixel-storage budget (0 disables caching). */
    explicit DecodedTileCache(size_t capacityBytes);

    /** Look up a decoded tile; true and fills `out` on a hit. */
    bool get(size_t recordIdx, int tile, int maxLayers,
             raster::Plane &out);

    /** Insert a decoded tile, evicting LRU entries over budget. */
    void put(size_t recordIdx, int tile, int maxLayers,
             const raster::Plane &pixels);

    /** Bytes currently cached. */
    size_t sizeBytes() const;

    /** Entries evicted so far. */
    uint64_t evictions() const;

  private:
    static constexpr size_t kShards = 8;

    using Key = std::tuple<size_t, int, int>;
    struct Entry
    {
        Key key;
        raster::Plane pixels;
        size_t bytes;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; // front = most recent
        std::map<Key, std::list<Entry>::iterator> map;
        size_t sizeBytes = 0;
        uint64_t evictions = 0;
    };

    Shard &shardFor(const Key &key);

    size_t shardCapacityBytes_;
    Shard shards_[kShards];
};

/** Tuning knobs of a TileServer. */
struct TileServerOptions
{
    /** Decoded-tile cache budget in bytes. */
    size_t cacheBytes = 64u << 20;
    /** Enable sequential-day delta-chain prefetching. */
    bool prefetch = true;
    /** Prefetch tasks queued before new hints are dropped. */
    size_t prefetchQueueDepth = 16;
};

/**
 * Serves tile queries from an Archive.
 */
class TileServer
{
  public:
    /**
     * @param archive Archive to serve from (must outlive the server).
     *        The server memoizes stream geometry and decoded tiles by
     *        record index; concurrent appends are fine (new indices),
     *        but Archive::compact() reassigns indices — discard the
     *        server and build a fresh one after compacting.
     * @param cacheBytes Decoded-tile cache budget in bytes.
     */
    explicit TileServer(const Archive &archive,
                        size_t cacheBytes = 64u << 20);

    /** Construct with full tuning options. */
    TileServer(const Archive &archive, const TileServerOptions &options);

    /** Stops the prefetch worker; in-flight prefetches finish first. */
    ~TileServer();

    TileServer(const TileServer &) = delete;            ///< Non-copyable.
    TileServer &operator=(const TileServer &) = delete; ///< Non-copyable.

    /** Answer one query. Thread-safe. */
    TileResult serve(const TileQuery &query);

    /**
     * Answer a batch of queries, fanned across the global thread pool;
     * results are returned in query order.
     */
    std::vector<TileResult> serveBatch(const std::vector<TileQuery> &batch);

    /** Aggregate statistics since construction. */
    ServerStats stats() const;

    /** Reset aggregate statistics (cache contents are kept). */
    void resetStats();

    /**
     * Block until queued prefetch work has finished. Benchmarks and
     * tests use this to make warm-cache measurements deterministic;
     * production callers never need it.
     */
    void waitForPrefetchIdle();

  private:
    /**
     * Memoized per-record stream geometry (dimensions + coded-tile
     * flags), so warm-path queries resolve which record serves each
     * tile without re-reading or re-parsing archive payloads.
     */
    struct StreamInfo
    {
        int width = 0;
        int height = 0;
        int tileSize = 0;
        std::vector<uint8_t> tileCoded;
    };

    /** (record index, tile, maxLayers): one decode unit. */
    using TileKey = std::tuple<size_t, int, int>;

    /** Memoized geometry for a record, or null when not yet parsed. */
    const StreamInfo *findInfo(size_t recordIdx) const;

    /** Memoize geometry extracted from an already-parsed stream. */
    const StreamInfo &rememberInfo(size_t recordIdx,
                                   const codec::EncodedImage &stream);

    /**
     * The serve pipeline: chain resolution, coalesced decode, paste.
     * serve() wraps it with stats + latency + prefetch scheduling;
     * prefetch tasks call it directly so warmups stay out of the
     * foreground statistics. When `nextDayOut` is non-null it
     * receives the earliest capture day strictly after the query day
     * (+inf when none) — the chain is already being scanned here, so
     * the prefetcher gets its target without a second locked pass.
     */
    TileResult serveImpl(const TileQuery &query,
                         double *nextDayOut = nullptr);

    /** Schedule a next-day warmup when the access looks sequential. */
    void maybePrefetch(const TileQuery &query, double nextDay);

    const Archive &archive_;
    DecodedTileCache cache_;
    TileServerOptions options_;

    mutable std::mutex infoMutex_;
    std::map<size_t, StreamInfo> info_;

    /** Decodes in flight, joined by racing queries (coalescing). */
    std::mutex inflightMutex_;
    std::map<TileKey, std::shared_future<raster::Plane>> inflight_;

    /** Last served day per (location, band): sequential detection. */
    std::mutex prefetchMutex_;
    std::map<std::pair<int, int>, double> lastServedDay_;

    mutable std::mutex statsMutex_;
    ServerStats stats_;
    /** Process-wide serve-latency histogram (nanoseconds). */
    telemetry::Histogram *latencyHist_;
    /**
     * Histogram state at construction / last resetStats(); stats()
     * reports quantiles of snapshot().since(latencyBase_), so the
     * registry histogram stays monotonic while ServerStats still
     * describes only this server's current window. Guarded by
     * statsMutex_.
     */
    telemetry::HistogramSnapshot latencyBase_;

    /** Declared last: its worker must stop before members above die. */
    std::unique_ptr<util::BackgroundQueue> prefetchQueue_;
};

} // namespace earthplus::ground

#endif // EARTHPLUS_GROUND_TILE_SERVER_HH
