/**
 * @file
 * Decode-on-demand tile server over the encoded archive.
 *
 * Consumers of the ground segment do not want whole downloads — they
 * ask for "this field, that day, band 3" (a tile rectangle). Decoding
 * the full delta chain per request would be prohibitively expensive
 * at serving scale, so the server:
 *
 *  - resolves a (location, day, band) to its delta chain: the latest
 *    full download at or before the day, plus every delta after it,
 *    newest record wins per tile;
 *  - decodes only the tiles intersecting the requested rectangle
 *    (codec::decodeTiles — tiles are self-contained sub-chunks),
 *    parsing payloads straight out of the archive's file mapping
 *    (Archive::payloadView, no staging copy);
 *  - keeps decoded tiles in a size-bounded LRU cache shared by all
 *    queries, so a warm working set serves from memory;
 *  - **coalesces in-flight decodes**: when two queries race on the
 *    same cold tile, one decodes and the other waits on the same
 *    result instead of decoding twice (the thundering-herd guard a
 *    hot-spot workload needs);
 *  - **prefetches along the delta chain**: a consumer stepping
 *    day-by-day through a location's history (the dominant analytic
 *    access pattern) triggers a background decode of the next day's
 *    records into the cache, off the serving threads' latency path;
 *  - tracks per-query latency and reports p50/p99/p999 in StatsView —
 *    the serving SLO numbers, not just throughput;
 *  - exposes an **async core** (serveAsync) whose completion is
 *    posted off the global thread pool, so event-loop front ends
 *    (src/net) compose with serving without blocking their loop
 *    thread; serve()/serveBatch() are thin synchronous wrappers.
 *
 * Every outcome is reported through one TileResult carrying a typed
 * ServeError — the same enum the network protocol's EPTR status byte
 * transports, so in-process and remote callers see identical
 * semantics.
 */

#ifndef EARTHPLUS_GROUND_TILE_SERVER_HH
#define EARTHPLUS_GROUND_TILE_SERVER_HH

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "ground/archive.hh"
#include "raster/plane.hh"
#include "util/parallel.hh"
#include "util/telemetry.hh"

namespace earthplus::codec {
struct EncodedImage;
}

namespace earthplus::ground {

/**
 * Typed outcome of one tile serve, shared verbatim by the in-process
 * API and the network protocol's EPTR status byte (values are wire
 * format — never renumber, only append).
 */
enum class ServeError : uint8_t
{
    /** The full requested rectangle was served. */
    None = 0,
    /** No archived download covers (location, band) at the query day. */
    NotFound = 1,
    /**
     * The rectangle overhung the imaged area and was clipped; the
     * pixels hold the (non-empty) intersection. A partial answer, not
     * a failure: TileResult::ok() is still true.
     */
    Truncated = 2,
    /**
     * Load-shed by a serving front's admission control before
     * reaching the server; retry after TileResult::retryAfterMs.
     * Never produced by the in-process serve path.
     */
    Shed = 3,
    /** Malformed query (non-positive extent, rect outside the image,
     *  bad layer count, negative ids, non-finite day). */
    BadQuery = 4,
};

/** Short stable name of a ServeError ("ok", "not_found", ...). */
const char *serveErrorName(ServeError error);

/**
 * A query rectangle clipped against an image, from
 * TileQuery::clipTo() — the single clamping authority every serve
 * path (in-process and network-parsed) goes through.
 */
struct ClippedRect
{
    int x0 = 0; ///< Left edge after clipping (inclusive).
    int y0 = 0; ///< Top edge after clipping (inclusive).
    int x1 = 0; ///< Right edge after clipping (exclusive).
    int y1 = 0; ///< Bottom edge after clipping (exclusive).
    /** True when clipping shrank the requested rectangle. */
    bool truncated = false;

    /** True when nothing of the request intersects the image. */
    bool
    empty() const
    {
        return x0 >= x1 || y0 >= y1;
    }
};

/** One tile-rectangle request. */
struct TileQuery
{
    int locationId = 0; ///< Location whose imagery is requested.
    /** Serve the image state as of this day. */
    double day = 0.0;
    int band = 0;   ///< Band index.
    int x0 = 0;     ///< Requested rect: left edge (clipped).
    int y0 = 0;     ///< Requested rect: top edge (clipped).
    int width = 0;  ///< Requested rect: width in pixels.
    int height = 0; ///< Requested rect: height in pixels.
    /** Decode only the first maxLayers quality layers (-1 = all). */
    int maxLayers = -1;
    /**
     * Byte-budget fidelity hint: -1 serves full fidelity; 0..100
     * decodes each progressive (EPC4) record from the largest
     * recorded truncation point within that percentage of its payload
     * bytes (never below the header floor) — a fast low-fidelity
     * first answer. Pre-progressive records ignore the hint. A
     * reduced-quality serve schedules a background full-quality
     * decode of the same records, so a repeated query refines from
     * the cache.
     */
    int quality = -1;

    /**
     * Image-independent validity check: ServeError::None for a
     * well-formed query, ServeError::BadQuery for non-positive
     * extents, negative location/band ids, a non-finite day,
     * maxLayers below -1, or quality outside [-1, 100]. Both the
     * serve pipeline and the network frame parser route queries
     * through this single check, so a network-decoded query cannot
     * bypass validation.
     */
    ServeError validate() const;

    /**
     * Clip the requested rectangle against an imageWidth x
     * imageHeight image. This is the only clamping site in the
     * serving stack; the result's `truncated` flag is what turns
     * into ServeError::Truncated when the intersection is non-empty.
     */
    ClippedRect clipTo(int imageWidth, int imageHeight) const;
};

/** Answer to one TileQuery. */
struct TileResult
{
    /**
     * Outcome of the serve. A default-constructed result reports
     * NotFound; the serve pipeline upgrades it to None/Truncated
     * (payload valid) or BadQuery. Network fronts add Shed.
     */
    ServeError error = ServeError::NotFound;
    /** Requested pixels (clipped rectangle, zero-filled where no
     *  record ever covered a tile). Valid only when ok(). */
    raster::Plane pixels;
    /** Capture day of the newest record that contributed. */
    double servedDay = 0.0;
    /** Wall-clock nanoseconds this query spent inside the server
     *  (chain resolution through paste; excludes any network front's
     *  queueing). Zero for Shed responses. */
    uint64_t serveNs = 0;
    /** For Shed results: suggested client backoff in milliseconds. */
    uint32_t retryAfterMs = 0;
    /** Tiles whose decode ran for this query (cache misses). */
    int tilesDecoded = 0;
    /** Tiles served from the decoded-tile cache. */
    int tilesFromCache = 0;
    /** Tiles served by joining another query's in-flight decode. */
    int tilesCoalesced = 0;

    /** True when `pixels` holds a servable answer (None/Truncated). */
    bool
    ok() const
    {
        return error == ServeError::None ||
               error == ServeError::Truncated;
    }
};

/**
 * One coherent serving-statistics view: the telemetry registry's
 * ground.* metrics (docs/OBSERVABILITY.md naming) windowed to this
 * server's lifetime (construction, or the last resetStats()). This
 * replaces the old ServerStats side-tallies — the registry is the
 * single source of truth, and StatsView is a read of it, so the
 * snapshotJson() export and this accessor can never disagree.
 *
 * The window subtracts per-server baselines from the process-wide
 * metrics; when several servers serve concurrently in one process,
 * each window spans the whole process's serving activity during its
 * lifetime (use the registry directly to attribute finer).
 */
struct StatsView
{
    uint64_t queries = 0;      ///< Window over ground.serve.queries.
    uint64_t tilesDecoded = 0; ///< Window over ground.tiles.decoded.
    /** Window over ground.tiles.cache_hit (LRU hits). */
    uint64_t tilesCacheHit = 0;
    /** Window over ground.tiles.coalesced (joined in-flight decodes). */
    uint64_t tilesCoalesced = 0;
    /** Window over ground.coalesce.claims (decode claims published). */
    uint64_t coalesceClaims = 0;
    /** This server's decoded-tile-cache evictions in the window. */
    uint64_t cacheEvictions = 0;
    /** Window over ground.prefetch.tasks (background warmups run). */
    uint64_t prefetchTasks = 0;
    /** Window over ground.prefetch.dropped (saturated-queue drops). */
    uint64_t prefetchDropped = 0;

    /**
     * Median foreground serve() latency in milliseconds, from the
     * process-wide "ground.serve.latency_ns" histogram windowed to
     * the same baseline: exact counts, log-bucketed values (error
     * bounded by telemetry::Histogram::kMaxRelativeError), covering
     * *every* query in the window rather than a recent ring. Zero
     * when telemetry metrics are disabled.
     */
    double latencyP50Ms = 0.0;
    /** 99th-percentile foreground serve() latency in milliseconds. */
    double latencyP99Ms = 0.0;
    /** 99.9th-percentile foreground serve() latency in milliseconds. */
    double latencyP999Ms = 0.0;

    /**
     * Fraction of tile serves that did not pay for a decode, in
     * [0, 1]: cache hits and coalesced joins both count as warm.
     */
    double
    hitRate() const
    {
        uint64_t warm = tilesCacheHit + tilesCoalesced;
        uint64_t total = tilesDecoded + warm;
        return total ? static_cast<double>(warm) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Size-bounded LRU cache of decoded tiles, keyed by
 * (record index, tile index, layer count, quality). Thread-safe;
 * internally sharded by key hash so concurrent serving threads do not
 * contend on one mutex (each shard owns an equal slice of the byte
 * budget and its own LRU list).
 */
class DecodedTileCache
{
  public:
    /** @param capacityBytes Pixel-storage budget (0 disables caching). */
    explicit DecodedTileCache(size_t capacityBytes);

    /** Look up a decoded tile; true and fills `out` on a hit. */
    bool get(size_t recordIdx, int tile, int maxLayers, int quality,
             raster::Plane &out);

    /** Insert a decoded tile, evicting LRU entries over budget. */
    void put(size_t recordIdx, int tile, int maxLayers, int quality,
             const raster::Plane &pixels);

    /** Bytes currently cached. */
    size_t sizeBytes() const;

    /** Entries evicted so far. */
    uint64_t evictions() const;

  private:
    static constexpr size_t kShards = 8;

    using Key = std::tuple<size_t, int, int, int>;
    struct Entry
    {
        Key key;
        raster::Plane pixels;
        size_t bytes;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; // front = most recent
        std::map<Key, std::list<Entry>::iterator> map;
        size_t sizeBytes = 0;
        uint64_t evictions = 0;
    };

    Shard &shardFor(const Key &key);

    size_t shardCapacityBytes_;
    Shard shards_[kShards];
};

/** Tuning knobs of a TileServer. */
struct TileServerOptions
{
    /** Decoded-tile cache budget in bytes. */
    size_t cacheBytes = 64u << 20;
    /** Enable sequential-day delta-chain prefetching. */
    bool prefetch = true;
    /** Prefetch tasks queued before new hints are dropped. */
    size_t prefetchQueueDepth = 16;
};

/**
 * Serves tile queries from an Archive.
 */
class TileServer
{
  public:
    /**
     * Invoked exactly once with the finished result of a serveAsync()
     * call, on whichever thread completed the serve (a pool worker,
     * or the caller when the pool runs inline). Must not throw; keep
     * it cheap — it runs on the serving latency path.
     */
    using ServeCompletion = std::function<void(const TileResult &)>;

    /**
     * @param archive Archive to serve from (must outlive the server).
     *        The server memoizes stream geometry and decoded tiles by
     *        record index; concurrent appends are fine (new indices),
     *        but Archive::compact() reassigns indices — discard the
     *        server and build a fresh one after compacting.
     * @param cacheBytes Decoded-tile cache budget in bytes.
     */
    explicit TileServer(const Archive &archive,
                        size_t cacheBytes = 64u << 20);

    /** Construct with full tuning options. */
    TileServer(const Archive &archive, const TileServerOptions &options);

    /** Stops the prefetch worker; in-flight prefetches finish first. */
    ~TileServer();

    TileServer(const TileServer &) = delete;            ///< Non-copyable.
    TileServer &operator=(const TileServer &) = delete; ///< Non-copyable.

    /**
     * Answer one query asynchronously. Thread-safe.
     *
     * The serve runs through util::ThreadPool::global(): queued to a
     * worker when the caller could fan out, executed inline (future
     * already ready on return) on a single-lane pool or from inside a
     * parallel region — the same discipline as every other pool use,
     * so nested serving can never deadlock the fixed-size pool.
     *
     * @param query The tile rectangle to serve.
     * @param onDone Optional completion, invoked with the result
     *        after the serve finishes (not invoked if the serve
     *        throws; the exception is delivered via the future).
     * @return Shared future yielding the TileResult.
     */
    std::shared_future<TileResult>
    serveAsync(const TileQuery &query, ServeCompletion onDone = {});

    /**
     * Answer one query synchronously. Semantically identical to
     * serveAsync(query).get(), but the core runs on the calling
     * thread (a blocked caller gains nothing from a pool hop).
     * Thread-safe.
     */
    TileResult serve(const TileQuery &query);

    /**
     * Answer a batch of queries, fanned across the global thread pool;
     * results are returned in query order.
     */
    std::vector<TileResult> serveBatch(const std::vector<TileQuery> &batch);

    /** Serving statistics windowed since construction / resetStats(). */
    StatsView statsView() const;

    /**
     * @deprecated Alias of statsView(), kept for source compatibility
     * with pre-StatsView callers; new code should use statsView().
     */
    StatsView stats() const { return statsView(); }

    /** Reset the statistics window (cache contents are kept). */
    void resetStats();

    /**
     * Block until queued prefetch work has finished. Benchmarks and
     * tests use this to make warm-cache measurements deterministic;
     * production callers never need it.
     */
    void waitForPrefetchIdle();

  private:
    /**
     * Memoized per-record stream geometry (dimensions + coded-tile
     * flags), so warm-path queries resolve which record serves each
     * tile without re-reading or re-parsing archive payloads.
     */
    struct StreamInfo
    {
        int width = 0;
        int height = 0;
        int tileSize = 0;
        std::vector<uint8_t> tileCoded;
    };

    /**
     * Raw values of the ground.* registry metrics this server windows
     * for StatsView; captured at construction and resetStats().
     */
    struct MetricsBaseline
    {
        uint64_t queries = 0;
        uint64_t tilesDecoded = 0;
        uint64_t tilesCacheHit = 0;
        uint64_t tilesCoalesced = 0;
        uint64_t coalesceClaims = 0;
        uint64_t prefetchTasks = 0;
        uint64_t prefetchDropped = 0;
        uint64_t cacheEvictions = 0;
    };

    /** (record index, tile, maxLayers, quality): one decode unit. */
    using TileKey = std::tuple<size_t, int, int, int>;

    /** Memoized geometry for a record, or null when not yet parsed. */
    const StreamInfo *findInfo(size_t recordIdx) const;

    /** Memoize geometry extracted from an already-parsed stream. */
    const StreamInfo &rememberInfo(size_t recordIdx,
                                   const codec::EncodedImage &stream);

    /**
     * One foreground serve: serveImpl() wrapped with the latency
     * histogram, registry counters, per-query timing, and prefetch
     * scheduling. Both the inline and the pooled serveAsync() paths
     * land here.
     */
    TileResult serveFront(const TileQuery &query);

    /**
     * The serve pipeline: chain resolution, coalesced decode, paste.
     * serveFront() wraps it with stats + latency + prefetch
     * scheduling; prefetch tasks call it directly so warmups stay out
     * of the foreground statistics. When `nextDayOut` is non-null it
     * receives the earliest capture day strictly after the query day
     * (+inf when none) — the chain is already being scanned here, so
     * the prefetcher gets its target without a second locked pass.
     */
    TileResult serveImpl(const TileQuery &query,
                         double *nextDayOut = nullptr);

    /** Schedule a next-day warmup when the access looks sequential. */
    void maybePrefetch(const TileQuery &query, double nextDay);

    /**
     * After a reduced-quality serve: queue a background full-quality
     * decode of the same rectangle on the prefetch queue, so the
     * consumer's follow-up (or re-issued) query refines from cache
     * instead of paying the full decode in the foreground.
     */
    void scheduleRefine(const TileQuery &query);

    /**
     * Parse record `recordIdx`'s payload honoring the quality hint:
     * progressive payloads with quality in [0, 100) parse from the
     * largest recorded truncation point within that percentage of
     * their bytes (never below the header floor); everything else
     * parses in full.
     */
    codec::EncodedImage parseRecord(size_t recordIdx,
                                    int quality) const;

    const Archive &archive_;
    DecodedTileCache cache_;
    TileServerOptions options_;

    mutable std::mutex infoMutex_;
    std::map<size_t, StreamInfo> info_;

    /** Decodes in flight, joined by racing queries (coalescing). */
    std::mutex inflightMutex_;
    std::map<TileKey, std::shared_future<raster::Plane>> inflight_;

    /** Last served day per (location, band): sequential detection. */
    std::mutex prefetchMutex_;
    std::map<std::pair<int, int>, double> lastServedDay_;

    mutable std::mutex statsMutex_;
    /** Registry values at the start of the window (statsMutex_). */
    MetricsBaseline metricsBase_;
    /** Process-wide serve-latency histogram (nanoseconds). */
    telemetry::Histogram *latencyHist_;
    /**
     * Histogram state at construction / last resetStats(); statsView()
     * reports quantiles of snapshot().since(latencyBase_), so the
     * registry histogram stays monotonic while StatsView still
     * describes only this server's current window. Guarded by
     * statsMutex_.
     */
    telemetry::HistogramSnapshot latencyBase_;

    /** Declared last: its worker must stop before members above die. */
    std::unique_ptr<util::BackgroundQueue> prefetchQueue_;
};

} // namespace earthplus::ground

#endif // EARTHPLUS_GROUND_TILE_SERVER_HH
