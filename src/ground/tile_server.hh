/**
 * @file
 * Decode-on-demand tile server over the encoded archive.
 *
 * Consumers of the ground segment do not want whole downloads — they
 * ask for "this field, that day, band 3" (a tile rectangle). Decoding
 * the full delta chain per request would be prohibitively expensive
 * at serving scale, so the server:
 *
 *  - resolves a (location, day, band) to its delta chain: the latest
 *    full download at or before the day, plus every delta after it,
 *    newest record wins per tile;
 *  - decodes only the tiles intersecting the requested rectangle
 *    (codec::decodeTiles — tiles are self-contained sub-chunks);
 *  - keeps decoded tiles in a size-bounded LRU cache shared by all
 *    queries, so a warm working set serves from memory;
 *  - executes batches fanned across the util::parallel thread pool
 *    (serveBatch), the serving-throughput path bench_ground_serving
 *    measures.
 */

#ifndef EARTHPLUS_GROUND_TILE_SERVER_HH
#define EARTHPLUS_GROUND_TILE_SERVER_HH

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "ground/archive.hh"
#include "raster/plane.hh"

namespace earthplus::codec {
struct EncodedImage;
}

namespace earthplus::ground {

/** One tile-rectangle request. */
struct TileQuery
{
    int locationId = 0;
    /** Serve the image state as of this day. */
    double day = 0.0;
    int band = 0;
    /** Requested pixel rectangle (clipped to the image). */
    int x0 = 0;
    int y0 = 0;
    int width = 0;
    int height = 0;
    /** Decode only the first maxLayers quality layers (-1 = all). */
    int maxLayers = -1;
};

/** Answer to one TileQuery. */
struct TileResult
{
    /** False when no archived download covers the query. */
    bool found = false;
    /** Requested pixels (clipped rectangle, zero-filled where no
     *  record ever covered a tile). */
    raster::Plane pixels;
    /** Capture day of the newest record that contributed. */
    double servedDay = 0.0;
    /** Tiles whose decode ran for this query (cache misses). */
    int tilesDecoded = 0;
    /** Tiles served from the decoded-tile cache. */
    int tilesFromCache = 0;
};

/** Aggregate serving statistics. */
struct ServerStats
{
    uint64_t queries = 0;
    uint64_t tilesDecoded = 0;
    uint64_t tilesFromCache = 0;
    uint64_t cacheEvictions = 0;

    /** Warm-cache effectiveness in [0, 1]. */
    double hitRate() const
    {
        uint64_t total = tilesDecoded + tilesFromCache;
        return total ? static_cast<double>(tilesFromCache) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Size-bounded LRU cache of decoded tiles, keyed by
 * (record index, tile index, layer count). Thread-safe; internally
 * sharded by key hash so concurrent serving threads do not contend on
 * one mutex (each shard owns an equal slice of the byte budget and
 * its own LRU list).
 */
class DecodedTileCache
{
  public:
    /** @param capacityBytes Pixel-storage budget (0 disables caching). */
    explicit DecodedTileCache(size_t capacityBytes);

    /** Look up a decoded tile; true and fills `out` on a hit. */
    bool get(size_t recordIdx, int tile, int maxLayers,
             raster::Plane &out);

    /** Insert a decoded tile, evicting LRU entries over budget. */
    void put(size_t recordIdx, int tile, int maxLayers,
             const raster::Plane &pixels);

    /** Bytes currently cached. */
    size_t sizeBytes() const;

    /** Entries evicted so far. */
    uint64_t evictions() const;

  private:
    static constexpr size_t kShards = 8;

    using Key = std::tuple<size_t, int, int>;
    struct Entry
    {
        Key key;
        raster::Plane pixels;
        size_t bytes;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; // front = most recent
        std::map<Key, std::list<Entry>::iterator> map;
        size_t sizeBytes = 0;
        uint64_t evictions = 0;
    };

    Shard &shardFor(const Key &key);

    size_t shardCapacityBytes_;
    Shard shards_[kShards];
};

/**
 * Serves tile queries from an Archive.
 */
class TileServer
{
  public:
    /**
     * @param archive Archive to serve from (must outlive the server).
     *        The server memoizes stream geometry and decoded tiles by
     *        record index; appends are fine (new indices), but
     *        Archive::compact() reassigns indices — discard the
     *        server and build a fresh one after compacting.
     * @param cacheBytes Decoded-tile cache budget in bytes.
     */
    TileServer(const Archive &archive, size_t cacheBytes = 64u << 20);

    /** Answer one query. Thread-safe. */
    TileResult serve(const TileQuery &query);

    /**
     * Answer a batch of queries, fanned across the global thread pool;
     * results are returned in query order.
     */
    std::vector<TileResult> serveBatch(const std::vector<TileQuery> &batch);

    /** Aggregate statistics since construction. */
    ServerStats stats() const;

    /** Reset aggregate statistics (cache contents are kept). */
    void resetStats();

  private:
    /**
     * Memoized per-record stream geometry (dimensions + coded-tile
     * flags), so warm-path queries resolve which record serves each
     * tile without re-reading or re-parsing archive payloads.
     */
    struct StreamInfo
    {
        int width = 0;
        int height = 0;
        int tileSize = 0;
        std::vector<uint8_t> tileCoded;
    };

    /** Memoized geometry for a record, or null when not yet parsed. */
    const StreamInfo *findInfo(size_t recordIdx) const;

    /** Memoize geometry extracted from an already-parsed stream. */
    const StreamInfo &rememberInfo(size_t recordIdx,
                                   const codec::EncodedImage &stream);

    const Archive &archive_;
    DecodedTileCache cache_;
    mutable std::mutex infoMutex_;
    std::map<size_t, StreamInfo> info_;
    mutable std::mutex statsMutex_;
    ServerStats stats_;
};

} // namespace earthplus::ground

#endif // EARTHPLUS_GROUND_TILE_SERVER_HH
