#include "util/rng.hh"

#include <cmath>

namespace earthplus {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(uint64_t seed)
    : seed_(seed), cachedNormal_(0.0), hasCachedNormal_(false)
{
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    if (lo >= hi)
        return lo;
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = uniform();
    double u2 = uniform();
    while (u1 <= 1e-300)
        u1 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    cachedNormal_ = r * std::sin(2.0 * M_PI * u2);
    hasCachedNormal_ = true;
    return r * std::cos(2.0 * M_PI * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

int
Rng::poisson(double mean)
{
    if (mean <= 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplicative method.
        double limit = std::exp(-mean);
        double prod = uniform();
        int n = 0;
        while (prod > limit) {
            prod *= uniform();
            ++n;
        }
        return n;
    }
    // Normal approximation with continuity correction for large means.
    double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
}

double
Rng::exponential(double rate)
{
    double u = uniform();
    while (u <= 1e-300)
        u = uniform();
    return -std::log(u) / rate;
}

Rng
Rng::fork(uint64_t salt) const
{
    uint64_t mix = seed_ ^ (salt * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
    uint64_t sm = mix;
    // One extra scramble round keeps sibling streams decorrelated even
    // for adjacent salts.
    return Rng(splitmix64(sm));
}

} // namespace earthplus
