/**
 * @file
 * Status-message and error-handling helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (aborts), fatal() for unrecoverable user/configuration errors (exit 1),
 * warn()/inform() for non-fatal status messages.
 *
 * Output is serialized: concurrent warn()/inform() calls never interleave
 * mid-line. The EARTHPLUS_LOG_LEVEL environment variable ("info" default,
 * "warn", "error"/"quiet") filters non-fatal messages; panic() and
 * fatal() always print.
 */

#ifndef EARTHPLUS_UTIL_LOGGING_HH
#define EARTHPLUS_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace earthplus {

/**
 * Build a std::string from a printf-style format string.
 *
 * @param fmt printf-style format.
 * @return The formatted string.
 */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** strfmt() variant taking a va_list. */
std::string vstrfmt(const char *fmt, va_list args);

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort. Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable error caused by the caller (bad configuration,
 * invalid arguments) and exit with status 1. Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr; execution continues. */
void warn(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr; execution continues. */
void inform(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * panic() unless the condition holds.
 *
 * Used for cheap, always-on invariant checks on public API boundaries.
 */
#define EP_ASSERT(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::earthplus::panic("assertion '%s' failed at %s:%d: %s",       \
                               #cond, __FILE__, __LINE__,                  \
                               ::earthplus::strfmt(__VA_ARGS__).c_str());  \
        }                                                                  \
    } while (0)

} // namespace earthplus

#endif // EARTHPLUS_UTIL_LOGGING_HH
