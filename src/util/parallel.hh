/**
 * @file
 * Work-scheduling substrate: a fixed thread pool with futures-based
 * task submission, a blocking parallelFor, and deterministic
 * ordered-map/reduce helpers.
 *
 * This is the concurrency engine underneath the tile-granular pipeline:
 * the codec encodes tiles as independent jobs, the systems layer fans
 * bands out, and the simulation layer fans whole (location, system)
 * runs across a constellation. All of them share one process-wide pool
 * (ThreadPool::global()) sized by the EARTHPLUS_THREADS environment
 * variable (default: hardware concurrency).
 *
 * Determinism: parallelMap() writes result i into slot i and
 * orderedReduce() consumes results in index order, so the output of a
 * parallel run is byte-identical to a serial run regardless of thread
 * count or scheduling — the property the codec's golden test guards.
 *
 * Nesting: a parallel region entered from inside a pool worker (e.g.
 * the codec's per-tile loop reached from a per-band job) executes
 * inline on the calling thread instead of re-entering the pool, so
 * nested parallelism can never deadlock the fixed-size pool.
 */

#ifndef EARTHPLUS_UTIL_PARALLEL_HH
#define EARTHPLUS_UTIL_PARALLEL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace earthplus::util {

/**
 * Fixed-size worker pool.
 *
 * A pool with threadCount() == 1 runs every task inline on the calling
 * thread; no worker threads are spawned, which makes single-threaded
 * runs exactly the serial code path (useful for debugging and for the
 * speedup baselines in bench_fig16).
 */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count (clamped to >= 1). 1 means fully
     *        inline execution with no worker threads.
     */
    explicit ThreadPool(int threads);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of execution lanes (callers count as one at 1). */
    int threadCount() const { return threads_; }

    /** True when the calling thread is one of this pool's workers. */
    static bool onWorkerThread();

    /**
     * Submit one task; returns a future for its result.
     *
     * Tasks submitted from a worker thread of this pool run inline
     * (completed future) to avoid queue-wait deadlocks.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        if (threads_ <= 1 || onWorkerThread()) {
            (*task)();
            return fut;
        }
        enqueue([task] { (*task)(); });
        return fut;
    }

    /**
     * Run body(i) for every i in [begin, end), blocking until all
     * iterations finish. The calling thread participates, so progress
     * is guaranteed even when every worker is busy elsewhere — helper
     * jobs are detached: one that the pool never gets around to
     * scheduling is simply a no-op once the caller has drained the
     * range, so completion never waits on a parked worker.
     *
     * Iterations are distributed dynamically in chunks of `grain`
     * (0 = pick automatically). The body must not assume any
     * particular execution order; use parallelMap()/orderedReduce()
     * when results must be assembled deterministically.
     *
     * The first exception thrown by any iteration is rethrown on the
     * calling thread after the loop drains.
     */
    void parallelFor(int64_t begin, int64_t end,
                     const std::function<void(int64_t)> &body,
                     int64_t grain = 0);

    /**
     * parallelFor() that reports whether the loop actually fanned out
     * across pool lanes. False means every iteration ran serially on
     * the calling thread — a single-lane pool, a nested parallel
     * region (worker thread or InlineRegion), or a range too small to
     * split. Callers that *structure* work around the fan-out (the
     * codec's chunked entropy stages) use this so a nested call
     * degrades to a deliberate serial pass instead of quietly
     * serializing inside what looks like a parallel region.
     *
     * A range of exactly one iteration runs the body directly WITHOUT
     * entering a nested-region scope: a lone item is not a parallel
     * region, and parallelism nested inside it (chunk-parallel decode
     * of a single tile) must still be able to reach the pool.
     */
    bool tryParallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t)> &body,
                        int64_t grain = 0);

    /**
     * True when a parallelFor from the calling thread could fan into
     * the pool: multi-lane pool and not already inside a parallel
     * region. A cheap pre-check for code that picks between a staged
     * parallel structure and a plain serial loop up front.
     */
    bool canFanOut() const
    {
        return threads_ > 1 && !onWorkerThread();
    }

    /**
     * The process-wide pool, created on first use with
     * defaultThreadCount() lanes.
     */
    static ThreadPool &global();

    /**
     * Replace the global pool with one of `threads` lanes. Intended
     * for benchmarks sweeping thread counts; must not race with tasks
     * in flight on the old pool.
     */
    static void setGlobalThreads(int threads);

    /** EARTHPLUS_THREADS when set (>= 1), else hardware concurrency. */
    static int defaultThreadCount();

  private:
    /** Queued task plus its submission stamp for the wait histogram. */
    struct Job
    {
        std::function<void()> fn;
        uint64_t enqueueNs = 0;
    };

    void enqueue(std::function<void()> job);
    void workerLoop();

    int threads_;
    std::vector<std::thread> workers_;
    std::deque<Job> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/**
 * RAII marker making the current thread count as being inside a
 * parallel region for its lifetime: ThreadPool submissions and
 * parallelFor calls on this thread execute inline instead of fanning
 * into the pool. Use it around work that must not depend on pool
 * workers becoming free — the canonical case is decoding while
 * holding in-flight claims that blocked pool jobs are waiting on (the
 * tile server's coalesced decode): fanning that work into the pool
 * could deadlock, because every worker may be parked on exactly the
 * futures this thread has promised to fulfil.
 */
class InlineRegion
{
  public:
    InlineRegion();
    ~InlineRegion();

    InlineRegion(const InlineRegion &) = delete;
    InlineRegion &operator=(const InlineRegion &) = delete;
};

/**
 * Bounded single-worker queue for best-effort background tasks.
 *
 * ThreadPool::submit() is the wrong tool for optional work kicked off
 * from inside a pool job: submission from a worker thread executes
 * inline, which would serialize the optional work into the latency
 * path that tried to offload it. A BackgroundQueue owns one dedicated
 * thread; post() never executes inline and never blocks — when the
 * queue is at capacity the task is dropped (post() returns false so
 * the caller can count it), which is the right failure mode for hints
 * (the ground tile server's delta-chain prefetcher is the canonical
 * user: a dropped prefetch only costs a future cache miss).
 *
 * Tasks execute inside an InlineRegion: background work runs its
 * parallel regions inline rather than competing with (or deadlocking
 * against) the pool's foreground jobs.
 *
 * Destruction stops the worker after the task in flight finishes;
 * queued-but-unstarted tasks are discarded.
 */
class BackgroundQueue
{
  public:
    /** @param maxDepth Tasks held before post() starts dropping. */
    explicit BackgroundQueue(size_t maxDepth = 16);

    ~BackgroundQueue();

    BackgroundQueue(const BackgroundQueue &) = delete;
    BackgroundQueue &operator=(const BackgroundQueue &) = delete;

    /**
     * Enqueue a task for the worker thread.
     *
     * @return False when the queue was full and the task was dropped.
     */
    bool post(std::function<void()> task);

    /** Block until the queue is empty and the worker is idle. */
    void drain();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::deque<std::function<void()>> queue_;
    size_t maxDepth_;
    bool stop_ = false;
    bool busy_ = false;
    std::thread worker_;
};

/**
 * Deterministic parallel map: out[i] = fn(i) for i in [0, n), computed
 * in parallel, returned in index order. R must be default- and
 * move-constructible.
 */
template <typename Fn>
auto
parallelMap(ThreadPool &pool, size_t n, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, size_t>>
{
    using R = std::invoke_result_t<Fn &, size_t>;
    std::vector<R> out(n);
    pool.parallelFor(0, static_cast<int64_t>(n), [&](int64_t i) {
        out[static_cast<size_t>(i)] = fn(static_cast<size_t>(i));
    });
    return out;
}

/** parallelMap() on the global pool. */
template <typename Fn>
auto
parallelMap(size_t n, Fn &&fn)
    -> std::vector<std::invoke_result_t<Fn &, size_t>>
{
    return parallelMap(ThreadPool::global(), n, std::forward<Fn>(fn));
}

/**
 * Deterministic ordered reduce: produce(i) runs in parallel for every
 * i in [0, n); consume(i, result) then runs serially on the calling
 * thread in strictly increasing index order. This is how the codec
 * assembles per-tile entropy chunks into a byte-identical stream.
 */
template <typename Produce, typename Consume>
void
orderedReduce(ThreadPool &pool, size_t n, Produce &&produce,
              Consume &&consume)
{
    auto results = parallelMap(pool, n, std::forward<Produce>(produce));
    for (size_t i = 0; i < n; ++i)
        consume(i, std::move(results[i]));
}

/** orderedReduce() on the global pool. */
template <typename Produce, typename Consume>
void
orderedReduce(size_t n, Produce &&produce, Consume &&consume)
{
    orderedReduce(ThreadPool::global(), n, std::forward<Produce>(produce),
                  std::forward<Consume>(consume));
}

} // namespace earthplus::util

#endif // EARTHPLUS_UTIL_PARALLEL_HH
