#include "util/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace earthplus::util {

namespace {

/**
 * Pool/queue metrics, resolved once. Registry entries are process-wide
 * and leaked, so the references stay valid for the program's lifetime.
 */
struct PoolMetrics
{
    telemetry::Gauge &queueDepth =
        telemetry::gauge("pool.queue_depth");
    telemetry::Histogram &taskWaitNs =
        telemetry::histogram("pool.task_wait_ns");
    telemetry::Counter &tasks = telemetry::counter("pool.tasks");
    telemetry::Counter &fanouts =
        telemetry::counter("pool.parallel_for.fanout");
    telemetry::Counter &serials =
        telemetry::counter("pool.parallel_for.serial");
};

PoolMetrics &
poolMetrics()
{
    static PoolMetrics m;
    return m;
}

/** BackgroundQueue metrics; same lifetime story as PoolMetrics. */
struct BgMetrics
{
    telemetry::Gauge &queueDepth = telemetry::gauge("bg.queue_depth");
    telemetry::Counter &tasks = telemetry::counter("bg.tasks");
    telemetry::Counter &dropped = telemetry::counter("bg.dropped");
};

BgMetrics &
bgMetrics()
{
    static BgMetrics m;
    return m;
}

/**
 * Depth of parallel regions on the current thread: > 0 inside a pool
 * worker's lifetime or while a thread is executing parallelFor
 * iterations. Nested regions run inline instead of re-entering the
 * pool.
 */
thread_local int tlsParallelDepth = 0;

struct DepthGuard
{
    DepthGuard() { ++tlsParallelDepth; }
    ~DepthGuard() { --tlsParallelDepth; }
};

std::mutex gGlobalMutex;
std::unique_ptr<ThreadPool> gGlobalPool;

} // anonymous namespace

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1))
{
    // Lane 0 is the calling thread; spawn the remaining lanes.
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::onWorkerThread()
{
    return tlsParallelDepth > 0;
}

InlineRegion::InlineRegion()
{
    ++tlsParallelDepth;
}

InlineRegion::~InlineRegion()
{
    --tlsParallelDepth;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    Job entry;
    entry.fn = std::move(job);
    if (telemetry::metricsEnabled()) {
        entry.enqueueNs = telemetry::nowNanos();
        poolMetrics().queueDepth.add(1);
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(entry));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    DepthGuard depth; // everything a worker runs counts as nested
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        if (job.enqueueNs != 0 && telemetry::metricsEnabled()) {
            PoolMetrics &m = poolMetrics();
            m.queueDepth.add(-1);
            m.taskWaitNs.record(telemetry::nowNanos() - job.enqueueNs);
            m.tasks.add();
        }
        telemetry::TraceSpan span("pool.task", "pool");
        job.fn();
    }
}

namespace {

/**
 * Shared state of one parallelFor invocation. Helpers hold it via
 * shared_ptr, so a helper the pool schedules only after the caller
 * has already returned finds the range exhausted and exits without
 * ever touching the (by then destroyed) caller stack — the body is
 * copied in here, never borrowed.
 */
struct ForState
{
    std::function<void(int64_t)> body;
    std::atomic<int64_t> next{0};
    int64_t end = 0;
    int64_t grain = 1;
    std::atomic<bool> firstError{false};
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable cv;
    int active = 0; ///< Helpers currently inside drainFor().
};

void
drainFor(ForState &s)
{
    DepthGuard depth;
    for (;;) {
        int64_t i0 = s.next.fetch_add(s.grain);
        if (i0 >= s.end)
            return;
        int64_t i1 = std::min(i0 + s.grain, s.end);
        try {
            for (int64_t i = i0; i < i1; ++i)
                s.body(i);
        } catch (...) {
            if (!s.firstError.exchange(true))
                s.error = std::current_exception();
            s.next.store(s.end); // cancel remaining chunks
            return;
        }
    }
}

} // anonymous namespace

void
ThreadPool::parallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t)> &body,
                        int64_t grain)
{
    tryParallelFor(begin, end, body, grain);
}

bool
ThreadPool::tryParallelFor(int64_t begin, int64_t end,
                           const std::function<void(int64_t)> &body,
                           int64_t grain)
{
    int64_t count = end - begin;
    if (count <= 0)
        return false;

    // A lone iteration is not a parallel region: run it directly with
    // no depth marker, so parallelism nested inside it (chunk-parallel
    // decode of one tile) still reaches the pool.
    if (count == 1) {
        body(begin);
        return false;
    }

    // A multi-iteration region is a "pool.parallel_for" span whether
    // it fans out or degrades to the serial path — single-lane hosts
    // still show the region in traces.
    telemetry::TraceSpan span("pool.parallel_for", "pool");

    // Serial path: single-lane pool or nested region.
    if (threads_ <= 1 || tlsParallelDepth > 0) {
        poolMetrics().serials.add();
        DepthGuard depth;
        for (int64_t i = begin; i < end; ++i)
            body(i);
        return false;
    }
    poolMetrics().fanouts.add();

    if (grain <= 0)
        grain = std::max<int64_t>(
            1, count / (static_cast<int64_t>(threads_) * 4));

    auto state = std::make_shared<ForState>();
    state->body = body;
    state->next.store(begin);
    state->end = end;
    state->grain = grain;

    // One detached helper per extra lane (bounded by the chunk count).
    // The caller drains chunks itself, so by the time its own drain
    // returns the range is exhausted; it then waits only for helpers
    // that actually STARTED draining. A helper the pool never ran —
    // every worker parked on futures only this thread will fulfil,
    // the scenario behind the tile server's coalesced decode — runs
    // later as a no-op instead of deadlocking the caller, which is
    // why completion never depends on helper scheduling.
    int64_t chunks = (count + grain - 1) / grain;
    int helpers = static_cast<int>(
        std::min<int64_t>(threads_ - 1, chunks - 1));
    for (int i = 0; i < helpers; ++i) {
        enqueue([state] {
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                ++state->active;
            }
            drainFor(*state);
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                --state->active;
            }
            state->cv.notify_all();
        });
    }
    drainFor(*state);
    {
        // Any helper that claimed work incremented `active` before its
        // first chunk claim; once our own drain saw the range
        // exhausted, helpers arriving later cannot claim anything, so
        // waiting for active == 0 covers every body() in flight.
        std::unique_lock<std::mutex> lock(state->mutex);
        state->cv.wait(lock, [&] { return state->active == 0; });
    }
    if (state->firstError.load())
        std::rethrow_exception(state->error);
    return true;
}

BackgroundQueue::BackgroundQueue(size_t maxDepth)
    : maxDepth_(std::max<size_t>(maxDepth, 1)),
      worker_([this] { workerLoop(); })
{
}

BackgroundQueue::~BackgroundQueue()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        // Unstarted tasks are best-effort: discard (and keep the depth
        // gauge honest about the tasks that will never run).
        bgMetrics().queueDepth.add(
            -static_cast<int64_t>(queue_.size()));
        queue_.clear();
    }
    cv_.notify_all();
    idleCv_.notify_all(); // wake drain()ers blocked on idleness
    worker_.join();
}

bool
BackgroundQueue::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            return false;
        if (queue_.size() >= maxDepth_) {
            bgMetrics().dropped.add();
            return false;
        }
        queue_.push_back(std::move(task));
    }
    bgMetrics().queueDepth.add(1);
    cv_.notify_one();
    return true;
}

void
BackgroundQueue::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        return (queue_.empty() && !busy_) || stop_;
    });
}

void
BackgroundQueue::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_)
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            busy_ = true;
        }
        bgMetrics().queueDepth.add(-1);
        bgMetrics().tasks.add();
        // Tasks are best-effort by contract: an escaping exception
        // must not terminate the process via the worker thread. They
        // also run as a nested parallel region (see the class docs).
        try {
            InlineRegion inlineRegion;
            telemetry::TraceSpan span("bg.task", "bg");
            task();
        } catch (const std::exception &e) {
            warn("background task failed: %s", e.what());
        } catch (...) {
            warn("background task failed with a non-standard exception");
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            busy_ = false;
        }
        idleCv_.notify_all();
    }
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(gGlobalMutex);
    if (!gGlobalPool)
        gGlobalPool = std::make_unique<ThreadPool>(defaultThreadCount());
    return *gGlobalPool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    EP_ASSERT(threads >= 1, "thread count %d must be >= 1", threads);
    std::lock_guard<std::mutex> lock(gGlobalMutex);
    gGlobalPool = std::make_unique<ThreadPool>(threads);
}

int
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("EARTHPLUS_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
        warn("ignoring invalid EARTHPLUS_THREADS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

} // namespace earthplus::util
