#include "util/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "util/logging.hh"

namespace earthplus::util {

namespace {

/**
 * Depth of parallel regions on the current thread: > 0 inside a pool
 * worker's lifetime or while a thread is executing parallelFor
 * iterations. Nested regions run inline instead of re-entering the
 * pool.
 */
thread_local int tlsParallelDepth = 0;

struct DepthGuard
{
    DepthGuard() { ++tlsParallelDepth; }
    ~DepthGuard() { --tlsParallelDepth; }
};

std::mutex gGlobalMutex;
std::unique_ptr<ThreadPool> gGlobalPool;

} // anonymous namespace

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1))
{
    // Lane 0 is the calling thread; spawn the remaining lanes.
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::onWorkerThread()
{
    return tlsParallelDepth > 0;
}

InlineRegion::InlineRegion()
{
    ++tlsParallelDepth;
}

InlineRegion::~InlineRegion()
{
    --tlsParallelDepth;
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    DepthGuard depth; // everything a worker runs counts as nested
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and queue drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        job();
    }
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t)> &body,
                        int64_t grain)
{
    int64_t count = end - begin;
    if (count <= 0)
        return;

    // Serial path: single-lane pool, tiny range, or nested region.
    if (threads_ <= 1 || count == 1 || tlsParallelDepth > 0) {
        DepthGuard depth;
        for (int64_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    if (grain <= 0)
        grain = std::max<int64_t>(
            1, count / (static_cast<int64_t>(threads_) * 4));

    auto next = std::make_shared<std::atomic<int64_t>>(begin);
    auto firstError = std::make_shared<std::atomic<bool>>(false);
    auto errorPtr = std::make_shared<std::exception_ptr>();

    auto drain = [next, firstError, errorPtr, end, grain, &body] {
        DepthGuard depth;
        for (;;) {
            int64_t i0 = next->fetch_add(grain);
            if (i0 >= end)
                return;
            int64_t i1 = std::min(i0 + grain, end);
            try {
                for (int64_t i = i0; i < i1; ++i)
                    body(i);
            } catch (...) {
                if (!firstError->exchange(true))
                    *errorPtr = std::current_exception();
                next->store(end); // cancel remaining chunks
                return;
            }
        }
    };

    // One helper per extra lane (bounded by the chunk count); the
    // caller drains chunks too, so completion never depends on the
    // helpers being scheduled.
    int64_t chunks = (count + grain - 1) / grain;
    int helpers = static_cast<int>(
        std::min<int64_t>(threads_ - 1, chunks - 1));
    std::vector<std::future<void>> pending;
    pending.reserve(static_cast<size_t>(helpers));
    for (int i = 0; i < helpers; ++i) {
        auto task = std::make_shared<std::packaged_task<void()>>(drain);
        pending.push_back(task->get_future());
        enqueue([task] { (*task)(); });
    }
    drain();
    for (auto &f : pending)
        f.wait();
    if (firstError->load())
        std::rethrow_exception(*errorPtr);
}

BackgroundQueue::BackgroundQueue(size_t maxDepth)
    : maxDepth_(std::max<size_t>(maxDepth, 1)),
      worker_([this] { workerLoop(); })
{
}

BackgroundQueue::~BackgroundQueue()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        queue_.clear(); // unstarted tasks are best-effort: discard
    }
    cv_.notify_all();
    idleCv_.notify_all(); // wake drain()ers blocked on idleness
    worker_.join();
}

bool
BackgroundQueue::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stop_)
            return false;
        if (queue_.size() >= maxDepth_)
            return false;
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
}

void
BackgroundQueue::drain()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        return (queue_.empty() && !busy_) || stop_;
    });
}

void
BackgroundQueue::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_)
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
            busy_ = true;
        }
        // Tasks are best-effort by contract: an escaping exception
        // must not terminate the process via the worker thread. They
        // also run as a nested parallel region (see the class docs).
        try {
            InlineRegion inlineRegion;
            task();
        } catch (const std::exception &e) {
            warn("background task failed: %s", e.what());
        } catch (...) {
            warn("background task failed with a non-standard exception");
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            busy_ = false;
        }
        idleCv_.notify_all();
    }
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(gGlobalMutex);
    if (!gGlobalPool)
        gGlobalPool = std::make_unique<ThreadPool>(defaultThreadCount());
    return *gGlobalPool;
}

void
ThreadPool::setGlobalThreads(int threads)
{
    EP_ASSERT(threads >= 1, "thread count %d must be >= 1", threads);
    std::lock_guard<std::mutex> lock(gGlobalMutex);
    gGlobalPool = std::make_unique<ThreadPool>(threads);
}

int
ThreadPool::defaultThreadCount()
{
    if (const char *env = std::getenv("EARTHPLUS_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
        warn("ignoring invalid EARTHPLUS_THREADS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

} // namespace earthplus::util
