#include "util/telemetry.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace earthplus::telemetry {

namespace detail {

namespace {

bool
envFlag(const char *name, bool dflt)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return dflt;
    return !(v[0] == '0' && v[1] == '\0');
}

} // anonymous namespace

std::atomic<bool> metricsOn{envFlag("EARTHPLUS_METRICS", true)};
std::atomic<bool> tracingOn{envFlag("EARTHPLUS_TRACE", false)};

uint32_t
threadSlot()
{
    static std::atomic<uint32_t> next{0};
    thread_local uint32_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

} // namespace detail

void
setMetricsEnabled(bool enabled)
{
    detail::metricsOn.store(enabled, std::memory_order_relaxed);
}

// ----------------------------------------------------------- histogram

double
Histogram::midpoint(uint32_t b)
{
    if (b < (1u << kSubBucketBits))
        return static_cast<double>(b);
    uint32_t unit = b >> kSubBucketBits;
    uint32_t sub = b & ((1u << kSubBucketBits) - 1);
    int exp = static_cast<int>(unit) + kSubBucketBits - 1;
    double lower = std::ldexp(1.0, exp) +
                   std::ldexp(static_cast<double>(sub),
                              exp - kSubBucketBits);
    double width = std::ldexp(1.0, exp - kSubBucketBits);
    return lower + width / 2.0;
}

uint64_t
Histogram::count() const
{
    return snapshot().count();
}

uint64_t
Histogram::sum() const
{
    uint64_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.sum.load(std::memory_order_relaxed);
    return total;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.counts_.assign(kBuckets, 0);
    for (const Shard &shard : shards_) {
        snap.sum_ += shard.sum.load(std::memory_order_relaxed);
        for (uint32_t b = 0; b < kBuckets; ++b) {
            uint64_t c = shard.buckets[b].load(std::memory_order_relaxed);
            snap.counts_[b] += c;
            snap.count_ += c;
        }
    }
    return snap;
}

double
HistogramSnapshot::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::min(std::max(q, 0.0), 1.0);
    // Nearest-rank: the smallest value whose cumulative count reaches
    // ceil(q * n), matching sorted[ceil(q*n) - 1] on a sorted sample.
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t cum = 0;
    for (size_t b = 0; b < counts_.size(); ++b) {
        cum += counts_[b];
        if (cum >= rank)
            return Histogram::midpoint(static_cast<uint32_t>(b));
    }
    return Histogram::midpoint(
        static_cast<uint32_t>(counts_.size() - 1));
}

HistogramSnapshot
HistogramSnapshot::since(const HistogramSnapshot &base) const
{
    HistogramSnapshot out;
    out.counts_.assign(counts_.size(), 0);
    for (size_t b = 0; b < counts_.size(); ++b) {
        uint64_t before =
            b < base.counts_.size() ? base.counts_[b] : 0;
        uint64_t delta =
            counts_[b] >= before ? counts_[b] - before : 0;
        out.counts_[b] = delta;
        out.count_ += delta;
    }
    out.sum_ = sum_ >= base.sum_ ? sum_ - base.sum_ : 0;
    return out;
}

// ------------------------------------------------------------ registry

namespace {

/**
 * The process-wide metric registry. Deliberately leaked (never
 * destroyed): metric objects must outlive every thread that might
 * still record into them during static destruction, and a telemetry
 * layer has no meaningful teardown.
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry &
registry()
{
    static Registry *r = new Registry;
    return *r;
}

/** Format a double as a JSON number (never NaN/inf). */
std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    std::ostringstream out;
    out.precision(12);
    out << v;
    return out.str();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // anonymous namespace

Counter &
counter(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto &slot = r.counters[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
gauge(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto &slot = r.gauges[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
histogram(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto &slot = r.histograms[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::string
snapshotJson()
{
    // Hold the registry lock only to walk the maps; the metric reads
    // are lock-free so concurrent recording is never stalled.
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : r.counters) {
        out << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
            << "\": " << c->value();
        first = false;
    }
    out << (first ? "},\n" : "\n  },\n");
    out << "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : r.gauges) {
        out << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
            << "\": " << g->value();
        first = false;
    }
    out << (first ? "},\n" : "\n  },\n");
    out << "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : r.histograms) {
        HistogramSnapshot snap = h->snapshot();
        out << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
            << "\": {\"count\": " << snap.count()
            << ", \"sum\": " << snap.sum()
            << ", \"mean\": " << jsonNum(snap.mean())
            << ", \"p50\": " << jsonNum(snap.quantile(0.5))
            << ", \"p90\": " << jsonNum(snap.quantile(0.9))
            << ", \"p99\": " << jsonNum(snap.quantile(0.99))
            << ", \"p999\": " << jsonNum(snap.quantile(0.999))
            << ", \"max\": " << jsonNum(snap.quantile(1.0)) << "}";
        first = false;
    }
    out << (first ? "}\n" : "\n  }\n") << "}\n";
    return out.str();
}

// ------------------------------------------------------------- tracing

namespace {

/** One recorded complete event. */
struct TraceEvent
{
    const char *name;
    const char *cat;
    uint64_t startNs;
    uint64_t durNs;
};

struct TraceBuffer;

/**
 * Global trace state: the registered per-thread buffers, events
 * rescued from exited threads, and the export epoch. Leaked for the
 * same static-destruction reason as the metric registry.
 */
struct Collector
{
    std::mutex mutex;
    std::vector<TraceBuffer *> buffers;
    /** (events, tid) pairs flushed by exiting threads. */
    std::vector<std::pair<std::vector<TraceEvent>, uint32_t>> orphans;
    std::atomic<uint32_t> nextTid{1};
    /** Nanosecond timestamp all exported "ts" values are relative
     *  to; stamped by the first setTracing(true). */
    std::atomic<uint64_t> epochNs{0};
};

Collector &
collector()
{
    static Collector *c = new Collector;
    return *c;
}

/** Spans kept per thread before new ones are dropped (counted). */
constexpr size_t kMaxEventsPerThread = 1u << 16;

/**
 * Per-thread span buffer. Appends lock only the buffer's own mutex
 * (uncontended except against an in-progress export); thread exit
 * moves the events into the collector's orphan list so no span is
 * lost when a pool worker dies before the trace is written.
 */
struct TraceBuffer
{
    std::mutex mutex;
    std::vector<TraceEvent> events;
    uint32_t tid;
    std::atomic<uint64_t> dropped{0};

    TraceBuffer()
    {
        Collector &c = collector();
        tid = c.nextTid.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(c.mutex);
        c.buffers.push_back(this);
    }

    ~TraceBuffer()
    {
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mutex);
        {
            std::lock_guard<std::mutex> mine(mutex);
            if (!events.empty())
                c.orphans.emplace_back(std::move(events), tid);
        }
        c.buffers.erase(
            std::remove(c.buffers.begin(), c.buffers.end(), this),
            c.buffers.end());
    }
};

TraceBuffer &
localBuffer()
{
    thread_local TraceBuffer buffer;
    return buffer;
}

} // anonymous namespace

void
setTracing(bool enabled)
{
    if (enabled) {
        uint64_t expected = 0;
        collector().epochNs.compare_exchange_strong(
            expected, nowNanos(), std::memory_order_relaxed);
    }
    detail::tracingOn.store(enabled, std::memory_order_relaxed);
}

namespace detail {

void
emitSpan(const char *name, const char *cat, uint64_t startNs,
         uint64_t endNs)
{
    TraceBuffer &buffer = localBuffer();
    {
        std::lock_guard<std::mutex> lock(buffer.mutex);
        if (buffer.events.size() < kMaxEventsPerThread) {
            buffer.events.push_back(
                TraceEvent{name, cat, startNs, endNs - startNs});
            return;
        }
    }
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    counter("telemetry.trace_dropped").add(1);
}

} // namespace detail

std::string
traceJson()
{
    Collector &c = collector();
    uint64_t epoch = c.epochNs.load(std::memory_order_relaxed);
    std::ostringstream out;
    out << "{\"traceEvents\":[";
    bool first = true;
    auto emit = [&](const TraceEvent &e, uint32_t tid) {
        uint64_t rel = e.startNs >= epoch ? e.startNs - epoch : 0;
        out << (first ? "\n" : ",\n") << "{\"name\":\""
            << jsonEscape(e.name) << "\",\"cat\":\""
            << jsonEscape(e.cat) << "\",\"ph\":\"X\",\"ts\":"
            << jsonNum(static_cast<double>(rel) / 1000.0)
            << ",\"dur\":"
            << jsonNum(static_cast<double>(e.durNs) / 1000.0)
            << ",\"pid\":1,\"tid\":" << tid << "}";
        first = false;
    };
    {
        std::lock_guard<std::mutex> lock(c.mutex);
        for (TraceBuffer *buffer : c.buffers) {
            std::lock_guard<std::mutex> own(buffer->mutex);
            for (const TraceEvent &e : buffer->events)
                emit(e, buffer->tid);
        }
        for (const auto &[events, tid] : c.orphans)
            for (const TraceEvent &e : events)
                emit(e, tid);
    }
    out << "\n],\"displayTimeUnit\":\"ms\"}\n";
    return out.str();
}

bool
writeTrace(const std::string &path)
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << traceJson();
    return static_cast<bool>(f);
}

void
clearTrace()
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    for (TraceBuffer *buffer : c.buffers) {
        std::lock_guard<std::mutex> own(buffer->mutex);
        buffer->events.clear();
    }
    c.orphans.clear();
}

uint64_t
traceDropped()
{
    Collector &c = collector();
    uint64_t total = 0;
    std::lock_guard<std::mutex> lock(c.mutex);
    for (TraceBuffer *buffer : c.buffers)
        total += buffer->dropped.load(std::memory_order_relaxed);
    return total;
}

} // namespace earthplus::telemetry
