#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace earthplus {

std::string
vstrfmt(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    return s;
}

namespace {

/** Message severities, least to most severe. panic/fatal always print. */
enum Level { LevelInfo = 0, LevelWarn = 1, LevelError = 2 };

/**
 * Minimum severity that reaches stderr, from EARTHPLUS_LOG_LEVEL
 * ("info" default, "warn", or "error"/"quiet"). Parsed once; an
 * unrecognized value falls back to info so messages are never silently
 * lost to a typo.
 */
int
logThreshold()
{
    static const int threshold = [] {
        const char *env = std::getenv("EARTHPLUS_LOG_LEVEL");
        if (env == nullptr)
            return static_cast<int>(LevelInfo);
        if (std::strcmp(env, "warn") == 0)
            return static_cast<int>(LevelWarn);
        if (std::strcmp(env, "error") == 0 ||
            std::strcmp(env, "quiet") == 0)
            return static_cast<int>(LevelError);
        return static_cast<int>(LevelInfo);
    }();
    return threshold;
}

void
emit(const char *prefix, const char *fmt, va_list args)
{
    // Format outside the lock (vstrfmt allocates), print inside it so
    // concurrent warn()/inform() lines never interleave mid-message.
    std::string msg = vstrfmt(fmt, args);
    static std::mutex emitMutex;
    std::lock_guard<std::mutex> lock(emitMutex);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (logThreshold() > LevelWarn)
        return;
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    if (logThreshold() > LevelInfo)
        return;
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

} // namespace earthplus
