#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace earthplus {

std::string
vstrfmt(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string s = vstrfmt(fmt, args);
    va_end(args);
    return s;
}

namespace {

void
emit(const char *prefix, const char *fmt, va_list args)
{
    std::string msg = vstrfmt(fmt, args);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // anonymous namespace

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

} // namespace earthplus
