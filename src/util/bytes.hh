/**
 * @file
 * Little-endian POD byte (de)serialization helpers.
 *
 * Shared by every wire/file format in the library (codec streams,
 * downlink packets, the ground archive) so byte-layout-critical code
 * lives in exactly one place. All formats assume a little-endian host
 * (the only targets this library builds for); memcpy keeps the
 * accesses alignment-safe and sanitizer-clean.
 */

#ifndef EARTHPLUS_UTIL_BYTES_HH
#define EARTHPLUS_UTIL_BYTES_HH

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace earthplus::util {

/**
 * Number of bits needed to represent `v` (0 for 0) — C++20
 * `std::bit_width` for a C++17 toolchain. The codec derives the top
 * magnitude bitplane of a tile from this, so it must be exact on the
 * full uint32_t range (no float log tricks).
 */
inline int
bitWidth(uint32_t v)
{
    return v == 0 ? 0 : 32 - __builtin_clz(v);
}

/**
 * Index of the lowest set bit of a nonzero word — C++20
 * `std::countr_zero` restricted to nonzero inputs. The bitplane
 * coder's pass loops iterate candidate sets one set bit at a time
 * with this.
 */
inline int
countTrailingZeros(uint64_t v)
{
    return __builtin_ctzll(v);
}

/** Append the raw bytes of a POD value to `out`. */
template <typename T>
inline void
appendPod(std::vector<uint8_t> &out, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "appendPod requires a trivially copyable type");
    const auto *p = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(T));
}

/**
 * Read a POD value at byte offset `pos`. The caller bounds-checks;
 * this is the raw accessor used after a buffer's size is validated.
 */
template <typename T>
inline T
readPodAt(const uint8_t *in, size_t pos)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "readPodAt requires a trivially copyable type");
    T v;
    std::memcpy(&v, in + pos, sizeof(T));
    return v;
}

} // namespace earthplus::util

#endif // EARTHPLUS_UTIL_BYTES_HH
