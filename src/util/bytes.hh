/**
 * @file
 * Little-endian POD byte (de)serialization helpers.
 *
 * Shared by every wire/file format in the library (codec streams,
 * downlink packets, the ground archive) so byte-layout-critical code
 * lives in exactly one place. All formats assume a little-endian host
 * (the only targets this library builds for); memcpy keeps the
 * accesses alignment-safe and sanitizer-clean.
 */

#ifndef EARTHPLUS_UTIL_BYTES_HH
#define EARTHPLUS_UTIL_BYTES_HH

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace earthplus::util {

/** Append the raw bytes of a POD value to `out`. */
template <typename T>
inline void
appendPod(std::vector<uint8_t> &out, const T &v)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "appendPod requires a trivially copyable type");
    const auto *p = reinterpret_cast<const uint8_t *>(&v);
    out.insert(out.end(), p, p + sizeof(T));
}

/**
 * Read a POD value at byte offset `pos`. The caller bounds-checks;
 * this is the raw accessor used after a buffer's size is validated.
 */
template <typename T>
inline T
readPodAt(const uint8_t *in, size_t pos)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "readPodAt requires a trivially copyable type");
    T v;
    std::memcpy(&v, in + pos, sizeof(T));
    return v;
}

} // namespace earthplus::util

#endif // EARTHPLUS_UTIL_BYTES_HH
