/**
 * @file
 * Deterministic, seeded fault injection: named failpoints with
 * per-site trigger schedules, armed from the environment
 * (EARTHPLUS_FAULTS) or programmatically by tests.
 *
 * A failpoint is a named hook compiled permanently into a production
 * code path (archive writes, socket sends, ...). Disabled — the
 * default — a hit costs one relaxed atomic load and a predicted
 * branch, the same budget the telemetry layer pays, so the hooks stay
 * in release builds and the perf gates. Armed, each hit consults the
 * site's schedule:
 *
 *   - Always        fire on every hit
 *   - NthHit(n)     fire exactly once, on the n-th hit (1-based)
 *   - EveryKth(k)   fire on hits k, 2k, 3k, ...
 *   - Probability(p, seed)  fire with probability p from a pinned
 *                   xoshiro stream — deterministic per (seed, hit
 *                   sequence), never from global randomness
 *
 * Sites are process-wide and live forever, like telemetry registry
 * objects: hot paths resolve a site once into a function-local static
 * reference. Hit and fire totals feed the "failpoint.hits" /
 * "failpoint.fires" telemetry counters so chaos runs are observable
 * with the same tooling as everything else.
 *
 * Environment grammar (parsed once, at first registry use):
 *
 *   EARTHPLUS_FAULTS="<name>=<trigger>[;<name>=<trigger>...]"
 *   trigger := always | hit:<n> | every:<k> | p:<float>[:<seed>]
 *
 * e.g. EARTHPLUS_FAULTS="archive.io.write.short=hit:3;net.client.recv.reset=p:0.01:42"
 *
 * docs/RELIABILITY.md holds the site inventory and naming scheme.
 */

#ifndef EARTHPLUS_UTIL_FAILPOINT_HH
#define EARTHPLUS_UTIL_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace earthplus::failpoint {

namespace detail {
/** Registry-internal accessor (defined in failpoint.cc). */
struct Access;
} // namespace detail

/** How an armed failpoint decides whether a given hit fires. */
enum class Trigger
{
    Off,         ///< Not armed; fire() is one relaxed load.
    Always,      ///< Every hit fires.
    NthHit,      ///< Exactly one fire, on hit number `n` (1-based).
    EveryKth,    ///< Fires on every k-th hit (k, 2k, ...).
    Probability, ///< Each hit fires with probability p (pinned RNG).
};

/**
 * Arming descriptor for one site: the trigger mode plus its
 * parameters. `arg` is an opaque site-interpreted integer rider (e.g.
 * how many bytes a short write leaves unwritten); 0 means "site
 * default".
 */
struct Schedule
{
    Trigger trigger = Trigger::Off; ///< Firing rule.
    uint64_t n = 1;        ///< NthHit: which hit; EveryKth: the period.
    double probability = 0.0; ///< Probability mode: chance per hit.
    uint64_t seed = 0x5eedULL; ///< Probability mode: RNG stream seed.
    int64_t arg = 0;       ///< Site-specific rider (see site docs).
};

/**
 * One named injection site. Obtain instances from site() — references
 * stay valid for the process lifetime. All members are thread-safe;
 * fire() is callable from any thread concurrently with arm()/disarm().
 */
class Failpoint
{
  public:
    /**
     * One hit: returns true when the armed schedule says this hit
     * fires. Disabled sites return false after a single relaxed load.
     */
    bool
    fire()
    {
        if (!armed_.load(std::memory_order_relaxed))
            return false;
        return fireSlow();
    }

    /** The schedule's `arg` rider (0 when unset or disarmed). */
    int64_t arg() const;

    /**
     * Total *armed* hits since process start. Disarmed hits are
     * deliberately not counted — the disabled path stays one load —
     * so tests enumerate a site's boundaries by arming it with an
     * unreachable NthHit schedule and reading hitCount() after a dry
     * run.
     */
    uint64_t hitCount() const;

    /** Total hits that fired. */
    uint64_t fireCount() const;

    /** The site's registered name. */
    const std::string &name() const { return name_; }

  private:
    friend struct detail::Access;

    explicit Failpoint(std::string name);

    bool fireSlow();

    std::string name_;
    std::atomic<bool> armed_{false};
    mutable std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> fires_{0};
    // Schedule state, guarded by the registry mutex for arm/disarm and
    // advanced atomically by fireSlow().
    Schedule schedule_;
    std::atomic<uint64_t> scheduleHits_{0}; ///< Hits since last arm().
    std::atomic<uint64_t> rngState_{0};     ///< Probability-mode stream.
};

/**
 * Registry lookup: the process-wide failpoint named `name`, created on
 * first use (like telemetry::counter). The first registry access also
 * parses EARTHPLUS_FAULTS and arms any sites it names.
 */
Failpoint &site(const std::string &name);

/** Arm `name` with `schedule` (resets its per-arming hit sequence). */
void arm(const std::string &name, const Schedule &schedule);

/** Disarm `name`; its fire() returns to the one-load fast path. */
void disarm(const std::string &name);

/** Disarm every site (test teardown). */
void disarmAll();

/**
 * Parse one EARTHPLUS_FAULTS-grammar spec string and arm the sites it
 * names. Returns false (arming nothing further) on a malformed spec.
 * Exposed for tests; the env var goes through this at registry init.
 */
bool armFromSpec(const std::string &spec);

} // namespace earthplus::failpoint

#endif // EARTHPLUS_UTIL_FAILPOINT_HH
