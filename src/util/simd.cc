#include "util/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace earthplus::util::simd {

namespace {

Level
detectBest()
{
#if defined(__aarch64__) || defined(__ARM_NEON)
    return Level::NEON;
#elif defined(__x86_64__) || defined(_M_X64)
#if defined(__GNUC__) || defined(__clang__)
    if (__builtin_cpu_supports("avx2"))
        return Level::AVX2;
#endif
    return Level::SSE2;
#else
    return Level::Scalar;
#endif
}

Level
parseLevel(const char *s, Level fallback)
{
    if (!s || !*s)
        return fallback;
    if (std::strcmp(s, "scalar") == 0)
        return Level::Scalar;
    if (std::strcmp(s, "sse2") == 0)
        return Level::SSE2;
    if (std::strcmp(s, "avx2") == 0)
        return Level::AVX2;
    if (std::strcmp(s, "neon") == 0)
        return Level::NEON;
    return fallback; // "best" and anything unrecognized
}

std::atomic<Level> &
activeSlot()
{
    // First use installs the env-var override (or the detected best);
    // the atomic lets worker threads read the level while a test or
    // bench thread swaps it.
    static std::atomic<Level> level{[] {
        Level best = detectBest();
        Level want = parseLevel(std::getenv("EARTHPLUS_SIMD"), best);
        return cpuSupports(want) ? want : best;
    }()};
    return level;
}

} // anonymous namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Scalar:
        return "scalar";
    case Level::SSE2:
        return "sse2";
    case Level::AVX2:
        return "avx2";
    case Level::NEON:
        return "neon";
    }
    return "unknown";
}

bool
cpuSupports(Level level)
{
    switch (level) {
    case Level::Scalar:
        return true;
    case Level::SSE2:
#if defined(__x86_64__) || defined(_M_X64)
        return true; // architectural baseline
#else
        return false;
#endif
    case Level::AVX2:
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case Level::NEON:
#if defined(__aarch64__) || defined(__ARM_NEON)
        return true; // architectural baseline
#else
        return false;
#endif
    }
    return false;
}

Level
bestSupported()
{
    return detectBest();
}

Level
activeLevel()
{
    return activeSlot().load(std::memory_order_relaxed);
}

Level
setActiveLevel(Level level)
{
    if (!cpuSupports(level))
        level = detectBest();
    activeSlot().store(level, std::memory_order_relaxed);
    return level;
}

} // namespace earthplus::util::simd
