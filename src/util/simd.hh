/**
 * @file
 * Runtime CPU-feature detection and SIMD dispatch-level selection.
 *
 * The codec's hot kernels are compiled once per instruction set (see
 * codec/kernels.hh); this header owns the question "which level may
 * run on this machine, and which level is active right now". The
 * active level defaults to the best supported one and can be
 * overridden either programmatically (tests, benchmarks) or with the
 * `EARTHPLUS_SIMD` environment variable (`scalar`, `sse2`, `avx2`,
 * `neon` or `best`), read once on first use.
 */

#ifndef EARTHPLUS_UTIL_SIMD_HH
#define EARTHPLUS_UTIL_SIMD_HH

namespace earthplus::util::simd {

/** Instruction-set dispatch levels, weakest first. */
enum class Level
{
    Scalar = 0, ///< Portable C++, no vector intrinsics.
    SSE2 = 1,   ///< x86-64 baseline 128-bit vectors.
    AVX2 = 2,   ///< 256-bit integer + float vectors (runtime-detected).
    NEON = 3,   ///< AArch64 baseline 128-bit vectors.
};

/** Human-readable lowercase name of a level. */
const char *levelName(Level level);

/**
 * True when the running CPU can execute instructions of this level.
 * Scalar is always supported; SSE2/NEON follow from the build target;
 * AVX2 is detected at runtime via cpuid.
 */
bool cpuSupports(Level level);

/** Strongest level the running CPU supports. */
Level bestSupported();

/**
 * Level the codec kernels currently dispatch to. Initialized from
 * `EARTHPLUS_SIMD` (falling back to bestSupported()) on first call.
 */
Level activeLevel();

/**
 * Override the active dispatch level, clamping to what the CPU
 * supports.
 *
 * @return The level actually installed.
 */
Level setActiveLevel(Level level);

} // namespace earthplus::util::simd

#endif // EARTHPLUS_UTIL_SIMD_HH
