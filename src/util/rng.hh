/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library draw from Rng so that every
 * experiment is reproducible from an explicit seed, independent of the
 * platform's std::random implementation.
 */

#ifndef EARTHPLUS_UTIL_RNG_HH
#define EARTHPLUS_UTIL_RNG_HH

#include <cstdint>

namespace earthplus {

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Small, fast, and with well-understood statistical quality; identical
 * output on every platform for a given seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal deviate (Box-Muller). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Poisson deviate with the given mean (Knuth for small, PTRS-free
     *  normal approximation for large means). */
    int poisson(double mean);

    /** Exponential deviate with the given rate (mean 1/rate). */
    double exponential(double rate);

    /**
     * Derive an independent child generator.
     *
     * Streams are decorrelated by hashing the parent seed with the salt,
     * letting hierarchical components (scene -> band -> day) own private
     * generators without sharing state.
     */
    Rng fork(uint64_t salt) const;

  private:
    uint64_t s_[4];
    uint64_t seed_;
    double cachedNormal_;
    bool hasCachedNormal_;
};

} // namespace earthplus

#endif // EARTHPLUS_UTIL_RNG_HH
