#include "util/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.hh"

namespace earthplus {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::pct(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision)
        << fraction * 100.0 << "%";
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    size_t cols = header_.size();
    for (const auto &row : rows_)
        cols = std::max(cols, row.size());

    std::vector<size_t> widths(cols, 0);
    auto widen = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    auto emit = [&](const std::vector<std::string> &row) {
        os << "  ";
        for (size_t i = 0; i < cols; ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cell;
        }
        os << "\n";
    };

    os << "== " << title_ << " ==\n";
    if (!header_.empty()) {
        emit(header_);
        size_t total = 2;
        for (size_t w : widths)
            total += w + 2;
        os << "  " << std::string(total - 2, '-') << "\n";
    }
    for (const auto &row : rows_)
        emit(row);
    os << "\n";
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace earthplus
