#include "util/failpoint.hh"

#include <cstdlib>
#include <map>
#include <mutex>

#include "util/logging.hh"
#include "util/telemetry.hh"

namespace earthplus::failpoint {

namespace detail {

/** Registry-internal access to Failpoint private state. */
struct Access
{
    /** Heap-construct a site (the registry leaks it deliberately). */
    static Failpoint *
    create(const std::string &name)
    {
        return new Failpoint(name);
    }

    /** Install `schedule` and reset the per-arming sequence. */
    static void
    apply(Failpoint &fp, const Schedule &schedule)
    {
        fp.schedule_ = schedule;
        fp.scheduleHits_.store(0, std::memory_order_relaxed);
        fp.rngState_.store(schedule.seed, std::memory_order_relaxed);
        fp.armed_.store(schedule.trigger != Trigger::Off,
                        std::memory_order_relaxed);
    }

    /** Return the site to the disabled fast path. */
    static void
    clear(Failpoint &fp)
    {
        fp.armed_.store(false, std::memory_order_relaxed);
        fp.schedule_ = Schedule{};
    }
};

} // namespace detail

namespace {

/**
 * Registry of leaked sites, keyed by name. One process-wide mutex
 * guards the map and every site's schedule state: arm/disarm are rare
 * and armed hits are, by definition, inside an injected-fault
 * experiment — never a gated hot path.
 */
struct Registry
{
    std::mutex mutex;
    std::map<std::string, Failpoint *> sites;
};

bool armFromSpecLocked(Registry &reg, const std::string &spec);

Registry &
registry()
{
    static Registry *r = [] {
        auto *reg = new Registry;
        // Arm from the environment exactly once, before any site is
        // handed out, so env-armed schedules never race first use.
        if (const char *env = std::getenv("EARTHPLUS_FAULTS")) {
            if (env[0] != '\0' && !armFromSpecLocked(*reg, env))
                warn("EARTHPLUS_FAULTS: malformed spec \"%s\" "
                     "(ignored)", env);
        }
        return reg;
    }();
    return *r;
}

/** Telemetry handles, resolved once per process. */
struct FailpointMetrics
{
    telemetry::Counter &hits = telemetry::counter("failpoint.hits");
    telemetry::Counter &fires = telemetry::counter("failpoint.fires");
};

FailpointMetrics &
metrics()
{
    static FailpointMetrics m;
    return m;
}

/** SplitMix64 step: the pinned per-site probability stream. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Failpoint &
siteLocked(Registry &reg, const std::string &name)
{
    auto it = reg.sites.find(name);
    if (it == reg.sites.end())
        it = reg.sites.emplace(name, detail::Access::create(name))
                 .first;
    return *it->second;
}

bool
parseTrigger(const std::string &text, Schedule &out)
{
    auto tail = [&](size_t prefix) {
        return text.substr(prefix);
    };
    try {
        if (text == "always") {
            out.trigger = Trigger::Always;
            return true;
        }
        if (text.rfind("hit:", 0) == 0) {
            out.trigger = Trigger::NthHit;
            out.n = std::stoull(tail(4));
            return out.n >= 1;
        }
        if (text.rfind("every:", 0) == 0) {
            out.trigger = Trigger::EveryKth;
            out.n = std::stoull(tail(6));
            return out.n >= 1;
        }
        if (text.rfind("p:", 0) == 0) {
            out.trigger = Trigger::Probability;
            std::string rest = tail(2);
            size_t colon = rest.find(':');
            if (colon != std::string::npos) {
                out.seed = std::stoull(rest.substr(colon + 1));
                rest = rest.substr(0, colon);
            }
            out.probability = std::stod(rest);
            return out.probability >= 0.0 && out.probability <= 1.0;
        }
    } catch (const std::exception &) {
        return false;
    }
    return false;
}

bool
armFromSpecLocked(Registry &reg, const std::string &spec)
{
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string entry = spec.substr(pos, end - pos);
        pos = end + 1;
        if (entry.empty())
            continue;
        size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0)
            return false;
        std::string name = entry.substr(0, eq);
        std::string rest = entry.substr(eq + 1);
        Schedule schedule;
        // First comma-token is the trigger; optional riders follow.
        size_t tpos = 0;
        bool haveTrigger = false;
        while (tpos <= rest.size()) {
            size_t tend = rest.find(',', tpos);
            if (tend == std::string::npos)
                tend = rest.size();
            std::string token = rest.substr(tpos, tend - tpos);
            tpos = tend + 1;
            if (token.empty())
                return false;
            if (!haveTrigger) {
                if (!parseTrigger(token, schedule))
                    return false;
                haveTrigger = true;
            } else if (token.rfind("arg:", 0) == 0) {
                try {
                    schedule.arg = std::stoll(token.substr(4));
                } catch (const std::exception &) {
                    return false;
                }
            } else if (token.rfind("seed:", 0) == 0) {
                try {
                    schedule.seed = std::stoull(token.substr(5));
                } catch (const std::exception &) {
                    return false;
                }
            } else {
                return false;
            }
            if (tpos > rest.size())
                break;
        }
        if (!haveTrigger)
            return false;
        detail::Access::apply(siteLocked(reg, name), schedule);
    }
    return true;
}

} // namespace

Failpoint::Failpoint(std::string name) : name_(std::move(name)) {}

bool
Failpoint::fireSlow()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    // Re-check under the lock: a concurrent disarm() may have landed
    // between the relaxed fast-path load and here.
    if (!armed_.load(std::memory_order_relaxed))
        return false;
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics().hits.add();
    uint64_t seq =
        scheduleHits_.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fired = false;
    switch (schedule_.trigger) {
      case Trigger::Off:
        break;
      case Trigger::Always:
        fired = true;
        break;
      case Trigger::NthHit:
        fired = seq == schedule_.n;
        break;
      case Trigger::EveryKth:
        fired = seq % schedule_.n == 0;
        break;
      case Trigger::Probability: {
        uint64_t state = rngState_.load(std::memory_order_relaxed);
        uint64_t draw = splitmix64(state);
        rngState_.store(state, std::memory_order_relaxed);
        // Top 53 bits -> uniform double in [0, 1).
        double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
        fired = u < schedule_.probability;
        break;
      }
    }
    if (fired) {
        fires_.fetch_add(1, std::memory_order_relaxed);
        metrics().fires.add();
    }
    return fired;
}

int64_t
Failpoint::arg() const
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (!armed_.load(std::memory_order_relaxed))
        return 0;
    return schedule_.arg;
}

uint64_t
Failpoint::hitCount() const
{
    return hits_.load(std::memory_order_relaxed);
}

uint64_t
Failpoint::fireCount() const
{
    return fires_.load(std::memory_order_relaxed);
}

Failpoint &
site(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return siteLocked(reg, name);
}

void
arm(const std::string &name, const Schedule &schedule)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    detail::Access::apply(siteLocked(reg, name), schedule);
}

void
disarm(const std::string &name)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    detail::Access::clear(siteLocked(reg, name));
}

void
disarmAll()
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto &[name, fp] : reg.sites)
        detail::Access::clear(*fp);
}

bool
armFromSpec(const std::string &spec)
{
    Registry &reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    return armFromSpecLocked(reg, spec);
}

} // namespace earthplus::failpoint
