/**
 * @file
 * Streaming statistics, histograms and empirical CDFs.
 *
 * Used by the evaluation harness to aggregate per-capture measurements
 * (percentage of downloaded tiles, PSNR, reference age, ...) into the
 * summaries the paper reports.
 */

#ifndef EARTHPLUS_UTIL_STATS_HH
#define EARTHPLUS_UTIL_STATS_HH

#include <cstddef>
#include <vector>

namespace earthplus {

/**
 * Streaming mean / variance / min / max accumulator (Welford's method).
 */
class RunningStats
{
  public:
    RunningStats();

    /** Add one sample. */
    void add(double x);

    /** Number of samples added so far. */
    size_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const;

    /** Unbiased sample variance (0 with fewer than two samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Standard deviation of the mean (stddev / sqrt(n)). */
    double stderror() const;

    /** Smallest sample seen (0 when empty). */
    double min() const;

    /** Largest sample seen (0 when empty). */
    double max() const;

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    size_t count_;
    double mean_;
    double m2_;
    double min_;
    double max_;
    double sum_;
};

/**
 * Empirical distribution over a collected sample set.
 *
 * Stores all samples; supports quantile queries and CDF evaluation, which
 * back the paper's CDF plots (Figs. 5 and 12).
 */
class EmpiricalDistribution
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Add many samples. */
    void add(const std::vector<double> &xs);

    /** Number of samples. */
    size_t count() const { return samples_.size(); }

    /** Mean of all samples (0 when empty). */
    double mean() const;

    /**
     * Empirical quantile via linear interpolation.
     *
     * @param q Quantile in [0, 1].
     */
    double quantile(double q) const;

    /** Fraction of samples <= x. */
    double cdf(double x) const;

    /**
     * Evaluate the CDF on an evenly spaced grid of points between the
     * sample min and max.
     *
     * @return Vector of (x, P(X <= x)) pairs, n points.
     */
    std::vector<std::pair<double, double>> cdfSeries(int n) const;

    /** Sorted copy of the samples. */
    const std::vector<double> &sorted() const;

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;

    void ensureSorted() const;
};

/**
 * Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
 * first/last bin.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin (must exceed lo).
     * @param bins Number of bins (>= 1).
     */
    Histogram(double lo, double hi, int bins);

    /** Add one sample. */
    void add(double x);

    /** Count in bin i. */
    size_t binCount(int i) const;

    /** Center value of bin i. */
    double binCenter(int i) const;

    /** Number of bins. */
    int bins() const { return static_cast<int>(counts_.size()); }

    /** Total number of samples added. */
    size_t total() const { return total_; }

  private:
    double lo_, hi_;
    std::vector<size_t> counts_;
    size_t total_;
};

} // namespace earthplus

#endif // EARTHPLUS_UTIL_STATS_HH
