#include "util/stats.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace earthplus {

RunningStats::RunningStats()
    : count_(0), mean_(0.0), m2_(0.0), min_(0.0), max_(0.0), sum_(0.0)
{
}

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::mean() const
{
    return count_ ? mean_ : 0.0;
}

double
RunningStats::variance() const
{
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::stderror() const
{
    return count_ ? stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

double
RunningStats::min() const
{
    return count_ ? min_ : 0.0;
}

double
RunningStats::max() const
{
    return count_ ? max_ : 0.0;
}

void
EmpiricalDistribution::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

void
EmpiricalDistribution::add(const std::vector<double> &xs)
{
    samples_.insert(samples_.end(), xs.begin(), xs.end());
    sorted_ = false;
}

void
EmpiricalDistribution::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
EmpiricalDistribution::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

double
EmpiricalDistribution::quantile(double q) const
{
    EP_ASSERT(q >= 0.0 && q <= 1.0, "quantile %f out of range", q);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_[0];
    double pos = q * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
EmpiricalDistribution::cdf(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>>
EmpiricalDistribution::cdfSeries(int n) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || n < 2)
        return out;
    ensureSorted();
    double lo = samples_.front();
    double hi = samples_.back();
    out.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        double x = lo + (hi - lo) * static_cast<double>(i) /
                   static_cast<double>(n - 1);
        out.emplace_back(x, cdf(x));
    }
    return out;
}

const std::vector<double> &
EmpiricalDistribution::sorted() const
{
    ensureSorted();
    return samples_;
}

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo), hi_(hi), counts_(static_cast<size_t>(bins), 0), total_(0)
{
    EP_ASSERT(hi > lo, "histogram range [%f, %f) is empty", lo, hi);
    EP_ASSERT(bins >= 1, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    double t = (x - lo_) / (hi_ - lo_);
    int bin = static_cast<int>(t * static_cast<double>(counts_.size()));
    bin = std::clamp(bin, 0, static_cast<int>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(bin)];
    ++total_;
}

size_t
Histogram::binCount(int i) const
{
    EP_ASSERT(i >= 0 && i < bins(), "bin %d out of range", i);
    return counts_[static_cast<size_t>(i)];
}

double
Histogram::binCenter(int i) const
{
    EP_ASSERT(i >= 0 && i < bins(), "bin %d out of range", i);
    double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(i) + 0.5) * w;
}

} // namespace earthplus
