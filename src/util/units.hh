/**
 * @file
 * Unit conversions used throughout the link / storage models.
 *
 * The paper quotes link rates in kbps / Mbps, storage in GB and time in
 * minutes / days; these helpers keep those conversions explicit and
 * centralized.
 */

#ifndef EARTHPLUS_UTIL_UNITS_HH
#define EARTHPLUS_UTIL_UNITS_HH

namespace earthplus::units {

/** Bits in a kilobit (decimal, link-rate convention). */
constexpr double kBitsPerKbit = 1e3;
/** Bits in a megabit. */
constexpr double kBitsPerMbit = 1e6;
/** Bytes in a megabyte (decimal, matches the paper's 150 MB images). */
constexpr double kBytesPerMB = 1e6;
/** Bytes in a gigabyte. */
constexpr double kBytesPerGB = 1e9;
/** Seconds in a minute. */
constexpr double kSecondsPerMinute = 60.0;
/** Minutes in a day. */
constexpr double kMinutesPerDay = 24.0 * 60.0;
/** Seconds in a day. */
constexpr double kSecondsPerDay = 86400.0;

/** Convert kilobits/s to bytes/s. */
constexpr double
kbpsToBytesPerSec(double kbps)
{
    return kbps * kBitsPerKbit / 8.0;
}

/** Convert megabits/s to bytes/s. */
constexpr double
mbpsToBytesPerSec(double mbps)
{
    return mbps * kBitsPerMbit / 8.0;
}

/** Convert bytes to megabits. */
constexpr double
bytesToMbits(double bytes)
{
    return bytes * 8.0 / kBitsPerMbit;
}

/** Convert a byte count moved within a duration (seconds) to Mbps. */
constexpr double
bytesOverSecondsToMbps(double bytes, double seconds)
{
    return bytesToMbits(bytes) / seconds;
}

/** Convert bytes to decimal gigabytes. */
constexpr double
bytesToGB(double bytes)
{
    return bytes / kBytesPerGB;
}

/** Convert decimal megabytes to bytes. */
constexpr double
mbToBytes(double mb)
{
    return mb * kBytesPerMB;
}

} // namespace earthplus::units

#endif // EARTHPLUS_UTIL_UNITS_HH
