/**
 * @file
 * Aligned-column table printer for the benchmark harness.
 *
 * Every bench binary prints the rows/series the corresponding paper table
 * or figure reports; Table renders them readably on stdout and can also
 * emit CSV for plotting.
 */

#ifndef EARTHPLUS_UTIL_TABLE_HH
#define EARTHPLUS_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace earthplus {

/**
 * Accumulates rows of strings and prints them with aligned columns.
 */
class Table
{
  public:
    /** @param title Heading printed above the table. */
    explicit Table(std::string title);

    /** Set the column headers. */
    void setHeader(std::vector<std::string> header);

    /** Append one row (cells may be fewer than headers; padded empty). */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format a percentage (0.153 -> "15.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os) const;

    /** Render as CSV (comma-separated, header first). */
    void printCsv(std::ostream &os) const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace earthplus

#endif // EARTHPLUS_UTIL_TABLE_HH
