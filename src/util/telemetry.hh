/**
 * @file
 * Process-wide telemetry: a metrics registry (counters, gauges,
 * log-bucketed histograms), RAII trace spans with Chrome-trace
 * export, and a JSON snapshot of everything.
 *
 * Every subsystem with a hot path records into this layer — the codec
 * pipeline stages, the tile server's serve path, the thread pool, the
 * background queue and the sharded archive — so queueing behavior and
 * tail latency are observable without ad-hoc per-subsystem stats.
 * docs/OBSERVABILITY.md holds the metric naming scheme, the overhead
 * model, and the trace-viewing workflow.
 *
 * Design constraints, in order:
 *
 *  1. **Near-zero cost when disabled.** Every record path starts with
 *     one relaxed atomic load and a branch; a TraceSpan whose tracing
 *     flag is off touches nothing else. The perf gates run with
 *     metrics enabled, so the enabled cost is bounded too: counters
 *     and gauges are one relaxed fetch_add on a thread-sharded,
 *     cache-line-padded cell; histograms add one steady_clock read
 *     (paid by the caller) plus bucket math on integers.
 *  2. **Exact totals.** Counter/gauge/histogram updates never drop or
 *     approximate: concurrent adds sum exactly (tests pin this).
 *     Histograms log-bucket the *distribution* (16 sub-buckets per
 *     octave, <= ~6.3% relative bucket width) but count and sum are
 *     exact.
 *  3. **Monotonic.** Registry objects only accumulate. Callers that
 *     need a window (the tile server's StatsView since resetStats)
 *     subtract a baseline snapshot instead of clearing.
 *
 * Environment: EARTHPLUS_METRICS=0 starts with metrics disabled,
 * EARTHPLUS_TRACE=1 starts with tracing enabled (both default to
 * metrics on / tracing off and can be toggled programmatically).
 */

#ifndef EARTHPLUS_UTIL_TELEMETRY_HH
#define EARTHPLUS_UTIL_TELEMETRY_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace earthplus::telemetry {

namespace detail {

/** Master metrics switch; relaxed-checked on every record path. */
extern std::atomic<bool> metricsOn;

/** Master tracing switch; relaxed-checked by every TraceSpan. */
extern std::atomic<bool> tracingOn;

/**
 * Small dense id of the calling thread, used to pick a metric cell.
 * Monotonically assigned on first use per thread; never reused, so
 * two live threads never share an id (cells are chosen id mod cell
 * count, so *cache-line* sharing only starts beyond the cell count).
 */
uint32_t threadSlot();

/** One cache-line-padded atomic cell of a sharded counter/gauge. */
struct alignas(64) PaddedCell
{
    std::atomic<int64_t> v{0};
};

/** Record one complete span into the calling thread's trace buffer. */
void emitSpan(const char *name, const char *cat, uint64_t startNs,
              uint64_t endNs);

} // namespace detail

/** True when metric recording is enabled (the default). */
inline bool
metricsEnabled()
{
    return detail::metricsOn.load(std::memory_order_relaxed);
}

/** Toggle metric recording process-wide. */
void setMetricsEnabled(bool enabled);

/** True when span tracing is enabled (default off). */
inline bool
tracingEnabled()
{
    return detail::tracingOn.load(std::memory_order_relaxed);
}

/**
 * Toggle span tracing process-wide. The first enable stamps the trace
 * epoch all exported timestamps are relative to.
 */
void setTracing(bool enabled);

/** Monotonic nanoseconds (steady_clock), the unit every *_ns metric
 *  and span timestamp uses. */
inline uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Monotonic event counter on thread-sharded padded atomics: add() is
 * one relaxed fetch_add with no cross-thread cache-line contention up
 * to kCells concurrent threads; value() sums the cells.
 *
 * Obtain instances from counter(name) — references stay valid for the
 * process lifetime.
 */
class Counter
{
  public:
    /** Number of thread-sharded cells (power of two). */
    static constexpr uint32_t kCells = 16;

    /** Add `n` events (no-op while metrics are disabled). */
    void
    add(uint64_t n = 1)
    {
        if (!metricsEnabled())
            return;
        cells_[detail::threadSlot() & (kCells - 1)].v.fetch_add(
            static_cast<int64_t>(n), std::memory_order_relaxed);
    }

    /** Sum of all adds so far. */
    uint64_t
    value() const
    {
        int64_t total = 0;
        for (const auto &cell : cells_)
            total += cell.v.load(std::memory_order_relaxed);
        return static_cast<uint64_t>(total);
    }

  private:
    detail::PaddedCell cells_[kCells];
};

/**
 * Signed level gauge (queue depths, bytes outstanding): add()
 * positive or negative deltas on thread-sharded cells, value() is the
 * net sum. Like every registry object it only accumulates deltas;
 * there is deliberately no set().
 */
class Gauge
{
  public:
    /** Apply a delta (no-op while metrics are disabled). */
    void
    add(int64_t delta)
    {
        if (!metricsEnabled())
            return;
        cells_[detail::threadSlot() & (Counter::kCells - 1)].v.fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Net sum of all deltas so far. */
    int64_t
    value() const
    {
        int64_t total = 0;
        for (const auto &cell : cells_)
            total += cell.v.load(std::memory_order_relaxed);
        return total;
    }

  private:
    detail::PaddedCell cells_[Counter::kCells];
};

/**
 * Immutable copy of a Histogram's state. Supports quantile extraction
 * and subtraction, so a caller can report percentiles over a window
 * (samples since a baseline snapshot) while the underlying histogram
 * stays monotonic.
 */
class HistogramSnapshot
{
  public:
    /** Samples in the snapshot. */
    uint64_t count() const { return count_; }

    /** Exact sum of all sample values. */
    uint64_t sum() const { return sum_; }

    /** Mean sample value (0 when empty). */
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Value at quantile `q` in [0, 1] (nearest-rank), as the midpoint
     * of the log bucket holding that rank — within half the bucket's
     * <= ~6.3% relative width of the exact order statistic. 0 when
     * empty.
     */
    double quantile(double q) const;

    /** This snapshot minus an earlier `base` of the same histogram. */
    HistogramSnapshot since(const HistogramSnapshot &base) const;

  private:
    friend class Histogram;

    std::vector<uint64_t> counts_;
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
};

/**
 * Log-bucketed histogram of unsigned samples (latencies in
 * nanoseconds, sizes in bytes).
 *
 * Buckets: values below 16 map to exact unit buckets; above, each
 * power-of-two octave splits into 16 linear sub-buckets, so the
 * relative bucket width never exceeds 1/16 and quantiles extracted
 * from bucket midpoints sit within ~3.2% of the exact order
 * statistic. The full uint64_t range is covered — nothing clamps.
 *
 * record() is wait-free: one relaxed fetch_add into a thread-sharded
 * bucket array plus one into the shard's sum cell. count/sum are
 * exact; only the distribution is bucketed.
 */
class Histogram
{
  public:
    /** Sub-bucket resolution: 2^kSubBucketBits buckets per octave. */
    static constexpr int kSubBucketBits = 4;
    /** Total bucket count for the uint64_t value range. */
    static constexpr uint32_t kBuckets =
        ((64 - kSubBucketBits) << kSubBucketBits) +
        (1u << kSubBucketBits);
    /** Thread shards (power of two); merged on snapshot(). */
    static constexpr uint32_t kShards = 4;

    /** Largest relative error of a bucket-midpoint quantile. */
    static constexpr double kMaxRelativeError =
        0.5 / (1 << kSubBucketBits);

    /** Bucket index holding value `v`. */
    static uint32_t
    bucketIndex(uint64_t v)
    {
        if (v < (1u << kSubBucketBits))
            return static_cast<uint32_t>(v);
        int exp = 63 - __builtin_clzll(v);
        return static_cast<uint32_t>(
            ((exp - kSubBucketBits + 1) << kSubBucketBits) +
            ((v >> (exp - kSubBucketBits)) -
             (1u << kSubBucketBits)));
    }

    /** Midpoint value of bucket `b` (its representative). */
    static double midpoint(uint32_t b);

    /** Record one sample (no-op while metrics are disabled). */
    void
    record(uint64_t v)
    {
        if (!metricsEnabled())
            return;
        Shard &shard =
            shards_[detail::threadSlot() & (kShards - 1)];
        shard.buckets[bucketIndex(v)].fetch_add(
            1, std::memory_order_relaxed);
        shard.sum.fetch_add(v, std::memory_order_relaxed);
    }

    /** Samples recorded so far (exact). */
    uint64_t count() const;

    /** Exact sum of all samples. */
    uint64_t sum() const;

    /** Merge the shards into an immutable snapshot. */
    HistogramSnapshot snapshot() const;

    /** quantile() on a fresh snapshot (see HistogramSnapshot). */
    double
    quantile(double q) const
    {
        return snapshot().quantile(q);
    }

  private:
    struct Shard
    {
        std::atomic<uint64_t> buckets[kBuckets] = {};
        std::atomic<uint64_t> sum{0};
    };

    Shard shards_[kShards];
};

/**
 * Registry lookup: the process-wide counter named `name`, created on
 * first use. The reference stays valid for the process lifetime, so
 * hot paths resolve it once (function-local static) and add through
 * the pointer. Names are dotted lowercase paths —
 * docs/OBSERVABILITY.md spells out the scheme.
 */
Counter &counter(const std::string &name);

/** Registry lookup for a Gauge (see counter()). */
Gauge &gauge(const std::string &name);

/** Registry lookup for a Histogram (see counter()). */
Histogram &histogram(const std::string &name);

/**
 * One JSON object with every registered metric:
 *
 *   {"counters": {name: value, ...},
 *    "gauges": {name: value, ...},
 *    "histograms": {name: {"count": n, "sum": s, "mean": m,
 *                          "p50": ..., "p90": ..., "p99": ...,
 *                          "p999": ..., "max": ...}, ...}}
 *
 * Histogram values are in the histogram's native unit (nanoseconds
 * for *_ns names). Benches dump this next to their --json rows and
 * ci/trace_check.py asserts it parses.
 */
std::string snapshotJson();

/**
 * RAII scoped trace span: construction stamps the start, destruction
 * emits one Chrome complete event ("ph":"X") into the calling
 * thread's trace buffer. When tracing is disabled both ends reduce to
 * a relaxed load and a branch.
 *
 * `name` and `cat` must be string literals (or otherwise outlive the
 * trace collector): spans store the pointers, not copies. `cat` names
 * the subsystem ("codec", "ground", "archive", "pool", "bg") — the CI
 * trace check keys on it.
 */
class TraceSpan
{
  public:
    /** Open a span named `name` under subsystem category `cat`. */
    TraceSpan(const char *name, const char *cat)
    {
        if (tracingEnabled()) {
            name_ = name;
            cat_ = cat;
            startNs_ = nowNanos();
        }
    }

    /** Close the span and emit it (if it was armed). */
    ~TraceSpan()
    {
        if (name_)
            detail::emitSpan(name_, cat_, startNs_, nowNanos());
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    uint64_t startNs_ = 0;
};

/**
 * RAII latency sampler: records the scope's wall time in nanoseconds
 * into `hist` on destruction. The clock is only read while metrics
 * are enabled (checked once, at construction).
 */
class ScopedTimer
{
  public:
    /** Start timing into `hist` (histogram of nanoseconds). */
    explicit ScopedTimer(Histogram &hist) : hist_(&hist)
    {
        if (metricsEnabled())
            startNs_ = nowNanos();
    }

    /** Stop and record (no-op when started disabled). */
    ~ScopedTimer()
    {
        if (startNs_)
            hist_->record(nowNanos() - startNs_);
    }

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    Histogram *hist_;
    uint64_t startNs_ = 0;
};

/**
 * Serialize every span recorded since the last clearTrace() as Chrome
 * trace-event JSON ({"traceEvents": [...]}) — loadable in Perfetto or
 * chrome://tracing. Timestamps are microseconds since the trace
 * epoch; thread attribution comes from per-thread buffer ids.
 */
std::string traceJson();

/** traceJson() written to `path`; false on I/O failure. */
bool writeTrace(const std::string &path);

/** Discard every recorded span (buffers stay registered). */
void clearTrace();

/**
 * Spans dropped because a thread's buffer hit its cap (also counted
 * by the "telemetry.trace_dropped" registry counter).
 */
uint64_t traceDropped();

} // namespace earthplus::telemetry

#endif // EARTHPLUS_UTIL_TELEMETRY_HH
