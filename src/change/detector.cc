#include "change/detector.hh"

#include <cmath>

#include "raster/resample.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace earthplus::change {

std::vector<double>
tileMeanAbsDiff(const raster::Plane &a, const raster::Plane &b,
                int tileSizePx, const raster::Bitmap *valid)
{
    EP_ASSERT(a.sameShape(b), "tile diff on mismatched planes");
    EP_ASSERT(tileSizePx >= 1, "invalid tile size %d", tileSizePx);
    raster::TileGrid grid(a.width(), a.height(), tileSizePx);
    std::vector<double> diffs(static_cast<size_t>(grid.tileCount()), 0.0);
    // Tiles are independent; each writes only its own slot.
    util::ThreadPool::global().parallelFor(
        0, grid.tileCount(), [&](int64_t t) {
            raster::TileRect r = grid.rect(static_cast<int>(t));
            double sum = 0.0;
            size_t n = 0;
            for (int y = r.y0; y < r.y0 + r.height; ++y) {
                const float *ra = a.row(y);
                const float *rb = b.row(y);
                for (int x = r.x0; x < r.x0 + r.width; ++x) {
                    if (valid && !valid->get(x, y))
                        continue;
                    sum += std::abs(static_cast<double>(ra[x]) - rb[x]);
                    ++n;
                }
            }
            diffs[static_cast<size_t>(t)] =
                n ? sum / static_cast<double>(n) : 0.0;
        });
    return diffs;
}

ChangeDetection
detectChanges(const raster::Plane &capture,
              const raster::Plane &referenceLow,
              const ChangeDetectorParams &params,
              const raster::Bitmap *validLow)
{
    EP_ASSERT(params.referenceFactor >= 1, "invalid reference factor %d",
              params.referenceFactor);
    EP_ASSERT(params.tileSize % params.referenceFactor == 0,
              "tile size %d not divisible by reference factor %d",
              params.tileSize, params.referenceFactor);

    raster::Plane captureLow =
        raster::downsample(capture, params.referenceFactor);
    EP_ASSERT(captureLow.sameShape(referenceLow),
              "reference (%dx%d) does not match downsampled capture "
              "(%dx%d)", referenceLow.width(), referenceLow.height(),
              captureLow.width(), captureLow.height());

    ChangeDetection det;
    raster::Plane aligned = referenceLow;
    if (params.alignIllumination) {
        det.illumination =
            fitIllumination(referenceLow, captureLow, validLow);
        if (det.illumination.valid)
            applyIllumination(aligned, det.illumination);
    }

    int tileLow = params.tileSize / params.referenceFactor;
    det.tileDiffs = tileMeanAbsDiff(captureLow, aligned, tileLow, validLow);

    raster::TileGrid grid(capture.width(), capture.height(),
                          params.tileSize);
    EP_ASSERT(static_cast<int>(det.tileDiffs.size()) == grid.tileCount(),
              "tile accounting mismatch: %zu low-res vs %d full-res",
              det.tileDiffs.size(), grid.tileCount());
    det.changedTiles = raster::TileMask(grid);
    for (int t = 0; t < grid.tileCount(); ++t)
        det.changedTiles.set(
            t, det.tileDiffs[static_cast<size_t>(t)] > params.threshold);
    return det;
}

} // namespace earthplus::change
