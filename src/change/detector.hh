/**
 * @file
 * Tile-level change detection against (possibly downsampled)
 * reference images.
 *
 * A tile is changed when its mean absolute pixel difference against the
 * illumination-aligned reference exceeds a threshold theta (§3, §4.3).
 * Earth+ runs this at the reference's low resolution: unchanged tiles
 * stay low-difference when downsampled, so with a low theta only a few
 * changed tiles are missed (false negatives; Fig. 8).
 */

#ifndef EARTHPLUS_CHANGE_DETECTOR_HH
#define EARTHPLUS_CHANGE_DETECTOR_HH

#include <vector>

#include "change/illumination.hh"
#include "raster/bitmap.hh"
#include "raster/plane.hh"
#include "raster/tile.hh"

namespace earthplus::change {

/** Change-detection configuration. */
struct ChangeDetectorParams
{
    /** Mean-abs-difference threshold marking a tile changed. */
    double threshold = 0.01;
    /** Tile size in full-resolution pixels. */
    int tileSize = raster::kDefaultTileSize;
    /**
     * Downsampling factor of the reference (1 = full resolution). The
     * capture is downsampled by the same factor before differencing.
     */
    int referenceFactor = 1;
    /** Run the linear illumination alignment before differencing. */
    bool alignIllumination = true;
};

/** Result of change detection on one capture/reference pair. */
struct ChangeDetection
{
    /** Tiles flagged changed. */
    raster::TileMask changedTiles;
    /** Per-tile mean absolute difference (flat tile index order). */
    std::vector<double> tileDiffs;
    /** The illumination fit that was applied (identity if disabled). */
    IlluminationFit illumination;
};

/**
 * Per-tile mean absolute difference between two same-sized planes.
 *
 * @param a First plane.
 * @param b Second plane.
 * @param tileSizePx Tile size in *these planes'* pixels (i.e. already
 *                   divided by any downsampling factor).
 * @param valid Optional per-pixel validity mask; tiles with no valid
 *              pixels get a difference of 0.
 */
std::vector<double> tileMeanAbsDiff(const raster::Plane &a,
                                    const raster::Plane &b, int tileSizePx,
                                    const raster::Bitmap *valid = nullptr);

/**
 * Detect changed tiles in a capture against a low-resolution reference.
 *
 * @param capture Full-resolution captured plane.
 * @param referenceLow Reference already downsampled by
 *                     params.referenceFactor (pass the full-resolution
 *                     reference when the factor is 1).
 * @param params Detector configuration.
 * @param validLow Optional validity mask at the low resolution (e.g.
 *                 union of cloud-free areas in both images).
 */
ChangeDetection detectChanges(const raster::Plane &capture,
                              const raster::Plane &referenceLow,
                              const ChangeDetectorParams &params,
                              const raster::Bitmap *validLow = nullptr);

} // namespace earthplus::change

#endif // EARTHPLUS_CHANGE_DETECTOR_HH
