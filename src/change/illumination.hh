/**
 * @file
 * Illumination alignment between a capture and its reference.
 *
 * Illumination affects pixel values approximately linearly ([72], §5),
 * so Earth+ fits y = gain * x + bias by least squares over pixels that
 * are valid (non-cloudy) in both images, then maps the reference into
 * the capture's illumination before differencing.
 */

#ifndef EARTHPLUS_CHANGE_ILLUMINATION_HH
#define EARTHPLUS_CHANGE_ILLUMINATION_HH

#include "raster/bitmap.hh"
#include "raster/plane.hh"

namespace earthplus::change {

/** A fitted linear illumination map y = gain * x + bias. */
struct IlluminationFit
{
    double gain = 1.0;
    double bias = 0.0;
    /** Number of pixels the fit used. */
    size_t samples = 0;
    /** True when enough valid pixels existed for a stable fit. */
    bool valid = false;
};

/**
 * Least-squares fit of capture = gain * reference + bias.
 *
 * @param reference Reference pixels (x variable).
 * @param capture Captured pixels (y variable), same size.
 * @param valid Optional mask; only set pixels participate.
 * @return Fit with valid=false (identity) when fewer than 16 pixels
 *         are usable or the reference is constant.
 */
IlluminationFit fitIllumination(const raster::Plane &reference,
                                const raster::Plane &capture,
                                const raster::Bitmap *valid = nullptr);

/** Apply a fit in place: p = gain * p + bias, then clamp to [0, 1]. */
void applyIllumination(raster::Plane &p, const IlluminationFit &fit);

} // namespace earthplus::change

#endif // EARTHPLUS_CHANGE_ILLUMINATION_HH
