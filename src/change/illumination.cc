#include "change/illumination.hh"

#include "util/logging.hh"

namespace earthplus::change {

namespace {

/** Minimum usable pixels for a stable regression. */
constexpr size_t kMinSamples = 16;
/** Minimum reference variance to avoid a degenerate slope. */
constexpr double kMinVariance = 1e-8;

} // anonymous namespace

IlluminationFit
fitIllumination(const raster::Plane &reference,
                const raster::Plane &capture, const raster::Bitmap *valid)
{
    EP_ASSERT(reference.sameShape(capture),
              "illumination fit on mismatched planes");
    if (valid) {
        EP_ASSERT(valid->width() == reference.width() &&
                  valid->height() == reference.height(),
                  "validity mask shape mismatch");
    }

    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    size_t n = 0;
    for (int y = 0; y < reference.height(); ++y) {
        const float *rx = reference.row(y);
        const float *ry = capture.row(y);
        for (int x = 0; x < reference.width(); ++x) {
            if (valid && !valid->get(x, y))
                continue;
            double vx = rx[x];
            double vy = ry[x];
            sx += vx;
            sy += vy;
            sxx += vx * vx;
            sxy += vx * vy;
            ++n;
        }
    }

    IlluminationFit fit;
    fit.samples = n;
    if (n < kMinSamples)
        return fit;
    double dn = static_cast<double>(n);
    double var = sxx / dn - (sx / dn) * (sx / dn);
    if (var < kMinVariance)
        return fit;
    fit.gain = (sxy / dn - (sx / dn) * (sy / dn)) / var;
    fit.bias = sy / dn - fit.gain * (sx / dn);
    fit.valid = true;
    return fit;
}

void
applyIllumination(raster::Plane &p, const IlluminationFit &fit)
{
    float g = static_cast<float>(fit.gain);
    float b = static_cast<float>(fit.bias);
    for (auto &v : p.data())
        v = g * v + b;
    p.clampTo(0.0f, 1.0f);
}

} // namespace earthplus::change
