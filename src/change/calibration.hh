/**
 * @file
 * Threshold calibration for change detection.
 *
 * Earth+ chooses a static threshold theta by profiling the previous
 * year's data on one location and applies it to the next year
 * everywhere (§5). Two calibration targets are supported:
 *
 *  - a downloaded-tile budget (Fig. 8 fixes the total number of
 *    downloaded tiles while sweeping the reference compression ratio),
 *  - a false-positive cap (label more tiles changed at low resolution
 *    "without misclassifying an unchanged tile as changed", §4.3).
 */

#ifndef EARTHPLUS_CHANGE_CALIBRATION_HH
#define EARTHPLUS_CHANGE_CALIBRATION_HH

#include <vector>

namespace earthplus::change {

/** One tile's profiling observation. */
struct TileObservation
{
    /** Mean abs difference at the analysis (low) resolution. */
    double lowResDiff = 0.0;
    /** Mean abs difference at full resolution (the ground criterion). */
    double fullResDiff = 0.0;
};

/**
 * Largest threshold marking at least `targetFraction` of observed tiles
 * as changed (descending sweep). Returns 0 when even threshold 0 cannot
 * reach the target.
 */
double thresholdForBudget(const std::vector<TileObservation> &obs,
                          double targetFraction);

/**
 * Quality of a candidate threshold against full-resolution truth.
 */
struct ThresholdQuality
{
    /** Fraction of tiles flagged changed (download budget used). */
    double flaggedFraction = 0.0;
    /**
     * Fraction of all tiles that are truly changed (full-res diff above
     * `fullResThreshold`) but not flagged — Fig. 8's "changed tiles
     * that are not detected".
     */
    double missedFraction = 0.0;
    /** Fraction of flagged tiles that are truly unchanged. */
    double falsePositiveRate = 0.0;
};

/**
 * Evaluate a low-resolution threshold against full-resolution truth.
 *
 * @param obs Profiling observations.
 * @param lowThreshold Candidate low-resolution threshold.
 * @param fullResThreshold The paper's full-resolution criterion (0.01).
 */
ThresholdQuality evaluateThreshold(const std::vector<TileObservation> &obs,
                                   double lowThreshold,
                                   double fullResThreshold = 0.01);

} // namespace earthplus::change

#endif // EARTHPLUS_CHANGE_CALIBRATION_HH
