#include "change/calibration.hh"

#include <algorithm>

#include "util/logging.hh"

namespace earthplus::change {

double
thresholdForBudget(const std::vector<TileObservation> &obs,
                   double targetFraction)
{
    EP_ASSERT(targetFraction >= 0.0 && targetFraction <= 1.0,
              "target fraction %f out of range", targetFraction);
    if (obs.empty())
        return 0.0;
    std::vector<double> diffs;
    diffs.reserve(obs.size());
    for (const auto &o : obs)
        diffs.push_back(o.lowResDiff);
    std::sort(diffs.begin(), diffs.end(), std::greater<>());
    size_t want = static_cast<size_t>(
        targetFraction * static_cast<double>(diffs.size()));
    if (want == 0)
        return diffs.front(); // flag nothing: threshold at the max
    if (want >= diffs.size())
        return 0.0;
    // Tiles with diff strictly above the threshold are flagged; pick
    // the want-th largest value so exactly ~want tiles exceed it.
    return diffs[want];
}

ThresholdQuality
evaluateThreshold(const std::vector<TileObservation> &obs,
                  double lowThreshold, double fullResThreshold)
{
    ThresholdQuality q;
    if (obs.empty())
        return q;
    size_t flagged = 0, missed = 0, falsePos = 0;
    for (const auto &o : obs) {
        bool flag = o.lowResDiff > lowThreshold;
        bool truly = o.fullResDiff > fullResThreshold;
        flagged += flag ? 1 : 0;
        missed += (truly && !flag) ? 1 : 0;
        falsePos += (flag && !truly) ? 1 : 0;
    }
    double n = static_cast<double>(obs.size());
    q.flaggedFraction = static_cast<double>(flagged) / n;
    q.missedFraction = static_cast<double>(missed) / n;
    q.falsePositiveRate =
        flagged ? static_cast<double>(falsePos) /
                  static_cast<double>(flagged) : 0.0;
    return q;
}

} // namespace earthplus::change
