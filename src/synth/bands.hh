/**
 * @file
 * Spectral band models.
 *
 * Satellite imagery carries many bands with very different change
 * behaviour (§5, "Handling different bands"): ground-coupled bands
 * (RGB, SWIR) show land-cover changes, vegetation red-edge bands add a
 * strong seasonal component, and atmospheric bands (water vapor,
 * cirrus) barely react to ground changes at all. Each BandSpec captures
 * those couplings for the synthetic sensor.
 */

#ifndef EARTHPLUS_SYNTH_BANDS_HH
#define EARTHPLUS_SYNTH_BANDS_HH

#include <string>
#include <vector>

namespace earthplus::synth {

/** Behavioural parameters of one spectral band. */
struct BandSpec
{
    /** Display name, e.g. "B8a". */
    std::string name;
    /** How strongly discrete ground changes appear (0..~1.2). */
    double groundCoupling = 1.0;
    /** Seasonal modulation amplitude scale. */
    double seasonalAmplitude = 0.05;
    /** Static terrain texture amplitude. */
    double detailScale = 0.15;
    /** Weight of the smooth atmospheric component. */
    double atmosphere = 0.0;
    /** Additive Gaussian sensor noise sigma. */
    double noiseSigma = 0.004;
    /** Apparent reflectance of cloud in this band. */
    double cloudValue = 0.85;
    /**
     * True for bands where heavy clouds read much colder/darker than
     * ground (the infrared signal the cheap on-board detector uses, §5).
     */
    bool coldClouds = false;
};

/** The 13 Sentinel-2 MSI bands (B1..B12 including B8a). */
std::vector<BandSpec> sentinel2Bands();

/** The 4 Doves/PlanetScope bands (RGB + NIR). */
std::vector<BandSpec> dovesBands();

} // namespace earthplus::synth

#endif // EARTHPLUS_SYNTH_BANDS_HH
