/**
 * @file
 * Land-cover classification of synthetic locations.
 *
 * The paper's rich-content dataset spans rivers, forests, mountains,
 * agriculture and cities (Fig. 10); each class gets its own base
 * reflectance, texture, seasonal response and discrete-change rate, so
 * the per-location results (Fig. 14) reproduce the paper's structure
 * (snowy mountain locations barely improve, cities/agriculture do).
 */

#ifndef EARTHPLUS_SYNTH_LANDCOVER_HH
#define EARTHPLUS_SYNTH_LANDCOVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "raster/plane.hh"

namespace earthplus::synth {

/** Land-cover class of a pixel. */
enum class LandCover : uint8_t
{
    Water = 0,
    Forest,
    Mountain,
    Agriculture,
    Urban,
    Coastal,
    NumClasses,
};

/** Static per-class appearance/behaviour parameters. */
struct LandCoverParams
{
    /** Base reflectance (visible bands). */
    double baseReflectance;
    /** Texture amplitude multiplier. */
    double textureScale;
    /** Seasonal modulation multiplier (vegetation responds, water no). */
    double seasonalWeight;
    /** Discrete change events per tile per day. */
    double changeRatePerDay;
};

/** Look up the parameters for one class. */
const LandCoverParams &landCoverParams(LandCover c);

/**
 * Mixture weights describing one geographic location's composition.
 */
struct LocationProfile
{
    /** Identifier (index into the dataset's location list). */
    int locationId = 0;
    /** Display name ("A".."K" for the rich-content dataset). */
    std::string name;
    /** Mixture weight per LandCover class (normalized internally). */
    std::vector<double> mix;
    /** True for locations with seasonal snow (paper's H and D). */
    bool snowy = false;
    /** Noise seed for everything derived from this location. */
    uint64_t seed = 0;
};

/**
 * Per-pixel land-cover map for a location.
 *
 * Classes are assigned by thresholding a low-frequency fBm field with
 * per-class quantile bands sized by the profile's mixture weights, so
 * the map is spatially coherent (contiguous regions, not salt-and-
 * pepper).
 */
class LandCoverMap
{
  public:
    LandCoverMap(const LocationProfile &profile, int width, int height);

    /** Class of pixel (x, y). */
    LandCover at(int x, int y) const;

    /** Elevation proxy in [0, 1] (drives snow placement). */
    const raster::Plane &elevation() const { return elevation_; }

    int width() const { return width_; }
    int height() const { return height_; }

    /** Fraction of pixels with the given class. */
    double classFraction(LandCover c) const;

  private:
    int width_;
    int height_;
    std::vector<uint8_t> classes_;
    raster::Plane elevation_;
};

} // namespace earthplus::synth

#endif // EARTHPLUS_SYNTH_LANDCOVER_HH
