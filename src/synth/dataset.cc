#include "synth/dataset.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace earthplus::synth {

namespace {

LocationProfile
makeProfile(int id, const char *name, std::vector<double> mix, bool snowy,
            uint64_t seed)
{
    LocationProfile p;
    p.locationId = id;
    p.name = name;
    p.mix = std::move(mix);
    p.snowy = snowy;
    p.seed = seed;
    return p;
}

} // anonymous namespace

DatasetSpec
richContentDataset(int width, int height)
{
    DatasetSpec spec;
    spec.name = "rich-content (Sentinel-2-like)";
    spec.bands = sentinel2Bands();
    spec.width = width;
    spec.height = height;
    spec.startDay = 0.0;
    spec.endDay = 365.0;
    // Sentinel-2's two satellites give a 5-day combined revisit; each
    // satellite alone revisits every 10 days.
    spec.revisitDays = 10.0;
    spec.satelliteCount = 2;
    spec.gsdMeters = 10.0;
    spec.locationAreaKm2 = 1600.0;
    spec.seed = 0x5e2d00d;

    // Mixture order: Water, Forest, Mountain, Agriculture, Urban, Coastal.
    uint64_t s = spec.seed;
    spec.locations = {
        makeProfile(0, "A", {0.30, 0.30, 0.05, 0.20, 0.10, 0.05}, false,
                    s ^ 0xA1), // fluvial landscape
        makeProfile(1, "B", {0.05, 0.70, 0.15, 0.05, 0.05, 0.00}, false,
                    s ^ 0xB2), // forest
        makeProfile(2, "C", {0.05, 0.25, 0.60, 0.05, 0.05, 0.00}, false,
                    s ^ 0xC3), // mountains (no persistent snow)
        makeProfile(3, "D", {0.02, 0.28, 0.60, 0.05, 0.05, 0.00}, true,
                    s ^ 0xD4), // snowy mountains (paper: marginal)
        makeProfile(4, "E", {0.05, 0.10, 0.05, 0.65, 0.15, 0.00}, false,
                    s ^ 0xE5), // irrigated agriculture
        makeProfile(5, "F", {0.05, 0.10, 0.05, 0.15, 0.65, 0.00}, false,
                    s ^ 0xF6), // city
        makeProfile(6, "G", {0.10, 0.40, 0.10, 0.30, 0.10, 0.00}, false,
                    s ^ 0x17), // mixed
        makeProfile(7, "H", {0.02, 0.18, 0.70, 0.05, 0.05, 0.00}, true,
                    s ^ 0x28), // snowy high mountains (paper: no gain)
        makeProfile(8, "I", {0.15, 0.25, 0.05, 0.40, 0.15, 0.00}, false,
                    s ^ 0x39), // river + agriculture
        makeProfile(9, "J", {0.05, 0.15, 0.05, 0.30, 0.45, 0.00}, false,
                    s ^ 0x4A), // suburban
        makeProfile(10, "K", {0.25, 0.30, 0.10, 0.20, 0.10, 0.05}, false,
                    s ^ 0x5B), // mixed fluvial
    };
    return spec;
}

DatasetSpec
largeConstellationDataset(int width, int height)
{
    DatasetSpec spec;
    spec.name = "large-constellation (Planet-like)";
    spec.bands = dovesBands();
    spec.width = width;
    spec.height = height;
    spec.startDay = 0.0;
    spec.endDay = 90.0;
    // Doves image a different swath on each pass, so any particular
    // location sees a specific satellite only every ~40 days while the
    // constellation as a whole images it slightly more than daily —
    // the rates implied by the paper's Fig. 5 (4.2-day constellation-
    // wide cloud-free interval at ~20% clear-sky probability).
    spec.revisitDays = 40.0;
    spec.satelliteCount = 48;
    spec.gsdMeters = 3.7;
    spec.locationAreaKm2 = 36.0;
    spec.seed = 0x9a7e7;
    spec.maxCloudCoverage = 0.05; // Table 2: Planet images <5% cloud
    spec.locations = {
        makeProfile(0, "Coastal",
                    {0.25, 0.10, 0.02, 0.13, 0.20, 0.30}, false,
                    spec.seed ^ 0x77),
    };
    return spec;
}

std::vector<double>
captureDays(const DatasetSpec &spec, int satelliteId, int locationId)
{
    EP_ASSERT(satelliteId >= 0 && satelliteId < spec.satelliteCount,
              "satellite %d out of range", satelliteId);
    EP_ASSERT(spec.revisitDays > 0.0, "non-positive revisit period");
    // Satellites are phase-staggered across the revisit period; the
    // location index shifts the pattern so different locations are not
    // all imaged by the same satellite on the same day.
    double phase = std::fmod(
        spec.revisitDays * static_cast<double>(satelliteId) /
                static_cast<double>(spec.satelliteCount) +
            0.37 * static_cast<double>(locationId),
        spec.revisitDays);
    std::vector<double> days;
    for (double d = spec.startDay + phase; d < spec.endDay;
         d += spec.revisitDays)
        days.push_back(d);
    return days;
}

std::vector<std::pair<double, int>>
constellationSchedule(const DatasetSpec &spec, int locationId)
{
    std::vector<std::pair<double, int>> schedule;
    for (int s = 0; s < spec.satelliteCount; ++s)
        for (double d : captureDays(spec, s, locationId))
            schedule.emplace_back(d, s);
    std::sort(schedule.begin(), schedule.end());
    return schedule;
}

} // namespace earthplus::synth
