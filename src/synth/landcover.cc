#include "synth/landcover.hh"

#include <algorithm>
#include <array>
#include <numeric>

#include "synth/noise.hh"
#include "util/logging.hh"

namespace earthplus::synth {

namespace {

constexpr size_t kNumClasses =
    static_cast<size_t>(LandCover::NumClasses);

// Change rates are calibrated so that a typical mixed location matches
// Fig. 4: ~15% of tiles changed at a 10-day reference age, ~45% at 50
// days (P(changed by t) = 1 - exp(-rate * t) per tile, averaged over
// the mixture).
const std::array<LandCoverParams, kNumClasses> kParams = {{
    // baseRefl texture seasonal changes/day
    {0.08,     0.30,   0.10,    0.0008}, // Water
    {0.22,     0.90,   1.00,    0.0030}, // Forest (slow)
    {0.38,     1.10,   0.60,    0.0025}, // Mountain (slow)
    {0.34,     1.00,   1.40,    0.0220}, // Agriculture (crop cycles)
    {0.46,     1.30,   0.20,    0.0100}, // Urban (construction, traffic)
    {0.30,     0.80,   0.70,    0.0180}, // Coastal (tides, sediment)
}};

} // anonymous namespace

const LandCoverParams &
landCoverParams(LandCover c)
{
    size_t i = static_cast<size_t>(c);
    EP_ASSERT(i < kNumClasses, "bad land-cover class %zu", i);
    return kParams[i];
}

LandCoverMap::LandCoverMap(const LocationProfile &profile, int width,
                           int height)
    : width_(width), height_(height)
{
    EP_ASSERT(profile.mix.size() == kNumClasses,
              "location profile must weight all %zu classes, got %zu",
              kNumClasses, profile.mix.size());
    classes_.assign(static_cast<size_t>(width) *
                    static_cast<size_t>(height), 0);

    // Low-frequency field whose quantile bands become class regions.
    raster::Plane field =
        fbmPlane(width, height, 1.0 / 96.0, 4, profile.seed ^ 0x1a2b);
    elevation_ =
        fbmPlane(width, height, 1.0 / 128.0, 5, profile.seed ^ 0x3c4d);

    // Convert mixture weights into cumulative thresholds over the
    // field's empirical distribution.
    double total = std::accumulate(profile.mix.begin(), profile.mix.end(),
                                   0.0);
    EP_ASSERT(total > 0.0, "location profile mixture is all zero");
    std::vector<float> sorted(field.data());
    std::sort(sorted.begin(), sorted.end());
    std::array<float, kNumClasses> thresholds{};
    double cum = 0.0;
    for (size_t c = 0; c < kNumClasses; ++c) {
        cum += profile.mix[c] / total;
        size_t idx = static_cast<size_t>(
            std::min(cum, 1.0) * static_cast<double>(sorted.size() - 1));
        thresholds[c] = sorted[idx];
    }

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            float v = field.at(x, y);
            uint8_t cls = static_cast<uint8_t>(kNumClasses - 1);
            for (size_t c = 0; c < kNumClasses; ++c) {
                if (v <= thresholds[c]) {
                    cls = static_cast<uint8_t>(c);
                    break;
                }
            }
            classes_[static_cast<size_t>(y) * width + x] = cls;
        }
    }
}

LandCover
LandCoverMap::at(int x, int y) const
{
    EP_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
              "pixel (%d,%d) out of range", x, y);
    return static_cast<LandCover>(
        classes_[static_cast<size_t>(y) * width_ + x]);
}

double
LandCoverMap::classFraction(LandCover c) const
{
    if (classes_.empty())
        return 0.0;
    size_t n = 0;
    for (uint8_t v : classes_)
        if (v == static_cast<uint8_t>(c))
            ++n;
    return static_cast<double>(n) / static_cast<double>(classes_.size());
}

} // namespace earthplus::synth
