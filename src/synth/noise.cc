#include "synth/noise.hh"

#include <cmath>

namespace earthplus::synth {

namespace {

/** Integer lattice hash -> [0, 1). */
double
latticeHash(int64_t ix, int64_t iy, uint64_t seed)
{
    uint64_t h = seed;
    h ^= static_cast<uint64_t>(ix) * 0x9e3779b97f4a7c15ULL;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h ^= static_cast<uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double
smoothstep(double t)
{
    return t * t * (3.0 - 2.0 * t);
}

} // anonymous namespace

double
valueNoise(double x, double y, uint64_t seed)
{
    double fx = std::floor(x);
    double fy = std::floor(y);
    int64_t ix = static_cast<int64_t>(fx);
    int64_t iy = static_cast<int64_t>(fy);
    double tx = smoothstep(x - fx);
    double ty = smoothstep(y - fy);
    double v00 = latticeHash(ix, iy, seed);
    double v10 = latticeHash(ix + 1, iy, seed);
    double v01 = latticeHash(ix, iy + 1, seed);
    double v11 = latticeHash(ix + 1, iy + 1, seed);
    double v0 = v00 + (v10 - v00) * tx;
    double v1 = v01 + (v11 - v01) * tx;
    return 2.0 * (v0 + (v1 - v0) * ty) - 1.0;
}

double
fbm(double x, double y, int octaves, double gain, uint64_t seed)
{
    double sum = 0.0;
    double amp = 1.0;
    double norm = 0.0;
    double fx = x;
    double fy = y;
    for (int o = 0; o < octaves; ++o) {
        sum += amp * valueNoise(fx, fy, seed + static_cast<uint64_t>(o));
        norm += amp;
        amp *= gain;
        fx *= 2.0;
        fy *= 2.0;
    }
    return norm > 0.0 ? sum / norm : 0.0;
}

raster::Plane
fbmPlane(int width, int height, double frequency, int octaves,
         uint64_t seed)
{
    raster::Plane out(width, height);
    for (int y = 0; y < height; ++y) {
        float *row = out.row(y);
        for (int x = 0; x < width; ++x) {
            double v = fbm(x * frequency, y * frequency, octaves, 0.5,
                           seed);
            row[x] = static_cast<float>(0.5 * (v + 1.0));
        }
    }
    return out;
}

double
valueNoise1D(double t, uint64_t seed)
{
    return valueNoise(t, 0.37, seed);
}

} // namespace earthplus::synth
