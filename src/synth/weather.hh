/**
 * @file
 * Per-location daily cloud-coverage process.
 *
 * All satellites overflying a location on the same day see the same
 * weather (sun-synchronous constellations image a location at nearly
 * the same local time, §2.1), which is what makes constellation-wide
 * reference freshness a temporal-coverage effect rather than a lucky-
 * draw effect. Parameters are calibrated to the paper's statistics:
 * mean coverage ~2/3 ([10] in §3) and P(coverage < 1%) such that a
 * 10-day-revisit satellite sees a cloud-free image every ~50 days
 * while a daily-revisit constellation sees one every ~4-5 days (Fig 5).
 */

#ifndef EARTHPLUS_SYNTH_WEATHER_HH
#define EARTHPLUS_SYNTH_WEATHER_HH

#include <cstdint>

namespace earthplus::synth {

/** Mixture parameters of the daily coverage distribution. */
struct WeatherParams
{
    /** Mean P(clear day: coverage ~ U[0, 0.01)). */
    double pClear = 0.20;
    /** Mean P(partly cloudy: coverage ~ U[0.01, 0.5)). */
    double pPartial = 0.22;
    /** Remaining probability: overcast, coverage ~ U[overcastLo, 1). */
    double overcastLo = 0.62;
    /**
     * Seasonal modulation of the clear/partial probabilities: clear
     * days cluster in summer, overcast in winter (mid-latitude
     * climate). 0 disables seasonality; 1 gives ~6x more clear days in
     * summer than winter while preserving the yearly means.
     */
    double seasonality = 1.0;
    /** Process seed. */
    uint64_t seed = 0x5eedc10dULL;
};

/**
 * Deterministic daily cloud coverage per location.
 */
class WeatherProcess
{
  public:
    explicit WeatherProcess(const WeatherParams &params = WeatherParams());

    /**
     * Cloud coverage fraction for the given location and (integer) day.
     * Identical for every satellite capturing that day.
     */
    double coverage(int locationId, int day) const;

    /** Mean coverage over a day range (for calibration checks). */
    double meanCoverage(int locationId, int fromDay, int toDay) const;

    const WeatherParams &params() const { return params_; }

  private:
    WeatherParams params_;
};

} // namespace earthplus::synth

#endif // EARTHPLUS_SYNTH_WEATHER_HH
