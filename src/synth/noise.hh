/**
 * @file
 * Seeded procedural noise (value noise + fractional Brownian motion).
 *
 * The synthetic Earth substitutes for the Sentinel-2 / Planet datasets
 * the paper evaluates on (see DESIGN.md); fBm provides the terrain
 * textures, cloud fields and atmospheric patterns.
 */

#ifndef EARTHPLUS_SYNTH_NOISE_HH
#define EARTHPLUS_SYNTH_NOISE_HH

#include <cstdint>

#include "raster/plane.hh"

namespace earthplus::synth {

/**
 * Smooth value noise at a point, range [-1, 1], period-free, fully
 * determined by (x, y, seed).
 */
double valueNoise(double x, double y, uint64_t seed);

/**
 * Fractional Brownian motion: `octaves` layers of value noise with
 * frequency doubling (lacunarity 2) and amplitude decay `gain` per
 * octave. Output approximately in [-1, 1].
 */
double fbm(double x, double y, int octaves, double gain, uint64_t seed);

/**
 * Fill a plane with fBm sampled on a regular grid, remapped to [0, 1].
 *
 * @param width Plane width.
 * @param height Plane height.
 * @param frequency Base spatial frequency in cycles per pixel.
 * @param octaves Number of fBm octaves.
 * @param seed Noise seed.
 */
raster::Plane fbmPlane(int width, int height, double frequency,
                       int octaves, uint64_t seed);

/** 1D smooth noise for slowly varying scalar processes (e.g. albedo). */
double valueNoise1D(double t, uint64_t seed);

} // namespace earthplus::synth

#endif // EARTHPLUS_SYNTH_NOISE_HH
