/**
 * @file
 * Synthetic stand-ins for the paper's two evaluation datasets
 * (Table 2): the Sentinel-2 "rich-content" dataset (11 Washington-State
 * locations, 13 bands, 1 year, 2 satellites) and the Planet
 * "large-constellation" dataset (1 coastal location, 4 bands, 3 months,
 * 48 satellites).
 */

#ifndef EARTHPLUS_SYNTH_DATASET_HH
#define EARTHPLUS_SYNTH_DATASET_HH

#include <string>
#include <vector>

#include "synth/bands.hh"
#include "synth/landcover.hh"

namespace earthplus::synth {

/** Full description of one synthetic dataset. */
struct DatasetSpec
{
    /** Dataset name for reports. */
    std::string name;
    /** One profile per geographic location. */
    std::vector<LocationProfile> locations;
    /** Spectral bands. */
    std::vector<BandSpec> bands;
    /** Capture width in pixels. */
    int width = 256;
    /** Capture height in pixels. */
    int height = 256;
    /** Tile edge length. */
    int tileSize = 64;
    /** First evaluation day. */
    double startDay = 0.0;
    /** One-past-last evaluation day. */
    double endDay = 365.0;
    /** Days between two visits of the same satellite to a location. */
    double revisitDays = 10.0;
    /** Number of satellites in the constellation. */
    int satelliteCount = 2;
    /** Master seed. */
    uint64_t seed = 0xea57f00d;

    /**
     * Dataset-level cloud filter: captures with more (ground-truth)
     * cloud coverage than this are absent from the dataset. The
     * paper's Planet dataset only contains <5%-cloud images (Table 2);
     * Sentinel-2 keeps everything.
     */
    double maxCloudCoverage = 1.0;

    /** Ground-sampling distance (metres/pixel), reporting only. */
    double gsdMeters = 10.0;
    /** Coverage of one location (km^2), reporting only. */
    double locationAreaKm2 = 1600.0;
};

/**
 * The Sentinel-2-like dataset: 11 locations A..K spanning rivers,
 * forests, mountains (H and D snowy), agriculture and cities.
 *
 * @param width Capture width (the paper itself downsamples Sentinel-2
 *              4x for tractability; our default mirrors that spirit).
 * @param height Capture height.
 */
DatasetSpec richContentDataset(int width = 256, int height = 256);

/**
 * The Planet-like dataset: one coastal location, 48 satellites, RGB+NIR,
 * three months.
 */
DatasetSpec largeConstellationDataset(int width = 256, int height = 256);

/**
 * Capture days of one satellite for a location: the satellite revisits
 * every `spec.revisitDays`, with satellites' phases staggered evenly so
 * the constellation as a whole visits a location
 * satelliteCount / revisitDays times per day (capped at one visit per
 * satellite per revisit period).
 *
 * @return Sorted capture days within [spec.startDay, spec.endDay).
 */
std::vector<double> captureDays(const DatasetSpec &spec, int satelliteId,
                                int locationId);

/**
 * Merged (day, satelliteId) capture schedule of the whole constellation
 * for one location, sorted by day.
 */
std::vector<std::pair<double, int>>
constellationSchedule(const DatasetSpec &spec, int locationId);

} // namespace earthplus::synth

#endif // EARTHPLUS_SYNTH_DATASET_HH
