/**
 * @file
 * Capture simulation: clouds, illumination and sensor noise.
 *
 * Two consecutive captures of the same ground differ substantially in
 * raw pixel values because of cloud and illumination differences
 * (paper Fig. 9); CaptureSimulator reproduces exactly those nuisance
 * processes on top of SceneModel's ground truth. Illumination acts
 * linearly on pixel values (per [72], which justifies Earth+'s linear-
 * regression alignment).
 */

#ifndef EARTHPLUS_SYNTH_SENSOR_HH
#define EARTHPLUS_SYNTH_SENSOR_HH

#include <cstdint>

#include "raster/bitmap.hh"
#include "raster/image.hh"
#include "synth/scene.hh"
#include "synth/weather.hh"

namespace earthplus::synth {

/** One simulated capture with its ground-truth annotations. */
struct Capture
{
    /** Sensed multi-band image (clouds + illumination + noise). */
    raster::Image image;
    /** Ground-truth cloud mask (opacity > 0.1). */
    raster::Bitmap cloudTruth;
    /** Ground-truth pixel cloud coverage fraction. */
    double cloudCoverage = 0.0;
    /** Applied illumination gain. */
    double illumGain = 1.0;
    /** Applied illumination bias. */
    double illumBias = 0.0;
};

/** Capture nuisance-process configuration. */
struct SensorParams
{
    /**
     * Std-dev of the illumination gain around 1. Sun-synchronous
     * orbits revisit at the same local time (§2.1 fn. 2), so gain
     * variation between captures is modest — but still large enough
     * that unaligned differencing misfires (Fig. 9).
     */
    double gainSigma = 0.025;
    /** Std-dev of the illumination bias around 0. */
    double biasSigma = 0.008;
    /** Cloud-field base spatial frequency (cycles per pixel). */
    double cloudFrequency = 1.0 / 56.0;
    /** Master seed for all per-capture draws. */
    uint64_t seed = 0xcab1e5;
};

/**
 * Renders captures of one scene under a shared weather process.
 */
class CaptureSimulator
{
  public:
    /**
     * @param scene Ground-truth scene (borrowed; must outlive this).
     * @param weather Daily coverage process (borrowed).
     * @param params Nuisance-process parameters.
     */
    CaptureSimulator(const SceneModel &scene, const WeatherProcess &weather,
                     const SensorParams &params = SensorParams());

    /**
     * Render a full multi-band capture.
     *
     * Cloud fields are shared by every satellite on the same integer
     * day; illumination and noise are satellite-specific.
     */
    Capture capture(double day, int satelliteId) const;

    /** Render a single band (identical pixels to capture().band(b)). */
    Capture captureBand(double day, int satelliteId, int b) const;

    /** Cloud opacity field for a day (shared across satellites). */
    raster::Plane cloudOpacity(double day) const;

    const SceneModel &scene() const { return scene_; }

  private:
    const SceneModel &scene_;
    const WeatherProcess &weather_;
    SensorParams params_;

    void renderBand(Capture &cap, const raster::Plane &opacity,
                    double day, int satelliteId, int b) const;
    void annotate(Capture &cap, const raster::Plane &opacity, double day,
                  int satelliteId) const;
};

} // namespace earthplus::synth

#endif // EARTHPLUS_SYNTH_SENSOR_HH
