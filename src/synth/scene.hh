/**
 * @file
 * Ground-truth scene evolution for one geographic location.
 *
 * SceneModel answers "what does the ground actually look like on day t
 * in band b" — before clouds, illumination and sensor noise are applied
 * by the capture simulator. It combines:
 *
 *  - a static land-cover base with terrain texture,
 *  - a smooth seasonal cycle (strong in vegetation bands),
 *  - discrete per-tile change events (Poisson arrivals whose rates are
 *    land-cover-dependent, calibrated to the paper's Fig. 4 curve),
 *  - seasonal snow with per-day varying albedo (the reason the paper's
 *    snowy locations H and D see little benefit, Fig. 14), and
 *  - a drifting atmospheric field (dominant in bands B1/B9/B10).
 */

#ifndef EARTHPLUS_SYNTH_SCENE_HH
#define EARTHPLUS_SYNTH_SCENE_HH

#include <vector>

#include "raster/image.hh"
#include "raster/tile.hh"
#include "synth/bands.hh"
#include "synth/landcover.hh"

namespace earthplus::synth {

/** Scene generation configuration. */
struct SceneConfig
{
    /** Image width in pixels. */
    int width = 256;
    /** Image height in pixels. */
    int height = 256;
    /** Tile edge length (the paper's change-accounting unit). */
    int tileSize = raster::kDefaultTileSize;
    /** Spectral bands to synthesize. */
    std::vector<BandSpec> bands;
    /** Earliest day change events are generated for (history). */
    double historyStartDay = -120.0;
    /** Latest day change events are generated for. */
    double horizonDays = 480.0;
    /** Amplitude of one discrete change event's texture delta. */
    double changeMagnitude = 0.14;
    /** Global multiplier on land-cover change rates. */
    double changeRateScale = 1.0;
};

/**
 * Deterministic ground-truth generator for one location.
 *
 * All queries are const; a small per-tile cache of accumulated change
 * deltas is maintained internally (not thread-safe).
 */
class SceneModel
{
  public:
    SceneModel(const LocationProfile &profile, const SceneConfig &config);

    /** The location this scene models. */
    const LocationProfile &profile() const { return profile_; }

    /** Generation configuration. */
    const SceneConfig &config() const { return config_; }

    /** Land-cover classification. */
    const LandCoverMap &landCover() const { return landCover_; }

    /** Tile grid used for change events. */
    const raster::TileGrid &grid() const { return grid_; }

    /**
     * Ground-truth reflectance of band b on the given day (no clouds,
     * no illumination, no sensor noise). Values in [0, 1].
     */
    raster::Plane groundTruth(double day, int b) const;

    /** All bands on the given day. */
    raster::Image groundTruthImage(double day) const;

    /** Number of discrete change events in tile t within (d1, d2]. */
    int eventsBetween(int tileIdx, double d1, double d2) const;

    /**
     * Ground-truth changed-tile mask between two days: a tile is
     * changed when it saw a discrete event or contains snow whose
     * albedo moved materially.
     */
    raster::TileMask trueChangedTiles(double d1, double d2) const;

    /** Snow albedo on the given day (varies day to day). */
    double snowAlbedo(double day) const;

    /** Seasonal snow extent weight in [0, 1] (0 in summer). */
    double snowSeason(double day) const;

  private:
    LocationProfile profile_;
    SceneConfig config_;
    LandCoverMap landCover_;
    raster::TileGrid grid_;

    raster::Plane classBase_;    ///< Per-pixel land-cover base level.
    raster::Plane detail_;       ///< Zero-mean terrain texture.
    raster::Plane seasonWeight_; ///< Per-pixel seasonal response.
    raster::Plane snowWeight_;   ///< Per-pixel snow-proneness (0 if not snowy).

    /** Event times per tile, sorted ascending. */
    std::vector<std::vector<double>> eventTimes_;

    struct TileChangeCache
    {
        int applied = 0;       ///< Number of events folded in.
        raster::Plane delta;   ///< Accumulated zero-mean delta.
    };
    mutable std::vector<TileChangeCache> changeCache_;

    /** Accumulated change delta for tile t with `count` events applied. */
    const raster::Plane &changeDelta(int tileIdx, int count) const;

    /** Zero-mean texture of one change event. */
    raster::Plane eventTexture(int tileIdx, int eventIdx, int w,
                               int h) const;
};

} // namespace earthplus::synth

#endif // EARTHPLUS_SYNTH_SCENE_HH
