#include "synth/weather.hh"

#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace earthplus::synth {

WeatherProcess::WeatherProcess(const WeatherParams &params)
    : params_(params)
{
    EP_ASSERT(params.pClear >= 0.0 && params.pPartial >= 0.0 &&
              params.pClear + params.pPartial <= 1.0,
              "invalid weather mixture");
}

double
WeatherProcess::coverage(int locationId, int day) const
{
    uint64_t salt = (static_cast<uint64_t>(static_cast<uint32_t>(
                         locationId)) << 32) ^
                    static_cast<uint64_t>(static_cast<uint32_t>(day));
    Rng rng = Rng(params_.seed).fork(salt);

    // Seasonal weight: 1 at mid-summer (day ~196), 0 at mid-winter.
    double doy = std::fmod(std::fmod(static_cast<double>(day), 365.0) +
                           365.0, 365.0);
    double w = 0.5 * (1.0 + std::cos(2.0 * M_PI * (doy - 196.0) / 365.0));
    double s = params_.seasonality;
    // Modulate around the mean so the yearly averages stay put.
    double pc = params_.pClear * (1.0 + s * (2.0 * w - 1.0) * 0.85);
    double pp = params_.pPartial * (1.0 + s * (2.0 * w - 1.0) * 0.5);

    double u = rng.uniform();
    if (u < pc)
        return rng.uniform(0.0, 0.01);
    if (u < pc + pp)
        return rng.uniform(0.01, 0.5);
    return rng.uniform(params_.overcastLo, 1.0);
}

double
WeatherProcess::meanCoverage(int locationId, int fromDay, int toDay) const
{
    if (toDay <= fromDay)
        return 0.0;
    double sum = 0.0;
    for (int d = fromDay; d < toDay; ++d)
        sum += coverage(locationId, d);
    return sum / static_cast<double>(toDay - fromDay);
}

} // namespace earthplus::synth
