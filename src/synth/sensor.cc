#include "synth/sensor.hh"

#include <algorithm>
#include <cmath>

#include "synth/noise.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace earthplus::synth {

namespace {

/** Opacity above which a pixel counts as cloud in the ground truth. */
constexpr float kCloudTruthOpacity = 0.1f;

uint64_t
captureSalt(int locationId, double day, int satelliteId)
{
    uint64_t d = static_cast<uint64_t>(
        static_cast<int64_t>(std::floor(day * 16.0)));
    return (static_cast<uint64_t>(static_cast<uint32_t>(locationId))
            << 40) ^
           (static_cast<uint64_t>(static_cast<uint32_t>(satelliteId))
            << 20) ^ d;
}

} // anonymous namespace

CaptureSimulator::CaptureSimulator(const SceneModel &scene,
                                   const WeatherProcess &weather,
                                   const SensorParams &params)
    : scene_(scene), weather_(weather), params_(params)
{
}

raster::Plane
CaptureSimulator::cloudOpacity(double day) const
{
    int w = scene_.config().width;
    int h = scene_.config().height;
    int dayIdx = static_cast<int>(std::floor(day));
    double coverage =
        weather_.coverage(scene_.profile().locationId, dayIdx);

    // Weather (and thus the cloud field) is shared by all satellites
    // imaging this location on this day.
    uint64_t seed = params_.seed ^
                    (static_cast<uint64_t>(static_cast<uint32_t>(
                         scene_.profile().locationId)) << 32) ^
                    static_cast<uint64_t>(static_cast<uint32_t>(dayIdx));
    raster::Plane field = fbmPlane(w, h, params_.cloudFrequency, 4, seed);

    // Pick the threshold as the (1 - coverage) quantile of the field so
    // the realized pixel coverage matches the drawn coverage.
    std::vector<float> sorted(field.data());
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(
        std::clamp(1.0 - coverage, 0.0, 1.0) *
        static_cast<double>(sorted.size() - 1));
    float threshold = sorted[idx];

    raster::Plane opacity(w, h);
    for (int y = 0; y < h; ++y) {
        const float *src = field.row(y);
        float *dst = opacity.row(y);
        for (int x = 0; x < w; ++x) {
            // Soft shoulder: cores are opaque, edges are translucent.
            float t = (src[x] - threshold) / 0.06f;
            dst[x] = std::clamp(t, 0.0f, 1.0f);
        }
    }
    return opacity;
}

void
CaptureSimulator::annotate(Capture &cap, const raster::Plane &opacity,
                           double day, int satelliteId) const
{
    int w = opacity.width();
    int h = opacity.height();
    cap.cloudTruth = raster::Bitmap(w, h);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            cap.cloudTruth.set(x, y, opacity.at(x, y) > kCloudTruthOpacity);
    cap.cloudCoverage = cap.cloudTruth.fractionSet();

    Rng rng = Rng(params_.seed).fork(
        captureSalt(scene_.profile().locationId, day, satelliteId));
    cap.illumGain = std::clamp(rng.normal(1.0, params_.gainSigma),
                               0.8, 1.2);
    cap.illumBias = std::clamp(rng.normal(0.0, params_.biasSigma),
                               -0.06, 0.06);
    cap.image.info().locationId = scene_.profile().locationId;
    cap.image.info().satelliteId = satelliteId;
    cap.image.info().captureDay = day;
}

void
CaptureSimulator::renderBand(Capture &cap, const raster::Plane &opacity,
                             double day, int satelliteId, int b) const
{
    const BandSpec &band =
        scene_.config().bands[static_cast<size_t>(b)];
    raster::Plane ground = scene_.groundTruth(day, b);
    int w = ground.width();
    int h = ground.height();

    Rng rng = Rng(params_.seed ^ 0x0015e001ULL).fork(
        captureSalt(scene_.profile().locationId, day, satelliteId) ^
        (static_cast<uint64_t>(b) << 56));

    float cloudVal = static_cast<float>(band.cloudValue);
    float gain = static_cast<float>(cap.illumGain);
    float bias = static_cast<float>(cap.illumBias);
    float sigma = static_cast<float>(band.noiseSigma);
    for (int y = 0; y < h; ++y) {
        float *row = ground.row(y);
        const float *op = opacity.row(y);
        for (int x = 0; x < w; ++x) {
            float o = op[x];
            float v = row[x] * (1.0f - o) + cloudVal * o;
            v = gain * v + bias +
                static_cast<float>(rng.normal(0.0, sigma));
            row[x] = v;
        }
    }
    ground.clampTo(0.0f, 1.0f);
    cap.image.addBand(std::move(ground));
}

Capture
CaptureSimulator::capture(double day, int satelliteId) const
{
    Capture cap;
    raster::Plane opacity = cloudOpacity(day);
    annotate(cap, opacity, day, satelliteId);
    for (int b = 0; b < static_cast<int>(scene_.config().bands.size());
         ++b)
        renderBand(cap, opacity, day, satelliteId, b);
    return cap;
}

Capture
CaptureSimulator::captureBand(double day, int satelliteId, int b) const
{
    EP_ASSERT(b >= 0 &&
              b < static_cast<int>(scene_.config().bands.size()),
              "band %d out of range", b);
    Capture cap;
    raster::Plane opacity = cloudOpacity(day);
    annotate(cap, opacity, day, satelliteId);
    // Each band derives an independent noise stream from its index, so
    // a band rendered in isolation is pixel-identical to the same band
    // inside a full capture.
    renderBand(cap, opacity, day, satelliteId, b);
    return cap;
}

} // namespace earthplus::synth
