#include "synth/scene.hh"

#include <algorithm>
#include <cmath>

#include "synth/noise.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace earthplus::synth {

namespace {

constexpr double kDaysPerYear = 365.0;
/** Day-of-year of peak snow extent (mid January). */
constexpr double kSnowPeakDoy = 15.0;
/**
 * Snow reflectance in cold-cloud (SWIR) bands. Snow is darker than in
 * the visible but clearly brighter than heavy cloud (~0.18), which is
 * what lets cloud detectors separate the two.
 */
constexpr double kSnowSwirValue = 0.35;

double
seasonPhase(double day)
{
    // Smooth annual cycle peaking mid-summer (day ~196).
    return std::sin(2.0 * M_PI * (day - 105.0) / kDaysPerYear);
}

} // anonymous namespace

SceneModel::SceneModel(const LocationProfile &profile,
                       const SceneConfig &config)
    : profile_(profile), config_(config),
      landCover_(profile, config.width, config.height),
      grid_(config.width, config.height, config.tileSize)
{
    EP_ASSERT(!config_.bands.empty(), "scene needs at least one band");
    EP_ASSERT(config_.horizonDays > config_.historyStartDay,
              "empty scene time range");

    int w = config_.width;
    int h = config_.height;
    classBase_ = raster::Plane(w, h);
    detail_ = raster::Plane(w, h);
    seasonWeight_ = raster::Plane(w, h);
    snowWeight_ = raster::Plane(w, h, 0.0f);

    raster::Plane texture =
        fbmPlane(w, h, 1.0 / 24.0, 5, profile_.seed ^ 0x7e57);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            LandCover c = landCover_.at(x, y);
            const LandCoverParams &p = landCoverParams(c);
            classBase_.at(x, y) = static_cast<float>(p.baseReflectance);
            detail_.at(x, y) = static_cast<float>(
                (texture.at(x, y) - 0.5) * p.textureScale);
            seasonWeight_.at(x, y) = static_cast<float>(p.seasonalWeight);
            if (profile_.snowy) {
                // Snow accumulates on high terrain; weight ramps in over
                // the top elevation band.
                double e = landCover_.elevation().at(x, y);
                double sw = std::clamp((e - 0.55) / 0.2, 0.0, 1.0);
                snowWeight_.at(x, y) = static_cast<float>(sw);
            }
        }
    }

    // Draw per-tile Poisson change-event times over the scene horizon.
    int tiles = grid_.tileCount();
    eventTimes_.resize(static_cast<size_t>(tiles));
    changeCache_.resize(static_cast<size_t>(tiles));
    Rng sceneRng = Rng(profile_.seed).fork(0xc4a9);
    for (int t = 0; t < tiles; ++t) {
        // Tile change rate = mean of its pixels' land-cover rates.
        raster::TileRect r = grid_.rect(t);
        double rate = 0.0;
        int n = 0;
        for (int y = r.y0; y < r.y0 + r.height; y += 4) {
            for (int x = r.x0; x < r.x0 + r.width; x += 4) {
                rate += landCoverParams(landCover_.at(x, y))
                            .changeRatePerDay;
                ++n;
            }
        }
        rate = n ? rate / n : 0.0;
        rate *= config_.changeRateScale;
        Rng tileRng = sceneRng.fork(static_cast<uint64_t>(t));
        double day = config_.historyStartDay;
        auto &events = eventTimes_[static_cast<size_t>(t)];
        while (rate > 0.0) {
            day += tileRng.exponential(rate);
            if (day > config_.horizonDays)
                break;
            events.push_back(day);
        }
    }
}

raster::Plane
SceneModel::eventTexture(int tileIdx, int eventIdx, int w, int h) const
{
    uint64_t seed = profile_.seed ^
                    (static_cast<uint64_t>(tileIdx) * 0x9e37u) ^
                    (static_cast<uint64_t>(eventIdx) * 0x85ebca6bULL);
    raster::Plane tex = fbmPlane(w, h, 1.0 / 18.0, 3, seed);
    // Recenter to zero mean so events change structure, not brightness
    // alone, then scale to the configured magnitude.
    double mean = tex.mean();
    for (auto &v : tex.data())
        v = static_cast<float>((v - mean) * 2.0 * config_.changeMagnitude);
    return tex;
}

const raster::Plane &
SceneModel::changeDelta(int tileIdx, int count) const
{
    auto &cache = changeCache_[static_cast<size_t>(tileIdx)];
    raster::TileRect r = grid_.rect(tileIdx);
    if (cache.delta.empty())
        cache.delta = raster::Plane(r.width, r.height, 0.0f);
    if (cache.applied > count) {
        // Time went backwards past a cached event; rebuild from scratch.
        cache.delta.fill(0.0f);
        cache.applied = 0;
    }
    while (cache.applied < count) {
        raster::Plane tex =
            eventTexture(tileIdx, cache.applied, r.width, r.height);
        for (size_t i = 0; i < tex.data().size(); ++i)
            cache.delta.data()[i] += tex.data()[i];
        ++cache.applied;
    }
    return cache.delta;
}

int
SceneModel::eventsBetween(int tileIdx, double d1, double d2) const
{
    EP_ASSERT(tileIdx >= 0 && tileIdx < grid_.tileCount(),
              "tile %d out of range", tileIdx);
    const auto &events = eventTimes_[static_cast<size_t>(tileIdx)];
    auto lo = std::upper_bound(events.begin(), events.end(), d1);
    auto hi = std::upper_bound(events.begin(), events.end(), d2);
    return static_cast<int>(hi - lo);
}

double
SceneModel::snowAlbedo(double day) const
{
    // Fresh/old/dirty snow albedo drifts on a multi-day scale; two
    // captures days apart therefore see materially different snow.
    return 0.72 + 0.12 * valueNoise1D(day * 0.31, profile_.seed ^ 0x5a0f);
}

double
SceneModel::snowSeason(double day) const
{
    double doy = std::fmod(std::fmod(day, kDaysPerYear) + kDaysPerYear,
                           kDaysPerYear);
    double c = 0.5 * (1.0 + std::cos(2.0 * M_PI * (doy - kSnowPeakDoy) /
                                     kDaysPerYear));
    return c * c * c; // sharpen: snow only around the winter peak
}

raster::Plane
SceneModel::groundTruth(double day, int b) const
{
    EP_ASSERT(b >= 0 && b < static_cast<int>(config_.bands.size()),
              "band %d out of range", b);
    const BandSpec &band = config_.bands[static_cast<size_t>(b)];
    int w = config_.width;
    int h = config_.height;
    raster::Plane out(w, h);

    double season = seasonPhase(day);
    double snowSeasonW = profile_.snowy ? snowSeason(day) : 0.0;
    double albedo = snowAlbedo(day);
    double snowValue = band.coldClouds ? kSnowSwirValue : albedo;
    bool hasAtmo = band.atmosphere > 0.04;
    uint64_t atmoSeed = profile_.seed ^ 0xa7305eedULL ^
                        (static_cast<uint64_t>(b) << 48);

    // Ground component per tile: base + texture + seasonal + changes.
    for (int t = 0; t < grid_.tileCount(); ++t) {
        raster::TileRect r = grid_.rect(t);
        int count = eventsBetween(t, config_.historyStartDay - 1.0, day);
        const raster::Plane &delta = changeDelta(t, count);
        for (int y = 0; y < r.height; ++y) {
            int gy = r.y0 + y;
            float *row = out.row(gy);
            for (int x = 0; x < r.width; ++x) {
                int gx = r.x0 + x;
                double v = classBase_.at(gx, gy) +
                           band.detailScale * detail_.at(gx, gy) +
                           band.seasonalAmplitude *
                               seasonWeight_.at(gx, gy) * season +
                           band.groundCoupling * delta.at(x, y);
                double sw = snowWeight_.at(gx, gy) * snowSeasonW;
                if (sw > 0.0) {
                    // Snow drapes the terrain rather than erasing it:
                    // part of the surface texture stays visible, which
                    // keeps snow distinguishable from (smooth) clouds.
                    v = v * (1.0 - sw) +
                        (snowValue + 0.35 * band.detailScale *
                                         detail_.at(gx, gy)) * sw;
                }
                row[gx] = static_cast<float>(v);
            }
        }
    }

    // Atmospheric component: a smooth, *slowly* drifting field,
    // dominant in the air-observing bands (B1/B9/B10). The drift is
    // gentle: the paper observes air bands change least between
    // cloud-free revisits (§5).
    if (hasAtmo) {
        double aw = band.atmosphere;
        for (int y = 0; y < h; ++y) {
            float *row = out.row(y);
            for (int x = 0; x < w; ++x) {
                double a = 0.35 +
                           0.10 * fbm(x / 200.0 + day * 0.008,
                                      y / 200.0 - day * 0.006, 3, 0.5,
                                      atmoSeed);
                row[x] = static_cast<float>(row[x] * (1.0 - aw) + a * aw);
            }
        }
    }

    out.clampTo(0.0f, 1.0f);
    return out;
}

raster::Image
SceneModel::groundTruthImage(double day) const
{
    raster::Image img;
    for (int b = 0; b < static_cast<int>(config_.bands.size()); ++b)
        img.addBand(groundTruth(day, b));
    img.info().locationId = profile_.locationId;
    img.info().captureDay = day;
    return img;
}

raster::TileMask
SceneModel::trueChangedTiles(double d1, double d2) const
{
    raster::TileMask mask(grid_);
    double albedoDiff = std::abs(snowAlbedo(d2) - snowAlbedo(d1));
    double snowW = std::max(snowSeason(d1), snowSeason(d2));
    for (int t = 0; t < grid_.tileCount(); ++t) {
        bool changed = eventsBetween(t, d1, d2) > 0;
        if (!changed && profile_.snowy && snowW > 0.05 &&
            albedoDiff > 0.02) {
            // Snowy tiles: check whether the tile actually holds snow.
            raster::TileRect r = grid_.rect(t);
            double sw = 0.0;
            int n = 0;
            for (int y = r.y0; y < r.y0 + r.height; y += 8) {
                for (int x = r.x0; x < r.x0 + r.width; x += 8) {
                    sw += snowWeight_.at(x, y);
                    ++n;
                }
            }
            changed = n > 0 && (sw / n) * snowW > 0.05;
        }
        mask.set(t, changed);
    }
    return mask;
}

} // namespace earthplus::synth
