#include "synth/bands.hh"

namespace earthplus::synth {

std::vector<BandSpec>
sentinel2Bands()
{
    // groundCoupling / seasonalAmplitude follow the paper's band
    // taxonomy (§5): RGB + SWIR are ground bands, B5-B8a are
    // temperature-sensitive vegetation bands, B9/B10 observe the air.
    std::vector<BandSpec> bands;
    auto add = [&](const char *name, double ground, double seasonal,
                   double detail, double atmo, double cloud, bool cold) {
        BandSpec b;
        b.name = name;
        b.groundCoupling = ground;
        b.seasonalAmplitude = seasonal;
        b.detailScale = detail;
        b.atmosphere = atmo;
        b.cloudValue = cloud;
        b.coldClouds = cold;
        bands.push_back(b);
    };
    //   name   ground seasonal detail atmo cloud cold
    add("B1",   0.40,  0.010,   0.08,  0.30, 0.80, false); // coastal aerosol
    add("B2",   1.00,  0.020,   0.15,  0.02, 0.85, false); // blue
    add("B3",   1.00,  0.025,   0.16,  0.02, 0.85, false); // green
    add("B4",   1.00,  0.025,   0.17,  0.02, 0.85, false); // red
    add("B5",   1.05,  0.045,   0.16,  0.02, 0.84, false); // red edge 1
    add("B6",   1.10,  0.055,   0.16,  0.02, 0.84, false); // red edge 2
    add("B7",   1.15,  0.060,   0.16,  0.02, 0.84, false); // red edge 3
    add("B8",   1.15,  0.060,   0.18,  0.02, 0.83, false); // NIR
    add("B8a",  1.15,  0.060,   0.17,  0.02, 0.83, false); // narrow NIR
    add("B9",   0.05,  0.005,   0.04,  0.60, 0.75, false); // water vapor
    add("B10",  0.05,  0.005,   0.03,  0.55, 0.95, false); // cirrus
    add("B11",  0.95,  0.035,   0.16,  0.02, 0.20, true);  // SWIR 1
    add("B12",  0.95,  0.035,   0.16,  0.02, 0.18, true);  // SWIR 2
    return bands;
}

std::vector<BandSpec>
dovesBands()
{
    std::vector<BandSpec> bands;
    auto add = [&](const char *name, double ground, double seasonal,
                   double cloud, bool cold) {
        BandSpec b;
        b.name = name;
        b.groundCoupling = ground;
        b.seasonalAmplitude = seasonal;
        b.detailScale = 0.16;
        b.atmosphere = 0.02;
        b.cloudValue = cloud;
        b.coldClouds = cold;
        bands.push_back(b);
    };
    add("R",   1.00, 0.025, 0.85, false);
    add("G",   1.00, 0.025, 0.85, false);
    add("B",   1.00, 0.020, 0.85, false);
    // Doves' NIR doubles as the cold-cloud channel for the cheap
    // decision-tree detector.
    add("NIR", 1.15, 0.055, 0.22, true);
    return bands;
}

} // namespace earthplus::synth
