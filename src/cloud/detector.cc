#include "cloud/detector.hh"

#include <algorithm>
#include <cmath>

#include "raster/resample.hh"
#include "util/logging.hh"
#include "util/parallel.hh"

namespace earthplus::cloud {

CheapCloudDetector::CheapCloudDetector() = default;

CheapCloudDetector::CheapCloudDetector(const Params &params)
    : params_(params)
{
}

CloudDetection
CheapCloudDetector::detect(const raster::Image &img,
                           const std::vector<synth::BandSpec> &bands,
                           const raster::TileGrid &grid) const
{
    EP_ASSERT(img.bandCount() == static_cast<int>(bands.size()),
              "band spec count %zu != image bands %d", bands.size(),
              img.bandCount());
    BandRoles roles = rolesFor(bands);
    raster::Plane visible = bandMean(img, roles.visible);
    raster::Plane infrared = bandMean(img, roles.infrared);
    bool hasIr = !roles.infrared.empty();

    // Decision tree on the downsampled capture: only tile-level
    // decisions are needed, so analysis at low resolution is enough
    // (§5) and keeps the on-board cost low.
    int f = std::max(params_.analysisFactor, 1);
    raster::Plane visLow = raster::downsample(visible, f);
    raster::Plane irLow = raster::downsample(infrared, f);

    // Rows are independent (byte-per-pixel mask), so the decision tree
    // fans across the pool.
    raster::Bitmap lowMask(visLow.width(), visLow.height());
    util::ThreadPool::global().parallelFor(
        0, visLow.height(), [&](int64_t y) {
            for (int x = 0; x < visLow.width(); ++x) {
                float vis = visLow.at(x, static_cast<int>(y));
                bool cloudy;
                if (hasIr) {
                    float ir = std::max(irLow.at(x, static_cast<int>(y)),
                                        1e-3f);
                    float ratio = vis / ir;
                    // Bright AND much brighter than IR: heavy cold
                    // cloud; a second branch admits very bright
                    // moderate clouds.
                    cloudy = (vis > params_.minVisible &&
                              ratio > params_.minRatio) ||
                             (vis > params_.midVisible &&
                              ratio > params_.midRatio);
                } else {
                    cloudy = vis > params_.minVisibleNoIr;
                }
                lowMask.set(x, static_cast<int>(y), cloudy);
            }
        });

    CloudDetection det;
    // Upsample the low-res decision to pixel resolution (block copy).
    det.pixelMask = raster::Bitmap(img.width(), img.height());
    util::ThreadPool::global().parallelFor(
        0, img.height(), [&](int64_t y) {
            int ylow = std::min(static_cast<int>(y) / f,
                                lowMask.height() - 1);
            for (int x = 0; x < img.width(); ++x)
                det.pixelMask.set(x, static_cast<int>(y),
                                  lowMask.get(std::min(x / f,
                                                       lowMask.width() -
                                                           1),
                                              ylow));
        });
    det.coverage = det.pixelMask.fractionSet();
    det.tileMask = raster::tileMaskFromBitmap(det.pixelMask, grid,
                                              params_.tileCloudFraction);
    return det;
}

AccurateCloudDetector::AccurateCloudDetector() = default;

AccurateCloudDetector::AccurateCloudDetector(const Params &params)
    : params_(params)
{
}

CloudDetection
AccurateCloudDetector::detect(const raster::Image &img,
                              const std::vector<synth::BandSpec> &bands,
                              const raster::TileGrid &grid) const
{
    EP_ASSERT(img.bandCount() == static_cast<int>(bands.size()),
              "band spec count %zu != image bands %d", bands.size(),
              img.bandCount());
    BandRoles roles = rolesFor(bands);
    raster::Plane visible = bandMean(img, roles.visible);
    raster::Plane infrared = bandMean(img, roles.infrared);
    bool hasIr = !roles.infrared.empty();

    // Initial opacity estimate: clouds raise the visible signal and
    // depress the IR signal; the difference is approximately linear in
    // optical thickness for our rendering model. A low quantile of the
    // per-image difference calibrates away global band offsets
    // (seasonal vegetation response, illumination): ground pixels
    // dominate the low end even in substantially cloudy scenes, since
    // clouds only push the difference up.
    int w = img.width();
    int h = img.height();
    float offset = 0.0f;
    if (hasIr) {
        std::vector<float> sample;
        sample.reserve(4096);
        int step = std::max(1, (w * h) / 4096);
        for (int i = 0; i < w * h; i += step)
            sample.push_back(visible.data()[static_cast<size_t>(i)] -
                             infrared.data()[static_cast<size_t>(i)]);
        size_t q = sample.size() / 7; // ~15th percentile
        std::nth_element(sample.begin(), sample.begin() +
                         static_cast<ptrdiff_t>(q), sample.end());
        // Ground band offsets stay below ~0.2 even in deep winter; a
        // larger quantile means the scene is overwhelmingly cloudy and
        // must not be calibrated away.
        offset = std::clamp(sample[q], 0.0f, 0.2f);
    }
    raster::Plane score(w, h);
    for (int y = 0; y < h; ++y) {
        float *row = score.row(y);
        const float *vis = visible.row(y);
        const float *ir = infrared.row(y);
        for (int x = 0; x < w; ++x) {
            float s = hasIr ? (vis[x] - ir[x] - offset) / 0.65f
                            : (vis[x] - 0.55f) / 0.35f;
            row[x] = std::clamp(s, 0.0f, 1.0f);
        }
    }

    // Deep smoothing stack: each layer is a convolution followed by a
    // soft nonlinearity; this integrates spatial context so thin cloud
    // edges connected to cores survive while isolated bright pixels
    // wash out. (This is the deliberately compute-heavy stage standing
    // in for the paper's tens-of-layers neural detector [74].)
    raster::Plane ctx = score;
    for (int layer = 0; layer < params_.convLayers; ++layer) {
        ctx = boxBlur(ctx, params_.kernelRadius);
        util::ThreadPool::global().parallelFor(
            0, static_cast<int64_t>(ctx.data().size()),
            [&](int64_t i) {
                // Blend context back with the raw score and squash.
                float v = 0.6f * ctx.data()[static_cast<size_t>(i)] +
                          0.4f * score.data()[static_cast<size_t>(i)];
                ctx.data()[static_cast<size_t>(i)] =
                    v / (1.0f + std::abs(v - 0.5f) * 0.1f);
            },
            4096);
    }

    // Texture veto: clouds are smooth at the 5x5 scale, terrain
    // (including snow-covered terrain) is not.
    raster::Plane texture = localStddev(visible, 2);

    CloudDetection det;
    det.pixelMask = raster::Bitmap(w, h);
    util::ThreadPool::global().parallelFor(0, h, [&](int64_t y) {
        for (int x = 0; x < w; ++x) {
            bool cloudy =
                ctx.at(x, static_cast<int>(y)) >
                    static_cast<float>(params_.scoreThreshold) &&
                texture.at(x, static_cast<int>(y)) <
                    static_cast<float>(params_.textureVeto);
            det.pixelMask.set(x, static_cast<int>(y), cloudy);
        }
    });
    det.coverage = det.pixelMask.fractionSet();
    det.tileMask = raster::tileMaskFromBitmap(det.pixelMask, grid,
                                              params_.tileCloudFraction);
    return det;
}

DetectionQuality
scoreDetection(const raster::Bitmap &detected, const raster::Bitmap &truth)
{
    EP_ASSERT(detected.width() == truth.width() &&
              detected.height() == truth.height(),
              "mask shape mismatch");
    size_t tp = 0, fp = 0, fn = 0;
    for (int y = 0; y < detected.height(); ++y) {
        for (int x = 0; x < detected.width(); ++x) {
            bool d = detected.get(x, y);
            bool t = truth.get(x, y);
            tp += (d && t) ? 1 : 0;
            fp += (d && !t) ? 1 : 0;
            fn += (!d && t) ? 1 : 0;
        }
    }
    DetectionQuality q;
    q.precision = (tp + fp) ? static_cast<double>(tp) /
                              static_cast<double>(tp + fp) : 1.0;
    q.recall = (tp + fn) ? static_cast<double>(tp) /
                           static_cast<double>(tp + fn) : 0.0;
    return q;
}

} // namespace earthplus::cloud
