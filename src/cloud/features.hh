/**
 * @file
 * Per-pixel features shared by the cloud detectors.
 *
 * Both detectors work from two physical signals: clouds are bright in
 * the visible bands and cold/dark in the shortwave-infrared bands (§5:
 * "the temperature of heavy clouds significantly differs from the
 * nearby ground and can be easily detected using the InfraRed band").
 */

#ifndef EARTHPLUS_CLOUD_FEATURES_HH
#define EARTHPLUS_CLOUD_FEATURES_HH

#include <vector>

#include "raster/image.hh"
#include "synth/bands.hh"

namespace earthplus::cloud {

/** Which bands serve which detection role. */
struct BandRoles
{
    /** Indices of visible/ground bands (brightness signal). */
    std::vector<int> visible;
    /** Indices of cold-cloud (SWIR/IR) bands. */
    std::vector<int> infrared;
};

/**
 * Classify bands into detection roles from their specs.
 *
 * Atmospheric bands (B1/B9/B10) are excluded from the brightness
 * signal; coldClouds bands form the infrared signal. When a dataset
 * has no infrared band the detector falls back to brightness only.
 */
BandRoles rolesFor(const std::vector<synth::BandSpec> &bands);

/**
 * Mean of the given bands per pixel.
 *
 * @param img Source image.
 * @param bandIdx Band indices to average (empty -> zero plane).
 */
raster::Plane bandMean(const raster::Image &img,
                       const std::vector<int> &bandIdx);

/**
 * Local standard deviation over a (2r+1)^2 window (box statistics).
 *
 * Clouds are spatially smooth; terrain (including snow-covered
 * terrain) is not. Used as a texture veto.
 */
raster::Plane localStddev(const raster::Plane &p, int radius);

/** Box blur with a (2r+1)^2 window (used by the accurate detector). */
raster::Plane boxBlur(const raster::Plane &p, int radius);

} // namespace earthplus::cloud

#endif // EARTHPLUS_CLOUD_FEATURES_HH
