/**
 * @file
 * The two cloud detectors of the paper.
 *
 * Earth+ splits cloud detection asymmetrically (§4.3, §5):
 *
 *  - On board, a cheap decision tree flags only easy, heavy clouds.
 *    Missing a cloud is tolerable (the tile is downloaded as changed);
 *    a false positive is harmful (real changes get discarded), so the
 *    tree is tuned for >99% precision at modest recall, and it runs on
 *    a downsampled capture because only tile-level decisions are
 *    needed.
 *
 *  - On the ground (and on board for the Kodan baseline), an accurate
 *    but compute-heavy multi-layer convolutional detector finds thin
 *    clouds too, and gates which reference images are uploaded.
 */

#ifndef EARTHPLUS_CLOUD_DETECTOR_HH
#define EARTHPLUS_CLOUD_DETECTOR_HH

#include <vector>

#include "cloud/features.hh"
#include "raster/bitmap.hh"
#include "raster/image.hh"
#include "raster/tile.hh"
#include "synth/bands.hh"

namespace earthplus::cloud {

/** Result of running a detector on one capture. */
struct CloudDetection
{
    /** Per-pixel cloud mask (full capture resolution). */
    raster::Bitmap pixelMask;
    /** Tiles whose cloud fraction exceeds the detector's threshold. */
    raster::TileMask tileMask;
    /** Fraction of pixels flagged cloudy. */
    double coverage = 0.0;
};

/**
 * Cheap on-board detector: a fixed decision tree on brightness and the
 * visible/IR ratio, evaluated on a downsampled capture.
 */
class CheapCloudDetector
{
  public:
    /** Decision-tree thresholds. */
    struct Params
    {
        /** Minimum brightness of a cloud core. */
        double minVisible = 0.55;
        /** Minimum visible/IR ratio (clouds are cold: high ratio). */
        double minRatio = 3.2;
        /**
         * Second branch for moderate clouds: brighter pixels qualify
         * at a lower ratio (still above snow's ~2.3).
         */
        double midVisible = 0.70;
        double midRatio = 2.6;
        /** Brightness that is cloud regardless of ratio (no-IR mode). */
        double minVisibleNoIr = 0.80;
        /** Analysis downsampling factor (paper uses tile-level 64x). */
        int analysisFactor = 8;
        /** Tile flagged cloudy above this cloud fraction. */
        double tileCloudFraction = 0.5;
    };

    /** Construct with default thresholds. */
    CheapCloudDetector();

    /** Construct with explicit thresholds. */
    explicit CheapCloudDetector(const Params &params);

    /**
     * Run detection.
     *
     * @param img The capture.
     * @param bands Band specs describing the capture's bands.
     * @param grid Tile grid of the capture.
     */
    CloudDetection detect(const raster::Image &img,
                          const std::vector<synth::BandSpec> &bands,
                          const raster::TileGrid &grid) const;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

/**
 * Accurate detector: a stack of convolution + nonlinearity layers over
 * brightness/IR/texture features, thresholded into a mask. Finds thin
 * cloud edges the decision tree misses; costs an order of magnitude
 * more compute (which Fig. 16 measures).
 */
class AccurateCloudDetector
{
  public:
    struct Params
    {
        /** Number of convolution layers ("tens of layers", §4.3). */
        int convLayers = 12;
        /** Blur radius per layer. */
        int kernelRadius = 2;
        /** Opacity-score threshold for the final mask. */
        double scoreThreshold = 0.12;
        /** Texture veto: local stddev above this is terrain, not cloud. */
        double textureVeto = 0.035;
        /** Tile flagged cloudy above this cloud fraction. */
        double tileCloudFraction = 0.4;
    };

    /** Construct with default parameters. */
    AccurateCloudDetector();

    /** Construct with explicit parameters. */
    explicit AccurateCloudDetector(const Params &params);

    /** Run detection (see CheapCloudDetector::detect). */
    CloudDetection detect(const raster::Image &img,
                          const std::vector<synth::BandSpec> &bands,
                          const raster::TileGrid &grid) const;

    const Params &params() const { return params_; }

  private:
    Params params_;
};

/**
 * Precision/recall of a detection against a ground-truth mask
 * (both per-pixel).
 */
struct DetectionQuality
{
    double precision = 1.0;
    double recall = 0.0;
};

/** Score a pixel mask against ground truth. */
DetectionQuality scoreDetection(const raster::Bitmap &detected,
                                const raster::Bitmap &truth);

} // namespace earthplus::cloud

#endif // EARTHPLUS_CLOUD_DETECTOR_HH
