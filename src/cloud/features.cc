#include "cloud/features.hh"

#include <cmath>

#include "util/logging.hh"

namespace earthplus::cloud {

BandRoles
rolesFor(const std::vector<synth::BandSpec> &bands)
{
    BandRoles roles;
    for (int b = 0; b < static_cast<int>(bands.size()); ++b) {
        const auto &spec = bands[static_cast<size_t>(b)];
        if (spec.coldClouds)
            roles.infrared.push_back(b);
        else if (spec.atmosphere < 0.3)
            roles.visible.push_back(b);
    }
    if (roles.visible.empty()) {
        // Degenerate single-band datasets: use whatever exists.
        for (int b = 0; b < static_cast<int>(bands.size()); ++b)
            roles.visible.push_back(b);
    }
    return roles;
}

raster::Plane
bandMean(const raster::Image &img, const std::vector<int> &bandIdx)
{
    raster::Plane out(img.width(), img.height(), 0.0f);
    if (bandIdx.empty())
        return out;
    for (int b : bandIdx) {
        const raster::Plane &src = img.band(b);
        for (size_t i = 0; i < out.data().size(); ++i)
            out.data()[i] += src.data()[i];
    }
    float inv = 1.0f / static_cast<float>(bandIdx.size());
    for (auto &v : out.data())
        v *= inv;
    return out;
}

namespace {

/**
 * Summed-area table over the plane, (w+1)x(h+1), for O(1) box sums.
 */
std::vector<double>
integralImage(const raster::Plane &p)
{
    int w = p.width();
    int h = p.height();
    std::vector<double> sat(static_cast<size_t>(w + 1) *
                            static_cast<size_t>(h + 1), 0.0);
    for (int y = 0; y < h; ++y) {
        const float *row = p.row(y);
        double rowsum = 0.0;
        for (int x = 0; x < w; ++x) {
            rowsum += row[x];
            sat[static_cast<size_t>(y + 1) * (w + 1) + (x + 1)] =
                sat[static_cast<size_t>(y) * (w + 1) + (x + 1)] + rowsum;
        }
    }
    return sat;
}

double
boxSum(const std::vector<double> &sat, int w, int x0, int y0, int x1,
       int y1)
{
    // Sum over [x0, x1) x [y0, y1).
    return sat[static_cast<size_t>(y1) * (w + 1) + x1] -
           sat[static_cast<size_t>(y0) * (w + 1) + x1] -
           sat[static_cast<size_t>(y1) * (w + 1) + x0] +
           sat[static_cast<size_t>(y0) * (w + 1) + x0];
}

} // anonymous namespace

raster::Plane
boxBlur(const raster::Plane &p, int radius)
{
    EP_ASSERT(radius >= 0, "negative blur radius");
    int w = p.width();
    int h = p.height();
    raster::Plane out(w, h);
    auto sat = integralImage(p);
    for (int y = 0; y < h; ++y) {
        int y0 = std::max(0, y - radius);
        int y1 = std::min(h, y + radius + 1);
        float *row = out.row(y);
        for (int x = 0; x < w; ++x) {
            int x0 = std::max(0, x - radius);
            int x1 = std::min(w, x + radius + 1);
            double n = static_cast<double>((x1 - x0) * (y1 - y0));
            row[x] = static_cast<float>(boxSum(sat, w, x0, y0, x1, y1) / n);
        }
    }
    return out;
}

raster::Plane
localStddev(const raster::Plane &p, int radius)
{
    EP_ASSERT(radius >= 0, "negative window radius");
    int w = p.width();
    int h = p.height();
    raster::Plane sq(w, h);
    for (size_t i = 0; i < p.data().size(); ++i)
        sq.data()[i] = p.data()[i] * p.data()[i];
    auto sat = integralImage(p);
    auto sat2 = integralImage(sq);
    raster::Plane out(w, h);
    for (int y = 0; y < h; ++y) {
        int y0 = std::max(0, y - radius);
        int y1 = std::min(h, y + radius + 1);
        float *row = out.row(y);
        for (int x = 0; x < w; ++x) {
            int x0 = std::max(0, x - radius);
            int x1 = std::min(w, x + radius + 1);
            double n = static_cast<double>((x1 - x0) * (y1 - y0));
            double mean = boxSum(sat, w, x0, y0, x1, y1) / n;
            double var = boxSum(sat2, w, x0, y0, x1, y1) / n - mean * mean;
            row[x] = static_cast<float>(std::sqrt(std::max(var, 0.0)));
        }
    }
    return out;
}

} // namespace earthplus::cloud
