#include "raster/metrics.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace earthplus::raster {

namespace {

template <typename Accum>
double
maskedReduce(const Plane &a, const Plane &b, const Bitmap *valid,
             Accum accum)
{
    EP_ASSERT(a.sameShape(b), "metric on mismatched planes %dx%d vs %dx%d",
              a.width(), a.height(), b.width(), b.height());
    if (valid) {
        EP_ASSERT(valid->width() == a.width() &&
                  valid->height() == a.height(),
                  "validity mask shape mismatch");
    }
    double sum = 0.0;
    size_t n = 0;
    for (int y = 0; y < a.height(); ++y) {
        const float *ra = a.row(y);
        const float *rb = b.row(y);
        for (int x = 0; x < a.width(); ++x) {
            if (valid && !valid->get(x, y))
                continue;
            sum += accum(ra[x], rb[x]);
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // anonymous namespace

double
mse(const Plane &a, const Plane &b, const Bitmap *valid)
{
    return maskedReduce(a, b, valid, [](float pa, float pb) {
        double d = static_cast<double>(pa) - static_cast<double>(pb);
        return d * d;
    });
}

double
psnr(const Plane &a, const Plane &b, const Bitmap *valid, double peak)
{
    double err = mse(a, b, valid);
    if (err <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(peak * peak / err);
}

double
meanAbsDiff(const Plane &a, const Plane &b, const Bitmap *valid)
{
    return maskedReduce(a, b, valid, [](float pa, float pb) {
        return std::abs(static_cast<double>(pa) - static_cast<double>(pb));
    });
}

} // namespace earthplus::raster
