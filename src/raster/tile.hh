/**
 * @file
 * Geographic tile grid and tile-level masks.
 *
 * The paper performs all change accounting at the granularity of 64x64
 * pixel tiles (§3): a tile is the unit that is detected as changed,
 * encoded, downloaded, and cached.
 */

#ifndef EARTHPLUS_RASTER_TILE_HH
#define EARTHPLUS_RASTER_TILE_HH

#include <cstdint>
#include <vector>

#include "raster/bitmap.hh"
#include "raster/plane.hh"

namespace earthplus::raster {

/** Default tile edge length in pixels (paper §3). */
constexpr int kDefaultTileSize = 64;

/** A tile's pixel rectangle within a plane. */
struct TileRect
{
    int x0;     ///< Left pixel column.
    int y0;     ///< Top pixel row.
    int width;  ///< Width in pixels (may be short at the right edge).
    int height; ///< Height in pixels (may be short at the bottom edge).
};

/**
 * Partition of a plane into fixed-size tiles.
 *
 * Edge tiles may be smaller when the plane size is not a multiple of the
 * tile size.
 */
class TileGrid
{
  public:
    /**
     * @param width Plane width in pixels.
     * @param height Plane height in pixels.
     * @param tileSize Tile edge length in pixels (> 0).
     */
    TileGrid(int width, int height, int tileSize = kDefaultTileSize);

    /** Number of tile columns. */
    int tilesX() const { return tilesX_; }

    /** Number of tile rows. */
    int tilesY() const { return tilesY_; }

    /** Total tile count. */
    int tileCount() const { return tilesX_ * tilesY_; }

    /** Tile edge length in pixels. */
    int tileSize() const { return tileSize_; }

    /** Pixel rectangle of tile (tx, ty). */
    TileRect rect(int tx, int ty) const;

    /** Pixel rectangle of the tile with flat index t. */
    TileRect rect(int t) const;

    /** Flat index of tile (tx, ty). */
    int
    tileIndex(int tx, int ty) const
    {
        return ty * tilesX_ + tx;
    }

  private:
    int width_;
    int height_;
    int tileSize_;
    int tilesX_;
    int tilesY_;
};

/**
 * Boolean flag per tile of a TileGrid (changed / cloudy / downloaded ...).
 */
class TileMask
{
  public:
    /** Construct an empty mask. */
    TileMask();

    /** Construct a tilesX x tilesY mask, all tiles = fill. */
    TileMask(int tilesX, int tilesY, bool fill = false);

    /** Construct a mask shaped like the given grid. */
    explicit TileMask(const TileGrid &grid, bool fill = false);

    /** Number of tile columns. */
    int tilesX() const { return tilesX_; }

    /** Number of tile rows. */
    int tilesY() const { return tilesY_; }

    /** Total tile count. */
    int count() const { return tilesX_ * tilesY_; }

    /** Tile flag accessor by coordinates. */
    bool get(int tx, int ty) const { return flags_[index(tx, ty)] != 0; }

    /** Tile flag accessor by flat index. */
    bool get(int t) const { return flags_[static_cast<size_t>(t)] != 0; }

    /** Tile flag mutator by coordinates. */
    void set(int tx, int ty, bool v) { flags_[index(tx, ty)] = v ? 1 : 0; }

    /** Tile flag mutator by flat index. */
    void set(int t, bool v) { flags_[static_cast<size_t>(t)] = v ? 1 : 0; }

    /** Number of set tiles. */
    int countSet() const;

    /** Fraction of set tiles in [0, 1] (0 when empty). */
    double fractionSet() const;

    /** Set every flag. */
    void fill(bool v);

    /** In-place union (same shape required). */
    void orWith(const TileMask &other);

    /** In-place intersection (same shape required). */
    void andWith(const TileMask &other);

    /** In-place difference: this &= ~other. */
    void subtract(const TileMask &other);

    /** In-place complement. */
    void invert();

    /** True when shapes match. */
    bool sameShape(const TileMask &other) const;

  private:
    int tilesX_;
    int tilesY_;
    std::vector<uint8_t> flags_;

    size_t
    index(int tx, int ty) const
    {
        return static_cast<size_t>(ty) * static_cast<size_t>(tilesX_) +
               static_cast<size_t>(tx);
    }
};

/**
 * Per-tile fraction of set pixels in a per-pixel mask.
 *
 * Used to turn pixel-level cloud masks into tile-level cloudiness.
 *
 * @param mask Per-pixel mask.
 * @param grid Tile grid matching the mask dimensions.
 * @return One fraction in [0, 1] per tile, indexed by flat tile index.
 */
std::vector<double> tileFractions(const Bitmap &mask, const TileGrid &grid);

/**
 * Threshold per-tile fractions into a TileMask.
 *
 * @param mask Per-pixel mask.
 * @param grid Tile grid matching the mask dimensions.
 * @param minFraction Tile is set when its set-pixel fraction exceeds this.
 */
TileMask tileMaskFromBitmap(const Bitmap &mask, const TileGrid &grid,
                            double minFraction);

} // namespace earthplus::raster

#endif // EARTHPLUS_RASTER_TILE_HH
