/**
 * @file
 * Image quality metrics (MSE, PSNR, mean absolute difference).
 *
 * PSNR is the paper's quality metric (§2.2); the mask overloads restrict
 * the computation to valid (e.g. non-cloudy) pixels so every compression
 * scheme is scored over the same support.
 */

#ifndef EARTHPLUS_RASTER_METRICS_HH
#define EARTHPLUS_RASTER_METRICS_HH

#include "raster/bitmap.hh"
#include "raster/plane.hh"

namespace earthplus::raster {

/**
 * Mean squared error between two same-sized planes.
 *
 * @param valid Optional per-pixel validity mask; when non-null only set
 *              pixels contribute. Returns 0 when no pixel is valid.
 */
double mse(const Plane &a, const Plane &b, const Bitmap *valid = nullptr);

/**
 * Peak signal-to-noise ratio in dB for peak value `peak` (pixels are
 * normalized to [0,1], so the default peak is 1).
 *
 * Returns +infinity for identical inputs.
 */
double psnr(const Plane &a, const Plane &b, const Bitmap *valid = nullptr,
            double peak = 1.0);

/** Mean absolute pixel difference, optionally masked. */
double meanAbsDiff(const Plane &a, const Plane &b,
                   const Bitmap *valid = nullptr);

} // namespace earthplus::raster

#endif // EARTHPLUS_RASTER_METRICS_HH
