/**
 * @file
 * Downsampling and upsampling of raster planes and masks.
 *
 * Earth+ downsamples reference images before uplinking them (§4.3) and
 * downsamples the captured image to the same resolution before change
 * detection; cloud detection also runs on a downsampled capture (§5).
 */

#ifndef EARTHPLUS_RASTER_RESAMPLE_HH
#define EARTHPLUS_RASTER_RESAMPLE_HH

#include "raster/bitmap.hh"
#include "raster/plane.hh"

namespace earthplus::raster {

/**
 * Box-filter downsample by an integer factor.
 *
 * Each output pixel is the mean of the corresponding factor x factor
 * input block; partial blocks at the right/bottom edges average the
 * available pixels.
 *
 * @param src Source plane.
 * @param factor Downsampling factor per dimension (>= 1).
 */
Plane downsample(const Plane &src, int factor);

/**
 * Bilinear upsample by an integer factor (inverse companion of
 * downsample(); exact sizes are recovered by passing the target size).
 *
 * @param src Low-resolution source.
 * @param width Target width.
 * @param height Target height.
 */
Plane upsampleBilinear(const Plane &src, int width, int height);

/**
 * Downsample a per-pixel mask into a per-low-res-pixel coverage
 * fraction plane (each output pixel = fraction of set input pixels in
 * its block).
 */
Plane downsampleFraction(const Bitmap &src, int factor);

/**
 * Downsample a per-pixel mask with an "any set" policy: the output
 * pixel is set when any input pixel in its block is set. Conservative
 * for cloud masks.
 */
Bitmap downsampleAny(const Bitmap &src, int factor);

} // namespace earthplus::raster

#endif // EARTHPLUS_RASTER_RESAMPLE_HH
