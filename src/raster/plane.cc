#include "raster/plane.hh"

#include <algorithm>

#include "util/logging.hh"

namespace earthplus::raster {

Plane::Plane()
    : width_(0), height_(0)
{
}

Plane::Plane(int width, int height, float fill)
    : width_(width), height_(height)
{
    EP_ASSERT(width >= 0 && height >= 0,
              "invalid plane size %dx%d", width, height);
    data_.assign(static_cast<size_t>(width) * static_cast<size_t>(height),
                 fill);
}

bool
Plane::sameShape(const Plane &other) const
{
    return width_ == other.width_ && height_ == other.height_;
}

void
Plane::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

void
Plane::clampTo(float lo, float hi)
{
    for (auto &p : data_)
        p = std::clamp(p, lo, hi);
}

double
Plane::mean() const
{
    if (data_.empty())
        return 0.0;
    double s = 0.0;
    for (float p : data_)
        s += p;
    return s / static_cast<double>(data_.size());
}

Plane
Plane::crop(int x0, int y0, int w, int h) const
{
    EP_ASSERT(x0 >= 0 && y0 >= 0 && w >= 0 && h >= 0,
              "invalid crop (%d,%d,%d,%d)", x0, y0, w, h);
    int cw = std::min(w, width_ - x0);
    int ch = std::min(h, height_ - y0);
    cw = std::max(cw, 0);
    ch = std::max(ch, 0);
    Plane out(cw, ch);
    for (int y = 0; y < ch; ++y) {
        const float *src = row(y0 + y) + x0;
        std::copy(src, src + cw, out.row(y));
    }
    return out;
}

void
Plane::paste(const Plane &src, int x0, int y0)
{
    int w = std::min(src.width(), width_ - x0);
    int h = std::min(src.height(), height_ - y0);
    for (int y = 0; y < h; ++y) {
        const float *s = src.row(y);
        float *d = row(y0 + y) + x0;
        std::copy(s, s + w, d);
    }
}

} // namespace earthplus::raster
