/**
 * @file
 * Single-band raster plane.
 *
 * Pixel values are stored as float, normalized to [0, 1] reflectance as
 * in the paper (§3: "pixel differences are computed after we normalize
 * pixel values to [0,1]").
 */

#ifndef EARTHPLUS_RASTER_PLANE_HH
#define EARTHPLUS_RASTER_PLANE_HH

#include <cstddef>
#include <vector>

namespace earthplus::raster {

/**
 * A width x height grid of float pixels for one spectral band.
 */
class Plane
{
  public:
    /** Construct an empty (0x0) plane. */
    Plane();

    /**
     * Construct a plane of the given size.
     *
     * @param width Width in pixels (>= 0).
     * @param height Height in pixels (>= 0).
     * @param fill Initial value of every pixel.
     */
    Plane(int width, int height, float fill = 0.0f);

    /** Width in pixels. */
    int width() const { return width_; }

    /** Height in pixels. */
    int height() const { return height_; }

    /** Total pixel count. */
    size_t size() const { return data_.size(); }

    /** True when the plane holds no pixels. */
    bool empty() const { return data_.empty(); }

    /** Pixel accessor (bounds-checked in debug builds only). */
    float at(int x, int y) const { return data_[index(x, y)]; }

    /** Mutable pixel accessor. */
    float &at(int x, int y) { return data_[index(x, y)]; }

    /** Pointer to the first pixel of row y. */
    float *row(int y) { return data_.data() + static_cast<size_t>(y) * width_; }

    /** Const pointer to the first pixel of row y. */
    const float *
    row(int y) const
    {
        return data_.data() + static_cast<size_t>(y) * width_;
    }

    /** Raw pixel storage, row-major. */
    std::vector<float> &data() { return data_; }

    /** Raw pixel storage, row-major (const). */
    const std::vector<float> &data() const { return data_; }

    /** True when the other plane has identical dimensions. */
    bool sameShape(const Plane &other) const;

    /** Set every pixel to v. */
    void fill(float v);

    /** Clamp every pixel into [lo, hi]. */
    void clampTo(float lo, float hi);

    /** Mean pixel value (0 when empty). */
    double mean() const;

    /**
     * Extract a rectangular sub-region.
     *
     * The rectangle is clipped against the plane bounds; pixels outside
     * the plane are not produced, so the result may be smaller than
     * (w, h) at the right/bottom edges.
     */
    Plane crop(int x0, int y0, int w, int h) const;

    /**
     * Paste src into this plane with its top-left corner at (x0, y0),
     * clipping against this plane's bounds.
     */
    void paste(const Plane &src, int x0, int y0);

  private:
    int width_;
    int height_;
    std::vector<float> data_;

    size_t
    index(int x, int y) const
    {
        return static_cast<size_t>(y) * static_cast<size_t>(width_) +
               static_cast<size_t>(x);
    }
};

} // namespace earthplus::raster

#endif // EARTHPLUS_RASTER_PLANE_HH
