/**
 * @file
 * Multi-band satellite image with capture metadata.
 */

#ifndef EARTHPLUS_RASTER_IMAGE_HH
#define EARTHPLUS_RASTER_IMAGE_HH

#include <vector>

#include "raster/plane.hh"

namespace earthplus::raster {

/**
 * Capture metadata carried alongside pixel data.
 */
struct CaptureInfo
{
    /** Identifier of the photographed geographic location. */
    int locationId = 0;
    /** Identifier of the capturing satellite within the constellation. */
    int satelliteId = 0;
    /** Capture time in days since the simulation epoch. */
    double captureDay = 0.0;
};

/**
 * A multi-band image: one Plane per spectral band, all the same size.
 *
 * Satellite imagery typically carries many bands (13 for Sentinel-2,
 * RGB+NIR for Doves); Earth+ processes each band separately (§5,
 * "Handling different bands").
 */
class Image
{
  public:
    /** Construct an empty image (no bands). */
    Image();

    /**
     * Construct an image of the given size with `bands` zero planes.
     */
    Image(int width, int height, int bands);

    /** Width in pixels (0 when empty). */
    int width() const;

    /** Height in pixels (0 when empty). */
    int height() const;

    /** Number of spectral bands. */
    int bandCount() const { return static_cast<int>(bands_.size()); }

    /** Access band b. */
    const Plane &band(int b) const;

    /** Mutable access to band b. */
    Plane &band(int b);

    /** Append a band; must match the size of existing bands. */
    void addBand(Plane plane);

    /** Capture metadata. */
    CaptureInfo &info() { return info_; }

    /** Capture metadata (const). */
    const CaptureInfo &info() const { return info_; }

    /** Total bytes of pixel storage across all bands. */
    size_t pixelBytes() const;

  private:
    std::vector<Plane> bands_;
    CaptureInfo info_;
};

} // namespace earthplus::raster

#endif // EARTHPLUS_RASTER_IMAGE_HH
