#include "raster/image.hh"

#include "util/logging.hh"

namespace earthplus::raster {

Image::Image() = default;

Image::Image(int width, int height, int bands)
{
    EP_ASSERT(bands >= 0, "negative band count %d", bands);
    bands_.reserve(static_cast<size_t>(bands));
    for (int b = 0; b < bands; ++b)
        bands_.emplace_back(width, height);
}

int
Image::width() const
{
    return bands_.empty() ? 0 : bands_.front().width();
}

int
Image::height() const
{
    return bands_.empty() ? 0 : bands_.front().height();
}

const Plane &
Image::band(int b) const
{
    EP_ASSERT(b >= 0 && b < bandCount(), "band %d out of range", b);
    return bands_[static_cast<size_t>(b)];
}

Plane &
Image::band(int b)
{
    EP_ASSERT(b >= 0 && b < bandCount(), "band %d out of range", b);
    return bands_[static_cast<size_t>(b)];
}

void
Image::addBand(Plane plane)
{
    if (!bands_.empty()) {
        EP_ASSERT(plane.sameShape(bands_.front()),
                  "band size %dx%d does not match image %dx%d",
                  plane.width(), plane.height(), width(), height());
    }
    bands_.push_back(std::move(plane));
}

size_t
Image::pixelBytes() const
{
    size_t total = 0;
    for (const auto &b : bands_)
        total += b.size() * sizeof(float);
    return total;
}

} // namespace earthplus::raster
