#include "raster/resample.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace earthplus::raster {

namespace {

int
outDim(int in, int factor)
{
    return (in + factor - 1) / factor;
}

} // anonymous namespace

Plane
downsample(const Plane &src, int factor)
{
    EP_ASSERT(factor >= 1, "invalid downsample factor %d", factor);
    if (factor == 1)
        return src;
    int ow = outDim(src.width(), factor);
    int oh = outDim(src.height(), factor);
    Plane out(ow, oh);
    for (int oy = 0; oy < oh; ++oy) {
        int y0 = oy * factor;
        int y1 = std::min(y0 + factor, src.height());
        for (int ox = 0; ox < ow; ++ox) {
            int x0 = ox * factor;
            int x1 = std::min(x0 + factor, src.width());
            double sum = 0.0;
            for (int y = y0; y < y1; ++y) {
                const float *row = src.row(y);
                for (int x = x0; x < x1; ++x)
                    sum += row[x];
            }
            int n = (y1 - y0) * (x1 - x0);
            out.at(ox, oy) = n ? static_cast<float>(sum / n) : 0.0f;
        }
    }
    return out;
}

Plane
upsampleBilinear(const Plane &src, int width, int height)
{
    EP_ASSERT(width >= 0 && height >= 0, "invalid upsample size %dx%d",
              width, height);
    Plane out(width, height);
    if (src.empty() || width == 0 || height == 0)
        return out;
    double sx = static_cast<double>(src.width()) / std::max(width, 1);
    double sy = static_cast<double>(src.height()) / std::max(height, 1);
    for (int y = 0; y < height; ++y) {
        // Sample at block centers so that the grid aligns with the
        // box-filtered downsample.
        double fy = (y + 0.5) * sy - 0.5;
        int y0 = static_cast<int>(std::floor(fy));
        double wy = fy - y0;
        int y0c = std::clamp(y0, 0, src.height() - 1);
        int y1c = std::clamp(y0 + 1, 0, src.height() - 1);
        for (int x = 0; x < width; ++x) {
            double fx = (x + 0.5) * sx - 0.5;
            int x0 = static_cast<int>(std::floor(fx));
            double wx = fx - x0;
            int x0c = std::clamp(x0, 0, src.width() - 1);
            int x1c = std::clamp(x0 + 1, 0, src.width() - 1);
            double v00 = src.at(x0c, y0c);
            double v10 = src.at(x1c, y0c);
            double v01 = src.at(x0c, y1c);
            double v11 = src.at(x1c, y1c);
            double v = v00 * (1 - wx) * (1 - wy) + v10 * wx * (1 - wy) +
                       v01 * (1 - wx) * wy + v11 * wx * wy;
            out.at(x, y) = static_cast<float>(v);
        }
    }
    return out;
}

Plane
downsampleFraction(const Bitmap &src, int factor)
{
    EP_ASSERT(factor >= 1, "invalid downsample factor %d", factor);
    int ow = outDim(src.width(), factor);
    int oh = outDim(src.height(), factor);
    Plane out(ow, oh);
    for (int oy = 0; oy < oh; ++oy) {
        int y0 = oy * factor;
        int y1 = std::min(y0 + factor, src.height());
        for (int ox = 0; ox < ow; ++ox) {
            int x0 = ox * factor;
            int x1 = std::min(x0 + factor, src.width());
            int set = 0;
            for (int y = y0; y < y1; ++y)
                for (int x = x0; x < x1; ++x)
                    set += src.get(x, y) ? 1 : 0;
            int n = (y1 - y0) * (x1 - x0);
            out.at(ox, oy) =
                n ? static_cast<float>(set) / static_cast<float>(n) : 0.0f;
        }
    }
    return out;
}

Bitmap
downsampleAny(const Bitmap &src, int factor)
{
    Plane frac = downsampleFraction(src, factor);
    Bitmap out(frac.width(), frac.height());
    for (int y = 0; y < frac.height(); ++y)
        for (int x = 0; x < frac.width(); ++x)
            out.set(x, y, frac.at(x, y) > 0.0f);
    return out;
}

} // namespace earthplus::raster
