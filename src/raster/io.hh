/**
 * @file
 * Image serialization: a compact binary container (.epi) plus PGM export
 * for eyeballing single bands.
 */

#ifndef EARTHPLUS_RASTER_IO_HH
#define EARTHPLUS_RASTER_IO_HH

#include <string>

#include "raster/image.hh"

namespace earthplus::raster {

/**
 * Write a multi-band image to the .epi binary container.
 *
 * Layout: magic "EPIM", u32 version, u32 width/height/bands, capture
 * metadata, then row-major float32 pixels per band.
 *
 * @return true on success.
 */
bool saveImage(const Image &img, const std::string &path);

/**
 * Read an image previously written by saveImage().
 *
 * Calls fatal() on malformed containers; returns an empty image when the
 * file cannot be opened.
 */
Image loadImage(const std::string &path);

/**
 * Export one plane as an 8-bit binary PGM, mapping [0,1] to [0,255].
 *
 * @return true on success.
 */
bool savePgm(const Plane &plane, const std::string &path);

} // namespace earthplus::raster

#endif // EARTHPLUS_RASTER_IO_HH
