#include "raster/tile.hh"

#include <algorithm>

#include "util/logging.hh"

namespace earthplus::raster {

TileGrid::TileGrid(int width, int height, int tileSize)
    : width_(width), height_(height), tileSize_(tileSize)
{
    EP_ASSERT(width >= 0 && height >= 0, "invalid grid %dx%d",
              width, height);
    EP_ASSERT(tileSize > 0, "invalid tile size %d", tileSize);
    tilesX_ = (width + tileSize - 1) / tileSize;
    tilesY_ = (height + tileSize - 1) / tileSize;
}

TileRect
TileGrid::rect(int tx, int ty) const
{
    EP_ASSERT(tx >= 0 && tx < tilesX_ && ty >= 0 && ty < tilesY_,
              "tile (%d,%d) out of range", tx, ty);
    TileRect r;
    r.x0 = tx * tileSize_;
    r.y0 = ty * tileSize_;
    r.width = std::min(tileSize_, width_ - r.x0);
    r.height = std::min(tileSize_, height_ - r.y0);
    return r;
}

TileRect
TileGrid::rect(int t) const
{
    EP_ASSERT(t >= 0 && t < tileCount(), "tile %d out of range", t);
    return rect(t % tilesX_, t / tilesX_);
}

TileMask::TileMask()
    : tilesX_(0), tilesY_(0)
{
}

TileMask::TileMask(int tilesX, int tilesY, bool fill)
    : tilesX_(tilesX), tilesY_(tilesY)
{
    EP_ASSERT(tilesX >= 0 && tilesY >= 0, "invalid mask %dx%d",
              tilesX, tilesY);
    flags_.assign(static_cast<size_t>(tilesX) * static_cast<size_t>(tilesY),
                  fill ? 1 : 0);
}

TileMask::TileMask(const TileGrid &grid, bool fill)
    : TileMask(grid.tilesX(), grid.tilesY(), fill)
{
}

int
TileMask::countSet() const
{
    int n = 0;
    for (uint8_t f : flags_)
        n += f;
    return n;
}

double
TileMask::fractionSet() const
{
    if (flags_.empty())
        return 0.0;
    return static_cast<double>(countSet()) /
           static_cast<double>(flags_.size());
}

void
TileMask::fill(bool v)
{
    std::fill(flags_.begin(), flags_.end(), v ? 1 : 0);
}

void
TileMask::orWith(const TileMask &other)
{
    EP_ASSERT(sameShape(other), "tile mask shape mismatch");
    for (size_t i = 0; i < flags_.size(); ++i)
        flags_[i] |= other.flags_[i];
}

void
TileMask::andWith(const TileMask &other)
{
    EP_ASSERT(sameShape(other), "tile mask shape mismatch");
    for (size_t i = 0; i < flags_.size(); ++i)
        flags_[i] &= other.flags_[i];
}

void
TileMask::subtract(const TileMask &other)
{
    EP_ASSERT(sameShape(other), "tile mask shape mismatch");
    for (size_t i = 0; i < flags_.size(); ++i)
        flags_[i] = flags_[i] & static_cast<uint8_t>(!other.flags_[i]);
}

void
TileMask::invert()
{
    for (auto &f : flags_)
        f = f ? 0 : 1;
}

bool
TileMask::sameShape(const TileMask &other) const
{
    return tilesX_ == other.tilesX_ && tilesY_ == other.tilesY_;
}

std::vector<double>
tileFractions(const Bitmap &mask, const TileGrid &grid)
{
    std::vector<double> fractions(static_cast<size_t>(grid.tileCount()),
                                  0.0);
    for (int t = 0; t < grid.tileCount(); ++t) {
        TileRect r = grid.rect(t);
        size_t set = 0;
        for (int y = r.y0; y < r.y0 + r.height; ++y)
            for (int x = r.x0; x < r.x0 + r.width; ++x)
                set += mask.get(x, y) ? 1 : 0;
        size_t total = static_cast<size_t>(r.width) *
                       static_cast<size_t>(r.height);
        fractions[static_cast<size_t>(t)] =
            total ? static_cast<double>(set) / static_cast<double>(total)
                  : 0.0;
    }
    return fractions;
}

TileMask
tileMaskFromBitmap(const Bitmap &mask, const TileGrid &grid,
                   double minFraction)
{
    TileMask out(grid);
    auto fractions = tileFractions(mask, grid);
    for (int t = 0; t < grid.tileCount(); ++t)
        out.set(t, fractions[static_cast<size_t>(t)] > minFraction);
    return out;
}

} // namespace earthplus::raster
