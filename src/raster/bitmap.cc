#include "raster/bitmap.hh"

#include <algorithm>

#include "util/logging.hh"

namespace earthplus::raster {

Bitmap::Bitmap()
    : width_(0), height_(0)
{
}

Bitmap::Bitmap(int width, int height, bool fill)
    : width_(width), height_(height)
{
    EP_ASSERT(width >= 0 && height >= 0,
              "invalid bitmap size %dx%d", width, height);
    data_.assign(static_cast<size_t>(width) * static_cast<size_t>(height),
                 fill ? 1 : 0);
}

size_t
Bitmap::countSet() const
{
    size_t n = 0;
    for (uint8_t v : data_)
        n += v;
    return n;
}

double
Bitmap::fractionSet() const
{
    if (data_.empty())
        return 0.0;
    return static_cast<double>(countSet()) /
           static_cast<double>(data_.size());
}

void
Bitmap::fill(bool v)
{
    std::fill(data_.begin(), data_.end(), v ? 1 : 0);
}

void
Bitmap::orWith(const Bitmap &other)
{
    EP_ASSERT(width_ == other.width_ && height_ == other.height_,
              "bitmap shape mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] = data_[i] | other.data_[i];
}

void
Bitmap::andWith(const Bitmap &other)
{
    EP_ASSERT(width_ == other.width_ && height_ == other.height_,
              "bitmap shape mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] = data_[i] & other.data_[i];
}

void
Bitmap::invert()
{
    for (auto &v : data_)
        v = v ? 0 : 1;
}

} // namespace earthplus::raster
