/**
 * @file
 * Per-pixel boolean mask (e.g. cloud masks, validity masks).
 */

#ifndef EARTHPLUS_RASTER_BITMAP_HH
#define EARTHPLUS_RASTER_BITMAP_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace earthplus::raster {

/**
 * A width x height boolean raster stored as one byte per pixel.
 */
class Bitmap
{
  public:
    /** Construct an empty (0x0) bitmap. */
    Bitmap();

    /** Construct a bitmap of the given size, all pixels = fill. */
    Bitmap(int width, int height, bool fill = false);

    /** Width in pixels. */
    int width() const { return width_; }

    /** Height in pixels. */
    int height() const { return height_; }

    /** Total pixel count. */
    size_t size() const { return data_.size(); }

    /** True when the bitmap holds no pixels. */
    bool empty() const { return data_.empty(); }

    /** Pixel accessor. */
    bool get(int x, int y) const { return data_[index(x, y)] != 0; }

    /** Pixel mutator. */
    void set(int x, int y, bool v) { data_[index(x, y)] = v ? 1 : 0; }

    /** Number of set pixels. */
    size_t countSet() const;

    /** Fraction of set pixels in [0, 1] (0 when empty). */
    double fractionSet() const;

    /** Set every pixel. */
    void fill(bool v);

    /** In-place union with another same-sized bitmap. */
    void orWith(const Bitmap &other);

    /** In-place intersection with another same-sized bitmap. */
    void andWith(const Bitmap &other);

    /** In-place complement. */
    void invert();

    /** Raw storage, row-major, one byte per pixel. */
    const std::vector<uint8_t> &data() const { return data_; }

  private:
    int width_;
    int height_;
    std::vector<uint8_t> data_;

    size_t
    index(int x, int y) const
    {
        return static_cast<size_t>(y) * static_cast<size_t>(width_) +
               static_cast<size_t>(x);
    }
};

} // namespace earthplus::raster

#endif // EARTHPLUS_RASTER_BITMAP_HH
