#include "raster/io.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>

#include "util/logging.hh"

namespace earthplus::raster {

namespace {

constexpr uint32_t kMagic = 0x4d495045; // "EPIM" little-endian
constexpr uint32_t kVersion = 1;

template <typename T>
void
writePod(std::ofstream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
bool
readPod(std::ifstream &is, T &v)
{
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    return static_cast<bool>(is);
}

} // anonymous namespace

bool
saveImage(const Image &img, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    writePod(os, kMagic);
    writePod(os, kVersion);
    writePod(os, static_cast<uint32_t>(img.width()));
    writePod(os, static_cast<uint32_t>(img.height()));
    writePod(os, static_cast<uint32_t>(img.bandCount()));
    writePod(os, static_cast<int32_t>(img.info().locationId));
    writePod(os, static_cast<int32_t>(img.info().satelliteId));
    writePod(os, img.info().captureDay);
    for (int b = 0; b < img.bandCount(); ++b) {
        const auto &data = img.band(b).data();
        os.write(reinterpret_cast<const char *>(data.data()),
                 static_cast<std::streamsize>(data.size() * sizeof(float)));
    }
    return static_cast<bool>(os);
}

Image
loadImage(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        warn("cannot open image file '%s'", path.c_str());
        return Image();
    }
    uint32_t magic = 0, version = 0, width = 0, height = 0, bands = 0;
    int32_t location = 0, satellite = 0;
    double day = 0.0;
    if (!readPod(is, magic) || magic != kMagic)
        fatal("'%s' is not an .epi image (bad magic)", path.c_str());
    if (!readPod(is, version) || version != kVersion)
        fatal("'%s' has unsupported version %u", path.c_str(), version);
    if (!readPod(is, width) || !readPod(is, height) || !readPod(is, bands))
        fatal("'%s' has a truncated header", path.c_str());
    if (width > 1u << 20 || height > 1u << 20 || bands > 1024)
        fatal("'%s' header is implausible (%ux%ux%u)", path.c_str(),
              width, height, bands);
    readPod(is, location);
    readPod(is, satellite);
    readPod(is, day);

    Image img(static_cast<int>(width), static_cast<int>(height),
              static_cast<int>(bands));
    img.info().locationId = location;
    img.info().satelliteId = satellite;
    img.info().captureDay = day;
    for (uint32_t b = 0; b < bands; ++b) {
        auto &data = img.band(static_cast<int>(b)).data();
        is.read(reinterpret_cast<char *>(data.data()),
                static_cast<std::streamsize>(data.size() * sizeof(float)));
        if (!is)
            fatal("'%s' is truncated in band %u", path.c_str(), b);
    }
    return img;
}

bool
savePgm(const Plane &plane, const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os << "P5\n" << plane.width() << " " << plane.height() << "\n255\n";
    std::vector<uint8_t> row(static_cast<size_t>(plane.width()));
    for (int y = 0; y < plane.height(); ++y) {
        const float *src = plane.row(y);
        for (int x = 0; x < plane.width(); ++x) {
            float v = std::clamp(src[x], 0.0f, 1.0f);
            row[static_cast<size_t>(x)] =
                static_cast<uint8_t>(v * 255.0f + 0.5f);
        }
        os.write(reinterpret_cast<const char *>(row.data()),
                 static_cast<std::streamsize>(row.size()));
    }
    return static_cast<bool>(os);
}

} // namespace earthplus::raster
