#!/usr/bin/env python3
"""Validate telemetry artifacts emitted by the bench binaries.

Two checks, both asserting structure rather than numbers:

 1. The metrics snapshot (telemetry::snapshotJson()) parses as JSON and
    has the documented top-level shape: "counters", "gauges" and
    "histograms" objects, every histogram entry carrying count/sum and
    the percentile fields.

 2. The Chrome trace (telemetry::writeTrace()) parses as trace-event
    JSON and contains at least one complete ("ph": "X") event for every
    instrumented subsystem category: codec, ground, archive, pool, bg.

Usage:
    python3 ci/trace_check.py --metrics <metrics.json> --trace <trace.json>

Either flag may be given alone. The repeatable --require-counter NAME
flag additionally asserts that the metrics snapshot contains counter
NAME with a value > 0 — the chaos job uses it to prove the recovery
counters (archive.tail_truncated, archive.fsync_failures) actually
moved during the fault run. Exits non-zero with a diagnostic when a
file is missing, unparsable, or structurally wrong.
"""

import argparse
import json
import sys

REQUIRED_CATEGORIES = ("codec", "ground", "archive", "pool", "bg", "net")
HISTOGRAM_FIELDS = ("count", "sum", "mean", "p50", "p90", "p99",
                    "p999", "max")


def fail(msg):
    print(f"trace_check: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        fail(f"cannot read {what} {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{what} {path} is not valid JSON: {e}")


def check_metrics(path, required_counters=()):
    snap = load(path, "metrics snapshot")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(snap.get(section), dict):
            fail(f"{path}: missing or non-object '{section}' section")
    for name, hist in snap["histograms"].items():
        for field in HISTOGRAM_FIELDS:
            if not isinstance(hist.get(field), (int, float)):
                fail(f"{path}: histogram '{name}' lacks numeric "
                     f"'{field}'")
    for name in required_counters:
        value = snap["counters"].get(name)
        if not isinstance(value, (int, float)):
            fail(f"{path}: required counter '{name}' is absent "
                 f"(have: {', '.join(sorted(snap['counters'])) or 'none'})")
        if value <= 0:
            fail(f"{path}: required counter '{name}' never moved "
                 f"(value {value})")
    print(f"trace_check: {path}: {len(snap['counters'])} counters, "
          f"{len(snap['gauges'])} gauges, "
          f"{len(snap['histograms'])} histograms"
          + (f"; required counters OK: {', '.join(required_counters)}"
             if required_counters else ""))


def check_trace(path):
    trace = load(path, "trace")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' array")
    complete = {}
    for ev in events:
        if not isinstance(ev, dict) or ev.get("ph") != "X":
            continue
        for field in ("name", "cat", "ts", "dur", "pid", "tid"):
            if field not in ev:
                fail(f"{path}: complete event lacks '{field}': {ev}")
        complete[ev["cat"]] = complete.get(ev["cat"], 0) + 1
    missing = [c for c in REQUIRED_CATEGORIES if not complete.get(c)]
    if missing:
        fail(f"{path}: no complete events for subsystem(s): "
             f"{', '.join(missing)} (got {complete})")
    total = sum(complete.values())
    print(f"trace_check: {path}: {total} complete events across "
          f"{len(complete)} categories")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--metrics", help="snapshotJson() output to check")
    parser.add_argument("--trace", help="writeTrace() output to check")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME",
                        help="assert the metrics snapshot has counter "
                             "NAME with value > 0 (repeatable)")
    args = parser.parse_args()
    if not args.metrics and not args.trace:
        fail("nothing to check: pass --metrics and/or --trace")
    if args.require_counter and not args.metrics:
        fail("--require-counter needs --metrics")
    if args.metrics:
        check_metrics(args.metrics, args.require_counter)
    if args.trace:
        check_trace(args.trace)
    print("trace_check: OK")


if __name__ == "__main__":
    main()
