#!/usr/bin/env python3
"""Line-coverage gate for the codec (src/codec).

Reads the .gcda/.gcno counters a ``--coverage`` build left in the
build tree (ci/check.sh coverage runs the full ctest suite first),
merges them with ``gcov --json-format`` into per-file line coverage,
writes the result as a JSON artifact, and fails when the aggregate
src/codec line coverage drops more than ``margin`` percentage points
below the recorded baseline.

The gate is scoped to src/codec deliberately: the codec is the
byte-format core every other layer builds on (truncation points,
golden streams, crash-consistent archives), so untested codec lines
are where silent format regressions hide.

Re-baselining after an intentional change::

    ci/check.sh coverage            # populates the build tree
    python3 ci/coverage_gate.py --build-dir build-coverage \
        --baseline ci/COVERAGE_codec.baseline.json --rebaseline

Stdlib only — no coverage tooling beyond gcov itself.
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCOPE = "src/codec/"


def find_gcda(build_dir):
    """Every codec object's .gcda under the build tree."""
    hits = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            path = os.path.join(root, name)
            if name.endswith(".gcda") and SCOPE in path.replace("\\", "/"):
                hits.append(path)
    return sorted(hits)


def gcov_json(gcda):
    """Parse one .gcda via gcov's JSON intermediate format."""
    gcda = os.path.abspath(gcda)
    out = subprocess.run(
        ["gcov", "--json-format", "--stdout", gcda],
        capture_output=True,
        text=True,
        check=True,
        cwd=os.path.dirname(gcda),
    )
    return json.loads(out.stdout)


def merge_counts(build_dir):
    """file -> {line -> count}, max-merged across translation units."""
    counts = {}
    gcdas = find_gcda(build_dir)
    if not gcdas:
        sys.exit(
            "coverage_gate: no src/codec .gcda files under '%s' — "
            "build with --coverage and run the tests first" % build_dir
        )
    for gcda in gcdas:
        for f in gcov_json(gcda).get("files", []):
            path = os.path.normpath(f["file"])
            if not os.path.isabs(path):
                path = os.path.normpath(os.path.join(REPO_ROOT, path))
            rel = os.path.relpath(path, REPO_ROOT).replace("\\", "/")
            if not rel.startswith(SCOPE):
                continue
            per_line = counts.setdefault(rel, {})
            for line in f.get("lines", []):
                n = line["line_number"]
                per_line[n] = max(per_line.get(n, 0), line["count"])
    return counts


def summarize(counts):
    files = {}
    covered_total = 0
    lines_total = 0
    for rel in sorted(counts):
        per_line = counts[rel]
        total = len(per_line)
        covered = sum(1 for c in per_line.values() if c > 0)
        covered_total += covered
        lines_total += total
        files[rel] = {
            "covered": covered,
            "total": total,
            "percent": round(100.0 * covered / total, 2) if total else 0.0,
        }
    aggregate = (
        round(100.0 * covered_total / lines_total, 2) if lines_total else 0.0
    )
    return {
        "scope": SCOPE.rstrip("/"),
        "aggregate_percent": aggregate,
        "covered_lines": covered_total,
        "total_lines": lines_total,
        "files": files,
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--build-dir", required=True, help="--coverage build tree"
    )
    parser.add_argument(
        "--baseline",
        required=True,
        help="checked-in baseline JSON (ci/COVERAGE_codec.baseline.json)",
    )
    parser.add_argument(
        "--report", help="where to write the coverage JSON artifact"
    )
    parser.add_argument(
        "--rebaseline",
        action="store_true",
        help="overwrite the baseline with the fresh numbers and exit",
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=1.0,
        help="tolerated drop in aggregate percentage points (default 1.0)",
    )
    args = parser.parse_args()

    summary = summarize(merge_counts(args.build_dir))
    if args.report:
        os.makedirs(os.path.dirname(args.report) or ".", exist_ok=True)
        with open(args.report, "w") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")

    print(
        "coverage_gate: %s line coverage %.2f%% (%d/%d lines, %d files)"
        % (
            summary["scope"],
            summary["aggregate_percent"],
            summary["covered_lines"],
            summary["total_lines"],
            len(summary["files"]),
        )
    )

    if args.rebaseline:
        with open(args.baseline, "w") as fh:
            json.dump(
                {
                    "scope": summary["scope"],
                    "aggregate_percent": summary["aggregate_percent"],
                    "covered_lines": summary["covered_lines"],
                    "total_lines": summary["total_lines"],
                },
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")
        print("coverage_gate: baseline rewritten -> %s" % args.baseline)
        return 0

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except FileNotFoundError:
        sys.exit(
            "coverage_gate: baseline '%s' missing — record one with "
            "--rebaseline" % args.baseline
        )

    floor = baseline["aggregate_percent"] - args.margin
    if summary["aggregate_percent"] < floor:
        sys.exit(
            "coverage_gate: FAIL — %s coverage %.2f%% fell below "
            "baseline %.2f%% - %.2f-point margin (floor %.2f%%)"
            % (
                summary["scope"],
                summary["aggregate_percent"],
                baseline["aggregate_percent"],
                args.margin,
                floor,
            )
        )
    print(
        "coverage_gate: PASS (baseline %.2f%%, margin %.2f points)"
        % (baseline["aggregate_percent"], args.margin)
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
