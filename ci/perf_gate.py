#!/usr/bin/env python3
"""Machine-readable perf gate for the codec benchmarks.

Diffs a fresh BENCH_<bench>.json (produced by `bench_<bench> --json
<path>`) against the checked-in baseline and fails CI when a row
regressed by more than the allowed margin. Five benches are gated,
each with its own preset (select with --bench):

codec_kernels (default)
    Per-kernel throughput. Because CI runners and developer machines
    differ wildly in absolute MB/s, the metric is the *speedup ratio*
    of each vector level over the scalar level measured in the same
    file on the same machine — a property of the kernel code, not of
    the host. Only the compute-bound lifting kernels are gated (see
    GATED_KERNELS); the quantizers and pixel conversions saturate DRAM
    already at scalar width, so their ratio tracks the host's memory
    bandwidth and stays informational. Hard floors apply on top (e.g.
    "9/7 lifting must stay >= 2x scalar under AVX2") whenever the
    fresh run contains that dispatch level.

tile_coder
    End-to-end `tile_encode`/`tile_decode` jobs per workload (dense,
    sparse_delta, lossless). The entropy stage dominates these rows
    and runs the same scalar code at every dispatch level, so a
    speedup-over-scalar ratio would hide a uniformly slower coder;
    the gate is therefore *absolute MB/s* against the checked-in
    baseline. Absolute numbers are host-sensitive: regenerate the
    baseline (--rebaseline) when the perf host changes, and expect to
    re-baseline rather than loosen the margin after intentional
    changes.

ground_serving
    Warm multi-client tile-serving throughput from
    bench_ground_serving's Zipfian load generator. The metric is the
    row's absolute "qps" field (queries/sec — higher is better, same
    comparison as MB/s); latency percentiles ride along in the JSON
    as informational fields. Host-sensitive like tile_coder: hosted
    CI widens the margin via GROUND_SERVING_MAX_REGRESSION.

ground_net
    Open-loop loopback serving latency from
    `bench_ground_serving --net`: a Poisson arrival process at fixed
    rates below capacity, measured from scheduled send time to
    response receipt (so queueing delay counts). The metric is the
    row's "p99_ms" and LOWER is better. Only the fixed-rate rows are
    gated; the deliberately-overloaded row demonstrates shedding and
    stays informational. Host-sensitive; hosted CI widens the margin
    via GROUND_NET_MAX_REGRESSION.

tile_latency
    Single-tile chunked encode/decode latency from
    `bench_tile_coder --latency`. The metric is the row's "p99_ms"
    field and LOWER is better: a row fails when its fresh p99 exceeds
    baseline * (1 + margin). Only the fixed-thread-count rows
    (/t1, /t2, /t4) are gated — /thw rows resolve to a different pool
    size on every machine and stay informational. Host-sensitive;
    hosted CI widens the margin via TILE_LATENCY_MAX_REGRESSION.

`--absolute` forces the absolute metric for any bench (same-machine
comparisons only).

Re-baselining (after an intentional perf change, on a quiet machine):

    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
    ./build/bench_codec_kernels --reps 21 --json /tmp/fresh.json
    python3 ci/perf_gate.py --fresh /tmp/fresh.json --rebaseline
    for i in 1 2 3; do
        ./build/bench_tile_coder --reps 21 --json /tmp/tc_$i.json
        ./build/bench_tile_coder --latency --json /tmp/tl_$i.json
        ./build/bench_ground_serving --json /tmp/gs_$i.json
        ./build/bench_ground_serving --net --json /tmp/gn_$i.json
    done
    python3 ci/perf_gate.py --bench tile_coder --rebaseline \
        --fresh /tmp/tc_1.json --fresh /tmp/tc_2.json --fresh /tmp/tc_3.json
    python3 ci/perf_gate.py --bench tile_latency --rebaseline \
        --fresh /tmp/tl_1.json --fresh /tmp/tl_2.json --fresh /tmp/tl_3.json
    python3 ci/perf_gate.py --bench ground_serving --rebaseline \
        --fresh /tmp/gs_1.json --fresh /tmp/gs_2.json --fresh /tmp/gs_3.json
    python3 ci/perf_gate.py --bench ground_net --rebaseline \
        --fresh /tmp/gn_1.json --fresh /tmp/gn_2.json --fresh /tmp/gn_3.json
    git add ci/BENCH_*.baseline.json

(For tile_latency, min-merging keeps each row's best-case p99 — the
stable floor — and the gate allows fresh runs up to that floor plus
the margin.)

`--fresh` is repeatable: multiple files are merged by taking each
row's *minimum* MB/s. For an absolute-metric baseline that is the
point — whole-run throughput swings (frequency scaling, scheduling)
survive a per-rep median, so a single run's median is not a floor;
the min over a few independent runs is. (--rebaseline also applies
the per-bench gated-row filter for you.)
"""

import argparse
import json
import sys

# name:level:minimum speedup over scalar. dwt97_fwd >= 2x under AVX2 is
# the repo's headline guarantee (see docs/BENCHMARKS.md).
DEFAULT_FLOORS = ["dwt97_fwd:avx2:2.0", "dwt97_inv:avx2:2.0"]
# Kernels whose speedup-over-scalar is a property of the code, not of
# the host's memory bandwidth — the only rows worth gating at 25%.
GATED_KERNELS = ["dwt97_fwd", "dwt97_inv", "dwt53_fwd", "dwt53_inv"]

BENCHES = {
    "codec_kernels": {
        "baseline": "ci/BENCH_codec_kernels.baseline.json",
        "absolute": False,
        "floors": DEFAULT_FLOORS,
        # Gated rows on rebaseline: exact kernel names.
        "gated": lambda name: name in GATED_KERNELS,
    },
    "tile_coder": {
        "baseline": "ci/BENCH_tile_coder.baseline.json",
        "absolute": True,
        "floors": [],
        # Every end-to-end row is compute-bound in the entropy stage.
        "gated": lambda name: name.startswith(("tile_encode/",
                                               "tile_decode/")),
    },
    "ground_serving": {
        "baseline": "ci/BENCH_ground_serving.baseline.json",
        "absolute": True,
        "metric": "qps",
        "floors": [],
        "gated": lambda name: name.startswith("zipf_serving/"),
    },
    "ground_net": {
        "baseline": "ci/BENCH_ground_net.baseline.json",
        "absolute": True,
        "metric": "p99_ms",
        "lower_is_better": True,
        "floors": [],
        # Fixed-rate open-loop rows only: the overload row sheds by
        # design (its p99 measures the shed path) and the arrival
        # process at saturation is host-dependent — informational.
        "gated": lambda name: name.startswith("net_serving/open/"),
    },
    "tile_latency": {
        "baseline": "ci/BENCH_tile_latency.baseline.json",
        "absolute": True,
        "metric": "p99_ms",
        "lower_is_better": True,
        "floors": [],
        # /thw rows track the host's core count; informational only.
        "gated": lambda name: name.startswith("tile_latency_")
        and not name.endswith("/thw"),
    },
}


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", []):
        key = (r["name"], r.get("params", {}).get("level", ""))
        rows[key] = r
    return rows


def load_min(paths, metric):
    """Merge runs, keeping each row's minimum-metric measurement."""
    merged = {}
    for path in paths:
        for key, row in load(path).items():
            if key not in merged or \
                    row.get(metric, 0.0) < merged[key].get(metric, 0.0):
                merged[key] = row
    return merged


def speedups(rows):
    """(name, level) -> mb_per_s relative to the scalar row of name."""
    out = {}
    for (name, level), row in rows.items():
        scalar = rows.get((name, "scalar"))
        if not scalar or scalar["mb_per_s"] <= 0:
            continue
        out[(name, level)] = row["mb_per_s"] / scalar["mb_per_s"]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", choices=sorted(BENCHES), default="codec_kernels",
                    help="which bench preset to gate (default: "
                         "codec_kernels)")
    ap.add_argument("--baseline", default=None,
                    help="override the preset's baseline path")
    ap.add_argument("--fresh", required=True, action="append",
                    help="BENCH_*.json from this build; repeatable "
                         "(rows merge by minimum MB/s — see the "
                         "re-baselining notes)")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed fractional drop in the median metric "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--absolute", action="store_true",
                    help="gate on raw MB/s instead of speedup-over-"
                         "scalar (same-machine comparisons only; "
                         "default for --bench tile_coder)")
    ap.add_argument("--floor", action="append", default=None,
                    metavar="NAME:LEVEL:RATIO",
                    help="hard speedup floor; repeatable "
                         f"(codec_kernels default: {' '.join(DEFAULT_FLOORS)})")
    ap.add_argument("--rebaseline", action="store_true",
                    help="overwrite the baseline with the fresh results "
                         "and exit 0")
    args = ap.parse_args()

    cfg = BENCHES[args.bench]
    baseline_path = args.baseline or cfg["baseline"]
    absolute = args.absolute or cfg["absolute"]
    metric_key = cfg.get("metric", "mb_per_s")

    if len(args.fresh) > 1 and not absolute:
        # Min-merging MB/s across runs would pair a scalar minimum
        # from one run with a vector minimum from another, producing
        # speedup ratios no single run measured.
        print("perf_gate: multiple --fresh files are only meaningful "
              "for absolute-metric benches (the ratio metric needs "
              "scalar and vector rows from the same run)")
        return 2

    fresh = load_min(args.fresh, metric_key)
    if args.rebaseline:
        with open(args.fresh[0]) as src:
            doc = json.load(src)
        doc["results"] = [r for r in fresh.values()
                          if cfg["gated"](r["name"])]
        with open(baseline_path, "w") as dst:
            json.dump(doc, dst, indent=2)
            dst.write("\n")
        print(f"perf_gate: re-baselined {baseline_path} from "
              f"{' '.join(args.fresh)} ({len(doc['results'])} gated "
              "rows)")
        return 0
    base = load(baseline_path)

    failures = []
    skipped = 0

    # Metrics only compare across identical workloads: a fresh run with
    # a different --edge (or layer/dwt-level count) measures a
    # different working set and must not be diffed against this
    # baseline.
    for key in sorted(set(base) & set(fresh)):
        bp = {k: v for k, v in base[key].get("params", {}).items()
              if k != "level"}
        fp = {k: v for k, v in fresh[key].get("params", {}).items()
              if k != "level"}
        if bp != fp:
            print(f"perf_gate: workload mismatch for {key[0]}: baseline "
                  f"params {bp} vs fresh {fp}; rerun the bench with "
                  "default sizes or re-baseline")
            return 1

    lower_is_better = cfg.get("lower_is_better", False)
    if absolute:
        metric_name = metric_key if metric_key != "mb_per_s" else "MB/s"
        base_metric = {k: r[metric_key] for k, r in base.items()}
        fresh_metric = {k: r.get(metric_key, 0.0)
                        for k, r in fresh.items()}
    else:
        metric_name = "speedup-over-scalar"
        base_metric = speedups(base)
        fresh_metric = speedups(fresh)

    for key, expected in sorted(base_metric.items()):
        name, level = key
        if key not in fresh_metric:
            # This host does not support the level (or the row was
            # removed — the golden tests catch that separately).
            skipped += 1
            continue
        got = fresh_metric[key]
        if lower_is_better:
            allowed = expected * (1.0 + args.max_regression)
            failed = got > allowed
            bound = "allowed<="
        else:
            allowed = expected * (1.0 - args.max_regression)
            failed = got < allowed
            bound = "allowed>="
        status = "REGRESSED" if failed else "ok"
        print(f"perf_gate: {name:<26} {level:<7} {metric_name} "
              f"baseline={expected:8.2f} fresh={got:8.2f} "
              f"{bound}{allowed:8.2f}  {status}")
        if failed:
            cmp = ">" if lower_is_better else "<"
            failures.append(
                f"{name}@{level}: {metric_name} {got:.2f} {cmp} "
                f"{allowed:.2f} (baseline {expected:.2f}, "
                f"{args.max_regression:.0%} margin)")

    fresh_speedups = speedups(fresh) if metric_key == "mb_per_s" else {}
    for floor in (args.floor if args.floor is not None
                  else cfg["floors"]):
        name, level, ratio = floor.rsplit(":", 2)
        ratio = float(ratio)
        key = (name, level)
        if key not in fresh_speedups:
            print(f"perf_gate: floor {floor} skipped "
                  f"(level '{level}' not present on this host)")
            continue
        got = fresh_speedups[key]
        status = "ok" if got >= ratio else "BELOW FLOOR"
        print(f"perf_gate: floor {name:<26} {level:<7} "
              f"required>={ratio:.2f}x got={got:.2f}x  {status}")
        if got < ratio:
            failures.append(
                f"{name}@{level}: speedup {got:.2f}x below the "
                f"{ratio:.2f}x floor")

    if skipped:
        print(f"perf_gate: {skipped} baseline row(s) not measurable on "
              "this host (dispatch level unavailable); skipped")
    if failures:
        print("perf_gate: FAILED")
        for f in failures:
            print(f"  - {f}")
        print("perf_gate: if this change is intentional, re-baseline "
              "(see ci/perf_gate.py docstring)")
        return 1
    print("perf_gate: all rows within "
          f"{args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
