#!/usr/bin/env python3
"""Machine-readable perf gate for the codec kernel benchmarks.

Diffs a fresh BENCH_codec_kernels.json (produced by
`bench_codec_kernels --json <path>`) against the checked-in baseline
and fails CI when a kernel regressed by more than the allowed margin.

Because CI runners and developer machines differ wildly in absolute
MB/s, the default metric is the *speedup ratio* of each vector level
over the scalar level measured in the same file and on the same
machine. That ratio is a property of the kernel code, not of the host,
so it transfers between machines. `--absolute` switches to raw MB/s
for same-machine comparisons.

The gate also enforces hard speedup floors (e.g. "the 9/7 lifting
kernel must stay >= 2x scalar under AVX2"); floors only apply when the
fresh run actually contains that dispatch level, so the gate still
passes on hosts without AVX2.

The checked-in baseline intentionally contains only the
*compute-bound* kernels (GATED_KERNELS below). The remaining kernels
(quantizers, pixel conversions at >4 GB/s) saturate DRAM already at
scalar width, so their scalar/SIMD ratio tracks the host's transient
memory bandwidth rather than the kernel code; they stay in the fresh
JSON artifact as informational rows but are not gated.

Re-baselining (after an intentional perf change, on a quiet machine):

    cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
    ./build/bench_codec_kernels --reps 21 --json /tmp/fresh.json
    python3 ci/perf_gate.py --fresh /tmp/fresh.json --rebaseline
    git add ci/BENCH_codec_kernels.baseline.json

(--rebaseline applies the GATED_KERNELS filter for you.)
"""

import argparse
import json
import sys

DEFAULT_BASELINE = "ci/BENCH_codec_kernels.baseline.json"
# name:level:minimum speedup over scalar. dwt97_fwd >= 2x under AVX2 is
# the repo's headline guarantee (see README "Performance").
DEFAULT_FLOORS = ["dwt97_fwd:avx2:2.0", "dwt97_inv:avx2:2.0"]
# Kernels whose speedup-over-scalar is a property of the code, not of
# the host's memory bandwidth — the only rows worth gating at 25%.
# The lifting passes stay compute-bound (~1.3 GB/s) at every dispatch
# level; everything else (quantizers, pixel conversions) touches DRAM
# at multi-GB/s on at least one level, so its ratio moves with the
# host's transient memory bandwidth.
GATED_KERNELS = ["dwt97_fwd", "dwt97_inv", "dwt53_fwd", "dwt53_inv"]


def load(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for r in doc.get("results", []):
        key = (r["name"], r.get("params", {}).get("level", ""))
        rows[key] = r
    return rows


def speedups(rows):
    """(name, level) -> mb_per_s relative to the scalar row of name."""
    out = {}
    for (name, level), row in rows.items():
        scalar = rows.get((name, "scalar"))
        if not scalar or scalar["mb_per_s"] <= 0:
            continue
        out[(name, level)] = row["mb_per_s"] / scalar["mb_per_s"]
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--fresh", required=True,
                    help="BENCH_codec_kernels.json from this build")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="allowed fractional drop in the median metric "
                         "(default 0.25 = 25%%)")
    ap.add_argument("--absolute", action="store_true",
                    help="gate on raw MB/s instead of speedup-over-"
                         "scalar (same-machine comparisons only)")
    ap.add_argument("--floor", action="append", default=None,
                    metavar="NAME:LEVEL:RATIO",
                    help="hard speedup floor; repeatable "
                         f"(default: {' '.join(DEFAULT_FLOORS)})")
    ap.add_argument("--rebaseline", action="store_true",
                    help="overwrite the baseline with the fresh results "
                         "and exit 0")
    args = ap.parse_args()

    fresh = load(args.fresh)
    if args.rebaseline:
        with open(args.fresh) as src:
            doc = json.load(src)
        doc["results"] = [r for r in doc.get("results", [])
                          if r["name"] in GATED_KERNELS]
        with open(args.baseline, "w") as dst:
            json.dump(doc, dst, indent=2)
            dst.write("\n")
        print(f"perf_gate: re-baselined {args.baseline} from "
              f"{args.fresh} ({len(doc['results'])} gated rows)")
        return 0
    base = load(args.baseline)

    failures = []
    skipped = 0

    # Speedups only compare across identical workloads: a fresh run
    # with a different --edge (or dwt level count) measures a different
    # working set and must not be diffed against this baseline.
    for key in sorted(set(base) & set(fresh)):
        bp = {k: v for k, v in base[key].get("params", {}).items()
              if k != "level"}
        fp = {k: v for k, v in fresh[key].get("params", {}).items()
              if k != "level"}
        if bp != fp:
            print(f"perf_gate: workload mismatch for {key[0]}: baseline "
                  f"params {bp} vs fresh {fp}; rerun the bench with "
                  "default sizes or re-baseline")
            return 1

    if args.absolute:
        metric_name = "MB/s"
        base_metric = {k: r["mb_per_s"] for k, r in base.items()}
        fresh_metric = {k: r["mb_per_s"] for k, r in fresh.items()}
    else:
        metric_name = "speedup-over-scalar"
        base_metric = speedups(base)
        fresh_metric = speedups(fresh)

    for key, expected in sorted(base_metric.items()):
        name, level = key
        if key not in fresh_metric:
            # This host does not support the level (or the kernel was
            # removed — the golden tests catch that separately).
            skipped += 1
            continue
        got = fresh_metric[key]
        allowed = expected * (1.0 - args.max_regression)
        status = "ok" if got >= allowed else "REGRESSED"
        print(f"perf_gate: {name:<18} {level:<7} {metric_name} "
              f"baseline={expected:8.2f} fresh={got:8.2f} "
              f"allowed>={allowed:8.2f}  {status}")
        if got < allowed:
            failures.append(
                f"{name}@{level}: {metric_name} {got:.2f} < "
                f"{allowed:.2f} (baseline {expected:.2f}, "
                f"-{args.max_regression:.0%} allowed)")

    fresh_speedups = speedups(fresh)
    for floor in (args.floor if args.floor is not None
                  else DEFAULT_FLOORS):
        name, level, ratio = floor.rsplit(":", 2)
        ratio = float(ratio)
        key = (name, level)
        if key not in fresh_speedups:
            print(f"perf_gate: floor {floor} skipped "
                  f"(level '{level}' not present on this host)")
            continue
        got = fresh_speedups[key]
        status = "ok" if got >= ratio else "BELOW FLOOR"
        print(f"perf_gate: floor {name:<18} {level:<7} "
              f"required>={ratio:.2f}x got={got:.2f}x  {status}")
        if got < ratio:
            failures.append(
                f"{name}@{level}: speedup {got:.2f}x below the "
                f"{ratio:.2f}x floor")

    if skipped:
        print(f"perf_gate: {skipped} baseline row(s) not measurable on "
              "this host (dispatch level unavailable); skipped")
    if failures:
        print("perf_gate: FAILED")
        for f in failures:
            print(f"  - {f}")
        print("perf_gate: if this change is intentional, re-baseline "
              "(see ci/perf_gate.py docstring)")
        return 1
    print("perf_gate: all kernels within "
          f"{args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
