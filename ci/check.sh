#!/usr/bin/env bash
# CI check: configure, build, run the test suite, then smoke-run the
# runtime benchmark single- and multi-threaded and print the speedup.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# Smoke the end-to-end engine: the bench prints a thread-count sweep
# (1, 2, 4, default) with wall-clock and speedup per row. Speedup on
# single-core CI runners is naturally ~1x; the table is informational,
# the run itself must succeed.
if [ -x "$BUILD_DIR/bench_fig16_runtime" ]; then
    "$BUILD_DIR/bench_fig16_runtime" --benchmark_min_time=0.05
else
    echo "bench_fig16_runtime not built (google-benchmark missing); skipped"
fi

echo "ci/check.sh: all checks passed"
