#!/usr/bin/env bash
# CI check driver. Usage: ci/check.sh [mode]
#
#   build   configure, build, run the full ctest suite
#   bench   smoke-run the end-to-end benches, emit BENCH_*.json
#   perf    run the gated benches (codec kernels, tile coder, ground
#           serving, ground net, tile latency) against their
#           checked-in baselines (ci/perf_gate.py)
#   asan    ASan+UBSan build of the byte-level parser suites
#   tsan    TSan build of the concurrent archive/serving/codec suites
#   chaos   fault-injection sweep: failpoint + crash-consistency +
#           net-fault suites plus the progressive-stream truncation
#           fuzz across several EARTHPLUS_CHAOS_SEED values, plus the
#           chaos probe with its recovery-counter gate — and the same
#           suites again under ASan
#   coverage instrumented (--coverage) build + full ctest, gcov line
#           coverage emitted as a JSON artifact, and a gate failing
#           when src/codec line coverage drops below the recorded
#           baseline (ci/coverage_gate.py)
#   docs    API-doc check (Doxygen when installed + doc-comment lint)
#   all     everything above, in that order (default)
#
# Environment:
#   BUILD_DIR      build tree (default: build)
#   SAN_BUILD_DIR  ASan build tree (default: build-asan)
#   TSAN_BUILD_DIR TSan build tree (default: $BUILD_DIR-tsan)
#   ARTIFACTS_DIR  where BENCH_*.json land (default: $BUILD_DIR/bench-json)
#   CMAKE_ARGS     extra configure arguments (e.g. -DEARTHPLUS_WERROR=ON)
set -euo pipefail

cd "$(dirname "$0")/.."

MODE="${1:-all}"
BUILD_DIR="${BUILD_DIR:-build}"
SAN_BUILD_DIR="${SAN_BUILD_DIR:-build-asan}"
ARTIFACTS_DIR="${ARTIFACTS_DIR:-$BUILD_DIR/bench-json}"

configure_and_build() {
    # shellcheck disable=SC2086
    cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS:-}
    cmake --build "$BUILD_DIR" -j
}

run_tests() {
    ctest --test-dir "$BUILD_DIR" --output-on-failure -j
}

run_benches() {
    mkdir -p "$ARTIFACTS_DIR"
    # Smoke the end-to-end engine: the bench prints a thread-count sweep
    # (1, 2, 4, default) with wall-clock and speedup per row. Speedup on
    # single-core CI runners is naturally ~1x; the table is
    # informational, the run itself must succeed.
    if [ -x "$BUILD_DIR/bench_fig16_runtime" ]; then
        "$BUILD_DIR/bench_fig16_runtime" --benchmark_min_time=0.05
    else
        echo "bench_fig16_runtime not built (google-benchmark missing); skipped"
    fi

    # Smoke the ground-segment serving path: queries/sec and cache hit
    # rate vs. thread count (informational; the run must succeed). The
    # JSON lands in the artifacts dir for the perf trajectory, and the
    # run also dumps the telemetry snapshot plus a sample Chrome trace
    # (both uploaded as CI artifacts and validated below).
    "$BUILD_DIR/bench_ground_serving" \
        --json "$ARTIFACTS_DIR/BENCH_ground_serving.json" \
        --metrics-json "$ARTIFACTS_DIR/telemetry_snapshot.json" \
        --trace-json "$ARTIFACTS_DIR/telemetry_trace.json"

    # Smoke the serving daemon and the loopback EPT path: --selftest
    # binds an ephemeral port, handshakes, round-trips pixels over the
    # wire against an in-memory archive, and shuts down cleanly. The
    # open-loop bench JSON records the latency trajectory (the gated
    # run lives in perf mode).
    "$BUILD_DIR/earthplus_tile_serverd" --selftest
    "$BUILD_DIR/bench_ground_serving" --net \
        --json "$ARTIFACTS_DIR/BENCH_ground_net.json"

    # Smoke the end-to-end tile coder (dense / sparse-delta / lossless
    # at every dispatch level). The gated run lives in perf mode; this
    # one just records the trajectory from the default build type.
    "$BUILD_DIR/bench_tile_coder" --reps 3 \
        --json "$ARTIFACTS_DIR/BENCH_tile_coder.json"

    # Smoke the progressive rate-control mode: the PSNR-vs-budget
    # rate-distortion rows plus the truncateStream throughput row.
    # Informational (recorded, not gated): PSNR is deterministic and
    # the cut is memcpy-class; ci/BENCH_tile_coder_progressive.json
    # records the reference curve.
    "$BUILD_DIR/bench_tile_coder" --progressive --reps 3 \
        --json "$ARTIFACTS_DIR/BENCH_tile_coder_progressive.json"

    # Smoke the single-tile chunked-latency mode (p50/p99 per pool
    # size); the gated run lives in perf mode. The metrics snapshot
    # rides on this mode because its big tiles fan chunks over the
    # pool (the throughput mode's default 128-px tiles are one chunk
    # each and record nothing).
    "$BUILD_DIR/bench_tile_coder" --latency --reps 5 \
        --json "$ARTIFACTS_DIR/BENCH_tile_latency.json" \
        --metrics-json "$ARTIFACTS_DIR/telemetry_tile_coder.json"

    # Telemetry artifact gate: the snapshot must parse with the
    # documented shape and the trace must be valid Chrome trace-event
    # JSON with >= 1 complete event per instrumented subsystem.
    python3 ci/trace_check.py \
        --metrics "$ARTIFACTS_DIR/telemetry_snapshot.json" \
        --trace "$ARTIFACTS_DIR/telemetry_trace.json"
    python3 ci/trace_check.py \
        --metrics "$ARTIFACTS_DIR/telemetry_tile_coder.json"
}

run_perf_gate() {
    mkdir -p "$ARTIFACTS_DIR"
    # Gated numbers must come from an optimization level matching the
    # checked-in baseline: pin Release (the CMakeLists default is
    # RelWithDebInfo, whose -O2 auto-vectorizes the scalar reference
    # differently and skews every speedup-over-scalar ratio). A
    # dedicated tree keeps this from thrashing $BUILD_DIR's cache.
    local perf_dir="${PERF_BUILD_DIR:-${BUILD_DIR}-perf}"
    # shellcheck disable=SC2086
    cmake -B "$perf_dir" -S . ${CMAKE_ARGS:-} -DCMAKE_BUILD_TYPE=Release
    cmake --build "$perf_dir" -j --target bench_codec_kernels
    # Per-kernel throughput at every dispatch level, as machine-readable
    # JSON (uploaded as a CI artifact), then the regression gate: fail
    # on >25% drop in speedup-over-scalar vs the checked-in baseline,
    # or on the 9/7 lifting kernel dipping below 2x under AVX2.
    # 21 reps keeps the medians stable enough for the 25% gate margin
    # on noisy shared runners.
    "$perf_dir/bench_codec_kernels" --reps 21 \
        --json "$ARTIFACTS_DIR/BENCH_codec_kernels.json"
    python3 ci/perf_gate.py \
        --baseline ci/BENCH_codec_kernels.baseline.json \
        --fresh "$ARTIFACTS_DIR/BENCH_codec_kernels.json"

    # End-to-end tile-coder gate: absolute MB/s floors against the
    # checked-in baseline (the entropy stage runs the same scalar code
    # at every level, so a relative metric would hide a uniformly
    # slower coder). Absolute numbers are host-sensitive: the default
    # 25% margin assumes a host comparable to the baseline machine;
    # hosted CI widens it via TILE_CODER_MAX_REGRESSION because shared
    # runners vary severalfold in single-thread throughput. See the
    # ci/perf_gate.py docstring for re-baselining.
    # Distinct filename so 'all' mode doesn't clobber the bench-mode
    # smoke artifact (which records the default build type).
    cmake --build "$perf_dir" -j --target bench_tile_coder
    "$perf_dir/bench_tile_coder" --reps 21 \
        --json "$ARTIFACTS_DIR/BENCH_tile_coder.release.json"
    python3 ci/perf_gate.py --bench tile_coder \
        --max-regression "${TILE_CODER_MAX_REGRESSION:-0.25}" \
        --fresh "$ARTIFACTS_DIR/BENCH_tile_coder.release.json"

    # Ground-serving gate: warm multi-client q/s from the Zipfian load
    # generator, absolute like the tile coder (and equally
    # host-sensitive — hosted CI widens the margin via
    # GROUND_SERVING_MAX_REGRESSION).
    cmake --build "$perf_dir" -j --target bench_ground_serving
    "$perf_dir/bench_ground_serving" \
        --json "$ARTIFACTS_DIR/BENCH_ground_serving.release.json"
    python3 ci/perf_gate.py --bench ground_serving \
        --max-regression "${GROUND_SERVING_MAX_REGRESSION:-0.25}" \
        --fresh "$ARTIFACTS_DIR/BENCH_ground_serving.release.json"

    # Open-loop loopback serving gate: p99 latency at fixed
    # below-capacity arrival rates must not grow past baseline *
    # (1 + margin) (lower is better — the ground_net preset in
    # ci/perf_gate.py; the overload row is informational). Network
    # latency tails are noisy, so like tile_latency the fresh side is
    # a min-merge of three runs against a min-merged baseline, with a
    # wide default margin that hosted CI widens further via
    # GROUND_NET_MAX_REGRESSION.
    for i in 1 2 3; do
        "$perf_dir/bench_ground_serving" --net \
            --json "$ARTIFACTS_DIR/BENCH_ground_net.release.$i.json"
    done
    python3 ci/perf_gate.py --bench ground_net \
        --max-regression "${GROUND_NET_MAX_REGRESSION:-0.5}" \
        --fresh "$ARTIFACTS_DIR/BENCH_ground_net.release.1.json" \
        --fresh "$ARTIFACTS_DIR/BENCH_ground_net.release.2.json" \
        --fresh "$ARTIFACTS_DIR/BENCH_ground_net.release.3.json"
    cp "$ARTIFACTS_DIR/BENCH_ground_net.release.1.json" \
       "$ARTIFACTS_DIR/BENCH_ground_net.release.json"

    # Single-tile chunked-latency gate: p99 wall-ms must not grow past
    # baseline * (1 + margin) on the fixed-thread-count rows (lower is
    # better — see the tile_latency preset in ci/perf_gate.py).
    # Latency tails are the noisiest metric we gate: the baseline is a
    # min-merge of several runs, so the fresh side gets the same
    # treatment — three runs, gated on each row's best-case p99.
    for i in 1 2 3; do
        "$perf_dir/bench_tile_coder" --latency \
            --json "$ARTIFACTS_DIR/BENCH_tile_latency.release.$i.json"
    done
    python3 ci/perf_gate.py --bench tile_latency \
        --max-regression "${TILE_LATENCY_MAX_REGRESSION:-0.5}" \
        --fresh "$ARTIFACTS_DIR/BENCH_tile_latency.release.1.json" \
        --fresh "$ARTIFACTS_DIR/BENCH_tile_latency.release.2.json" \
        --fresh "$ARTIFACTS_DIR/BENCH_tile_latency.release.3.json"
    cp "$ARTIFACTS_DIR/BENCH_tile_latency.release.1.json" \
       "$ARTIFACTS_DIR/BENCH_tile_latency.release.json"
}

run_tsan() {
    # TSan configuration: the sharded archive's per-shard locking, the
    # tile server's request coalescing and its background prefetcher
    # must be race-free under concurrent serveBatch + append — and the
    # codec's chunk-parallel encode/decode (per-chunk range coders
    # fanned over the pool, plus the staged encode pipeline) must be
    # race-free under concurrent encodes — and the telemetry layer's
    # sharded counters/histograms and trace buffers must be race-free
    # under concurrent recording — and the EPT serving front's
    # event-loop/pool handoff (serveAsync completions crossing to the
    # loop thread over the wake pipe) must be race-free under
    # pipelined load. Scoped to the suites that contain the
    # concurrency tests.
    local tsan_dir="${TSAN_BUILD_DIR:-${BUILD_DIR}-tsan}"
    # shellcheck disable=SC2086
    cmake -B "$tsan_dir" -S . ${CMAKE_ARGS:-} \
          -DCMAKE_BUILD_TYPE=Debug \
          -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
    cmake --build "$tsan_dir" -j \
          --target ground_test parallel_test codec_test telemetry_test \
                   net_test progressive_test
    EARTHPLUS_THREADS=4 ctest --test-dir "$tsan_dir" \
          --output-on-failure \
          -R 'ground_test|parallel_test|codec_test|telemetry_test|net_test|progressive_test'
}

run_chaos() {
    # The deterministic fault-injection sweep. crash_consistency_test
    # kills the workload at EVERY injected write boundary and verifies
    # no acknowledged record is lost; EARTHPLUS_CHAOS_SEED varies the
    # payload contents across runs without changing the boundary
    # structure, so a few seeds buy coverage cheaply.
    # The progressive-stream truncation fuzz rides along: each seed
    # cuts EPC4 streams at a different set of unrecorded offsets and
    # asserts every one fails with a typed error instead of a crash.
    configure_and_build
    cmake --build "$BUILD_DIR" -j \
          --target failpoint_test crash_consistency_test net_test \
                   progressive_test earthplus_chaos_probe
    for seed in 1 7 1234; do
        echo "chaos: seed $seed"
        EARTHPLUS_CHAOS_SEED=$seed ctest --test-dir "$BUILD_DIR" \
            --output-on-failure \
            -R 'failpoint_test|crash_consistency_test|net_test|progressive_test'
    done

    # The chaos probe drives the archive's recovery paths (torn tail,
    # failing fsync) and dumps the registry; the counter gate proves
    # the recovery metrics actually moved.
    mkdir -p "$ARTIFACTS_DIR"
    "$BUILD_DIR/earthplus_chaos_probe" \
        --metrics-json "$ARTIFACTS_DIR/telemetry_chaos.json"
    python3 ci/trace_check.py \
        --metrics "$ARTIFACTS_DIR/telemetry_chaos.json" \
        --require-counter archive.tail_truncated \
        --require-counter archive.fsync_failures

    # The same fault paths under ASan: injected faults love to expose
    # use-after-free in error-path cleanup.
    # shellcheck disable=SC2086
    cmake -B "$SAN_BUILD_DIR" -S . ${CMAKE_ARGS:-} \
          -DCMAKE_BUILD_TYPE=Debug \
          -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
    cmake --build "$SAN_BUILD_DIR" -j \
          --target failpoint_test crash_consistency_test progressive_test
    ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure \
          -R 'failpoint_test|crash_consistency_test|progressive_test'
}

run_coverage() {
    # Line-coverage build: gcc's --coverage (gcov) on a Debug tree,
    # full ctest so every suite contributes counts, then the gate:
    # src/codec line coverage must not drop below the recorded
    # baseline (ci/COVERAGE_codec.baseline.json — regenerate with
    # ci/coverage_gate.py --rebaseline after intentional changes).
    local cov_dir="${COVERAGE_BUILD_DIR:-${BUILD_DIR}-coverage}"
    # shellcheck disable=SC2086
    cmake -B "$cov_dir" -S . ${CMAKE_ARGS:-} \
          -DCMAKE_BUILD_TYPE=Debug \
          -DCMAKE_CXX_FLAGS="--coverage" \
          -DCMAKE_EXE_LINKER_FLAGS="--coverage"
    cmake --build "$cov_dir" -j
    ctest --test-dir "$cov_dir" --output-on-failure -j
    mkdir -p "$ARTIFACTS_DIR"
    python3 ci/coverage_gate.py \
        --build-dir "$cov_dir" \
        --baseline ci/COVERAGE_codec.baseline.json \
        --report "$ARTIFACTS_DIR/coverage_codec.json"
}

run_docs() {
    python3 ci/docs_check.py
}

run_asan() {
    # ASan+UBSan configuration: the byte-level parsers (downlink
    # packets, archive file format, codec streams, EPT wire frames)
    # and the SIMD kernels
    # must be sanitizer-clean on both their happy paths and their
    # corruption-recovery paths. Scoped to the suites that exercise
    # those parsers so CI time stays bounded.
    # shellcheck disable=SC2086
    cmake -B "$SAN_BUILD_DIR" -S . ${CMAKE_ARGS:-} \
          -DCMAKE_BUILD_TYPE=Debug \
          -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
    cmake --build "$SAN_BUILD_DIR" -j \
          --target ground_test uplink_planner_test codec_test simd_test \
                   golden_stream_test net_test progressive_test
    ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure \
          -R 'ground_test|uplink_planner_test|codec_test|simd_test|golden_stream_test|net_test|progressive_test'
}

case "$MODE" in
build)
    configure_and_build
    run_tests
    ;;
bench)
    configure_and_build
    run_benches
    ;;
perf)
    run_perf_gate
    ;;
asan)
    run_asan
    ;;
tsan)
    run_tsan
    ;;
chaos)
    run_chaos
    ;;
coverage)
    run_coverage
    ;;
docs)
    run_docs
    ;;
all)
    configure_and_build
    run_tests
    run_benches
    run_perf_gate
    run_asan
    run_tsan
    run_chaos
    run_coverage
    run_docs
    ;;
*)
    echo "usage: ci/check.sh [build|bench|perf|asan|tsan|chaos|coverage|docs|all]" >&2
    exit 2
    ;;
esac

echo "ci/check.sh: $MODE checks passed"
