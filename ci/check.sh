#!/usr/bin/env bash
# CI check: configure, build, run the test suite, then smoke-run the
# runtime benchmark single- and multi-threaded and print the speedup.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j

# Smoke the end-to-end engine: the bench prints a thread-count sweep
# (1, 2, 4, default) with wall-clock and speedup per row. Speedup on
# single-core CI runners is naturally ~1x; the table is informational,
# the run itself must succeed.
if [ -x "$BUILD_DIR/bench_fig16_runtime" ]; then
    "$BUILD_DIR/bench_fig16_runtime" --benchmark_min_time=0.05
else
    echo "bench_fig16_runtime not built (google-benchmark missing); skipped"
fi

# Smoke the ground-segment serving path: queries/sec and cache hit
# rate vs. thread count (informational; the run must succeed).
"$BUILD_DIR/bench_ground_serving"

# ASan+UBSan configuration: the byte-level parsers (downlink packets,
# archive file format, codec streams) must be sanitizer-clean on both
# their happy paths and their corruption-recovery paths. Scoped to the
# suites that exercise those parsers so CI time stays bounded.
SAN_BUILD_DIR="${SAN_BUILD_DIR:-build-asan}"
cmake -B "$SAN_BUILD_DIR" -S . \
      -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
cmake --build "$SAN_BUILD_DIR" -j \
      --target ground_test uplink_planner_test codec_test
ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure \
      -R 'ground_test|uplink_planner_test|codec_test'

echo "ci/check.sh: all checks passed"
