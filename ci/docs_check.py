#!/usr/bin/env python3
"""Documentation gate: Doxygen build (when available) + doc lint.

Two layers, so the check is useful both on hosted CI (doxygen
installed, full parse) and on minimal dev containers (no doxygen):

1. When a `doxygen` binary is on PATH, build the checked-in Doxyfile
   and fail on any warning (undocumented public symbol in the scoped
   headers, malformed doc comment, unresolved reference). The warning
   log is printed on failure.

2. Always run a lightweight doc-comment lint over the source headers:

   - every header under src/ must open with a `@file` comment block
     (the subsystem-orientation docs ARCHITECTURE.md links into);
   - in the Doxygen-scoped directories (src/ground, src/core), every
     namespace-scope declaration — class/struct/enum definitions,
     constexpr constants, free functions — must be immediately
     preceded by a `/** ... */` doc comment.

   The lint is a heuristic over the house style (declarations start
   in column 0, members are indented; clang-format enforces this), so
   it cannot replace the doxygen pass — it exists to catch the common
   regression (a new undocumented symbol) in environments where
   doxygen is not installed.

Exit status: 0 clean, 1 findings, 2 usage/config error.
"""

import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories whose namespace-scope declarations must be documented
# (matches the Doxyfile INPUT).
LINT_SCOPE = ["src/ground", "src/core"]
# Directories whose headers must carry an @file block.
FILE_DOC_SCOPE = ["src"]

DECL_RE = re.compile(r"^(class|struct|enum)\s+[A-Za-z_]")
FORWARD_DECL_RE = re.compile(r"^(class|struct)\s+\w+;\s*$")
CONST_RE = re.compile(r"^(constexpr|using|typedef)\b")
# A line that is only a (possibly templated) type: the return type of
# a function declared in the two-line house style.
BARE_TYPE_RE = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*$")
# Single-line start of a function declaration/definition.
FUNC_RE = re.compile(r"^[A-Za-z_][\w:<>,&*\s]*\b\w+\s*\(")
SKIP_RE = re.compile(
    r"^(#|//|/\*|\*|\{|\}|namespace\b|template\b|extern\b|public:|"
    r"private:|protected:)")


def strip_comments(line, state):
    """Remove comment text; `state` tracks open block comments."""
    out = []
    i = 0
    while i < len(line):
        if state["block"]:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            state["block"] = False
            i = end + 2
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            state["block"] = True
            i += 2
            continue
        out.append(line[i])
        i += 1
    return "".join(out), state["block"]


def lint_header(path, in_scope):
    """Return a list of (line number, message) findings for one file."""
    findings = []
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()

    if not any("@file" in line for line in lines[:8]):
        findings.append((1, "missing @file comment block"))
    if not in_scope:
        return findings

    state = {"block": False}
    paren_depth = 0
    prev = ""       # previous significant raw line
    prev2 = ""      # the one before it
    skip_next = False
    for num, raw in enumerate(lines, 1):
        stripped = raw.strip()
        code, in_block = strip_comments(raw, state)
        if in_block or not stripped:
            if stripped:
                prev2, prev = prev, stripped
            continue
        if paren_depth > 0:
            # Continuation of a multi-line declaration.
            paren_depth += code.count("(") - code.count(")")
            prev2, prev = prev, stripped
            continue
        is_col0 = bool(raw) and not raw[0].isspace()
        decl = None
        if is_col0 and code.strip() and not SKIP_RE.match(stripped):
            text = code.strip()
            if skip_next:
                # The name line of a two-line declaration whose
                # return-type line was already checked.
                skip_next = False
            elif DECL_RE.match(text) and not FORWARD_DECL_RE.match(text):
                decl = "type"
            elif CONST_RE.match(text):
                decl = "constant"
            elif FUNC_RE.match(text):
                decl = "function"
            elif BARE_TYPE_RE.match(text) and not text.endswith(";"):
                decl = "function"
                skip_next = True
        if decl:
            documented = prev.endswith("*/") or (
                prev.startswith("template") and prev2.endswith("*/"))
            if not documented:
                findings.append(
                    (num, f"undocumented namespace-scope {decl}: "
                          f"'{stripped[:60]}'"))
        paren_depth += code.count("(") - code.count(")")
        if paren_depth < 0:
            paren_depth = 0
        prev2, prev = prev, stripped
    return findings


def run_lint():
    findings = []
    for scope in FILE_DOC_SCOPE:
        for root, _dirs, files in os.walk(os.path.join(REPO, scope)):
            for name in sorted(files):
                if not name.endswith(".hh"):
                    continue
                path = os.path.join(root, name)
                rel = os.path.relpath(path, REPO)
                in_scope = any(
                    rel.startswith(s + os.sep) for s in LINT_SCOPE)
                for line, message in lint_header(path, in_scope):
                    findings.append(f"{rel}:{line}: {message}")
    return findings


def run_doxygen():
    doxygen = shutil.which("doxygen")
    if not doxygen:
        print("docs_check: doxygen not installed; skipping the full "
              "API-doc build (the doc lint below still runs — CI runs "
              "doxygen)")
        return []
    os.makedirs(os.path.join(REPO, "build-docs"), exist_ok=True)
    proc = subprocess.run([doxygen, "Doxyfile"], cwd=REPO,
                          capture_output=True, text=True)
    log_path = os.path.join(REPO, "build-docs", "doxygen-warnings.log")
    warnings = []
    if os.path.exists(log_path):
        with open(log_path, encoding="utf-8", errors="replace") as f:
            warnings = [w for w in f.read().splitlines() if w.strip()]
    if proc.returncode != 0:
        warnings.append(f"doxygen exited with status {proc.returncode}: "
                        f"{proc.stderr.strip()[:500]}")
    else:
        print("docs_check: doxygen build completed")
    return warnings


def main():
    failures = run_doxygen()
    failures += run_lint()
    if failures:
        print("docs_check: FAILED")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("docs_check: documentation checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
