/**
 * @file
 * Wildfire-alert scenario (the paper's motivating application, §1):
 * how quickly does a sudden ground change reach the analysts?
 *
 * A "fire" is injected as a burst of scene change; each system's alert
 * latency is the time from the event until the capture containing the
 * burned tiles has been fully transferred over a downlink whose
 * per-contact budget is shared with the system's other queued imagery.
 * Earth+'s smaller payloads drain the queue faster, cutting reaction
 * delay (paper: up to 3x).
 */

#include <cstdio>
#include <iostream>

#include <algorithm>

#include "core/doves_spec.hh"
#include "orbit/contact.hh"
#include "orbit/links.hh"
#include "core/simulation.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace earthplus;

int
main()
{
    // Daily-revisit constellation over a fire-prone location; the
    // scene's own Poisson events play the role of fire outbreaks (any
    // abrupt change is detected the same way).
    synth::DatasetSpec spec = synth::largeConstellationDataset(256, 256);
    spec.startDay = 150.0;
    spec.endDay = 240.0;
    const int forest = 0;

    core::DovesSpec doves;
    // Downlink budget available to THIS location per contact: the
    // satellite shares each contact across the ~130 locations captured
    // between contacts.
    // A Dove images ~18,000 locations between two contacts; each
    // location's fair share of the 15 GB contact is therefore small,
    // and payload size directly sets how many contacts a capture
    // queues through.
    double perLocationContactBytes =
        orbit::LinkBudget(doves.downlink).bytesPerContact() / 1800.0;
    // Scale synthetic image bytes to real-image bytes.
    double scale = static_cast<double>(doves.imageWidth) *
                   doves.imageHeight * doves.imageChannels /
                   (256.0 * 256.0 * 4.0);
    orbit::ContactSchedule contacts(doves.contactsPerDay);

    Table t("Wildfire alert latency (event -> imagery on the ground)");
    t.setHeader({"System", "Mean latency (h)", "Capture wait (h)",
                 "Downlink wait (h)", "Events"});

    for (auto kind : {core::SystemKind::EarthPlus,
                      core::SystemKind::SatRoI, core::SystemKind::Kodan}) {
        core::SimParams params;
        params.system.gamma = 1.5;
        core::LocationSimulation sim(spec, forest, kind, params);
        core::SimSummary s = sim.run();

        // Alert latency per event: the event is visible in the first
        // processed capture after it; the capture reaches the ground
        // once the preceding queue plus its own payload have drained
        // through this location's downlink share.
        double latency = 0.0, captureWait = 0.0, linkWait = 0.0;
        int events = 0;
        for (double eventDay = spec.startDay + 5.0;
             eventDay < spec.endDay - 10.0; eventDay += 11.0) {
            const core::CaptureMetrics *first = nullptr;
            for (const auto &c : s.captures)
                if (!c.dropped && c.day >= eventDay) {
                    first = &c;
                    break;
                }
            if (!first)
                continue;
            ++events;
            double wait = first->day - eventDay;
            // Transmission: contacts after the capture, each moving
            // perLocationContactBytes of this system's payload.
            double payload = static_cast<double>(first->downlinkBytes) *
                             scale;
            double contactsNeeded =
                std::max(1.0, payload / perLocationContactBytes);
            double doneContact = contacts.nextContactAtOrAfter(
                first->day) + (contactsNeeded - 1.0) /
                doves.contactsPerDay;
            double link = doneContact - first->day;
            captureWait += wait;
            linkWait += link;
            latency += wait + link;
        }
        if (events == 0)
            continue;
        t.addRow({core::systemName(kind),
                  Table::num(latency / events * 24.0, 1),
                  Table::num(captureWait / events * 24.0, 1),
                  Table::num(linkWait / events * 24.0, 1),
                  Table::num(events, 0)});
    }
    t.print(std::cout);
    std::printf("Smaller payloads need fewer ground-contact slots, so "
                "fresh imagery lands sooner —\nthe paper reports up to "
                "3x faster reaction for ground applications.\n");
    return 0;
}
