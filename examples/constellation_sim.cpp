/**
 * @file
 * End-to-end constellation simulation: Earth+ vs the baselines on the
 * Planet-like dataset, using the full uplink/downlink/reference loop.
 *
 * Usage:  ./build/examples/constellation_sim [days]
 */

#include <cstdio>
#include <iostream>
#include <cstdlib>

#include "core/simulation.hh"
#include "util/table.hh"
#include "util/units.hh"

using namespace earthplus;

int
main(int argc, char **argv)
{
    double days = argc > 1 ? std::atof(argv[1]) : 90.0;
    synth::DatasetSpec spec = synth::largeConstellationDataset(256, 256);
    spec.startDay = 100.0;
    spec.endDay = 100.0 + days;

    Table t("Constellation simulation (" + std::to_string(
                static_cast<int>(days)) + " days, 48 satellites, " +
            "gamma = 1.5 bpp)");
    t.setHeader({"System", "Processed", "Dropped", "Tiles", "PSNR (dB)",
                 "Downlink (MB)", "Uplink (KB)", "Ref age (d)"});

    for (auto kind : {core::SystemKind::EarthPlus,
                      core::SystemKind::SatRoI, core::SystemKind::Kodan,
                      core::SystemKind::DownloadAll}) {
        core::SimParams params;
        params.system.gamma = 1.5;
        core::LocationSimulation sim(spec, 0, kind, params);
        core::SimSummary s = sim.run();
        t.addRow({core::systemName(kind),
                  Table::num(s.processedCount, 0),
                  Table::num(s.droppedCount, 0),
                  Table::pct(s.meanDownloadedFraction),
                  Table::num(s.meanPsnr, 2),
                  Table::num(s.totalDownlinkBytes / 1e6, 2),
                  Table::num(s.totalUplinkBytes / 1e3, 1),
                  s.referencedCount
                      ? Table::num(s.meanReferenceAgeDays, 1) : "-"});
    }
    t.print(std::cout);
    std::printf("Earth+ uses the 250 kbps uplink to keep every "
                "satellite's reference cache fresh from the whole\n"
                "constellation's downloads; the baselines never upload "
                "anything.\n");
    return 0;
}
