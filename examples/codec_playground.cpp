/**
 * @file
 * Codec playground: the wavelet codec on its own — rate sweep, quality
 * layers, region-of-interest coding and lossless mode. Writes PGM
 * snapshots next to the binary so results can be eyeballed.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "codec/codec.hh"
#include "raster/io.hh"
#include "raster/metrics.hh"
#include "synth/dataset.hh"
#include "synth/scene.hh"
#include "util/table.hh"

using namespace earthplus;

int
main()
{
    // A realistic test image: one band of a synthetic scene.
    synth::DatasetSpec spec = synth::richContentDataset(256, 256);
    synth::SceneConfig sc;
    sc.width = 256;
    sc.height = 256;
    sc.bands = spec.bands;
    synth::SceneModel scene(spec.locations[5], sc); // city
    raster::Plane img = scene.groundTruth(200.0, 3); // B4 (red)
    raster::savePgm(img, "codec_original.pgm");

    Table rate("Rate sweep (CDF 9/7, 64x64 tiles)");
    rate.setHeader({"bpp target", "bpp actual", "PSNR (dB)"});
    for (double bpp : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        codec::EncodeParams p;
        p.bitsPerPixel = bpp;
        codec::EncodedImage enc = codec::encode(img, p);
        raster::Plane dec = codec::decode(enc);
        rate.addRow({Table::num(bpp, 2),
                     Table::num(8.0 * enc.totalBytes() / (256.0 * 256.0),
                                2),
                     Table::num(raster::psnr(img, dec), 2)});
        if (bpp == 0.5)
            raster::savePgm(dec, "codec_lossy_0.5bpp.pgm");
    }
    rate.print(std::cout);

    // Quality layers: one stream, three operating points.
    codec::EncodeParams lp;
    lp.bitsPerPixel = 3.0;
    lp.layers = 3;
    codec::EncodedImage layered = codec::encode(img, lp);
    Table layers("Progressive quality layers (one encoded stream)");
    layers.setHeader({"Layers decoded", "Bytes", "PSNR (dB)"});
    for (int l = 1; l <= 3; ++l) {
        raster::Plane dec = codec::decode(layered, l);
        layers.addRow({Table::num(l, 0),
                       Table::num(layered.totalBytesForLayers(l), 0),
                       Table::num(raster::psnr(img, dec), 2)});
    }
    layers.print(std::cout);

    // Region of interest: only the image centre is coded.
    raster::TileGrid grid(256, 256, 64);
    raster::TileMask roi(grid);
    roi.set(grid.tileIndex(1, 1), true);
    roi.set(grid.tileIndex(2, 1), true);
    roi.set(grid.tileIndex(1, 2), true);
    roi.set(grid.tileIndex(2, 2), true);
    codec::EncodeParams rp;
    rp.bitsPerPixel = 2.0;
    rp.roi = &roi;
    codec::EncodedImage renc = codec::encode(img, rp);
    raster::savePgm(codec::decode(renc), "codec_roi.pgm");
    std::printf("ROI: %d of %d tiles coded, %zu bytes "
                "(vs %zu for the full image)\n\n",
                roi.countSet(), grid.tileCount(), renc.totalBytes(),
                codec::encode(img, codec::EncodeParams{}).totalBytes());

    // Lossless mode.
    raster::Plane snapped = img;
    for (auto &v : snapped.data())
        v = std::round(v * 255.0f) / 255.0f;
    codec::EncodeParams llp;
    llp.lossless = true;
    llp.wavelet = codec::Wavelet::LeGall53;
    codec::EncodedImage lossless = codec::encode(snapped, llp);
    raster::Plane back = codec::decode(lossless);
    std::printf("lossless: %zu bytes (%.2f bpp), max error %.2g\n",
                lossless.totalBytes(),
                8.0 * lossless.totalBytes() / (256.0 * 256.0),
                [&] {
                    double m = 0.0;
                    for (size_t i = 0; i < back.data().size(); ++i)
                        m = std::max(m, std::abs(
                            static_cast<double>(back.data()[i]) -
                            snapped.data()[i]));
                    return m;
                }());
    std::printf("wrote codec_original.pgm, codec_lossy_0.5bpp.pgm, "
                "codec_roi.pgm\n");
    return 0;
}
