/**
 * @file
 * Multi-band behaviour (§5 "Handling different bands"): how much each
 * Sentinel-2 band changes between revisits, and what that means for
 * per-band downlink. Vegetation red-edge bands drift with the season,
 * air-observing bands barely react to the ground at all.
 */

#include <cstdio>
#include <iostream>

#include "change/detector.hh"
#include "raster/resample.hh"
#include "synth/dataset.hh"
#include "synth/scene.hh"
#include "synth/sensor.hh"
#include "synth/weather.hh"
#include "util/table.hh"

using namespace earthplus;

int
main()
{
    synth::DatasetSpec spec = synth::richContentDataset(256, 256);
    const int loc = 6; // "G": mixed content
    synth::SceneConfig sc;
    sc.width = spec.width;
    sc.height = spec.height;
    sc.bands = spec.bands;
    synth::SceneModel scene(spec.locations[static_cast<size_t>(loc)], sc);
    synth::WeatherProcess weather;
    synth::CaptureSimulator sim(scene, weather);

    // A clear pair ~10 days apart in the growing season.
    double refDay = -1.0, capDay = -1.0;
    for (int d = 120; d < 300; ++d) {
        if (weather.coverage(loc, d) >= 0.01)
            continue;
        if (refDay < 0.0)
            refDay = d;
        else if (d - refDay >= 8.0) {
            capDay = d;
            break;
        }
    }
    synth::Capture ref = sim.capture(refDay, 0);
    synth::Capture cap = sim.capture(capDay, 1);

    Table t("Per-band change at a " +
            std::to_string(static_cast<int>(capDay - refDay)) +
            "-day reference age (location G)");
    t.setHeader({"Band", "Role", "Changed tiles", "Mean tile diff"});
    for (int b = 0; b < cap.image.bandCount(); ++b) {
        const synth::BandSpec &bs = spec.bands[static_cast<size_t>(b)];
        change::ChangeDetectorParams cp;
        cp.threshold = 0.01;
        cp.referenceFactor = 16;
        change::ChangeDetection det = change::detectChanges(
            cap.image.band(b),
            raster::downsample(ref.image.band(b), 16), cp);
        double meanDiff = 0.0;
        for (double d : det.tileDiffs)
            meanDiff += d;
        meanDiff /= static_cast<double>(det.tileDiffs.size());
        const char *role = bs.coldClouds ? "SWIR (ground)"
                           : bs.atmosphere > 0.3 ? "atmosphere"
                           : bs.seasonalAmplitude > 0.04
                               ? "vegetation" : "ground";
        t.addRow({bs.name, role, Table::pct(
                      det.changedTiles.fractionSet()),
                  Table::num(meanDiff, 4)});
    }
    t.print(std::cout);
    std::printf("Earth+ detects changes and updates references band by "
                "band, so quiet bands\n(B9/B10) cost almost no downlink "
                "while vegetation bands pay for their churn.\n");
    return 0;
}
