/**
 * @file
 * Quickstart: the Earth+ pipeline on a single capture.
 *
 * Generates a synthetic location, captures it twice a few days apart,
 * and walks the on-board steps by hand: cheap cloud detection ->
 * illumination-aligned change detection against a downsampled
 * reference -> ROI encoding of only the changed tiles. Prints the
 * byte counts so the saving is visible.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "change/detector.hh"
#include "cloud/detector.hh"
#include "codec/codec.hh"
#include "raster/metrics.hh"
#include "raster/resample.hh"
#include "synth/dataset.hh"
#include "synth/scene.hh"
#include "synth/sensor.hh"
#include "synth/weather.hh"

using namespace earthplus;

int
main()
{
    // 1. A synthetic location (stand-in for real Doves imagery).
    synth::DatasetSpec spec = synth::largeConstellationDataset(256, 256);
    synth::SceneConfig sc;
    sc.width = spec.width;
    sc.height = spec.height;
    sc.bands = spec.bands;
    synth::SceneModel scene(spec.locations[0], sc);
    synth::WeatherProcess weather;
    synth::CaptureSimulator sim(scene, weather);

    // Two clear captures five days apart (summer).
    double refDay = -1.0, capDay = -1.0;
    for (int d = 150; d < 300; ++d) {
        if (weather.coverage(0, d) >= 0.01)
            continue;
        if (refDay < 0.0)
            refDay = d;
        else if (d - refDay >= 5.0) {
            capDay = d;
            break;
        }
    }
    synth::Capture reference = sim.capture(refDay, 0);
    synth::Capture capture = sim.capture(capDay, 1);
    std::printf("reference: day %.0f, capture: day %.0f (age %.0f d)\n",
                refDay, capDay, capDay - refDay);

    // 2. On-board cheap cloud detection.
    raster::TileGrid grid(spec.width, spec.height, 64);
    cloud::CheapCloudDetector cloudDetector;
    cloud::CloudDetection clouds =
        cloudDetector.detect(capture.image, spec.bands, grid);
    std::printf("cloud coverage: %.1f%% measured on board (%.1f%% "
                "true)\n", 100.0 * clouds.coverage,
                100.0 * capture.cloudCoverage);

    // 3. Change detection against the 16x-downsampled reference (the
    //    form in which references are uplinked).
    const int factor = 16;
    size_t changedBytes = 0, fullBytes = 0;
    double meanChanged = 0.0;
    for (int b = 0; b < capture.image.bandCount(); ++b) {
        raster::Plane refLow =
            raster::downsample(reference.image.band(b), factor);
        change::ChangeDetectorParams cp;
        cp.threshold = 0.01;
        cp.referenceFactor = factor;
        change::ChangeDetection det =
            change::detectChanges(capture.image.band(b), refLow, cp);
        raster::TileMask roi = det.changedTiles;
        roi.subtract(clouds.tileMask);
        meanChanged += roi.fractionSet();

        // 4. Encode only changed tiles at gamma = 2 bits/pixel, vs the
        //    whole band for comparison.
        codec::EncodeParams ep;
        ep.bitsPerPixel = 2.0;
        ep.roi = &roi;
        changedBytes += codec::encode(capture.image.band(b), ep)
                            .totalBytes();
        codec::EncodeParams full = ep;
        full.roi = nullptr;
        fullBytes += codec::encode(capture.image.band(b), full)
                         .totalBytes();
    }
    meanChanged /= capture.image.bandCount();

    std::printf("changed tiles: %.1f%% of the image (mean over %d "
                "bands)\n", 100.0 * meanChanged,
                capture.image.bandCount());
    std::printf("downlink: %.1f KB changed-only vs %.1f KB full image "
                "-> %.1fx saving\n", changedBytes / 1e3, fullBytes / 1e3,
                static_cast<double>(fullBytes) /
                    static_cast<double>(changedBytes));
    return 0;
}
