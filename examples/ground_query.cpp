/**
 * @file
 * Ground-segment query CLI: serve a tile rectangle from an encoded
 * archive (a sharded archive directory; a legacy single-file archive
 * is migrated on open).
 *
 *   ground_query --demo archive.epar
 *       Build a small demonstration archive (full download at day 1,
 *       deltas at days 2 and 3 for location 0, band 0).
 *
 *   ground_query archive.epar <locationId> <day> <band> <x> <y> <w> <h>
 *       Resolve the delta chain, decode only the tiles intersecting
 *       the rectangle, print serving stats and write the pixels to
 *       ground_query_out.pgm.
 *
 * Example:
 *   ./ground_query --demo demo.epar
 *   ./ground_query demo.epar 0 2.5 0 64 64 128 128
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "codec/codec.hh"
#include "ground/archive.hh"
#include "ground/tile_server.hh"
#include "raster/io.hh"
#include "raster/tile.hh"
#include "synth/dataset.hh"
#include "synth/scene.hh"
#include "util/rng.hh"

using namespace earthplus;
using namespace earthplus::ground;

namespace {

int
buildDemo(const std::string &path)
{
    constexpr int kSize = 256;
    constexpr int kTileSize = 64;

    // Scene content from the synthetic dataset so the imagery looks
    // plausible rather than random.
    synth::DatasetSpec spec = synth::richContentDataset(kSize, kSize);
    synth::SceneConfig sc;
    sc.width = kSize;
    sc.height = kSize;
    sc.bands = spec.bands;
    synth::SceneModel scene(spec.locations[5], sc); // city

    Archive archive(path);
    codec::EncodeParams ep;
    ep.bitsPerPixel = 2.0;
    ep.tileSize = kTileSize;

    RecordMeta meta;
    meta.locationId = 0;
    meta.band = 0;
    meta.captureDay = 1.0;
    meta.fullDownload = true;
    archive.append(meta,
                   codec::encode(scene.groundTruth(200.0, 3), ep)
                       .serialize());

    // Two deltas: later scene states, random ~25% of tiles re-coded.
    raster::TileGrid grid(kSize, kSize, kTileSize);
    Rng rng(0xde30);
    for (int d = 0; d < 2; ++d) {
        raster::TileMask roi(grid);
        for (int t = 0; t < grid.tileCount(); ++t)
            roi.set(t, rng.bernoulli(0.25));
        codec::EncodeParams dp = ep;
        dp.roi = &roi;
        RecordMeta dm = meta;
        dm.captureDay = 2.0 + d;
        dm.fullDownload = false;
        dm.referenceDay = 1.0;
        archive.append(
            dm,
            codec::encode(scene.groundTruth(210.0 + 10.0 * d, 3), dp)
                .serialize());
    }

    std::cout << "wrote " << archive.recordCount() << " records ("
              << archive.fileBytes() << " bytes) to " << path << "\n"
              << "try: ground_query " << path << " 0 2.5 0 64 64 128 128\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 3 && std::string(argv[1]) == "--demo")
        return buildDemo(argv[2]);
    if (argc != 9) {
        std::cerr << "usage: " << argv[0]
                  << " --demo <archive>\n       " << argv[0]
                  << " <archive> <locationId> <day> <band> <x> <y> <w>"
                     " <h>\n";
        return 1;
    }

    Archive archive(argv[1]);
    if (archive.scanReport().truncatedTail)
        std::cerr << "note: recovered " << archive.recordCount()
                  << " records from a corrupt tail\n";
    if (archive.recordCount() == 0) {
        std::cerr << "archive is empty\n";
        return 1;
    }

    TileQuery q;
    q.locationId = std::atoi(argv[2]);
    q.day = std::atof(argv[3]);
    q.band = std::atoi(argv[4]);
    q.x0 = std::atoi(argv[5]);
    q.y0 = std::atoi(argv[6]);
    q.width = std::atoi(argv[7]);
    q.height = std::atoi(argv[8]);

    TileServer server(archive);
    TileResult r = server.serve(q);
    if (!r.ok()) {
        std::cerr << "serve failed (" << serveErrorName(r.error)
                  << ") for location " << q.locationId << " band "
                  << q.band << " at day " << q.day << "\n";
        return 1;
    }

    std::cout << "served " << r.pixels.width() << "x"
              << r.pixels.height() << " px as of day " << r.servedDay
              << " (" << r.tilesDecoded << " tiles decoded, "
              << r.tilesFromCache << " from cache)\n";
    const char *out = "ground_query_out.pgm";
    if (raster::savePgm(r.pixels, out))
        std::cout << "pixels written to " << out << "\n";
    return 0;
}
