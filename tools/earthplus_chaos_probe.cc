/**
 * @file
 * earthplus_chaos_probe — a tiny chaos driver for CI.
 *
 * Exercises the archive's fault paths end to end with the in-process
 * fault-injection layer and dumps the telemetry registry, so
 * ci/trace_check.py can assert the recovery counters actually moved:
 *
 *  - tears a shard tail and reopens (archive.tail_truncated);
 *  - arms archive.io.sync.error under SyncPolicy::Interval, where an
 *    fsync failure is survivable and counted (archive.fsync_failures).
 *
 * Usage: earthplus_chaos_probe --metrics-json PATH
 *
 * Exit status is nonzero if any probed recovery path misbehaves, so
 * the chaos CI job fails even before the counter check runs.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ground/archive.hh"
#include "util/failpoint.hh"
#include "util/rng.hh"
#include "util/telemetry.hh"

using namespace earthplus;
using namespace earthplus::ground;

namespace {

std::vector<uint8_t>
payload(size_t size, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> out(size);
    for (auto &b : out)
        b = static_cast<uint8_t>(rng.uniformInt(0, 255));
    return out;
}

void
append(Archive &archive, int loc, double day, uint64_t seed)
{
    RecordMeta meta;
    meta.locationId = loc;
    meta.band = 0;
    meta.captureDay = day;
    meta.fullDownload = true;
    archive.append(meta, payload(512, seed));
}

/** Tear-and-reopen: must bump archive.tail_truncated. 0 on success. */
int
probeTornTail(const std::string &dir)
{
    {
        ArchiveOptions opt;
        opt.shardCount = 1;
        Archive archive(dir, opt);
        append(archive, 1, 1.0, 11);
        append(archive, 1, 2.0, 12);
    }
    std::string shard = dir + "/shard-000.epar";
    uintmax_t size = std::filesystem::file_size(shard);
    std::filesystem::resize_file(shard, size - 100);

    ArchiveOpenError err;
    auto recovered = Archive::open(dir, ArchiveOptions{}, &err);
    if (!recovered) {
        std::fprintf(stderr, "torn tail not recovered: %s\n",
                     err.detail.c_str());
        return 1;
    }
    if (recovered->recordCount() != 1) {
        std::fprintf(stderr,
                     "torn-tail recovery kept %zu records, expected 1\n",
                     recovered->recordCount());
        return 1;
    }
    return 0;
}

/** Injected fsync failure under Interval: counted, survived. */
int
probeFsyncFailure(const std::string &dir)
{
    ArchiveOptions opt;
    opt.shardCount = 1;
    opt.syncPolicy = SyncPolicy::Interval;
    opt.syncIntervalBytes = 1; // sync on every append
    ArchiveOpenError err;
    auto archive = Archive::open(dir, opt, &err);
    if (!archive) {
        std::fprintf(stderr, "fsync probe open failed: %s\n",
                     err.detail.c_str());
        return 1;
    }
    failpoint::Schedule s;
    s.trigger = failpoint::Trigger::Always;
    failpoint::arm("archive.io.sync.error", s);
    append(*archive, 2, 3.0, 13);
    failpoint::disarmAll();
    // The record itself must be intact despite the failed sync.
    if (archive->chain(2, 0).size() != 1) {
        std::fprintf(stderr, "append lost under failed fsync\n");
        return 1;
    }
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string metricsPath;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc)
            metricsPath = argv[++i];
    }

    telemetry::setMetricsEnabled(true);
    std::string dir = std::filesystem::temp_directory_path() /
                      "earthplus_chaos_probe.epar";
    std::filesystem::remove_all(dir);

    int rc = probeTornTail(dir);
    if (rc == 0)
        rc = probeFsyncFailure(dir);
    std::filesystem::remove_all(dir);

    if (!metricsPath.empty()) {
        std::ofstream f(metricsPath);
        f << telemetry::snapshotJson();
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n",
                         metricsPath.c_str());
            return 1;
        }
    }
    if (rc == 0)
        std::printf("chaos probe ok\n");
    return rc;
}
