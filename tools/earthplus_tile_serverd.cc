/**
 * @file
 * earthplus_tile_serverd — the standalone EPT serving daemon.
 *
 * Opens (or synthesizes) an archive, wraps it in a ground::TileServer,
 * and fronts it with a net::Server speaking the EPTQ/EPTR protocol
 * (docs/ARCHITECTURE.md). Runs until SIGINT/SIGTERM, then drains and
 * exits cleanly.
 *
 * `--selftest` replaces the serve loop with a loopback round trip
 * against an in-memory synthetic archive — the CI smoke test that the
 * daemon can bind, handshake, serve pixels over the wire, and shut
 * down without leaks.
 */

#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "codec/codec.hh"
#include "ground/archive.hh"
#include "ground/tile_server.hh"
#include "net/client.hh"
#include "net/protocol.hh"
#include "net/server.hh"
#include "util/rng.hh"

using namespace earthplus;

namespace {

std::atomic<bool> gStop{false};

void
onSignal(int)
{
    gStop.store(true);
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --archive DIR        sharded archive to serve (default: "
        "in-memory synthetic)\n"
        "  --port N             TCP port (default 7455; 0 = ephemeral)\n"
        "  --cache-mb N         decoded-tile cache budget (default 64)\n"
        "  --max-connections N  concurrent connections (default 256)\n"
        "  --max-pending N      admission queue depth (default 128)\n"
        "  --retry-after-ms N   shed retry hint (default 50)\n"
        "  --drain-ms N         graceful-drain bound on shutdown "
        "(default 1000; 0 = immediate)\n"
        "  --sync MODE          archive durability: none, interval, "
        "always (default none)\n"
        "  --poll               force the poll() backend over epoll\n"
        "  --selftest           loopback round trip, then exit\n",
        argv0);
}

/** Synthetic archive content when no --archive is given. */
void
buildSynthetic(ground::Archive &archive)
{
    raster::Plane base(256, 256);
    Rng rng(1234);
    for (int y = 0; y < base.height(); ++y)
        for (int x = 0; x < base.width(); ++x)
            base.at(x, y) =
                0.5f + 0.3f * std::sin(x * 0.04f) * std::cos(y * 0.06f) +
                static_cast<float>(rng.normal(0.0, 0.01));
    base.clampTo(0.0f, 1.0f);
    codec::EncodeParams ep;
    ep.bitsPerPixel = 4.0;
    ep.tileSize = 64;
    ground::RecordMeta meta;
    meta.locationId = 1;
    meta.band = 0;
    meta.captureDay = 1.0;
    meta.fullDownload = true;
    archive.append(meta, codec::encode(base, ep).serialize());
}

/** The --selftest loopback round trip. 0 on success. */
int
selftest(ground::TileServer &tiles, net::Server &server)
{
    net::TileClient client;
    if (!client.connect("127.0.0.1", server.port())) {
        std::fprintf(stderr, "selftest: connect failed\n");
        return 1;
    }
    ground::TileQuery q;
    q.locationId = 1;
    q.day = 1.5;
    q.width = 256;
    q.height = 256;
    ground::TileResult remote;
    if (!client.query(q, remote) || !remote.ok()) {
        std::fprintf(stderr, "selftest: query failed (%s)\n",
                     ground::serveErrorName(remote.error));
        return 1;
    }
    ground::TileResult local = tiles.serve(q);
    if (remote.pixels.data() != local.pixels.data()) {
        std::fprintf(stderr, "selftest: wire pixels != local pixels\n");
        return 1;
    }
    std::printf("selftest ok: %dx%d px over loopback port %u\n",
                remote.pixels.width(), remote.pixels.height(),
                static_cast<unsigned>(server.port()));
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string archivePath;
    net::ServerOptions options;
    ground::ArchiveOptions archiveOptions;
    options.port = 7455;
    size_t cacheMb = 64;
    bool runSelftest = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto intArg = [&](long &out) {
            if (i + 1 >= argc)
                return false;
            out = std::strtol(argv[++i], nullptr, 10);
            return true;
        };
        long v = 0;
        if (arg == "--archive" && i + 1 < argc) {
            archivePath = argv[++i];
        } else if (arg == "--port" && intArg(v)) {
            options.port = static_cast<uint16_t>(v);
        } else if (arg == "--cache-mb" && intArg(v)) {
            cacheMb = static_cast<size_t>(v);
        } else if (arg == "--max-connections" && intArg(v)) {
            options.maxConnections = static_cast<size_t>(v);
        } else if (arg == "--max-pending" && intArg(v)) {
            options.maxPending = static_cast<size_t>(v);
        } else if (arg == "--retry-after-ms" && intArg(v)) {
            options.retryAfterMs = static_cast<uint32_t>(v);
        } else if (arg == "--drain-ms" && intArg(v)) {
            options.drainTimeoutMs = static_cast<uint32_t>(v);
        } else if (arg == "--sync" && i + 1 < argc) {
            std::string mode = argv[++i];
            if (mode == "none") {
                archiveOptions.syncPolicy = ground::SyncPolicy::None;
            } else if (mode == "interval") {
                archiveOptions.syncPolicy =
                    ground::SyncPolicy::Interval;
            } else if (mode == "always") {
                archiveOptions.syncPolicy = ground::SyncPolicy::Always;
            } else {
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--poll") {
            options.usePoll = true;
        } else if (arg == "--selftest") {
            runSelftest = true;
            options.port = 0; // never collide with a running daemon
        } else {
            usage(argv[0]);
            return arg == "--help" ? 0 : 2;
        }
    }

    // Open through the typed-error factory so a bad archive is an
    // orderly nonzero exit, not an abort.
    ground::ArchiveOpenError openError;
    auto archivePtr =
        ground::Archive::open(archivePath, archiveOptions, &openError);
    if (!archivePtr) {
        std::fprintf(stderr, "failed to open archive '%s': %s\n",
                     archivePath.c_str(), openError.detail.c_str());
        return 1;
    }
    ground::Archive &archive = *archivePtr;
    if (archivePath.empty())
        buildSynthetic(archive);
    else if (archive.recordCount() == 0)
        std::fprintf(stderr, "warning: archive '%s' is empty\n",
                     archivePath.c_str());

    ground::TileServer tiles(archive, cacheMb << 20);
    net::Server server(tiles, options);
    if (!server.start()) {
        std::fprintf(stderr, "failed to bind %s:%u\n",
                     options.bindAddress.c_str(),
                     static_cast<unsigned>(options.port));
        return 1;
    }

    if (runSelftest) {
        int rc = selftest(tiles, server);
        server.stop();
        return rc;
    }

    // sigaction over std::signal: no SA_RESTART, so the sleep below
    // wakes promptly, and the disposition is reliably process-wide
    // even with the serving threads already running.
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
    std::printf("earthplus_tile_serverd: serving %s on %s:%u "
                "(%zu records)\n",
                archivePath.empty() ? "<synthetic>" : archivePath.c_str(),
                options.bindAddress.c_str(),
                static_cast<unsigned>(server.port()),
                archive.recordCount());
    while (!gStop.load() && server.running())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    server.stop();
    std::printf("earthplus_tile_serverd: stopped\n");
    return 0;
}
