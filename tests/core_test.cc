/**
 * @file
 * Tests for the core state machinery: reference store, on-board cache,
 * uplink planner and the Doves spec.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/doves_spec.hh"
#include "core/onboard_cache.hh"
#include "core/reference_store.hh"
#include "core/uplink_planner.hh"
#include "raster/resample.hh"
#include "util/rng.hh"

using namespace earthplus;
using namespace earthplus::core;

namespace {

raster::Image
makeImage(int loc, double day, float fill, int size = 128, int bands = 2)
{
    raster::Image img(size, size, bands);
    for (int b = 0; b < bands; ++b)
        img.band(b).fill(fill);
    img.info().locationId = loc;
    img.info().captureDay = day;
    return img;
}

raster::Image
texturedImage(int loc, double day, uint64_t seed, int size = 128,
              int bands = 2)
{
    raster::Image img(size, size, bands);
    Rng rng(seed);
    for (int b = 0; b < bands; ++b)
        for (auto &v : img.band(b).data())
            v = static_cast<float>(rng.uniform(0.2, 0.8));
    img.info().locationId = loc;
    img.info().captureDay = day;
    return img;
}

} // namespace

TEST(DovesSpecTest, Table1Constants)
{
    DovesSpec spec = dovesSpec();
    EXPECT_DOUBLE_EQ(spec.uplink.bitsPerSecond, 250e3);
    EXPECT_DOUBLE_EQ(spec.downlink.bitsPerSecond, 200e6);
    EXPECT_EQ(spec.contactsPerDay, 7);
    EXPECT_DOUBLE_EQ(spec.onboardStorageGB, 360.0);
    EXPECT_EQ(spec.imageWidth, 6600);
    EXPECT_EQ(spec.imageHeight, 4400);
    EXPECT_DOUBLE_EQ(spec.rawImageMB, 150.0);
    EXPECT_DOUBLE_EQ(spec.gsdMeters, 3.7);

    std::ostringstream os;
    printSpecTable(spec, os);
    EXPECT_NE(os.str().find("250 kbps"), std::string::npos);
    EXPECT_NE(os.str().find("360 GB"), std::string::npos);
}

TEST(ReferenceStoreTest, AcceptsOnlyCloudFreeAndFresher)
{
    ReferenceStore store(0.01);
    EXPECT_FALSE(store.has(0));
    EXPECT_TRUE(std::isinf(store.ageAt(0, 100.0)));

    EXPECT_FALSE(store.offer(makeImage(0, 10.0, 0.5f), 0.3)); // cloudy
    EXPECT_FALSE(store.has(0));

    EXPECT_TRUE(store.offer(makeImage(0, 10.0, 0.5f), 0.005));
    ASSERT_TRUE(store.has(0));
    EXPECT_DOUBLE_EQ(store.referenceDay(0), 10.0);
    EXPECT_DOUBLE_EQ(store.ageAt(0, 14.0), 4.0);

    // Older image does not replace a fresher reference.
    EXPECT_FALSE(store.offer(makeImage(0, 8.0, 0.1f), 0.0));
    EXPECT_DOUBLE_EQ(store.referenceDay(0), 10.0);

    // Fresher image does.
    EXPECT_TRUE(store.offer(makeImage(0, 20.0, 0.7f), 0.0));
    EXPECT_DOUBLE_EQ(store.referenceDay(0), 20.0);
    EXPECT_FLOAT_EQ(store.reference(0).band(0).at(0, 0), 0.7f);

    // Locations are independent.
    EXPECT_TRUE(store.offer(makeImage(1, 5.0, 0.2f), 0.0));
    EXPECT_EQ(store.size(), 2u);
}

TEST(OnboardCacheTest, InstallAndDeltaUpdate)
{
    OnboardCache cache(16);
    EXPECT_FALSE(cache.has(0));

    // Low-res image: 8x8 pixels (128 / 16), tiles of 4 low-res px.
    raster::Image low(8, 8, 1);
    low.band(0).fill(0.3f);
    low.info().locationId = 0;
    low.info().captureDay = 5.0;
    cache.install(0, low);
    ASSERT_TRUE(cache.has(0));
    EXPECT_DOUBLE_EQ(cache.referenceDay(0), 5.0);
    EXPECT_EQ(cache.storageBytes(), 8u * 8u * sizeof(float));

    // Delta update: change only tile 0 (top-left 4x4 low-res block).
    raster::Image low2(8, 8, 1);
    low2.band(0).fill(0.9f);
    low2.info().locationId = 0;
    low2.info().captureDay = 9.0;
    raster::TileMask tiles(2, 2, false);
    tiles.set(0, true);
    cache.updateTiles(0, low2, tiles, 4);

    const raster::Image &ref = cache.reference(0);
    EXPECT_FLOAT_EQ(ref.band(0).at(0, 0), 0.9f); // updated tile
    EXPECT_FLOAT_EQ(ref.band(0).at(7, 7), 0.3f); // untouched tile
    EXPECT_DOUBLE_EQ(cache.referenceDay(0), 9.0);
}

TEST(UplinkPlannerTest, InstallThenNoopThenDelta)
{
    ReferenceStore ground(0.01);
    OnboardCache cache(16);
    UplinkPlanner::Params pp;
    pp.downsampleFactor = 16;
    UplinkPlanner planner(pp);
    orbit::DailyByteBudget budget(1e9);

    // Nothing on the ground yet: no plan.
    UplinkPlan p0 = planner.planUpdate(ground, cache, 0, budget);
    EXPECT_FALSE(p0.sent);

    // First ground reference: full install.
    raster::Image ref1 = texturedImage(0, 10.0, 1);
    ASSERT_TRUE(ground.offer(ref1, 0.0));
    UplinkPlan p1 = planner.planUpdate(ground, cache, 0, budget);
    EXPECT_TRUE(p1.sent);
    EXPECT_TRUE(p1.fullInstall);
    EXPECT_GT(p1.bytes, 0.0);
    EXPECT_GT(p1.compressionRatio, 1.0);
    ASSERT_TRUE(cache.has(0));

    // Same reference again: cache is fresh, nothing to send.
    UplinkPlan p2 = planner.planUpdate(ground, cache, 0, budget);
    EXPECT_FALSE(p2.sent);

    // New ground reference with one modified tile region: delta
    // update, much cheaper than the install.
    raster::Image ref2 = ref1;
    ref2.info().captureDay = 20.0;
    for (int y = 0; y < 64; ++y)
        for (int x = 0; x < 64; ++x)
            ref2.band(0).at(x, y) =
                std::min(1.0f, ref2.band(0).at(x, y) + 0.3f);
    ASSERT_TRUE(ground.offer(ref2, 0.0));
    UplinkPlan p3 = planner.planUpdate(ground, cache, 0, budget);
    EXPECT_TRUE(p3.sent);
    EXPECT_FALSE(p3.fullInstall);
    EXPECT_GT(p3.bytes, 0.0);
    EXPECT_LT(p3.bytes, p1.bytes);
    EXPECT_NEAR(p3.updatedTileFraction, 0.25, 0.01);
    EXPECT_DOUBLE_EQ(cache.referenceDay(0), 20.0);
}

TEST(UplinkPlannerTest, BudgetExhaustionSkipsUpdate)
{
    ReferenceStore ground(0.01);
    OnboardCache cache(16);
    UplinkPlanner planner;
    orbit::DailyByteBudget tiny(8.0); // almost nothing

    ASSERT_TRUE(ground.offer(texturedImage(0, 10.0, 2), 0.0));
    UplinkPlan p = planner.planUpdate(ground, cache, 0, tiny);
    EXPECT_FALSE(p.sent);
    EXPECT_TRUE(p.skippedForBudget);
    EXPECT_FALSE(cache.has(0));

    // With budget restored the same update goes through.
    orbit::DailyByteBudget ample(1e9);
    UplinkPlan p2 = planner.planUpdate(ground, cache, 0, ample);
    EXPECT_TRUE(p2.sent);
}

TEST(UplinkPlannerTest, CompressionRatioReflectsDownsampling)
{
    // Raw reference is size^2 * bands * 4 bytes; a 16x-downsampled
    // codec-compressed upload should compress by far more than 16^2.
    ReferenceStore ground(0.01);
    OnboardCache cache(16);
    UplinkPlanner::Params pp;
    pp.downsampleFactor = 16;
    UplinkPlanner planner(pp);
    orbit::DailyByteBudget budget(1e9);
    ASSERT_TRUE(ground.offer(texturedImage(0, 10.0, 3, 256, 4), 0.0));
    UplinkPlan p = planner.planUpdate(ground, cache, 0, budget);
    ASSERT_TRUE(p.sent);
    EXPECT_GT(p.compressionRatio, 100.0);
}
