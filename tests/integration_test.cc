/**
 * @file
 * End-to-end integration tests: full LocationSimulation runs on shrunk
 * datasets, checking the paper's qualitative results hold through the
 * whole pipeline (capture -> uplink -> on-board -> downlink -> ground).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/simulation.hh"

using namespace earthplus;
using namespace earthplus::core;

namespace {

synth::DatasetSpec
smallPlanet(double days = 40.0)
{
    synth::DatasetSpec spec = synth::largeConstellationDataset(128, 128);
    // Summer-centric window: weather is seasonal and a winter slice
    // has too few processable captures for meaningful statistics.
    spec.startDay = 120.0;
    spec.endDay = 120.0 + days;
    return spec;
}

synth::DatasetSpec
smallSentinel(double days = 60.0)
{
    synth::DatasetSpec spec = synth::richContentDataset(128, 128);
    spec.startDay = 120.0;
    spec.endDay = 120.0 + days;
    // Keep the run quick: RGB only (band subsetting is supported).
    spec.bands = {spec.bands[1], spec.bands[2], spec.bands[3],
                  spec.bands[11]};
    return spec;
}

} // namespace

TEST(Integration, EarthPlusBeatsBaselinesOnDownlink)
{
    // Long enough that SatRoI's fixed reference ages materially.
    synth::DatasetSpec spec = smallPlanet(75.0);
    SimParams params;
    params.system.refDownsample = 16;

    SimSummary ep =
        LocationSimulation(spec, 0, SystemKind::EarthPlus, params).run();
    SimSummary kodan =
        LocationSimulation(spec, 0, SystemKind::Kodan, params).run();
    SimSummary satroi =
        LocationSimulation(spec, 0, SystemKind::SatRoI, params).run();
    SimSummary all =
        LocationSimulation(spec, 0, SystemKind::DownloadAll, params).run();

    ASSERT_GT(ep.processedCount, 5);
    ASSERT_EQ(ep.processedCount, kodan.processedCount);

    // The headline result: Earth+ uses materially less downlink than
    // both baselines and massively less than downloading everything.
    EXPECT_LT(ep.totalDownlinkBytes, 0.7 * kodan.totalDownlinkBytes);
    EXPECT_LT(ep.totalDownlinkBytes, all.totalDownlinkBytes * 0.5);
    EXPECT_LE(ep.totalDownlinkBytes, satroi.totalDownlinkBytes * 1.05);

    // ... without a quality collapse (same gamma everywhere).
    EXPECT_GT(ep.meanPsnr, 32.0); // absolute floor; see Fig. 11 note
    EXPECT_GT(ep.meanPsnr, 28.0);

    // Earth+ actually uses the uplink; baselines do not.
    EXPECT_GT(ep.totalUplinkBytes, 0.0);
    EXPECT_EQ(kodan.totalUplinkBytes, 0.0);
}

TEST(Integration, ConstellationKeepsReferencesFresh)
{
    // Constellation-wide sharing (many satellites) vs satellite-local
    // (a single satellite): the reference age gap of Fig. 5.
    synth::DatasetSpec constellation = smallPlanet(60.0);
    // Disable the Planet <5% dataset filter so the single-satellite
    // run has enough captures to compare.
    constellation.maxCloudCoverage = 1.0;
    SimParams params;

    SimSummary wide =
        LocationSimulation(constellation, 0, SystemKind::EarthPlus,
                           params).run();

    synth::DatasetSpec local = constellation;
    local.satelliteCount = 1;
    local.revisitDays = 10.0;
    SimSummary single =
        LocationSimulation(local, 0, SystemKind::EarthPlus, params).run();

    ASSERT_GT(wide.processedCount, 10);
    ASSERT_GT(single.processedCount, 1);
    EXPECT_LT(wide.meanReferenceAgeDays, single.meanReferenceAgeDays);
    // Constellation-wide references stay a handful of days old.
    EXPECT_LT(wide.meanReferenceAgeDays, 10.0);
}

TEST(Integration, SatRoIReferenceAgesGrowUnbounded)
{
    synth::DatasetSpec spec = smallPlanet(60.0);
    SimParams params;
    // Disable guaranteed downloads to watch pure reference aging.
    params.system.guaranteedPeriodDays = 1e9;
    SimSummary ep =
        LocationSimulation(spec, 0, SystemKind::EarthPlus, params).run();
    SimSummary sr =
        LocationSimulation(spec, 0, SystemKind::SatRoI, params).run();
    ASSERT_GT(sr.processedCount, 5);
    EXPECT_GT(sr.meanReferenceAgeDays, 2.0 * ep.meanReferenceAgeDays);
}

TEST(Integration, UplinkBudgetShortageDegradesGracefully)
{
    synth::DatasetSpec spec = smallPlanet(50.0);
    SimParams ample;
    SimParams tight;
    tight.uplinkBytesPerDay = 200.0; // far below one reference update

    SimSummary a =
        LocationSimulation(spec, 0, SystemKind::EarthPlus, ample).run();
    SimSummary t =
        LocationSimulation(spec, 0, SystemKind::EarthPlus, tight).run();

    ASSERT_EQ(a.captures.size(), t.captures.size());
    // Starved uplink -> no reference updates get through -> older (or
    // absent) references -> at least as much downlink.
    EXPECT_LT(t.totalUplinkBytes, a.totalUplinkBytes);
    EXPECT_GE(t.totalDownlinkBytes, a.totalDownlinkBytes);
}

TEST(Integration, GuaranteedDownloadsHappenMonthly)
{
    synth::DatasetSpec spec = smallPlanet(75.0);
    SimParams params;
    SimSummary s =
        LocationSimulation(spec, 0, SystemKind::EarthPlus, params).run();
    // 75 days with a 30-day period: bootstrap + at least one periodic
    // guaranteed download.
    EXPECT_GE(s.fullDownloadCount, 2);
    // And they are a small minority of captures.
    EXPECT_LT(s.fullDownloadCount, s.processedCount / 2 + 2);
}

TEST(Integration, RichContentDatasetRuns)
{
    synth::DatasetSpec spec = smallSentinel(40.0);
    SimParams params;
    params.maxCaptures = 10;
    SimSummary ep =
        LocationSimulation(spec, 0, SystemKind::EarthPlus, params).run();
    SimSummary kd =
        LocationSimulation(spec, 0, SystemKind::Kodan, params).run();
    // Sentinel keeps cloudy captures in the dataset, so drops occur.
    EXPECT_GT(ep.captures.size(), 0u);
    EXPECT_GT(ep.meanPsnr, 24.0);
    EXPECT_GT(kd.meanPsnr, 22.0);
}

TEST(Integration, SnowyLocationBenefitsLess)
{
    // Fig. 14: snowy location H barely improves over the baseline
    // because snow albedo keeps changing. Compare downloaded-tile
    // fractions of Earth+ between a snowy and a non-snowy location in
    // winter.
    synth::DatasetSpec spec = synth::richContentDataset(128, 128);
    spec.bands = {spec.bands[1], spec.bands[2], spec.bands[3],
                  spec.bands[11]};
    spec.startDay = 330.0; // winter
    spec.endDay = 365.0;
    SimParams params;
    params.system.guaranteedPeriodDays = 1e9;

    // Location B: forest (non-snowy); location H: snowy mountains.
    SimSummary forest =
        LocationSimulation(spec, 1, SystemKind::EarthPlus, params).run();
    SimSummary snowy =
        LocationSimulation(spec, 7, SystemKind::EarthPlus, params).run();
    if (forest.processedCount < 2 || snowy.processedCount < 2)
        GTEST_SKIP() << "not enough clear winter captures";
    EXPECT_GT(snowy.meanDownloadedFraction,
              forest.meanDownloadedFraction);
}

TEST(Integration, MetricsAreInternallyConsistent)
{
    synth::DatasetSpec spec = smallPlanet(30.0);
    SimParams params;
    SimSummary s =
        LocationSimulation(spec, 0, SystemKind::EarthPlus, params).run();
    double bytes = 0.0;
    int processed = 0, dropped = 0;
    for (const auto &c : s.captures) {
        if (c.dropped) {
            ++dropped;
            EXPECT_EQ(c.downlinkBytes, 0u);
            continue;
        }
        ++processed;
        bytes += static_cast<double>(c.downlinkBytes);
        EXPECT_GE(c.psnr, 0.0);
        EXPECT_GE(c.downloadedTileFraction, 0.0);
        EXPECT_LE(c.downloadedTileFraction, 1.0);
    }
    EXPECT_EQ(processed, s.processedCount);
    EXPECT_EQ(dropped, s.droppedCount);
    EXPECT_DOUBLE_EQ(bytes, s.totalDownlinkBytes);
    EXPECT_GT(s.requiredDownlinkMbps(600.0), 0.0);
    EXPECT_NEAR(s.requiredDownlinkMbps(600.0, 2.0),
                2.0 * s.requiredDownlinkMbps(600.0), 1e-9);
}
