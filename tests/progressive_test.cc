/**
 * @file
 * Property tests for the progressive (EPC4) stream format: truncation
 * points, best-effort prefix decode, budget-cut rate control and
 * bit-exactness against the non-progressive (EPC3) coder.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "codec/codec.hh"
#include "raster/metrics.hh"
#include "util/parallel.hh"
#include "util/rng.hh"

using namespace earthplus;
using namespace earthplus::codec;

namespace {

/** Natural-image-like test content: smooth structure + mild noise. */
raster::Plane
testImage(int w, int h, uint64_t seed)
{
    raster::Plane p(w, h);
    Rng rng(seed);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            p.at(x, y) = 0.5f +
                         0.3f * std::sin(x * 0.045f) *
                             std::cos(y * 0.06f) +
                         0.1f * std::sin((x + y) * 0.15f) +
                         static_cast<float>(rng.normal(0.0, 0.01));
    p.clampTo(0.0f, 1.0f);
    return p;
}

/** Hard content: step edges + texture, stresses many bitplanes. */
raster::Plane
edgyImage(int w, int h, uint64_t seed)
{
    raster::Plane p(w, h);
    Rng rng(seed);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) {
            float v = ((x / 17 + y / 23) & 1) ? 0.85f : 0.15f;
            v += 0.08f * std::sin(x * 0.9f) * std::sin(y * 0.7f);
            v += static_cast<float>(rng.normal(0.0, 0.02));
            p.at(x, y) = v;
        }
    p.clampTo(0.0f, 1.0f);
    return p;
}

/** Decode a (possibly truncated) serialized stream; fatal on reject. */
raster::Plane
decodeBytes(const std::vector<uint8_t> &bytes)
{
    EncodedImage e;
    StreamError err = EncodedImage::tryDeserialize(bytes.data(),
                                                   bytes.size(), e);
    EXPECT_EQ(err, StreamError::None);
    return decode(e);
}

} // namespace

struct ProgressiveCase
{
    bool lossless;
    int layers;
    int chunkRows;
    bool edgy;
};

class Progressive : public ::testing::TestWithParam<ProgressiveCase>
{
};

/**
 * The heart of the format contract: decoding at every recorded
 * truncation point never crashes, quality (PSNR against the source)
 * is monotone non-decreasing in prefix length, and the full-length
 * progressive decode is bit-exact with the EPC3 decode of the same
 * input under the same parameters.
 */
TEST_P(Progressive, EveryTruncationPointDecodesMonotonically)
{
    const ProgressiveCase c = GetParam();
    raster::Plane img = c.edgy ? edgyImage(150, 110, 91)
                               : testImage(150, 110, 90);
    if (c.lossless)
        for (auto &v : img.data())
            v = std::round(v * 255.0f) / 255.0f;

    EncodeParams p;
    p.tileSize = 96;
    p.layers = c.layers;
    p.chunkRows = c.chunkRows;
    p.lossless = c.lossless;
    if (c.lossless)
        p.wavelet = Wavelet::LeGall53;
    else
        p.bitsPerPixel = 1.5;

    std::vector<uint8_t> v4 = encode(img, p).serialize();
    ASSERT_EQ(std::memcmp(v4.data(), "EPC4", 4), 0);

    p.progressive = false;
    raster::Plane v3dec = decode(encode(img, p));

    std::vector<size_t> points = truncationPoints(v4);
    ASSERT_GE(points.size(), 2u);
    EXPECT_EQ(points.front(), streamHeaderFloor(v4));
    EXPECT_EQ(points.back(), v4.size());
    EXPECT_TRUE(std::is_sorted(points.begin(), points.end()));
    EXPECT_EQ(std::adjacent_find(points.begin(), points.end()),
              points.end());

    // Decoding at every recorded point is expensive at full density;
    // always take the floor, the full length, and an even spread.
    std::vector<size_t> cuts;
    size_t step = std::max<size_t>(1, points.size() / 48);
    for (size_t i = 0; i < points.size(); i += step)
        cuts.push_back(points[i]);
    if (cuts.back() != points.back())
        cuts.push_back(points.back());

    double lastPsnr = -1.0;
    for (size_t cut : cuts) {
        std::vector<uint8_t> prefix(v4.begin(),
                                    v4.begin() +
                                        static_cast<ptrdiff_t>(cut));
        EncodedImage e;
        ASSERT_EQ(EncodedImage::tryDeserialize(prefix.data(),
                                               prefix.size(), e),
                  StreamError::None)
            << "cut at " << cut;
        EXPECT_EQ(e.truncated, cut != v4.size());
        raster::Plane dec = decode(e);
        double q = raster::psnr(img, dec);
        // Small slack: a cut mid-pass can move individual coefficients
        // either way before the pass completes.
        EXPECT_GE(q, lastPsnr - 0.05)
            << "cut at " << cut << " of " << v4.size();
        lastPsnr = std::max(lastPsnr, q);
        if (cut == v4.size()) {
            // Untruncated EPC4 must reconstruct bit-exactly what EPC3
            // reconstructs: the shadow coder reproduces its rate
            // decisions, so the decoded pixels are identical.
            ASSERT_EQ(dec.data().size(), v3dec.data().size());
            EXPECT_EQ(std::memcmp(dec.data().data(),
                                  v3dec.data().data(),
                                  dec.data().size() * sizeof(float)),
                      0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Progressive,
    ::testing::Values(ProgressiveCase{false, 1, 32, false},
                      ProgressiveCase{false, 3, 32, false},
                      ProgressiveCase{false, 3, 32, true},
                      ProgressiveCase{false, 5, 16, false},
                      ProgressiveCase{true, 1, 32, false},
                      ProgressiveCase{true, 3, 48, true}));

/**
 * truncateStream() honors any byte budget from the header floor to
 * beyond the full length, and its result always parses.
 */
TEST(Progressive, TruncateStreamHonorsEveryBudget)
{
    raster::Plane img = testImage(200, 140, 7);
    EncodeParams p;
    p.tileSize = 96;
    p.layers = 3;
    p.bitsPerPixel = 1.0;
    std::vector<uint8_t> v4 = encode(img, p).serialize();

    size_t floor = streamHeaderFloor(v4);
    size_t step = std::max<size_t>(1, (v4.size() - floor) / 97);
    for (size_t budget = floor; budget <= v4.size() + 64;
         budget += step) {
        std::vector<uint8_t> cut = truncateStream(v4, budget);
        ASSERT_LE(cut.size(), budget) << "budget " << budget;
        EncodedImage e;
        ASSERT_EQ(EncodedImage::tryDeserialize(cut.data(), cut.size(),
                                               e),
                  StreamError::None)
            << "budget " << budget;
    }
    // Budgets at or past the full length return the stream unchanged.
    EXPECT_EQ(truncateStream(v4, v4.size()), v4);
    EXPECT_EQ(truncateStream(v4, v4.size() * 2), v4);
    // The largest recorded point <= budget is taken, not just any.
    std::vector<size_t> points = truncationPoints(v4);
    for (size_t i = 1; i + 1 < points.size(); i += points.size() / 7) {
        std::vector<uint8_t> cut = truncateStream(v4, points[i]);
        EXPECT_EQ(cut.size(), points[i]);
    }
}

/**
 * Fuzz leg: cuts at unrecorded offsets must come back as a typed
 * Truncated error — never UB, never a crash, never acceptance. Runs
 * under ASan/TSan in CI.
 */
TEST(Progressive, UnrecordedCutsAreTypedErrors)
{
    raster::Plane img = testImage(170, 130, 8);
    EncodeParams p;
    p.tileSize = 96;
    p.layers = 2;
    p.bitsPerPixel = 1.2;
    std::vector<uint8_t> v4 = encode(img, p).serialize();

    std::vector<size_t> pts = truncationPoints(v4);
    std::vector<uint8_t> recorded(v4.size() + 1, 0);
    for (size_t pt : pts)
        recorded[pt] = 1;

    size_t floor = pts.front();
    // ci/check.sh chaos sweeps EARTHPLUS_CHAOS_SEED so each seed
    // fuzzes a different set of unrecorded offsets.
    const char *env = std::getenv("EARTHPLUS_CHAOS_SEED");
    Rng rng(4242 + (env ? std::strtoull(env, nullptr, 10) : 0ULL));
    int tested = 0;
    for (int i = 0; i < 1000; ++i) {
        size_t cut = static_cast<size_t>(rng.uniformInt(
            static_cast<int64_t>(floor),
            static_cast<int64_t>(v4.size()) - 1));
        std::vector<uint8_t> prefix(v4.begin(),
                                    v4.begin() +
                                        static_cast<ptrdiff_t>(cut));
        EncodedImage e;
        std::string msg;
        StreamError err = EncodedImage::tryDeserialize(
            prefix.data(), prefix.size(), e, &msg);
        if (recorded[cut]) {
            EXPECT_EQ(err, StreamError::None) << "cut at " << cut;
        } else {
            ++tested;
            EXPECT_EQ(err, StreamError::Truncated)
                << "cut at " << cut << ": " << msg;
            EXPECT_FALSE(msg.empty());
        }
    }
    // The stream is dense with recorded points but unrecorded offsets
    // must dominate a uniform draw.
    EXPECT_GT(tested, 200);

    // Below the floor every version dies the same typed way.
    for (size_t cut : {size_t(0), size_t(3), floor - 1}) {
        std::vector<uint8_t> prefix(v4.begin(),
                                    v4.begin() +
                                        static_cast<ptrdiff_t>(cut));
        EncodedImage e;
        StreamError err = EncodedImage::tryDeserialize(
            prefix.data(), prefix.size(), e);
        EXPECT_NE(err, StreamError::None) << "cut at " << cut;
    }
}

/** Partial streams decode tiles independently, same as full ones. */
TEST(Progressive, TruncatedStreamsServeTileQueries)
{
    raster::Plane img = testImage(200, 200, 9);
    EncodeParams p;
    p.tileSize = 96;
    p.layers = 3;
    p.bitsPerPixel = 1.5;
    std::vector<uint8_t> v4 = encode(img, p).serialize();

    std::vector<uint8_t> half = truncateStream(v4, v4.size() / 2);
    EncodedImage e;
    ASSERT_EQ(EncodedImage::tryDeserialize(half.data(), half.size(), e),
              StreamError::None);
    raster::Plane whole = decode(e);
    std::vector<raster::Plane> tiles = decodeTiles(e, {0, 2});
    ASSERT_EQ(tiles.size(), 2u);
    // Tile decode of the truncated stream matches the corresponding
    // region of the whole-plane decode of the same truncated stream.
    EXPECT_EQ(tiles[0].at(10, 10), whole.at(10, 10));
    EXPECT_EQ(tiles[1].at(5, 5), whole.at(2 * 96 + 5, 5));
}

/** A truncated image refuses to re-serialize (no silent data loss). */
TEST(ProgressiveDeath, TruncatedImagesCannotReserialize)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    raster::Plane img = testImage(96, 96, 10);
    EncodeParams p;
    p.tileSize = 96;
    std::vector<uint8_t> v4 = encode(img, p).serialize();
    std::vector<size_t> pts = truncationPoints(v4);
    ASSERT_GE(pts.size(), 3u);
    size_t cut = pts[pts.size() / 2];
    std::vector<uint8_t> prefix(v4.begin(),
                                v4.begin() +
                                    static_cast<ptrdiff_t>(cut));
    EncodedImage e;
    ASSERT_EQ(EncodedImage::tryDeserialize(prefix.data(), prefix.size(),
                                           e),
              StreamError::None);
    ASSERT_TRUE(e.truncated);
    EXPECT_EXIT(e.serialize(), ::testing::KilledBySignal(SIGABRT),
                "truncated");
    EXPECT_EXIT(truncateStream(v4, streamHeaderFloor(v4) - 1),
                ::testing::KilledBySignal(SIGABRT), "floor");
}

/** Non-progressive streams have no truncation points to offer. */
TEST(ProgressiveDeath, NonProgressiveStreamsRejectTruncation)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    raster::Plane img = testImage(96, 96, 11);
    EncodeParams p;
    p.tileSize = 96;
    p.progressive = false;
    std::vector<uint8_t> v3 = encode(img, p).serialize();
    EXPECT_EXIT(truncationPoints(v3), ::testing::ExitedWithCode(1),
                "not progressive");
    EXPECT_EXIT(truncateStream(v3, v3.size() / 2),
                ::testing::ExitedWithCode(1), "not progressive");
}

/**
 * Concurrency: truncation and prefix decode are pure functions over
 * const bytes — many threads cutting and decoding the same stream at
 * different budgets must race nowhere (TSan suite runs this).
 */
TEST(Progressive, ConcurrentTruncateAndDecode)
{
    raster::Plane img = testImage(200, 140, 12);
    EncodeParams p;
    p.tileSize = 96;
    p.layers = 3;
    p.bitsPerPixel = 1.0;
    const std::vector<uint8_t> v4 = encode(img, p).serialize();
    const size_t floor = streamHeaderFloor(v4);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&, t] {
            Rng rng(1000 + t);
            for (int i = 0; i < 8; ++i) {
                size_t budget = static_cast<size_t>(rng.uniformInt(
                    static_cast<int64_t>(floor),
                    static_cast<int64_t>(v4.size())));
                std::vector<uint8_t> cut = truncateStream(v4, budget);
                ASSERT_LE(cut.size(), budget);
                EncodedImage e;
                ASSERT_EQ(EncodedImage::tryDeserialize(cut.data(),
                                                       cut.size(), e),
                          StreamError::None);
                raster::Plane dec = decode(e);
                ASSERT_EQ(dec.width(), img.width());
            }
        });
    for (auto &th : threads)
        th.join();
}
