/**
 * @file
 * Unit tests for the deterministic fault-injection layer: failpoint
 * schedules, the EARTHPLUS_FAULTS spec grammar, hit/fire accounting,
 * and the injectable archive I/O primitives built on top of it
 * (short writes, injected errors, EINTR stalls, and the crash latch
 * with its torn-write prefix).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "ground/archive_io.hh"
#include "util/failpoint.hh"

using namespace earthplus;
using failpoint::Schedule;
using failpoint::Trigger;

namespace {

/** Temp file path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
        std::filesystem::remove(path_);
    }

    ~TempFile() { std::filesystem::remove(path_); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/** Disarms every failpoint on scope exit so tests can't leak state. */
struct DisarmGuard
{
    ~DisarmGuard()
    {
        failpoint::disarmAll();
        ground::archive_io::resetCrashLatch();
    }
};

/** Read a file fully; empty on open failure. */
std::vector<uint8_t>
slurp(const std::string &path)
{
    std::vector<uint8_t> out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.insert(out.end(), buf, buf + n);
    std::fclose(f);
    return out;
}

Schedule
always()
{
    Schedule s;
    s.trigger = Trigger::Always;
    return s;
}

} // anonymous namespace

TEST(Failpoint, DisarmedNeverFires)
{
    DisarmGuard guard;
    auto &fp = failpoint::site("test.disarmed");
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(fp.fire());
    // The disabled fast path deliberately does not count hits.
    EXPECT_EQ(fp.hitCount(), 0u);
}

TEST(Failpoint, AlwaysFiresEveryHit)
{
    DisarmGuard guard;
    failpoint::arm("test.always", always());
    auto &fp = failpoint::site("test.always");
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(fp.fire());
    EXPECT_EQ(fp.fireCount(), 10u);
    EXPECT_EQ(fp.hitCount(), 10u);
}

TEST(Failpoint, NthHitFiresExactlyOnce)
{
    DisarmGuard guard;
    Schedule s;
    s.trigger = Trigger::NthHit;
    s.n = 4;
    failpoint::arm("test.nth", s);
    auto &fp = failpoint::site("test.nth");
    std::vector<bool> fired;
    for (int i = 0; i < 10; ++i)
        fired.push_back(fp.fire());
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(fired[i], i == 3) << "hit " << i + 1;
    // Re-arming resets the sequence: hit 4 of the new arming fires.
    failpoint::arm("test.nth", s);
    EXPECT_FALSE(fp.fire());
    EXPECT_FALSE(fp.fire());
    EXPECT_FALSE(fp.fire());
    EXPECT_TRUE(fp.fire());
}

TEST(Failpoint, EveryKthFiresPeriodically)
{
    DisarmGuard guard;
    Schedule s;
    s.trigger = Trigger::EveryKth;
    s.n = 3;
    failpoint::arm("test.every", s);
    auto &fp = failpoint::site("test.every");
    int fires = 0;
    for (int i = 1; i <= 12; ++i) {
        bool f = fp.fire();
        EXPECT_EQ(f, i % 3 == 0) << "hit " << i;
        fires += f;
    }
    EXPECT_EQ(fires, 4);
}

TEST(Failpoint, ProbabilityIsDeterministicPerSeed)
{
    DisarmGuard guard;
    Schedule s;
    s.trigger = Trigger::Probability;
    s.probability = 0.3;
    s.seed = 42;
    auto sequence = [&](uint64_t seed) {
        s.seed = seed;
        failpoint::arm("test.prob", s);
        auto &fp = failpoint::site("test.prob");
        std::vector<bool> out;
        for (int i = 0; i < 200; ++i)
            out.push_back(fp.fire());
        return out;
    };
    auto a = sequence(42);
    auto b = sequence(42);
    EXPECT_EQ(a, b) << "same seed must replay the same fire pattern";
    auto c = sequence(43);
    EXPECT_NE(a, c) << "different seeds should diverge";
    // The rate should be in the right ballpark (0.3 +/- a wide net).
    int fires = 0;
    for (bool f : a)
        fires += f;
    EXPECT_GT(fires, 20);
    EXPECT_LT(fires, 120);
}

TEST(Failpoint, DisarmRestoresFastPath)
{
    DisarmGuard guard;
    failpoint::arm("test.disarm", always());
    auto &fp = failpoint::site("test.disarm");
    EXPECT_TRUE(fp.fire());
    failpoint::disarm("test.disarm");
    EXPECT_FALSE(fp.fire());
    EXPECT_EQ(fp.arg(), 0) << "disarmed sites report a zero arg";
}

TEST(Failpoint, ArgRiderIsVisibleWhileArmed)
{
    DisarmGuard guard;
    Schedule s = always();
    s.arg = 17;
    failpoint::arm("test.arg", s);
    EXPECT_EQ(failpoint::site("test.arg").arg(), 17);
}

TEST(Failpoint, SpecGrammarArmsSites)
{
    DisarmGuard guard;
    ASSERT_TRUE(failpoint::armFromSpec(
        "test.spec.a=always;test.spec.b=hit:2,arg:9;"
        "test.spec.c=p:0.5:7;test.spec.d=every:2,seed:11"));
    EXPECT_TRUE(failpoint::site("test.spec.a").fire());
    auto &b = failpoint::site("test.spec.b");
    EXPECT_EQ(b.arg(), 9);
    EXPECT_FALSE(b.fire());
    EXPECT_TRUE(b.fire());
    auto &d = failpoint::site("test.spec.d");
    EXPECT_FALSE(d.fire());
    EXPECT_TRUE(d.fire());
}

TEST(Failpoint, MalformedSpecsAreRejected)
{
    DisarmGuard guard;
    EXPECT_FALSE(failpoint::armFromSpec("noequals"));
    EXPECT_FALSE(failpoint::armFromSpec("=always"));
    EXPECT_FALSE(failpoint::armFromSpec("x=unknown"));
    EXPECT_FALSE(failpoint::armFromSpec("x=hit:0"));
    EXPECT_FALSE(failpoint::armFromSpec("x=p:1.5"));
    EXPECT_FALSE(failpoint::armFromSpec("x=always,bogus:1"));
    EXPECT_FALSE(failpoint::armFromSpec("x=hit:notanumber"));
}

TEST(ArchiveIo, InjectedWriteErrorFailsTheCall)
{
    DisarmGuard guard;
    TempFile file("archive_io_error.bin");
    failpoint::arm("archive.io.write.error", always());
    std::vector<uint8_t> data(64, 0xAB);
    EXPECT_FALSE(ground::archive_io::createFile(file.str(),
                                                data.data(),
                                                data.size()));
    failpoint::disarmAll();
    EXPECT_TRUE(ground::archive_io::createFile(file.str(), data.data(),
                                               data.size()));
    EXPECT_EQ(slurp(file.str()).size(), 64u);
}

TEST(ArchiveIo, InjectedErrorPersistsOnlyTheArgPrefix)
{
    DisarmGuard guard;
    TempFile file("archive_io_error_prefix.bin");
    Schedule s = always();
    s.arg = 10;
    failpoint::arm("archive.io.write.error", s);
    std::vector<uint8_t> data(64, 0xCD);
    EXPECT_FALSE(ground::archive_io::createFile(file.str(),
                                                data.data(),
                                                data.size()));
    // The failed call still tore `arg` bytes into the file — exactly
    // what a real partial write followed by an error leaves behind.
    EXPECT_EQ(slurp(file.str()).size(), 10u);
}

TEST(ArchiveIo, ShortWritesStillCompleteViaTheRetryLoop)
{
    DisarmGuard guard;
    TempFile file("archive_io_short.bin");
    Schedule s = always();
    s.arg = 3; // every fwrite capped to 3 bytes
    failpoint::arm("archive.io.write.short", s);
    std::vector<uint8_t> data(100);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i);
    EXPECT_TRUE(ground::archive_io::createFile(file.str(), data.data(),
                                               data.size()));
    EXPECT_EQ(slurp(file.str()), data)
        << "chunked writes must still persist every byte";
    EXPECT_GT(failpoint::site("archive.io.write.short").fireCount(),
              10u);
}

TEST(ArchiveIo, EintrStallsAreRetriedTransparently)
{
    DisarmGuard guard;
    TempFile file("archive_io_eintr.bin");
    Schedule s;
    s.trigger = Trigger::NthHit;
    s.n = 1; // the first write iteration makes no progress
    failpoint::arm("archive.io.write.eintr", s);
    std::vector<uint8_t> data(50, 0x5A);
    EXPECT_TRUE(ground::archive_io::createFile(file.str(), data.data(),
                                               data.size()));
    EXPECT_EQ(slurp(file.str()).size(), 50u);
    EXPECT_EQ(failpoint::site("archive.io.write.eintr").fireCount(),
              1u);
}

TEST(ArchiveIo, CrashLatchPersistsPrefixThenGhostsEverything)
{
    DisarmGuard guard;
    TempFile file("archive_io_crash.bin");
    TempFile other("archive_io_crash_other.bin");
    Schedule s;
    s.trigger = Trigger::NthHit;
    s.n = 1;
    s.arg = 4;
    failpoint::arm("archive.io.crash", s);

    std::vector<uint8_t> data(32, 0xEE);
    // The crashing write "succeeds" from the caller's view (the
    // process is notionally dead; nobody observes the return) but
    // persists only the 4-byte prefix and latches the crash.
    EXPECT_TRUE(ground::archive_io::createFile(file.str(), data.data(),
                                               data.size()));
    EXPECT_TRUE(ground::archive_io::crashed());
    EXPECT_EQ(slurp(file.str()).size(), 4u);

    // Every later mutation ghost-succeeds without touching disk.
    EXPECT_TRUE(ground::archive_io::createFile(other.str(),
                                               data.data(),
                                               data.size()));
    EXPECT_TRUE(slurp(other.str()).empty());
    EXPECT_TRUE(ground::archive_io::removeFile(file.str()));
    EXPECT_EQ(slurp(file.str()).size(), 4u)
        << "a ghost remove must not delete anything";

    // "Reboot": the latch clears and I/O is real again.
    ground::archive_io::resetCrashLatch();
    failpoint::disarmAll();
    EXPECT_FALSE(ground::archive_io::crashed());
    EXPECT_TRUE(ground::archive_io::createFile(other.str(),
                                               data.data(),
                                               data.size()));
    EXPECT_EQ(slurp(other.str()).size(), 32u);
}

TEST(ArchiveIo, InjectedSyncErrorFailsTheCall)
{
    DisarmGuard guard;
    TempFile file("archive_io_sync.bin");
    std::vector<uint8_t> data(8, 1);
    ASSERT_TRUE(ground::archive_io::createFile(file.str(), data.data(),
                                               data.size()));
    failpoint::arm("archive.io.sync.error", always());
    EXPECT_FALSE(ground::archive_io::syncFile(file.str()));
    failpoint::disarmAll();
    EXPECT_TRUE(ground::archive_io::syncFile(file.str()));
}
